"""Quickstart: exact Byzantine vector consensus in five lines (plus commentary).

Five processes, 3-dimensional inputs, one Byzantine process that reports
values far outside the honest hull.  The honest processes agree on an
identical decision vector that provably lies inside the convex hull of their
own inputs.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import check_exact_outcome, run_exact_bvc
from repro.analysis.report import render_table
from repro.byzantine import OutsideHullStrategy
from repro.workloads import probability_vector_registry


def main() -> None:
    # 1. Build a workload: 5 processes, d=3 probability-vector inputs, f=1.
    registry = probability_vector_registry(process_count=5, dimension=3, fault_bound=1, seed=42)

    # 2. Give the faulty process an attack: report values far outside the hull.
    attack = {pid: OutsideHullStrategy(offset=100.0) for pid in registry.faulty_ids}

    # 3. Run the synchronous Exact BVC algorithm over the simulated network.
    outcome = run_exact_bvc(registry, adversary_mutators=attack)

    # 4. Independently verify agreement and validity with the LP checker.
    report = check_exact_outcome(registry, outcome.decisions)

    print("honest inputs:")
    rows = [
        {"process": pid, "input": np.round(registry.input_of(pid), 4).tolist()}
        for pid in registry.honest_ids
    ]
    print(render_table(rows))
    print()
    print(f"faulty process ids: {sorted(registry.faulty_ids)} (reporting values ~100 away)")
    print()

    decision = outcome.decisions[registry.honest_ids[0]]
    print(f"decision vector (identical at every honest process): {np.round(decision, 4).tolist()}")
    print(f"decision coordinates sum to {decision.sum():.6f} (a valid probability vector)")
    print(f"agreement:  {report.agreement_ok}")
    print(f"validity:   {report.validity_ok} (max distance to honest hull: {report.max_hull_distance:.2e})")
    print(f"rounds:     {outcome.rounds_executed}   messages: {outcome.messages_sent}")


if __name__ == "__main__":
    main()
