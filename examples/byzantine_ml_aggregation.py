"""Byzantine-robust gradient aggregation (restricted-round synchronous BVC).

A parameter server is replaced by a decentralised ring of workers that must
agree on an aggregate gradient each step.  Honest workers hold noisy copies of
the true gradient; Byzantine workers send arbitrary poison vectors.  Simple
averaging is destroyed by a single attacker, and coordinate-wise medians can
leave the convex hull of the honest gradients; BVC aggregation guarantees the
agreed update is a convex combination of honest gradients, so a descent
direction for the honest objective is preserved.

The example compares three aggregation rules on the same inputs and attack:

* plain mean (non-robust baseline),
* coordinate-wise median (robust per coordinate, but can exit the hull),
* restricted-round synchronous BVC (this paper).

Run with:  python examples/byzantine_ml_aggregation.py
"""

from __future__ import annotations

import numpy as np

from repro import check_approximate_outcome, run_restricted_sync_bvc
from repro.analysis.metrics import mean_distance_to_point
from repro.analysis.report import render_table
from repro.byzantine import RandomNoiseStrategy
from repro.core.baselines import coordinatewise_median
from repro.geometry.convex_hull import distance_to_hull
from repro.workloads import gradient_registry

EPSILON = 0.05


def main() -> None:
    # 5 workers, 2-dimensional gradients (easy to eyeball), 1 Byzantine worker:
    # exactly the restricted synchronous bound n = (d+2)f + 1 = 5.
    registry = gradient_registry(
        process_count=5, dimension=2, fault_bound=1, gradient_scale=1.0, noise_scale=0.05, seed=13
    )
    honest_cloud = registry.honest_input_multiset().points
    honest_centroid = honest_cloud.mean(axis=0)

    # The Byzantine worker sends large random junk, different in every message.
    attack = {
        pid: RandomNoiseStrategy(low=-50.0, high=50.0, seed=17) for pid in registry.faulty_ids
    }
    poison = np.asarray([50.0, -50.0])

    # Baseline 1: plain mean over what a naive aggregator would collect
    # (honest gradients + one poison vector).
    naive_inputs = np.vstack([honest_cloud, poison[None, :]])
    naive_mean = naive_inputs.mean(axis=0)

    # Baseline 2: coordinate-wise median over the same collection.
    median_aggregate = coordinatewise_median(naive_inputs)

    # This paper: restricted-round synchronous BVC among the workers themselves.
    outcome = run_restricted_sync_bvc(
        registry,
        epsilon=EPSILON,
        adversary_mutators=attack,
        value_bounds=(-2.0, 2.0),
        max_rounds_override=12,
    )
    report = check_approximate_outcome(registry, outcome.decisions, epsilon=EPSILON)
    bvc_aggregate = outcome.decisions[registry.honest_ids[0]]

    rows = [
        {
            "aggregation rule": "plain mean (poisoned)",
            "aggregate": np.round(naive_mean, 3).tolist(),
            "distance to honest centroid": float(np.linalg.norm(naive_mean - honest_centroid)),
            "distance outside honest hull": distance_to_hull(honest_cloud, naive_mean),
        },
        {
            "aggregation rule": "coordinate-wise median",
            "aggregate": np.round(median_aggregate, 3).tolist(),
            "distance to honest centroid": float(np.linalg.norm(median_aggregate - honest_centroid)),
            "distance outside honest hull": distance_to_hull(honest_cloud, median_aggregate),
        },
        {
            "aggregation rule": "BVC (restricted sync rounds)",
            "aggregate": np.round(bvc_aggregate, 3).tolist(),
            "distance to honest centroid": mean_distance_to_point(outcome.decisions, honest_centroid),
            "distance outside honest hull": distance_to_hull(honest_cloud, bvc_aggregate),
        },
    ]

    print(f"true gradient direction (honest centroid): {np.round(honest_centroid, 3).tolist()}")
    print(f"Byzantine workers: {sorted(registry.faulty_ids)}")
    print()
    print(render_table(rows))
    print()
    print(f"BVC epsilon-agreement across workers: {report.agreement_ok} "
          f"(max disagreement {report.max_disagreement:.4f}, eps={EPSILON})")
    print(f"BVC validity (inside honest-gradient hull): {report.validity_ok}")
    print(f"rounds: {outcome.rounds_executed}   messages: {outcome.messages_sent}")


if __name__ == "__main__":
    main()
