"""Multi-robot rendezvous with Byzantine robots (asynchronous approximate BVC).

A team of robots in a 3-D arena must agree on a meeting point.  Each robot
proposes its own position; up to ``f`` robots are compromised and report
positions outside the arena (or different positions to different peers), and
the wireless network delivers messages with arbitrary delays.  Running the
asynchronous Approximate BVC algorithm, the honest robots converge to meeting
points that are (i) within ``epsilon`` of each other on every axis and
(ii) inside the convex hull of the honest robots' true positions — so the
rendezvous point is always physically reachable and sensible.

Run with:  python examples/robot_rendezvous.py
"""

from __future__ import annotations

import numpy as np

from repro import check_approximate_outcome, run_approx_bvc
from repro.analysis.convergence import max_range_per_round
from repro.analysis.report import render_series, render_table
from repro.byzantine import EquivocationStrategy
from repro.network.scheduler import LaggingScheduler
from repro.workloads import robot_position_registry

ARENA_SIZE = 10.0
EPSILON = 0.25


def main() -> None:
    # 6 robots in a 10x10x10 arena, one compromised: exactly the asynchronous
    # bound n = (d+2)f + 1 = 6 for d = 3, f = 1.
    registry = robot_position_registry(
        process_count=6, fault_bound=1, dimension=3, arena_size=ARENA_SIZE, seed=7
    )

    # The compromised robot equivocates: it reports a different honest robot's
    # position to every peer, trying to split the team.
    honest_positions = [registry.input_of(pid) for pid in registry.honest_ids]
    attack = {pid: EquivocationStrategy(value_pool=honest_positions) for pid in registry.faulty_ids}

    # The network is asynchronous; additionally one honest robot has a flaky,
    # slow link (its messages are delivered last), which the algorithm must
    # tolerate without waiting for it.
    slow_robot = registry.honest_ids[-1]
    scheduler = LaggingScheduler(slow_processes=[slow_robot], seed=11)

    # The static termination rule of the paper is very conservative (it uses
    # the worst-case contraction gamma = 1/n^2 and the full arena as the value
    # range); we print that bound but run a shorter, fixed number of rounds and
    # verify epsilon-agreement on the measured decisions instead.
    from repro.core.approx_bvc import contraction_factor, round_threshold

    gamma = contraction_factor(registry.configuration.process_count, 1, "witness_subsets")
    static_rounds = round_threshold(ARENA_SIZE, EPSILON, gamma)
    outcome = run_approx_bvc(
        registry,
        epsilon=EPSILON,
        adversary_mutators=attack,
        scheduler=scheduler,
        value_bounds=(0.0, ARENA_SIZE),
        max_rounds_override=15,
    )
    report = check_approximate_outcome(registry, outcome.decisions, epsilon=EPSILON)

    print("honest robot positions:")
    rows = [
        {"robot": pid, "position": np.round(registry.input_of(pid), 3).tolist()}
        for pid in registry.honest_ids
    ]
    print(render_table(rows))
    print()
    print(f"compromised robots: {sorted(registry.faulty_ids)} (equivocating)")
    print(f"slow honest robot:  {slow_robot} (messages maximally delayed)")
    print()

    print("rendezvous points decided by each honest robot:")
    rows = [
        {"robot": pid, "rendezvous": np.round(vector, 3).tolist()}
        for pid, vector in sorted(outcome.decisions.items())
    ]
    print(render_table(rows))
    print()
    ranges = max_range_per_round(outcome.state_histories)
    print(render_series(ranges[:12], "max state spread, first rounds"))
    print()
    print(f"epsilon-agreement (eps={EPSILON}): {report.agreement_ok} "
          f"(max disagreement {report.max_disagreement:.4f})")
    print(f"validity (inside honest hull):     {report.validity_ok}")
    print(f"rounds run: {outcome.rounds_executed} "
          f"(paper's worst-case static threshold would be {static_rounds})   "
          f"deliveries: {outcome.deliveries}")


if __name__ == "__main__":
    main()
