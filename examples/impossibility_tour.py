"""A tour of the paper's lower bounds, computed rather than proved.

For each dimension ``d`` this example evaluates the constructions behind the
necessity halves of Theorems 1 and 4 with the library's LP machinery:

* Theorem 1 (synchronous, exact, f = 1): with ``n = d + 1`` processes holding
  the standard basis vectors plus the origin, the intersection of all
  leave-one-out hulls is empty — no decision can be valid no matter the
  algorithm.  With one more process the obstruction vanishes.
* Theorem 4 (asynchronous, approximate, f = 1): with ``n = d + 2`` processes,
  validity alone forces each process's decision to equal its own input, and
  those inputs are ``4 * epsilon`` apart — epsilon-agreement is unreachable.

It also prints the resilience landscape (minimum ``n`` for every setting),
which is the content of the paper's summary table of bounds.

Run with:  python examples/impossibility_tour.py
"""

from __future__ import annotations

from repro.analysis.experiments import (
    experiment_async_impossibility,
    experiment_resilience_landscape,
    experiment_sync_impossibility,
)
from repro.analysis.report import render_table


def main() -> None:
    print(render_table(
        experiment_sync_impossibility(dimensions=(1, 2, 3, 4, 5)),
        title="Theorem 1 necessity: Gamma emptiness below vs at the bound (f = 1)",
    ))
    print()
    print(render_table(
        experiment_async_impossibility(dimensions=(1, 2, 3, 4, 5), epsilon=0.25),
        title="Theorem 4 necessity: forced decision gap at n = d + 2 (f = 1)",
    ))
    print()
    print(render_table(
        experiment_resilience_landscape(dimensions=(1, 2, 3, 4, 5), fault_bounds=(1, 2, 3)),
        title="Resilience landscape: minimum n per setting",
    ))


if __name__ == "__main__":
    main()
