"""Agreement on a feasible solution: why scalar consensus per coordinate fails.

This is the paper's introductory example run end-to-end.  Four processes hold
probability vectors (points of the 2-simplex in R^3) — think of them as
proposed resource-allocation fractions that must sum to one.  One process is
Byzantine.  The example runs

* Byzantine *scalar* consensus independently on every coordinate (the
  strawman), and
* Exact Byzantine *vector* consensus (this paper),

under the same attack, and shows that the strawman's decision is not a valid
allocation (its coordinates sum to 1/2, outside the convex hull of the honest
proposals) while the BVC decision is.

Run with:  python examples/feasible_solution_agreement.py
"""

from __future__ import annotations

import numpy as np

from repro import check_exact_outcome, run_exact_bvc
from repro.analysis.report import render_table
from repro.byzantine import CoordinateAttackStrategy
from repro.core.baselines import run_coordinatewise_consensus
from repro.workloads import intro_counterexample_registry


def main() -> None:
    # Extended variant of the paper's example: the three "heavy vertex"
    # proposals plus one uniform proposal, so that n = 5 meets the Exact BVC
    # bound for d = 3, f = 1 and both algorithms can run on the same inputs.
    registry = intro_counterexample_registry(extended=True)
    # The faulty process proposes 1/6 everywhere, which is individually
    # plausible on every coordinate yet drags the per-coordinate medians to
    # [1/6, 1/6, 1/6] — not a probability vector.
    attack = {
        pid: CoordinateAttackStrategy(coordinate=0, target=1.0 / 6.0)
        for pid in registry.faulty_ids
    }

    print("honest proposals (each a probability vector):")
    rows = [
        {"process": pid, "proposal": np.round(registry.input_of(pid), 4).tolist(),
         "sums to": float(np.sum(registry.input_of(pid)))}
        for pid in registry.honest_ids
    ]
    print(render_table(rows))
    print()

    baseline = run_coordinatewise_consensus(registry, adversary_mutators=attack)
    baseline_report = check_exact_outcome(registry, baseline.decisions)
    baseline_decision = baseline.decisions[registry.honest_ids[0]]

    bvc = run_exact_bvc(registry, adversary_mutators=attack)
    bvc_report = check_exact_outcome(registry, bvc.decisions)
    bvc_decision = bvc.decisions[registry.honest_ids[0]]

    rows = [
        {
            "algorithm": "scalar consensus per coordinate",
            "decision": np.round(baseline_decision, 4).tolist(),
            "sums to": float(np.sum(baseline_decision)),
            "agreement": baseline_report.agreement_ok,
            "valid allocation": baseline_report.validity_ok,
            "distance outside honest hull": baseline_report.max_hull_distance,
        },
        {
            "algorithm": "Exact BVC (this paper)",
            "decision": np.round(bvc_decision, 4).tolist(),
            "sums to": float(np.sum(bvc_decision)),
            "agreement": bvc_report.agreement_ok,
            "valid allocation": bvc_report.validity_ok,
            "distance outside honest hull": bvc_report.max_hull_distance,
        },
    ]
    print(render_table(rows))
    print()
    print("The scalar-per-coordinate decision satisfies each coordinate's scalar")
    print("validity yet is not in the convex hull of the honest proposals; the")
    print("Exact BVC decision is a genuine convex combination of honest proposals.")


if __name__ == "__main__":
    main()
