"""Unit tests for the EIG Byzantine broadcast substrate.

The two properties Step 1 of the Exact BVC algorithm needs from the broadcast
(with ``n >= 3f + 1`` in a synchronous complete graph) are checked directly:

* agreement — all non-faulty processes decide the same value, even when the
  sender is Byzantine and equivocates;
* validity — when the sender is non-faulty, the decision equals its value.
"""

from __future__ import annotations

import pytest

from repro.byzantine.adversary import ByzantineSyncProcess
from repro.byzantine.strategies import CrashStrategy, EquivocationStrategy, RandomNoiseStrategy
from repro.consensus.eig import EigBroadcastInstance, EigBroadcastProcess, eig_round_count
from repro.exceptions import ConfigurationError
from repro.network.sync_runtime import SynchronousRuntime


def run_broadcast(process_count, fault_bound, sender_id, sender_value, faulty=None, strategy_factory=None):
    """Drive a single EIG broadcast over the synchronous runtime."""
    faulty = set(faulty or ())
    process_ids = tuple(range(process_count))
    processes = {}
    for pid in process_ids:
        core = EigBroadcastProcess(
            process_id=pid,
            sender_id=sender_id,
            process_ids=process_ids,
            fault_bound=fault_bound,
            value=sender_value if pid == sender_id else None,
            default=0.0,
        )
        if pid in faulty and strategy_factory is not None:
            processes[pid] = ByzantineSyncProcess(core, strategy_factory(pid))
        else:
            processes[pid] = core
    honest = tuple(pid for pid in process_ids if pid not in faulty)
    runtime = SynchronousRuntime(processes, honest_ids=honest, max_rounds=fault_bound + 2)
    result = runtime.run()
    return {pid: result.decisions[pid] for pid in honest}


class TestRoundCount:
    def test_f_plus_one(self):
        assert eig_round_count(0) == 1
        assert eig_round_count(2) == 3

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            eig_round_count(-1)


class TestInstanceValidation:
    def test_sender_must_provide_value(self):
        with pytest.raises(ConfigurationError):
            EigBroadcastInstance(owner_id=0, sender_id=0, process_ids=(0, 1, 2, 3), fault_bound=1)

    def test_owner_must_be_member(self):
        with pytest.raises(ConfigurationError):
            EigBroadcastInstance(owner_id=9, sender_id=0, process_ids=(0, 1, 2, 3), fault_bound=1, value=1.0)

    def test_malformed_relay_payload_ignored(self):
        instance = EigBroadcastInstance(owner_id=1, sender_id=0, process_ids=(0, 1, 2, 3), fault_bound=1)
        instance.receive_payload(1, 0, {(0,): 7.0})
        instance.finish_round(1)
        # Valid second-round relays from processes 2 and 3, plus garbage entries
        # (wrong level, duplicated ids, unknown processes, non-tuple labels)
        # that must be dropped without corrupting the tree.
        instance.receive_payload(2, 2, {(0,): 7.0, (0, 0): 9.0, "junk": 1.0, (0, 9): 2.0})
        instance.receive_payload(2, 3, {(0,): 7.0, (0, 2, 3): 5.0})
        instance.finish_round(2)
        assert instance.resolve() == 7.0


class TestFaultFreeBroadcast:
    def test_all_processes_learn_sender_value(self):
        decisions = run_broadcast(4, 1, sender_id=0, sender_value=3.25)
        assert set(decisions.values()) == {3.25}

    def test_with_f_two(self):
        decisions = run_broadcast(7, 2, sender_id=3, sender_value=-1.5)
        assert set(decisions.values()) == {-1.5}

    def test_zero_faults_single_round(self):
        decisions = run_broadcast(3, 0, sender_id=1, sender_value=2.0)
        assert set(decisions.values()) == {2.0}


class TestByzantineSender:
    def test_equivocating_sender_still_yields_agreement(self):
        decisions = run_broadcast(
            4, 1, sender_id=0, sender_value=1.0,
            faulty={0},
            strategy_factory=lambda pid: EquivocationStrategy([[10.0], [20.0], [30.0]]),
        )
        assert len(set(decisions.values())) == 1

    def test_crashed_sender_yields_agreement_on_default(self):
        decisions = run_broadcast(
            4, 1, sender_id=0, sender_value=1.0,
            faulty={0},
            strategy_factory=lambda pid: CrashStrategy(),
        )
        assert set(decisions.values()) == {0.0}

    def test_equivocating_sender_with_f2(self):
        decisions = run_broadcast(
            7, 2, sender_id=0, sender_value=1.0,
            faulty={0, 6},
            strategy_factory=lambda pid: EquivocationStrategy([[5.0], [6.0]]),
        )
        assert len(set(decisions.values())) == 1


class TestByzantineRelay:
    def test_honest_sender_with_byzantine_relay_preserves_validity(self):
        decisions = run_broadcast(
            4, 1, sender_id=0, sender_value=4.5,
            faulty={2},
            strategy_factory=lambda pid: RandomNoiseStrategy(low=-99, high=99, seed=pid),
        )
        assert set(decisions.values()) == {4.5}

    def test_two_byzantine_relays_with_f2(self):
        decisions = run_broadcast(
            7, 2, sender_id=1, sender_value=8.0,
            faulty={5, 6},
            strategy_factory=lambda pid: RandomNoiseStrategy(low=-99, high=99, seed=pid),
        )
        assert set(decisions.values()) == {8.0}
