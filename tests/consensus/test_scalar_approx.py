"""Unit tests for asynchronous approximate scalar consensus (Dolev-style baseline)."""

from __future__ import annotations

import pytest

from repro.byzantine.strategies import CrashStrategy, OutsideHullStrategy
from repro.consensus.scalar_approx import run_scalar_approx_consensus
from repro.exceptions import ResilienceError
from repro.network.scheduler import RandomScheduler, RoundRobinScheduler


def spread(decisions: dict[int, float]) -> float:
    values = list(decisions.values())
    return max(values) - min(values)


class TestScalarApprox:
    def test_fault_free_convergence(self):
        inputs = {pid: float(pid) for pid in range(6)}
        outcome = run_scalar_approx_consensus(
            inputs, fault_bound=1, epsilon=0.25, scheduler=RoundRobinScheduler()
        )
        assert spread(outcome.decisions) <= 0.25
        for decision in outcome.decisions.values():
            assert 0.0 <= decision <= 5.0

    def test_resilience_check_requires_5f_plus_1(self):
        inputs = {pid: float(pid) for pid in range(5)}
        with pytest.raises(ResilienceError):
            run_scalar_approx_consensus(inputs, fault_bound=1, epsilon=0.1)

    def test_byzantine_outlier_does_not_break_validity(self):
        inputs = {pid: float(pid) for pid in range(6)}
        outcome = run_scalar_approx_consensus(
            inputs,
            fault_bound=1,
            epsilon=0.25,
            faulty_ids={5},
            adversary_mutators={5: OutsideHullStrategy(offset=1000.0)},
            scheduler=RandomScheduler(3),
        )
        assert spread(outcome.decisions) <= 0.25
        for decision in outcome.decisions.values():
            assert 0.0 <= decision <= 4.0

    def test_crashed_process_tolerated(self):
        inputs = {pid: float(pid) for pid in range(6)}
        outcome = run_scalar_approx_consensus(
            inputs,
            fault_bound=1,
            epsilon=0.5,
            faulty_ids={0},
            adversary_mutators={0: CrashStrategy()},
            scheduler=RandomScheduler(4),
        )
        assert spread(outcome.decisions) <= 0.5

    def test_round_override(self):
        inputs = {pid: float(pid) for pid in range(6)}
        outcome = run_scalar_approx_consensus(
            inputs, fault_bound=1, epsilon=0.01, max_rounds_override=2,
            scheduler=RoundRobinScheduler(),
        )
        assert outcome.rounds_executed == 2
