"""Unit tests for synchronous Byzantine scalar consensus."""

from __future__ import annotations

import numpy as np
import pytest

from repro.byzantine.strategies import EquivocationStrategy, OutsideHullStrategy
from repro.consensus.scalar_exact import lower_median, run_scalar_consensus
from repro.exceptions import ProtocolError, ResilienceError


class TestLowerMedian:
    def test_odd_count(self):
        assert lower_median(np.asarray([3.0, 1.0, 2.0])) == 2.0

    def test_even_count_takes_lower_of_middle_pair(self):
        assert lower_median(np.asarray([1.0, 2.0, 3.0, 4.0])) == 2.0

    def test_single_value(self):
        assert lower_median(np.asarray([7.0])) == 7.0

    def test_empty_raises(self):
        with pytest.raises(ProtocolError):
            lower_median(np.asarray([]))


class TestScalarConsensus:
    def test_fault_free_agreement_and_validity(self):
        inputs = {0: 1.0, 1: 2.0, 2: 3.0, 3: 4.0}
        outcome = run_scalar_consensus(inputs, fault_bound=1)
        values = set(outcome.decisions.values())
        assert len(values) == 1
        decision = values.pop()
        assert 1.0 <= decision <= 4.0

    def test_resilience_check(self):
        with pytest.raises(ResilienceError):
            run_scalar_consensus({0: 1.0, 1: 2.0, 2: 3.0}, fault_bound=1)

    def test_byzantine_equivocation_cannot_break_agreement(self):
        inputs = {0: 1.0, 1: 2.0, 2: 3.0, 3: 100.0}
        outcome = run_scalar_consensus(
            inputs,
            fault_bound=1,
            faulty_ids={3},
            adversary_mutators={3: EquivocationStrategy([[0.0], [50.0]])},
        )
        values = set(outcome.decisions.values())
        assert len(values) == 1
        # Scalar validity: within the honest range [1, 3].
        decision = values.pop()
        assert 1.0 <= decision <= 3.0

    def test_outlier_attack_bounded_by_honest_range(self):
        inputs = {0: 0.4, 1: 0.5, 2: 0.6, 3: 0.5}
        outcome = run_scalar_consensus(
            inputs,
            fault_bound=1,
            faulty_ids={3},
            adversary_mutators={3: OutsideHullStrategy(offset=1000.0)},
        )
        decision = next(iter(outcome.decisions.values()))
        assert 0.4 <= decision <= 0.6

    def test_rounds_are_f_plus_one(self):
        inputs = {0: 1.0, 1: 2.0, 2: 3.0, 3: 4.0, 4: 5.0, 5: 6.0, 6: 7.0}
        outcome = run_scalar_consensus(inputs, fault_bound=2)
        assert outcome.rounds_executed == 3
