"""Unit tests for the workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.workloads.generators import (
    basis_counterexample_registry,
    gradient_registry,
    intro_counterexample_registry,
    probability_vector_registry,
    robot_position_registry,
    uniform_box_registry,
)


class TestUniformBox:
    def test_shapes_and_bounds(self):
        registry = uniform_box_registry(6, 3, 1, lower=-2.0, upper=2.0, seed=1)
        assert registry.configuration.process_count == 6
        for pid in registry.process_ids:
            vector = registry.input_of(pid)
            assert vector.shape == (3,)
            assert np.all(vector >= -2.0) and np.all(vector <= 2.0)

    def test_fault_count_respected(self):
        registry = uniform_box_registry(6, 2, 2, fault_count=1, seed=2)
        assert len(registry.faulty_ids) == 1

    def test_deterministic_given_seed(self):
        a = uniform_box_registry(5, 2, 1, seed=3)
        b = uniform_box_registry(5, 2, 1, seed=3)
        assert a.faulty_ids == b.faulty_ids
        for pid in a.process_ids:
            assert np.allclose(a.input_of(pid), b.input_of(pid))

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            uniform_box_registry(5, 2, 1, lower=1.0, upper=0.0)

    def test_invalid_fault_count_rejected(self):
        with pytest.raises(ConfigurationError):
            uniform_box_registry(5, 2, 1, fault_count=9)


class TestDomainWorkloads:
    def test_probability_vectors_lie_on_simplex(self):
        registry = probability_vector_registry(5, 4, 1, seed=4)
        for pid in registry.process_ids:
            vector = registry.input_of(pid)
            assert np.all(vector >= 0)
            assert float(vector.sum()) == pytest.approx(1.0)

    def test_robot_positions_inside_arena(self):
        registry = robot_position_registry(6, 1, dimension=3, arena_size=5.0, seed=5)
        for pid in registry.process_ids:
            vector = registry.input_of(pid)
            assert np.all(vector >= 0.0) and np.all(vector <= 5.0)

    def test_gradient_inputs_cluster_around_true_gradient(self):
        registry = gradient_registry(8, 4, 1, noise_scale=0.01, seed=6)
        cloud = registry.all_input_multiset().points
        spread = cloud.max(axis=0) - cloud.min(axis=0)
        assert np.all(spread < 0.2)


class TestCounterexamples:
    def test_intro_counterexample_literal(self):
        registry = intro_counterexample_registry()
        assert registry.configuration.process_count == 4
        assert registry.faulty_ids == frozenset({3})
        for pid in registry.honest_ids:
            assert float(registry.input_of(pid).sum()) == pytest.approx(1.0)

    def test_intro_counterexample_extended(self):
        registry = intro_counterexample_registry(extended=True)
        assert registry.configuration.process_count == 5
        assert registry.faulty_ids == frozenset({4})

    def test_basis_counterexample(self):
        registry = basis_counterexample_registry(3, epsilon=0.25)
        assert registry.configuration.process_count == 5
        assert np.allclose(registry.input_of(0), [1.0, 0.0, 0.0])
        assert np.allclose(registry.input_of(4), np.zeros(3))

    def test_basis_counterexample_invalid_dimension(self):
        with pytest.raises(ConfigurationError):
            basis_counterexample_registry(0)
