"""Unit tests for repro.network.network."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError, SchedulerError
from repro.network.message import Message
from repro.network.network import CompleteGraphNetwork


def make_message(sender, recipient, payload="x"):
    return Message(sender=sender, recipient=recipient, protocol="test", kind="DATA", payload=payload)


class TestConstruction:
    def test_needs_two_processes(self):
        with pytest.raises(ConfigurationError):
            CompleteGraphNetwork([0])

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ConfigurationError):
            CompleteGraphNetwork([0, 0, 1])

    def test_channel_per_ordered_pair(self):
        network = CompleteGraphNetwork([0, 1, 2])
        assert network.channel(0, 1) is not network.channel(1, 0)
        with pytest.raises(SchedulerError):
            network.channel(0, 0)


class TestTraffic:
    def test_send_and_drain_to(self):
        network = CompleteGraphNetwork([0, 1, 2])
        network.send(make_message(0, 2, "a"))
        network.send(make_message(1, 2, "b"))
        network.send(make_message(0, 1, "c"))
        inbox = network.drain_to(2)
        assert sorted(message.payload for message in inbox) == ["a", "b"]
        assert network.in_flight_count() == 1

    def test_self_message_rejected(self):
        network = CompleteGraphNetwork([0, 1])
        with pytest.raises(SchedulerError):
            network.send(make_message(0, 0))

    def test_busy_channels(self):
        network = CompleteGraphNetwork([0, 1, 2])
        network.send(make_message(0, 1))
        assert network.busy_channels() == [(0, 1)]

    def test_deliver_from_respects_fifo(self):
        network = CompleteGraphNetwork([0, 1])
        network.send(make_message(0, 1, "first"))
        network.send(make_message(0, 1, "second"))
        assert network.deliver_from(0, 1).payload == "first"
        assert network.deliver_from(0, 1).payload == "second"

    def test_drain_all_groups_by_recipient(self):
        network = CompleteGraphNetwork([0, 1, 2])
        network.send(make_message(0, 1))
        network.send(make_message(2, 1))
        network.send(make_message(1, 0))
        delivered = network.drain_all()
        assert len(delivered[1]) == 2
        assert len(delivered[0]) == 1
        assert len(delivered[2]) == 0

    def test_stats_counts(self):
        network = CompleteGraphNetwork([0, 1])
        network.send(make_message(0, 1))
        network.send(make_message(1, 0))
        network.deliver_from(0, 1)
        stats = network.stats()
        assert stats.messages_sent == 2
        assert stats.messages_delivered == 1
        assert stats.messages_in_flight == 1

    def test_broadcast_sends_all(self):
        network = CompleteGraphNetwork([0, 1, 2])
        network.broadcast([make_message(0, 1), make_message(0, 2)])
        assert network.messages_sent == 2
