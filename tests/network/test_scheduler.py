"""Unit tests for repro.network.scheduler.

Beyond the choose-level unit tests, the ``TestSchedulersDriveRuntime`` section
checks the properties the asynchronous model relies on against a real
:class:`~repro.network.async_runtime.AsynchronousRuntime`: eventual delivery
under the starving :class:`LaggingScheduler`, cross-run determinism of
:class:`RoundRobinScheduler`, and seed-stability of :class:`RandomScheduler`.
"""

from __future__ import annotations

import pytest

from repro.exceptions import SchedulerError
from repro.network.async_runtime import AsynchronousRuntime
from repro.network.message import Message
from repro.network.scheduler import (
    DeliveryScheduler,
    LaggingScheduler,
    RandomScheduler,
    RoundRobinScheduler,
)
from repro.processes.process import AsyncProcess

CHANNELS = [(0, 1), (1, 2), (2, 0), (3, 1)]


class TestRandomScheduler:
    def test_picks_only_busy_channels(self):
        scheduler = RandomScheduler(0)
        for _ in range(50):
            assert scheduler.choose(CHANNELS) in CHANNELS

    def test_deterministic_for_fixed_seed(self):
        first = [RandomScheduler(7).choose(CHANNELS) for _ in range(10)]
        second = [RandomScheduler(7).choose(CHANNELS) for _ in range(10)]
        assert first == second

    def test_empty_raises(self):
        with pytest.raises(SchedulerError):
            RandomScheduler(0).choose([])


class TestLaggingScheduler:
    def test_starves_slow_process(self):
        scheduler = LaggingScheduler(slow_processes=[3], seed=0)
        for _ in range(50):
            choice = scheduler.choose(CHANNELS)
            assert 3 not in choice

    def test_slow_channel_served_when_only_option(self):
        scheduler = LaggingScheduler(slow_processes=[3], seed=0)
        assert scheduler.choose([(3, 1)]) == (3, 1)

    def test_slow_recipient_also_starved(self):
        scheduler = LaggingScheduler(slow_processes=[1], seed=0)
        for _ in range(50):
            choice = scheduler.choose([(0, 1), (2, 0)])
            assert choice == (2, 0)

    def test_empty_raises(self):
        with pytest.raises(SchedulerError):
            LaggingScheduler([0]).choose([])


class TestRoundRobinScheduler:
    def test_cycles_deterministically(self):
        scheduler = RoundRobinScheduler()
        choices = [scheduler.choose(CHANNELS) for _ in range(len(CHANNELS) * 2)]
        assert choices[: len(CHANNELS)] == sorted(CHANNELS)
        assert choices[len(CHANNELS):] == sorted(CHANNELS)

    def test_empty_raises(self):
        with pytest.raises(SchedulerError):
            RoundRobinScheduler().choose([])


# ---------------------------------------------------------------------------
# Scheduler properties against a real asynchronous runtime
# ---------------------------------------------------------------------------

class RecordingScheduler(DeliveryScheduler):
    """Delegate to an inner scheduler, recording every delivery choice."""

    def __init__(self, inner: DeliveryScheduler) -> None:
        self.inner = inner
        self.choices: list[tuple[int, int]] = []

    def choose(self, busy_channels):
        choice = self.inner.choose(busy_channels)
        self.choices.append(choice)
        return choice


class BroadcastOnceProcess(AsyncProcess):
    """Broadcast one message on start; decide after hearing from everyone else."""

    def __init__(self, process_id: int, all_ids: tuple[int, ...]):
        super().__init__(process_id)
        self.all_ids = all_ids
        self.heard_from: list[int] = []

    def on_start(self) -> None:
        for other in self.all_ids:
            if other != self.process_id:
                self.send(Message(sender=self.process_id, recipient=other,
                                  protocol="bcast", kind="HELLO", payload=None))

    def on_message(self, message: Message) -> None:
        self.heard_from.append(message.sender)

    def has_decided(self) -> bool:
        return len(set(self.heard_from)) == len(self.all_ids) - 1

    def decision(self):
        return tuple(self.heard_from)


def _run_broadcast(scheduler: DeliveryScheduler, ids=(0, 1, 2, 3)):
    processes = {pid: BroadcastOnceProcess(pid, ids) for pid in ids}
    result = AsynchronousRuntime(processes, scheduler=scheduler).run()
    return result


class TestSchedulersDriveRuntime:
    def test_lagging_scheduler_still_delivers_eventually(self):
        # Every process must hear from every other one, including the starved
        # process 3: the run can only terminate if the lagging scheduler
        # eventually serves the slow channels too (eventual delivery).
        recorder = RecordingScheduler(LaggingScheduler(slow_processes=[3], seed=0))
        result = _run_broadcast(recorder)
        assert set(result.decisions) == {0, 1, 2, 3}
        assert result.traffic.messages_in_flight == 0

    def test_lagging_scheduler_serves_slow_channels_last(self):
        recorder = RecordingScheduler(LaggingScheduler(slow_processes=[3], seed=0))
        _run_broadcast(recorder)
        touches_slow = [3 in choice for choice in recorder.choices]
        # All fast-only deliveries strictly precede the first slow delivery.
        first_slow = touches_slow.index(True)
        assert all(touches_slow[first_slow:])

    def test_round_robin_is_deterministic_across_runs(self):
        first = RecordingScheduler(RoundRobinScheduler())
        second = RecordingScheduler(RoundRobinScheduler())
        result_one = _run_broadcast(first)
        result_two = _run_broadcast(second)
        assert first.choices == second.choices
        assert result_one.decisions == result_two.decisions
        assert result_one.deliveries == result_two.deliveries

    def test_random_scheduler_is_seed_stable_across_runs(self):
        first = RecordingScheduler(RandomScheduler(42))
        second = RecordingScheduler(RandomScheduler(42))
        result_one = _run_broadcast(first)
        result_two = _run_broadcast(second)
        assert first.choices == second.choices
        assert result_one.decisions == result_two.decisions

    def test_random_scheduler_seed_changes_the_schedule(self):
        draws_a = [RandomScheduler(1).choose(CHANNELS) for _ in range(20)]
        draws_b = [RandomScheduler(2).choose(CHANNELS) for _ in range(20)]
        assert draws_a != draws_b
