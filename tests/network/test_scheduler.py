"""Unit tests for repro.network.scheduler."""

from __future__ import annotations

import pytest

from repro.exceptions import SchedulerError
from repro.network.scheduler import LaggingScheduler, RandomScheduler, RoundRobinScheduler

CHANNELS = [(0, 1), (1, 2), (2, 0), (3, 1)]


class TestRandomScheduler:
    def test_picks_only_busy_channels(self):
        scheduler = RandomScheduler(0)
        for _ in range(50):
            assert scheduler.choose(CHANNELS) in CHANNELS

    def test_deterministic_for_fixed_seed(self):
        first = [RandomScheduler(7).choose(CHANNELS) for _ in range(10)]
        second = [RandomScheduler(7).choose(CHANNELS) for _ in range(10)]
        assert first == second

    def test_empty_raises(self):
        with pytest.raises(SchedulerError):
            RandomScheduler(0).choose([])


class TestLaggingScheduler:
    def test_starves_slow_process(self):
        scheduler = LaggingScheduler(slow_processes=[3], seed=0)
        for _ in range(50):
            choice = scheduler.choose(CHANNELS)
            assert 3 not in choice

    def test_slow_channel_served_when_only_option(self):
        scheduler = LaggingScheduler(slow_processes=[3], seed=0)
        assert scheduler.choose([(3, 1)]) == (3, 1)

    def test_slow_recipient_also_starved(self):
        scheduler = LaggingScheduler(slow_processes=[1], seed=0)
        for _ in range(50):
            choice = scheduler.choose([(0, 1), (2, 0)])
            assert choice == (2, 0)

    def test_empty_raises(self):
        with pytest.raises(SchedulerError):
            LaggingScheduler([0]).choose([])


class TestRoundRobinScheduler:
    def test_cycles_deterministically(self):
        scheduler = RoundRobinScheduler()
        choices = [scheduler.choose(CHANNELS) for _ in range(len(CHANNELS) * 2)]
        assert choices[: len(CHANNELS)] == sorted(CHANNELS)
        assert choices[len(CHANNELS):] == sorted(CHANNELS)

    def test_empty_raises(self):
        with pytest.raises(SchedulerError):
            RoundRobinScheduler().choose([])
