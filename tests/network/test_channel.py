"""Unit tests for repro.network.channel and repro.network.message."""

from __future__ import annotations

import pytest

from repro.exceptions import SchedulerError
from repro.network.channel import FifoChannel
from repro.network.message import Message


def make_message(sender=0, recipient=1, payload="x", round_index=None):
    return Message(
        sender=sender,
        recipient=recipient,
        protocol="test",
        kind="DATA",
        payload=payload,
        round_index=round_index,
    )


class TestMessage:
    def test_sequence_numbers_increase(self):
        first = make_message()
        second = make_message()
        assert second.sequence > first.sequence

    def test_describe_includes_route_and_round(self):
        message = make_message(round_index=3)
        text = message.describe()
        assert "0 -> 1" in text
        assert "r3" in text

    def test_messages_are_immutable(self):
        message = make_message()
        with pytest.raises(AttributeError):
            message.payload = "other"


class TestFifoChannel:
    def test_fifo_order(self):
        channel = FifoChannel(0, 1)
        first = make_message(payload="first")
        second = make_message(payload="second")
        channel.send(first)
        channel.send(second)
        assert channel.deliver_next().payload == "first"
        assert channel.deliver_next().payload == "second"

    def test_peek_does_not_remove(self):
        channel = FifoChannel(0, 1)
        channel.send(make_message(payload="only"))
        assert channel.peek().payload == "only"
        assert channel.in_flight() == 1

    def test_drain_returns_all_in_order(self):
        channel = FifoChannel(0, 1)
        for index in range(5):
            channel.send(make_message(payload=index))
        drained = channel.drain()
        assert [message.payload for message in drained] == [0, 1, 2, 3, 4]
        assert channel.is_empty()

    def test_deliver_from_empty_raises(self):
        channel = FifoChannel(0, 1)
        with pytest.raises(SchedulerError):
            channel.deliver_next()

    def test_wrong_route_rejected(self):
        channel = FifoChannel(0, 1)
        with pytest.raises(SchedulerError):
            channel.send(make_message(sender=2, recipient=1))

    def test_delivered_count(self):
        channel = FifoChannel(0, 1)
        channel.send(make_message())
        channel.send(make_message())
        channel.deliver_next()
        channel.drain()
        assert channel.delivered_count == 2
