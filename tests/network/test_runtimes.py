"""Unit tests for the synchronous and asynchronous runtimes.

The tests drive tiny purpose-built processes (an echo/flood protocol and a
counter protocol) rather than the BVC algorithms, so that runtime semantics —
round structure, FIFO order, termination, liveness failure detection — are
checked in isolation.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError, TerminationError
from repro.network.async_runtime import AsynchronousRuntime
from repro.network.message import Message
from repro.network.scheduler import RoundRobinScheduler
from repro.network.sync_runtime import SynchronousRuntime
from repro.processes.process import AsyncProcess, SyncProcess


class GossipSyncProcess(SyncProcess):
    """Each round, send the set of ids heard of; decide once all ids are known."""

    def __init__(self, process_id: int, all_ids: tuple[int, ...]):
        super().__init__(process_id)
        self.all_ids = all_ids
        self.known = {process_id}
        self._decided = False

    def outgoing(self, round_index: int) -> list[Message]:
        return [
            Message(
                sender=self.process_id,
                recipient=other,
                protocol="gossip",
                kind="KNOWN",
                payload=frozenset(self.known),
                round_index=round_index,
            )
            for other in self.all_ids
            if other != self.process_id
        ]

    def deliver(self, round_index: int, inbox: list[Message]) -> None:
        for message in inbox:
            self.known |= set(message.payload)
        if self.known == set(self.all_ids):
            self._decided = True

    def has_decided(self) -> bool:
        return self._decided

    def decision(self):
        return frozenset(self.known)


class SilentSyncProcess(SyncProcess):
    """Never sends, never decides (used to exercise the round budget)."""

    def outgoing(self, round_index: int) -> list[Message]:
        return []

    def deliver(self, round_index: int, inbox: list[Message]) -> None:
        pass

    def has_decided(self) -> bool:
        return False

    def decision(self):
        return None


class PingPongAsyncProcess(AsyncProcess):
    """Process 0 sends PING; every process echoes until a hop budget is spent."""

    def __init__(self, process_id: int, all_ids: tuple[int, ...], hops: int = 3):
        super().__init__(process_id)
        self.all_ids = all_ids
        self.hops = hops
        self.received: list[int] = []
        self._decided = False

    def on_start(self) -> None:
        if self.process_id == 0:
            for other in self.all_ids:
                if other != self.process_id:
                    self.send(Message(
                        sender=self.process_id, recipient=other, protocol="pingpong",
                        kind="PING", payload=self.hops,
                    ))

    def on_message(self, message: Message) -> None:
        remaining = int(message.payload)
        self.received.append(message.sender)
        if remaining > 0:
            for other in self.all_ids:
                if other != self.process_id:
                    self.send(Message(
                        sender=self.process_id, recipient=other, protocol="pingpong",
                        kind="PING", payload=remaining - 1,
                    ))
        if len(self.received) >= 2:
            self._decided = True

    def has_decided(self) -> bool:
        return self._decided

    def decision(self):
        return len(self.received)


class NeverDecidesAsyncProcess(AsyncProcess):
    """Sends nothing and never decides (used to exercise quiescence detection)."""

    def on_start(self) -> None:
        pass

    def on_message(self, message: Message) -> None:
        pass

    def has_decided(self) -> bool:
        return False

    def decision(self):
        return None


class TestSynchronousRuntime:
    def test_gossip_completes_in_one_round_for_complete_graph(self):
        ids = (0, 1, 2, 3)
        processes = {pid: GossipSyncProcess(pid, ids) for pid in ids}
        result = SynchronousRuntime(processes).run()
        assert result.rounds_executed == 1
        assert all(decision == frozenset(ids) for decision in result.decisions.values())

    def test_messages_counted(self):
        ids = (0, 1, 2)
        processes = {pid: GossipSyncProcess(pid, ids) for pid in ids}
        result = SynchronousRuntime(processes).run()
        assert result.traffic.messages_sent == 6

    def test_round_budget_enforced(self):
        processes = {0: SilentSyncProcess(0), 1: SilentSyncProcess(1)}
        with pytest.raises(TerminationError):
            SynchronousRuntime(processes, max_rounds=3).run()

    def test_honest_subset_only_needs_to_decide(self):
        # The silent third process never decides, but only (0, 1) are honest,
        # so the run completes as soon as they have gossiped with each other.
        processes = {
            0: GossipSyncProcess(0, (0, 1)),
            1: GossipSyncProcess(1, (0, 1)),
            2: SilentSyncProcess(2),
        }
        result = SynchronousRuntime(processes, honest_ids=(0, 1)).run()
        assert set(result.decisions) == {0, 1}

    def test_mismatched_process_id_rejected(self):
        with pytest.raises(ConfigurationError):
            SynchronousRuntime({0: GossipSyncProcess(1, (0, 1)), 1: GossipSyncProcess(1, (0, 1))})

    def test_unknown_honest_id_rejected(self):
        ids = (0, 1)
        processes = {pid: GossipSyncProcess(pid, ids) for pid in ids}
        with pytest.raises(ConfigurationError):
            SynchronousRuntime(processes, honest_ids=(0, 5))

    def test_needs_at_least_two_processes(self):
        with pytest.raises(ConfigurationError):
            SynchronousRuntime({0: SilentSyncProcess(0)})

    def test_undeliverable_messages_counted_as_dropped(self):
        class MisaddressingProcess(GossipSyncProcess):
            """Gossips normally but also sends to itself and to a ghost id."""

            def outgoing(self, round_index: int) -> list[Message]:
                messages = super().outgoing(round_index)
                for bad_recipient in (self.process_id, 99):
                    messages.append(Message(
                        sender=self.process_id, recipient=bad_recipient,
                        protocol="gossip", kind="KNOWN",
                        payload=frozenset(self.known), round_index=round_index,
                    ))
                return messages

        ids = (0, 1, 2)
        processes = {pid: MisaddressingProcess(pid, ids) for pid in ids}
        result = SynchronousRuntime(processes).run()
        # One round: 6 real messages delivered, 6 undeliverable ones dropped.
        assert result.rounds_executed == 1
        assert result.traffic.messages_sent == 6
        assert result.traffic.messages_dropped == 6
        assert all(decision == frozenset(ids) for decision in result.decisions.values())

    def test_clean_run_reports_zero_dropped(self):
        ids = (0, 1, 2)
        processes = {pid: GossipSyncProcess(pid, ids) for pid in ids}
        result = SynchronousRuntime(processes).run()
        assert result.traffic.messages_dropped == 0


class TestAsynchronousRuntime:
    def test_ping_pong_terminates(self):
        ids = (0, 1, 2)
        processes = {pid: PingPongAsyncProcess(pid, ids) for pid in ids}
        result = AsynchronousRuntime(processes, scheduler=RoundRobinScheduler()).run()
        assert result.deliveries > 0
        assert all(count >= 2 for count in result.decisions.values())

    def test_quiescence_with_undecided_process_raises(self):
        processes = {0: NeverDecidesAsyncProcess(0), 1: NeverDecidesAsyncProcess(1)}
        with pytest.raises(TerminationError):
            AsynchronousRuntime(processes).run()

    def test_delivery_budget_enforced(self):
        class Chatter(AsyncProcess):
            def on_start(self):
                self.send(Message(sender=self.process_id, recipient=1 - self.process_id,
                                  protocol="chat", kind="X", payload=None))

            def on_message(self, message):
                self.send(Message(sender=self.process_id, recipient=message.sender,
                                  protocol="chat", kind="X", payload=None))

            def has_decided(self):
                return False

            def decision(self):
                return None

        processes = {0: Chatter(0), 1: Chatter(1)}
        with pytest.raises(TerminationError):
            AsynchronousRuntime(processes, max_deliveries=50).run()

    def test_honest_subset_only(self):
        ids = (0, 1, 2)
        processes = {
            0: PingPongAsyncProcess(0, ids),
            1: PingPongAsyncProcess(1, ids),
            2: NeverDecidesAsyncProcess(2),
        }
        result = AsynchronousRuntime(processes, honest_ids=(0, 1), scheduler=RoundRobinScheduler()).run()
        assert set(result.decisions) == {0, 1}

    def test_mismatched_process_id_rejected(self):
        with pytest.raises(ConfigurationError):
            AsynchronousRuntime({0: NeverDecidesAsyncProcess(3), 1: NeverDecidesAsyncProcess(1)})

    def test_undeliverable_messages_counted_as_dropped(self):
        class MisaddressingAsyncProcess(PingPongAsyncProcess):
            """Ping-pongs normally but also misaddresses one message on start."""

            def on_start(self) -> None:
                super().on_start()
                self.send(Message(sender=self.process_id, recipient=99,
                                  protocol="pingpong", kind="PING", payload=0))
                self.send(Message(sender=self.process_id, recipient=self.process_id,
                                  protocol="pingpong", kind="PING", payload=0))

        ids = (0, 1, 2)
        processes = {pid: MisaddressingAsyncProcess(pid, ids) for pid in ids}
        result = AsynchronousRuntime(processes, scheduler=RoundRobinScheduler()).run()
        # Two misaddressed messages per process were refused by the runtime.
        assert result.traffic.messages_dropped == 2 * len(ids)
        assert all(count >= 2 for count in result.decisions.values())
