"""HTTP/1.1 conformance: keep-alive sessions, timeouts, request framing.

The serving fast path (ROADMAP item 2) replaced the one-request-per-socket
``Connection: close`` model with real HTTP/1.1 persistence.  This suite
pins the wire-level contract:

* N sequential requests reuse **one** socket (verified by socket object
  identity on a ``http.client.HTTPConnection``, which never reconnects
  silently unless the old socket died);
* the idle timeout closes a quiet connection, and ``Connection: close`` /
  HTTP/1.0 opt out of persistence;
* 304 revalidation and chunked NDJSON streams hand the socket back for the
  next request (self-delimiting framing);
* malformed framing — negative or garbage ``Content-Length``,
  ``Transfer-Encoding`` request bodies — answers 400, not a 500, and closes;
* ETags are stable across reconnects and roll exactly on a ``put_rows``
  generation bump.

Raw sockets are used where connection *lifetime* is the assertion (idle
timeout, opt-out, framing errors) because ``http.client`` transparently
reopens dead connections; ``http.client`` is used where request *content*
is the assertion.
"""

from __future__ import annotations

import asyncio
import contextlib
import http.client
import json
import socket
import threading

from repro.engine import Campaign, CampaignSession
from repro.server import CampaignService, serve

KEEPALIVE_REQUESTS = 120  # acceptance floor is 100 sequential requests


def _declaration(trials: int = 3, name: str = "ka", base_seed: int = 7) -> dict:
    return {
        "name": name,
        "grid": {
            "protocols": ["exact"],
            "dimensions": [1],
            "fault_bounds": [1],
            "repeats": trials,
            "base_seed": base_seed,
        },
    }


def _precache(store_path, declaration: dict) -> None:
    specs = Campaign.from_payload(declaration).specs
    session = CampaignSession(list(specs), store=store_path)
    assert len(list(session.rows())) == len(specs)


class _Server:
    """Run ``serve()`` on an ephemeral port in a background thread."""

    def __init__(self, service: CampaignService, idle_timeout: float = 30.0) -> None:
        self.service = service
        self.idle_timeout = idle_timeout
        self.port: int | None = None
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._ready.wait(15), "server did not come up"

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        task = asyncio.create_task(
            serve(
                self.service,
                host="127.0.0.1",
                port=0,
                ready=self._on_ready,
                idle_timeout=self.idle_timeout,
            )
        )
        await self._stop.wait()
        task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await task

    def _on_ready(self, _host: str, port: int) -> None:
        self.port = port
        self._ready.set()

    def close(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(30)


@contextlib.contextmanager
def _serving(store_path, idle_timeout: float = 30.0, **kwargs):
    server = _Server(CampaignService(store_path, **kwargs), idle_timeout=idle_timeout)
    try:
        yield server
    finally:
        server.close()


def _get(conn: http.client.HTTPConnection, path: str, headers=None):
    """One GET on a persistent connection: (status, headers-dict, body-bytes)."""
    conn.request("GET", path, headers=headers or {})
    response = conn.getresponse()
    body = response.read()
    return response.status, {k.lower(): v for k, v in response.getheaders()}, body


def _raw_exchange(port: int, payload: bytes, timeout: float = 10.0) -> bytes:
    """Send raw bytes, read until the server closes; returns everything read."""
    with socket.create_connection(("127.0.0.1", port), timeout=timeout) as sock:
        sock.sendall(payload)
        chunks = []
        while True:
            data = sock.recv(65536)
            if not data:
                return b"".join(chunks)
            chunks.append(data)


class TestKeepAlive:
    def test_sequential_requests_reuse_one_socket(self, tmp_path):
        store_path = tmp_path / "store.db"
        _precache(store_path, _declaration(3))
        with _serving(store_path) as server:
            conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
            try:
                status, headers, _ = _get(conn, "/healthz")
                assert status == 200
                assert headers["connection"] == "keep-alive"
                sock = conn.sock
                assert sock is not None
                for _ in range(KEEPALIVE_REQUESTS - 1):
                    status, headers, _ = _get(conn, "/store/stats")
                    assert status == 200
                    assert headers["connection"] == "keep-alive"
                # http.client only reconnects after observing a closed socket;
                # identity proves every request rode the original connection.
                assert conn.sock is sock
            finally:
                conn.close()

    def test_export_streams_then_socket_is_reusable(self, tmp_path):
        """Chunked NDJSON is self-delimiting: a finished stream keeps the
        connection alive, and its bytes match the in-process CLI export."""
        store_path = tmp_path / "store.db"
        declaration = _declaration(4)
        _precache(store_path, declaration)
        with _serving(store_path) as server:
            conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
            try:
                status, headers, body = _get(conn, "/store/export")
                assert status == 200
                assert headers["transfer-encoding"] == "chunked"
                assert headers["connection"] == "keep-alive"
                sock = conn.sock
                expected = "".join(
                    line + "\n" for line in server.service.export_lines()
                ).encode("utf-8")
                assert body == expected and len(body.splitlines()) == 4

                status, _, payload = _get(conn, "/healthz")
                assert status == 200 and json.loads(payload)["status"] == "ok"
                assert conn.sock is sock
            finally:
                conn.close()

    def test_revalidation_304_interleaves_with_keep_alive(self, tmp_path):
        store_path = tmp_path / "store.db"
        _precache(store_path, _declaration(3))
        with _serving(store_path) as server:
            conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
            try:
                status, headers, _ = _get(conn, "/store/query?protocol=exact")
                assert status == 200
                etag = headers["etag"]
                sock = conn.sock
                for _ in range(5):
                    status, headers, body = _get(
                        conn, "/store/query?protocol=exact", {"If-None-Match": etag}
                    )
                    assert status == 304 and body == b""
                    assert headers["etag"] == etag
                    assert headers["connection"] == "keep-alive"
                status, _, _ = _get(conn, "/store/aggregate?group_by=protocol")
                assert status == 200
                assert conn.sock is sock
            finally:
                conn.close()

    def test_error_responses_keep_the_connection_alive(self, tmp_path):
        """Dispatch-level errors (404/400) leave framing intact — no close."""
        with _serving(tmp_path / "store.db") as server:
            conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
            try:
                status, headers, body = _get(conn, "/no/such/resource")
                assert status == 404
                assert headers["connection"] == "keep-alive"
                assert "no resource" in json.loads(body)["error"]
                sock = conn.sock
                status, _, _ = _get(conn, "/store/query?dimension=abc")
                assert status == 400
                status, _, _ = _get(conn, "/healthz")
                assert status == 200
                assert conn.sock is sock
            finally:
                conn.close()

    def test_connection_close_header_opts_out(self, tmp_path):
        with _serving(tmp_path / "store.db") as server:
            raw = _raw_exchange(
                server.port,
                b"GET /healthz HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n",
            )
            head = raw.split(b"\r\n\r\n", 1)[0].lower()
            assert raw.startswith(b"HTTP/1.1 200")
            assert b"connection: close" in head
            # _raw_exchange returning at all proves the server closed the
            # socket after the response instead of waiting for more requests.

    def test_http_10_defaults_to_close(self, tmp_path):
        with _serving(tmp_path / "store.db") as server:
            raw = _raw_exchange(server.port, b"GET /healthz HTTP/1.0\r\nhost: x\r\n\r\n")
            assert raw.startswith(b"HTTP/1.1 200")
            assert b"connection: close" in raw.split(b"\r\n\r\n", 1)[0].lower()

    def test_idle_timeout_closes_a_quiet_connection(self, tmp_path):
        with _serving(tmp_path / "store.db", idle_timeout=0.3) as server:
            with socket.create_connection(("127.0.0.1", server.port), timeout=10) as sock:
                sock.sendall(b"GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n")
                first = sock.recv(65536)
                assert first.startswith(b"HTTP/1.1 200")
                # Stay quiet past the idle timeout: the server must close
                # (EOF), not hold the socket open indefinitely.
                sock.settimeout(10)
                assert sock.recv(1) == b""

    def test_etag_stable_across_reconnects_and_rolls_on_generation_bump(self, tmp_path):
        store_path = tmp_path / "store.db"
        _precache(store_path, _declaration(3))
        with _serving(store_path) as server:
            def fresh_etag() -> str:
                conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
                try:
                    status, headers, _ = _get(conn, "/store/query?protocol=exact")
                    assert status == 200
                    return headers["etag"]
                finally:
                    conn.close()

            first = fresh_etag()
            assert fresh_etag() == first  # brand-new socket, same tag

            # A put_rows commit bumps the store generation: the old tag must
            # stop validating and the new tag must differ.
            _precache(store_path, _declaration(4, base_seed=11))
            rolled = fresh_etag()
            assert rolled != first
            conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
            try:
                status, headers, _ = _get(
                    conn, "/store/query?protocol=exact", {"If-None-Match": first}
                )
                assert status == 200 and headers["etag"] == rolled
                status, _, body = _get(
                    conn, "/store/query?protocol=exact", {"If-None-Match": rolled}
                )
                assert status == 304 and body == b""
            finally:
                conn.close()


class TestRequestFraming:
    def test_negative_content_length_is_a_400(self, tmp_path):
        with _serving(tmp_path / "store.db") as server:
            raw = _raw_exchange(
                server.port,
                b"POST /campaigns HTTP/1.1\r\nhost: x\r\ncontent-length: -5\r\n\r\n",
            )
            assert raw.startswith(b"HTTP/1.1 400")
            assert b"non-negative" in raw

    def test_garbage_content_length_is_a_400(self, tmp_path):
        with _serving(tmp_path / "store.db") as server:
            raw = _raw_exchange(
                server.port,
                b"POST /campaigns HTTP/1.1\r\nhost: x\r\ncontent-length: banana\r\n\r\n",
            )
            assert raw.startswith(b"HTTP/1.1 400")
            assert b"Content-Length" in raw

    def test_transfer_encoding_request_body_is_rejected(self, tmp_path):
        with _serving(tmp_path / "store.db") as server:
            raw = _raw_exchange(
                server.port,
                b"POST /campaigns HTTP/1.1\r\nhost: x\r\n"
                b"transfer-encoding: chunked\r\n\r\n"
                b"5\r\nhello\r\n0\r\n\r\n",
            )
            assert raw.startswith(b"HTTP/1.1 400")
            assert b"Transfer-Encoding" in raw

    def test_malformed_request_line_is_a_400(self, tmp_path):
        with _serving(tmp_path / "store.db") as server:
            raw = _raw_exchange(server.port, b"NONSENSE\r\n\r\n")
            assert raw.startswith(b"HTTP/1.1 400")
