"""Serving layer: bounded submission, NDJSON streaming, ETag revalidation.

Two levels, matching the package split:

* :class:`~repro.server.service.CampaignService` tests exercise the
  transport-independent core without sockets — validation, the in-flight
  bound, run addressing, cancellation, and content-hash ETags.
* HTTP tests run a real asyncio server on an ephemeral port and speak to it
  with ``urllib`` — wire-level status codes, ``If-None-Match`` → 304,
  chunked NDJSON streams, and the live-streaming contract (rows of a mixed
  hit/miss campaign arrive **before** the campaign finishes).

Streaming determinism trick: the campaign's cache-hit prefix streams
immediately, while the suffix keys are claimed by a "ghost" owner that never
commits — the session provably stays in ``running`` for its whole
``claim_wait_timeout``, giving the tests a wide, deterministic window to
observe rows before completion.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.engine import Campaign, CampaignSession, execute_specs, strip_timing
from repro.server import (
    CampaignService,
    ServiceBusy,
    ServiceError,
    UnknownRun,
    serve,
)
from repro.store.backend import SqliteResultStore
from repro.store.keys import trial_key
from repro.store.query import TrialFilter

GHOST = "ghost-session"


def _declaration(trials: int = 6, name: str = "srv", base_seed: int = 7) -> dict:
    """A grid declaration expanding to exactly ``trials`` specs."""
    return {
        "name": name,
        "grid": {
            "protocols": ["exact"],
            "dimensions": [1],
            "fault_bounds": [1],
            "repeats": trials,
            "base_seed": base_seed,
        },
    }


def _specs_of(declaration: dict) -> tuple:
    return Campaign.from_payload(declaration).specs


def _expected_rows(declaration: dict) -> list[str]:
    return strip_timing(result.to_row() for result in execute_specs(_specs_of(declaration)))


def _strip_lines(lines: list[str]) -> list[str]:
    return strip_timing(json.loads(line) for line in lines)


def _precache(store_path, specs) -> None:
    """Commit ``specs`` to the store so a later run serves them as hits."""
    session = CampaignSession(list(specs), store=store_path)
    assert len(list(session.rows())) == len(specs)


def _ghost_claim(store_path, specs) -> list[str]:
    """Claim the keys of ``specs`` under an owner that will never commit."""
    keys = [trial_key(spec) for spec in specs]
    with SqliteResultStore(store_path) as store:
        granted = store.claim_keys(keys, GHOST)
    assert granted == set(keys)
    return keys


def _release_ghost(store_path, keys) -> None:
    with SqliteResultStore(store_path) as store:
        store.release_claims(keys, GHOST)


# ---------------------------------------------------------------------------
# Service level (no sockets)
# ---------------------------------------------------------------------------


class TestCampaignService:
    def test_submit_runs_streams_rows_and_reports_status(self, tmp_path):
        declaration = _declaration(5)
        service = CampaignService(tmp_path / "store.db", max_active=1)
        try:
            handle = service.submit({"campaign": declaration}, api_key="alice")
            assert handle.finished.wait(60)
            lines, done = handle.snapshot()
            assert done and len(lines) == 5
            assert _strip_lines(lines) == _expected_rows(declaration)
            status = handle.status_dict()
            assert status["state"] == "finished"
            assert status["emitted"] == status["ok"] == 5
            assert status["api_key"] == "alice"
            assert status["run_id"] == handle.run_id
        finally:
            service.shutdown()

    def test_snapshot_offset_replays_only_the_tail(self, tmp_path):
        service = CampaignService(tmp_path / "store.db")
        try:
            handle = service.submit({"campaign": _declaration(4)})
            assert handle.finished.wait(60)
            head, _ = handle.snapshot()
            tail, done = handle.snapshot(3)
            assert done and tail == head[3:]
        finally:
            service.shutdown()

    def test_submit_rejects_malformed_payloads(self, tmp_path):
        service = CampaignService(tmp_path / "store.db")
        try:
            with pytest.raises(ServiceError, match="JSON object"):
                service.submit(["not", "a", "mapping"])  # type: ignore[arg-type]
            with pytest.raises(ServiceError, match="'campaign'"):
                service.submit({"workers": 2})
            with pytest.raises(ServiceError, match="grid' or 'trials"):
                service.submit({"campaign": {}})
            with pytest.raises(ServiceError, match="workers"):
                service.submit({"campaign": _declaration(1), "workers": 0})
            with pytest.raises(ServiceError, match="engine"):
                service.submit({"campaign": _declaration(1), "engine": "quantum"})
            with pytest.raises(ServiceError, match="resume"):
                service.submit({"campaign": _declaration(1), "resume": "yes"})
        finally:
            service.shutdown()

    def test_unknown_run_id_raises(self, tmp_path):
        service = CampaignService(tmp_path / "store.db")
        try:
            with pytest.raises(UnknownRun):
                service.status("deadbeef00000000")
            with pytest.raises(UnknownRun):
                service.cancel("deadbeef00000000")
        finally:
            service.shutdown()

    def test_in_flight_bound_refuses_then_recovers(self, tmp_path):
        """max_active + max_pending caps submissions; finishing a run frees a slot."""
        store_path = tmp_path / "store.db"
        declaration = _declaration(4, name="stalled")
        ghost_keys = _ghost_claim(store_path, _specs_of(declaration))
        service = CampaignService(
            store_path, max_active=1, max_pending=0, claim_wait_timeout=30.0
        )
        try:
            stalled = service.submit({"campaign": declaration})
            with pytest.raises(ServiceBusy, match="in flight"):
                service.submit({"campaign": _declaration(2, name="refused")})
            service.cancel(stalled.run_id)
            assert stalled.finished.wait(30)
            assert stalled.session.state == "cancelled"
            accepted = service.submit({"campaign": _declaration(2, name="after", base_seed=9)})
            assert accepted.finished.wait(60)
            assert accepted.session.state == "finished"
        finally:
            _release_ghost(store_path, ghost_keys)
            service.shutdown()

    def test_cancel_interrupts_a_deferred_wait_promptly(self, tmp_path):
        """Cancellation, not the 60s claim timeout, must end a stalled run."""
        store_path = tmp_path / "store.db"
        declaration = _declaration(3, name="blocked")
        ghost_keys = _ghost_claim(store_path, _specs_of(declaration))
        service = CampaignService(store_path, claim_wait_timeout=60.0)
        try:
            handle = service.submit({"campaign": declaration})
            deadline = time.monotonic() + 10
            while handle.session.state == "pending" and time.monotonic() < deadline:
                time.sleep(0.01)
            started = time.monotonic()
            service.cancel(handle.run_id)
            assert handle.finished.wait(15)
            assert time.monotonic() - started < 15
            assert handle.session.state == "cancelled"
        finally:
            _release_ghost(store_path, ghost_keys)
            service.shutdown()

    def test_rows_stream_before_completion(self, tmp_path):
        """Cached prefix rows are observable while the suffix is still deferred."""
        store_path = tmp_path / "store.db"
        declaration = _declaration(6, name="mixed")
        specs = _specs_of(declaration)
        _precache(store_path, specs[:3])
        ghost_keys = _ghost_claim(store_path, specs[3:])
        service = CampaignService(store_path, claim_wait_timeout=3.0)
        try:
            handle = service.submit({"campaign": declaration})
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                lines, done = handle.snapshot()
                if len(lines) >= 3:
                    break
                time.sleep(0.01)
            lines, done = handle.snapshot()
            assert len(lines) >= 3
            assert not done, "prefix rows must arrive before the campaign finishes"
            assert handle.session.state == "running"
            assert handle.finished.wait(60)
            lines, done = handle.snapshot()
            assert done and len(lines) == 6
            assert _strip_lines(lines) == _expected_rows(declaration)
        finally:
            _release_ghost(store_path, ghost_keys)
            service.shutdown()

    def test_etag_tracks_store_content(self, tmp_path):
        store_path = tmp_path / "store.db"
        service = CampaignService(store_path)
        try:
            empty = service.etag_for()
            assert empty.startswith('"') and empty.endswith('"')
            assert service.etag_for() == empty
            handle = service.submit({"campaign": _declaration(3)})
            assert handle.finished.wait(60)
            warm = service.etag_for()
            assert warm != empty
            assert service.etag_for() == warm
            assert service.etag_for({"protocol": "exact"}) == service.etag_for(
                {"protocol": "exact"}
            )
            assert service.etag_for({"protocol": "fpa"}) == empty  # both empty sets
        finally:
            service.shutdown()

    def test_etag_revalidation_skips_row_scan_when_generation_unchanged(
        self, tmp_path, monkeypatch
    ):
        """Acceptance: warm revalidation is O(1) — the cached path must not
        touch ``iter_entries``/``iter_keys`` at all, just the generation."""
        service = CampaignService(tmp_path / "store.db")
        try:
            handle = service.submit({"campaign": _declaration(3)})
            assert handle.finished.wait(60)
            warm = service.etag_for()
            filtered = service.etag_for({"protocol": "exact"})

            def _no_scan(self, *args, **kwargs):
                raise AssertionError("cached ETag path must not scan rows")

            monkeypatch.setattr(SqliteResultStore, "iter_entries", _no_scan)
            monkeypatch.setattr(SqliteResultStore, "iter_keys", _no_scan)
            assert service.etag_for() == warm
            assert service.etag_for({"protocol": "exact"}) == filtered
        finally:
            service.shutdown()

    def test_response_cache_serves_repeats_and_rolls_on_generation_bump(
        self, tmp_path, monkeypatch
    ):
        """Query/aggregate bodies come from the generation-keyed LRU on
        repeats, and a ``put_rows`` commit makes the stale entries
        unreachable (no explicit invalidation needed)."""
        store_path = tmp_path / "store.db"
        _precache(store_path, _specs_of(_declaration(3)))
        service = CampaignService(store_path)
        try:
            first = service.query_rows(TrialFilter(protocol="exact"))
            groups = service.aggregate(("protocol",), TrialFilter())
            assert len(first) == 3 and groups[0]["trials"] == 3

            import repro.server.service as service_module

            def _no_recompute(*args, **kwargs):
                raise AssertionError("repeat read must be served from cache")

            monkeypatch.setattr(service_module, "query_store", _no_recompute)
            monkeypatch.setattr(service_module, "aggregate_store", _no_recompute)
            assert service.query_rows(TrialFilter(protocol="exact")) == first
            assert service.aggregate(("protocol",), TrialFilter()) == groups
            monkeypatch.undo()

            # New rows bump the store generation: the next read recomputes
            # against live data instead of resurrecting the cached body.
            _precache(store_path, _specs_of(_declaration(5, base_seed=11)))
            assert len(service.query_rows(TrialFilter(protocol="exact"))) == 8
            assert service.aggregate(("protocol",), TrialFilter())[0]["trials"] == 8
        finally:
            service.shutdown()

    def test_export_batch_paginates_in_key_order(self, tmp_path):
        service = CampaignService(tmp_path / "store.db")
        try:
            handle = service.submit({"campaign": _declaration(5)})
            assert handle.finished.wait(60)
            paged: list[str] = []
            after = None
            pages = 0
            while True:
                lines, after = service.export_batch(after_key=after, batch_size=2)
                if not lines:
                    break
                assert len(lines) <= 2
                paged.extend(lines)
                pages += 1
            assert pages == 3  # 2 + 2 + 1
            # Page-by-page reassembly matches the one-shot key-ordered export.
            assert paged == service.export_lines()
        finally:
            service.shutdown()

    def test_store_reads_query_aggregate_export(self, tmp_path):
        service = CampaignService(tmp_path / "store.db")
        try:
            handle = service.submit({"campaign": _declaration(4)})
            assert handle.finished.wait(60)
            rows = service.query_rows(TrialFilter(protocol="exact"))
            assert len(rows) == 4 and all(row["protocol"] == "exact" for row in rows)
            assert service.query_rows(TrialFilter(protocol="exact"), limit=2)
            groups = service.aggregate(("protocol",), TrialFilter())
            assert len(groups) == 1 and groups[0]["trials"] == 4
            lines = service.export_lines()
            assert len(lines) == 4
            for line in lines:
                assert line == json.dumps(json.loads(line), sort_keys=True)
            stats = service.store_stats()
            assert stats["trials"] == 4
            assert stats["claims_live"] == 0
            assert service.store_claims() == []
        finally:
            service.shutdown()

    def test_metrics_accounts_per_key_and_run_states(self, tmp_path):
        service = CampaignService(tmp_path / "store.db")
        try:
            service.record_request("alice", campaigns=1)
            service.record_request("alice")
            service.record_rows("alice", 7)
            service.record_request("bob")
            handle = service.submit({"campaign": _declaration(2)}, api_key="alice")
            assert handle.finished.wait(60)
            metrics = service.metrics()
            assert metrics["api_keys"]["alice"] == {
                "requests": 2,
                "campaigns": 1,
                "rows_streamed": 7,
            }
            assert metrics["api_keys"]["bob"]["requests"] == 1
            assert metrics["runs"] == {"finished": 1}
        finally:
            service.shutdown()


# ---------------------------------------------------------------------------
# HTTP level (real asyncio server on an ephemeral port)
# ---------------------------------------------------------------------------


class _Server:
    """Run ``serve()`` on an ephemeral port in a background thread."""

    def __init__(self, service: CampaignService) -> None:
        self.service = service
        self.port: int | None = None
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._ready.wait(15), "server did not come up"

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        task = asyncio.create_task(
            serve(self.service, host="127.0.0.1", port=0, ready=self._on_ready)
        )
        await self._stop.wait()
        task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await task

    def _on_ready(self, _host: str, port: int) -> None:
        self.port = port
        self._ready.set()

    def url(self, path: str) -> str:
        return f"http://127.0.0.1:{self.port}{path}"

    def close(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(30)


@contextlib.contextmanager
def _serving(store_path, **kwargs):
    server = _Server(CampaignService(store_path, **kwargs))
    try:
        yield server
    finally:
        server.close()


def _http(method: str, url: str, payload=None, headers=None):
    """Returns (status, headers, body-bytes); HTTP errors are data, not raises."""
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(url, data=data, method=method, headers=headers or {})
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        with error:
            return error.code, dict(error.headers), error.read()


def _get_json(url: str, headers=None):
    status, response_headers, body = _http("GET", url, headers=headers)
    return status, response_headers, json.loads(body) if body else None


class TestHttpServer:
    def test_healthz_metrics_and_store_resources(self, tmp_path):
        store_path = tmp_path / "store.db"
        _precache(store_path, _specs_of(_declaration(3)))
        with _serving(store_path) as server:
            status, _, payload = _get_json(server.url("/healthz"))
            assert status == 200 and payload["status"] == "ok"
            assert payload["max_active"] == 2

            status, _, payload = _get_json(server.url("/store/stats"))
            assert status == 200 and payload["trials"] == 3
            assert payload["claims_live"] == 0

            status, _, payload = _get_json(server.url("/store/claims"))
            assert status == 200 and payload == {"claims": [], "count": 0}

            status, _, payload = _get_json(
                server.url("/metrics"), headers={"X-Api-Key": "carol"}
            )
            assert status == 200 and payload["api_keys"]["carol"]["requests"] == 1

    def test_metrics_surfaces_pool_state_and_telemetry(self, tmp_path):
        with _serving(tmp_path / "store.db") as server:
            status, headers, payload = _get_json(server.url("/metrics"))
            assert status == 200
            assert headers["content-type"] == "application/json"
            for key in ("crash_recoveries", "busy_seats", "cost_model_probes"):
                assert key in payload["pool"]
            assert "repro_http_requests_total" in payload["telemetry"]

    @staticmethod
    def _scrape_counter(text: str, sample: str) -> float:
        for line in text.splitlines():
            if line.startswith(sample + " "):
                return float(line.rpartition(" ")[2])
        raise AssertionError(f"{sample} not found in exposition")

    def test_metrics_prometheus_variant(self, tmp_path):
        with _serving(tmp_path / "store.db") as server:
            status, headers, body = _http(
                "GET", server.url("/metrics?format=prometheus")
            )
            assert status == 200
            assert headers["content-type"].startswith("text/plain; version=0.0.4")
            text = body.decode("utf-8")
            assert "# TYPE repro_http_requests_total counter" in text
            assert "# TYPE repro_http_request_seconds histogram" in text
            first = self._scrape_counter(
                text, 'repro_http_requests_total{route="/metrics"}'
            )

            # Accept-header negotiation reaches the same exposition, and the
            # request counter is monotonic across the two scrapes.
            status, headers, body = _http(
                "GET",
                server.url("/metrics"),
                headers={"Accept": "application/openmetrics-text"},
            )
            assert status == 200
            assert headers["content-type"].startswith("text/plain; version=0.0.4")
            second = self._scrape_counter(
                body.decode("utf-8"), 'repro_http_requests_total{route="/metrics"}'
            )
            assert second >= first + 1

            # An explicit JSON ask still wins over the Accept header.
            status, headers, _ = _http(
                "GET",
                server.url("/metrics?format=json"),
                headers={"Accept": "text/plain"},
            )
            assert status == 200
            assert headers["content-type"] == "application/json"

    def test_query_with_etag_revalidation(self, tmp_path):
        store_path = tmp_path / "store.db"
        declaration = _declaration(3)
        _precache(store_path, _specs_of(declaration))
        with _serving(store_path) as server:
            url = server.url("/store/query?protocol=exact")
            status, headers, payload = _get_json(url)
            assert status == 200 and payload["count"] == 3
            etag = headers["etag"]

            status, headers, body = _http("GET", url, headers={"If-None-Match": etag})
            assert status == 304 and body == b""
            assert headers["etag"] == etag

            # New commits change the matching set -> the old tag no longer
            # validates and the fresh response carries a different tag.
            _precache(store_path, _specs_of(_declaration(5, base_seed=11)))
            status, headers, payload = _get_json(url, headers={"If-None-Match": etag})
            assert status == 200 and payload["count"] == 8
            assert headers["etag"] != etag

    def test_aggregate_and_export_endpoints(self, tmp_path):
        store_path = tmp_path / "store.db"
        _precache(store_path, _specs_of(_declaration(4)))
        with _serving(store_path) as server:
            status, _, payload = _get_json(server.url("/store/aggregate?group_by=protocol"))
            assert status == 200
            assert payload["rows"][0]["protocol"] == "exact"
            assert payload["rows"][0]["trials"] == 4

            status, headers, body = _http("GET", server.url("/store/export"))
            assert status == 200
            assert headers["content-type"] == "application/x-ndjson"
            lines = body.decode("utf-8").splitlines()
            assert len(lines) == 4
            assert all(json.loads(line)["spec_protocol"] == "exact" for line in lines)

            status, _, body = _http(
                "GET", server.url("/store/export"), headers={"If-None-Match": headers["etag"]}
            )
            assert status == 304 and body == b""

    def test_submit_then_stream_rows_arrive_before_completion(self, tmp_path):
        """The acceptance path: mixed hit/miss campaign over HTTP, NDJSON rows
        observable while the run is still provably in ``running``."""
        store_path = tmp_path / "store.db"
        declaration = _declaration(6, name="over-http")
        specs = _specs_of(declaration)
        _precache(store_path, specs[:3])
        ghost_keys = _ghost_claim(store_path, specs[3:])
        try:
            with _serving(store_path, claim_wait_timeout=3.0) as server:
                status, _, accepted = _get_json_from_post(
                    server.url("/campaigns"), {"campaign": declaration}
                )
                assert status == 202
                assert accepted["trials"] == 6
                run_id = accepted["run_id"]
                assert accepted["rows_url"] == f"/campaigns/{run_id}/rows"

                stream = urllib.request.urlopen(
                    server.url(accepted["rows_url"]), timeout=60
                )
                with stream:
                    assert stream.headers["x-run-id"] == run_id
                    prefix = [stream.readline() for _ in range(3)]
                    assert all(line.endswith(b"\n") for line in prefix)

                    # The suffix is ghost-deferred for ~3s: the run cannot
                    # have finished yet, rows demonstrably stream early.
                    status, _, snapshot = _get_json(server.url(accepted["status_url"]))
                    assert status == 200
                    assert snapshot["state"] == "running"
                    assert snapshot["rows_available"] >= 3

                    remainder = stream.read().decode("utf-8").splitlines()
                all_lines = [line.decode("utf-8").rstrip("\n") for line in prefix] + remainder
                assert len(all_lines) == 6
                assert _strip_lines(all_lines) == _expected_rows(declaration)

                status, _, final = _get_json(server.url(accepted["status_url"]))
                assert status == 200 and final["state"] == "finished"
                assert final["cache_hits"] == 3
        finally:
            _release_ghost(store_path, ghost_keys)

    def test_busy_and_cancel_over_http(self, tmp_path):
        store_path = tmp_path / "store.db"
        declaration = _declaration(3, name="stalled")
        ghost_keys = _ghost_claim(store_path, _specs_of(declaration))
        try:
            with _serving(
                store_path, max_active=1, max_pending=0, claim_wait_timeout=60.0
            ) as server:
                status, _, accepted = _get_json_from_post(
                    server.url("/campaigns"), {"campaign": declaration}
                )
                assert status == 202

                status, _, refused = _get_json_from_post(
                    server.url("/campaigns"), {"campaign": _declaration(2, name="extra")}
                )
                assert status == 429 and "in flight" in refused["error"]

                status, _, cancelled = _get_json_from_post(
                    server.url(accepted["cancel_url"]), {}
                )
                assert status == 200
                deadline = time.monotonic() + 15
                state = cancelled["state"]
                while state != "cancelled" and time.monotonic() < deadline:
                    time.sleep(0.05)
                    _, _, snapshot = _get_json(server.url(accepted["status_url"]))
                    state = snapshot["state"]
                assert state == "cancelled"

                status, _, listing = _get_json(server.url("/campaigns"))
                assert status == 200 and len(listing["runs"]) == 1
                assert listing["runs"][0]["state"] == "cancelled"
        finally:
            _release_ghost(store_path, ghost_keys)

    def test_error_statuses_are_json(self, tmp_path):
        with _serving(tmp_path / "store.db") as server:
            status, _, payload = _get_json(server.url("/campaigns/nope"))
            assert status == 404 and "unknown run_id" in payload["error"]

            status, _, payload = _get_json(server.url("/no/such/resource"))
            assert status == 404 and "no resource" in payload["error"]

            status, _, payload = _get_json_from_post(
                server.url("/campaigns"), {"campaign": {"grid": {"bogus_axis": [1]}}}
            )
            assert status == 400 and "bogus_axis" in payload["error"]

            status, _, body = _http(
                "POST",
                server.url("/campaigns"),
                headers={"Content-Type": "application/json"},
            )
            assert status == 400

            status, _, payload = _get_json(server.url("/store/query?dimension=abc"))
            assert status == 400 and "dimension" in payload["error"]


def _get_json_from_post(url: str, payload):
    status, headers, body = _http(
        "POST", url, payload=payload, headers={"Content-Type": "application/json"}
    )
    return status, headers, json.loads(body) if body else None
