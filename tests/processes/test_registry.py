"""Unit tests for repro.processes.registry and repro.core.conditions.SystemConfiguration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.conditions import SystemConfiguration
from repro.exceptions import ConfigurationError
from repro.processes.registry import ProcessRegistry


def make_registry(fault_ids=(3,)):
    configuration = SystemConfiguration(process_count=4, dimension=2, fault_bound=1)
    inputs = {pid: np.asarray([float(pid), 1.0 - pid]) for pid in range(4)}
    return ProcessRegistry(configuration, inputs, faulty_ids=fault_ids)


class TestSystemConfiguration:
    def test_aliases_match_paper_notation(self):
        configuration = SystemConfiguration(5, 2, 1)
        assert (configuration.n, configuration.d, configuration.f) == (5, 2, 1)

    def test_single_process_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfiguration(1, 2, 0)

    def test_zero_dimension_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfiguration(4, 0, 1)

    def test_fault_bound_must_be_below_n(self):
        with pytest.raises(ConfigurationError):
            SystemConfiguration(3, 2, 3)

    def test_negative_faults_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfiguration(3, 2, -1)


class TestProcessRegistry:
    def test_ids_and_fault_classification(self):
        registry = make_registry()
        assert registry.process_ids == (0, 1, 2, 3)
        assert registry.honest_ids == (0, 1, 2)
        assert registry.is_faulty(3)
        assert not registry.is_faulty(0)

    def test_inputs_are_validated_against_dimension(self):
        configuration = SystemConfiguration(2, 3, 0)
        with pytest.raises(Exception):
            ProcessRegistry(configuration, {0: [1.0, 2.0], 1: [1.0, 2.0, 3.0]})

    def test_missing_input_rejected(self):
        configuration = SystemConfiguration(3, 2, 1)
        with pytest.raises(ConfigurationError):
            ProcessRegistry(configuration, {0: [0.0, 0.0], 1: [1.0, 1.0]})

    def test_extra_input_rejected(self):
        configuration = SystemConfiguration(2, 2, 0)
        inputs = {0: [0.0, 0.0], 1: [1.0, 1.0], 2: [2.0, 2.0]}
        with pytest.raises(ConfigurationError):
            ProcessRegistry(configuration, inputs)

    def test_too_many_faulty_rejected(self):
        configuration = SystemConfiguration(4, 2, 1)
        inputs = {pid: [0.0, 0.0] for pid in range(4)}
        with pytest.raises(ConfigurationError):
            ProcessRegistry(configuration, inputs, faulty_ids={2, 3})

    def test_unknown_faulty_id_rejected(self):
        configuration = SystemConfiguration(4, 2, 1)
        inputs = {pid: [0.0, 0.0] for pid in range(4)}
        with pytest.raises(ConfigurationError):
            ProcessRegistry(configuration, inputs, faulty_ids={9})

    def test_fewer_faulty_than_budget_is_allowed(self):
        registry = make_registry(fault_ids=())
        assert registry.honest_ids == (0, 1, 2, 3)

    def test_honest_input_multiset(self):
        registry = make_registry()
        multiset = registry.honest_input_multiset()
        assert len(multiset) == 3
        assert np.allclose(multiset[0], [0.0, 1.0])

    def test_value_bounds_cover_honest_inputs_only(self):
        configuration = SystemConfiguration(3, 1, 1)
        inputs = {0: [0.0], 1: [1.0], 2: [100.0]}
        registry = ProcessRegistry(configuration, inputs, faulty_ids={2})
        assert registry.value_bounds() == (0.0, 1.0)

    def test_input_of_returns_copyable_vector(self):
        registry = make_registry()
        vector = registry.input_of(1)
        assert vector.shape == (2,)
