"""Equivalence tests for the batched safe-area kernel against the oracle LP.

The kernel (:mod:`repro.geometry.kernel`) must agree with the literal
Section 2.2 enumeration (:func:`repro.core.safe_area.safe_area_point`) on

* emptiness — ``Gamma`` is empty for the kernel iff it is for the oracle,
* the optimal objective value — pruning removes only redundant hulls, so
  the minimum of the tie-break objective over ``Gamma`` is unchanged,
* membership — every kernel answer lies in ``Gamma`` by the oracle's own
  exponential membership check,

across randomized ``(n, f, d)`` instances including degenerate (collinear,
duplicate-point, fully collapsed) multisets.  Batched answers must match the
corresponding single-query answers bit-for-bit on the loop path and to
solver precision on the fused path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.safe_area import (
    SafeAreaCalculator,
    safe_area_contains,
    safe_area_is_empty,
    safe_area_point,
    safe_area_subset_count,
)
from repro.exceptions import EmptyIntersectionError, GeometryError
from repro.geometry.kernel import (
    GammaKernel,
    KernelStats,
    full_subset_family,
    pruned_subset_family,
    safe_area_interval_1d,
    safe_area_point_kernel,
    safe_area_points_batch,
    safe_area_points_multi,
)


def _random_instance(rng: np.random.Generator, trial: int) -> tuple[np.ndarray, int]:
    """A randomized (cloud, f) pair, degenerate every few trials."""
    dimension = int(rng.integers(1, 4))
    fault_bound = int(rng.integers(1, 3))
    point_count = (dimension + 1) * fault_bound + 1 + int(rng.integers(0, 3))
    cloud = rng.uniform(-3.0, 3.0, size=(point_count, dimension))
    if trial % 3 == 0:
        # Duplicate members (the paper works over multisets on purpose).
        cloud[1] = cloud[0]
        if point_count > 4:
            cloud[3] = cloud[2]
    if trial % 4 == 0 and dimension >= 2:
        # Collinear members: everything on one affine line.
        direction = rng.uniform(-1.0, 1.0, size=dimension)
        cloud = np.outer(cloud[:, 0], direction) + rng.uniform(-1.0, 1.0, size=dimension)
    return cloud, fault_bound


class TestSingleQueryEquivalence:
    def test_randomized_instances_match_oracle(self):
        rng = np.random.default_rng(2024)
        kernel = GammaKernel()
        for trial in range(40):
            cloud, fault_bound = _random_instance(rng, trial)
            objective = np.zeros(cloud.shape[1])
            objective[0] = 1.0
            oracle = safe_area_point(cloud, fault_bound, objective=objective)
            pruned = kernel.point(cloud, fault_bound, objective=objective, prune=True)
            unpruned = kernel.point(cloud, fault_bound, objective=objective, prune=False)
            assert (oracle is None) == (pruned is None) == (unpruned is None), (
                f"emptiness mismatch on trial {trial}: {cloud.shape}, f={fault_bound}"
            )
            if oracle is None:
                continue
            # Same optimal objective value: pruning only removes redundant hulls.
            assert float(pruned[0]) == pytest.approx(float(oracle[0]), abs=1e-6)
            assert float(unpruned[0]) == pytest.approx(float(oracle[0]), abs=1e-6)
            # Every kernel answer lies in Gamma by the oracle's own membership LP.
            assert safe_area_contains(cloud, fault_bound, pruned, tolerance=1e-5)
            assert safe_area_contains(cloud, fault_bound, unpruned, tolerance=1e-5)

    def test_empty_gamma_matches_oracle(self):
        # Theorem 1's construction: d + 1 points in R^d, f = 1.
        for dimension in (1, 2, 3):
            cloud = np.vstack([np.eye(dimension), np.zeros((1, dimension))])
            assert safe_area_point_kernel(cloud, 1) is None
            assert safe_area_point(cloud, 1) is None
            assert safe_area_is_empty(cloud, 1, engine="kernel")
            assert safe_area_is_empty(cloud, 1, engine="oracle")

    def test_fully_collapsed_multiset(self):
        cloud = np.asarray([[2.0, -3.0]] * 5)
        point = safe_area_point_kernel(cloud, 2)
        assert np.allclose(point, [2.0, -3.0], atol=1e-6)

    def test_near_coincident_cluster_survives_solver_degeneracy(self):
        # Scenario-fuzz regression: honest states late in a contraction form
        # a micro-cluster (spread ~5e-6) plus one outlier; HiGHS reports the
        # strict equality program "Unknown" in every configuration, so the
        # answer must come from the relaxed minimum-slack path instead of an
        # exception.  Gamma is non-empty (a cluster point lies in every
        # drop-one hull).
        cloud = np.asarray(
            [
                [7.96463103, 6.29389495],
                [7.16802536, 6.12459677],
                [7.16802605, 6.12460123],
                [7.16802070, 6.12460009],
            ]
        )
        for point in (safe_area_point_kernel(cloud, 1), safe_area_point(cloud, 1)):
            assert point is not None
            assert safe_area_contains(cloud, 1, point, tolerance=1e-4)

    def test_zero_faults_returns_centroid(self):
        cloud = np.asarray([[0.0, 0.0], [2.0, 0.0], [0.0, 2.0]])
        assert np.allclose(safe_area_point_kernel(cloud, 0), cloud.mean(axis=0))

    def test_edge_cases_mirror_oracle(self):
        assert safe_area_point_kernel(np.empty((0, 2)), 1) is None
        assert safe_area_point_kernel(np.asarray([[0.0], [1.0]]), 3) is None
        with pytest.raises(GeometryError):
            safe_area_point_kernel(np.asarray([[0.0], [1.0]]), -1)
        with pytest.raises(GeometryError):
            safe_area_point_kernel(
                np.asarray([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [1.0, 1.0], [0.5, 0.5]]),
                1,
                objective=[1.0, 2.0, 3.0],
            )

    def test_explicit_subset_family_honoured(self):
        cloud = np.asarray([[0.0], [1.0], [2.0], [3.0], [4.0]])
        families = [(0, 1, 2, 3), (1, 2, 3, 4)]
        kernel_point = safe_area_point_kernel(
            cloud, 1, subset_indices=families, objective=[1.0]
        )
        oracle_point = safe_area_point(
            cloud, 1, subset_indices=families, objective=np.asarray([1.0])
        )
        assert float(kernel_point[0]) == pytest.approx(float(oracle_point[0]), abs=1e-8)
        with pytest.raises(GeometryError):
            safe_area_point_kernel(cloud, 1, subset_indices=[(0, 1)])
        with pytest.raises(GeometryError):
            safe_area_point_kernel(cloud, 1, subset_indices=[])

    def test_one_dimensional_interval_semantics(self):
        cloud = np.asarray([[0.0], [1.0], [2.0], [3.0], [4.0]])
        low = safe_area_point_kernel(cloud, 1, objective=[1.0])
        high = safe_area_point_kernel(cloud, 1, objective=[-1.0])
        assert float(low[0]) == pytest.approx(1.0, abs=1e-6)
        assert float(high[0]) == pytest.approx(3.0, abs=1e-6)


class TestPrunedFamilies:
    def test_full_family_enumeration(self):
        assert len(full_subset_family(5, 1)) == safe_area_subset_count(5, 1)
        assert full_subset_family(3, 4) == ()

    def test_one_dimensional_pruning_is_two_subsets(self):
        cloud = np.asarray([[4.0], [0.0], [2.0], [1.0], [3.0]])
        families = pruned_subset_family(cloud, 1)
        assert len(families) == 2
        # Drop the largest member (index 0) and the smallest (index 1).
        assert (1, 2, 3, 4) in families and (0, 2, 3, 4) in families

    def test_planar_pruning_is_quadratic_not_binomial(self):
        rng = np.random.default_rng(7)
        cloud = rng.uniform(0.0, 1.0, size=(13, 2))
        families = pruned_subset_family(cloud, 4)
        assert len(families) < 13 * 12  # O(n^2) sweep arcs
        assert safe_area_subset_count(13, 4) == 715  # versus the full family

    def test_interior_member_never_binds(self):
        # Triangle + strictly interior centroid: the drop-the-centroid subset
        # has the largest hull and must be pruned away.
        triangle = np.asarray([[0.0, 0.0], [4.0, 0.0], [0.0, 4.0]])
        cloud = np.vstack([triangle, triangle.mean(axis=0, keepdims=True)])
        families = pruned_subset_family(cloud, 1)
        assert (0, 1, 2) not in families
        assert len(families) == 3

    def test_duplicate_collapse_in_higher_dimensions(self):
        cloud = np.asarray([[0.0, 0.0, 0.0]] * 6)
        families = pruned_subset_family(cloud, 1)
        assert len(families) == 1

    def test_pruned_intersection_equals_gamma(self):
        # The pruned family must define the same region: a point of the pruned
        # LP lies in full Gamma, and the pruned optimum equals the full one.
        rng = np.random.default_rng(99)
        kernel = GammaKernel()
        for trial in range(12):
            dimension = 2
            fault_bound = int(rng.integers(1, 4))
            point_count = 3 * fault_bound + 1 + int(rng.integers(0, 3))
            cloud = rng.uniform(-1.0, 1.0, size=(point_count, dimension))
            for objective in ([1.0, 0.0], [-1.0, 0.0], [0.0, 1.0], [0.3, -0.7]):
                pruned = kernel.point(cloud, fault_bound, objective=objective, prune=True)
                unpruned = kernel.point(cloud, fault_bound, objective=objective, prune=False)
                assert pruned is not None and unpruned is not None
                value_pruned = float(np.dot(objective, pruned))
                value_full = float(np.dot(objective, unpruned))
                assert value_pruned == pytest.approx(value_full, abs=1e-6)
                assert safe_area_contains(cloud, fault_bound, pruned, tolerance=1e-5)


class TestBatchedQueries:
    def test_loop_batch_is_bit_identical_to_single_queries(self):
        rng = np.random.default_rng(5)
        kernel = GammaKernel()
        clouds = [rng.uniform(0.0, 1.0, size=(7, 2)) for _ in range(6)]
        objective = np.asarray([1.0, 0.0])
        singles = [kernel.point(cloud, 2, objective=objective) for cloud in clouds]
        looped = kernel.points_batch(clouds, 2, objective=objective, fused=False)
        for single, from_batch in zip(singles, looped):
            assert np.array_equal(single, from_batch)

    def test_fused_batch_matches_singles_to_solver_precision(self):
        rng = np.random.default_rng(6)
        clouds = [rng.uniform(0.0, 1.0, size=(9, 2)) for _ in range(5)]
        objective = np.asarray([1.0, 0.0])
        fused = safe_area_points_batch(clouds, 2, objective=objective, fused=True)
        for cloud, point in zip(clouds, fused):
            single = safe_area_point_kernel(cloud, 2, objective=objective)
            assert float(point[0]) == pytest.approx(float(single[0]), abs=1e-8)
            assert safe_area_contains(cloud, 2, point, tolerance=1e-5)

    def test_fused_batch_with_one_empty_gamma_falls_back(self):
        # One query has empty Gamma (Theorem 1 construction); the fused LP is
        # infeasible and the kernel must fall back to attribute emptiness to
        # exactly that query.  The good query is 3 collinear points, whose
        # Gamma with f = 1 is the single middle point.
        triangle = np.vstack([np.eye(2), np.zeros((1, 2))])  # d+1 points, f=1
        good = np.asarray([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]])
        points = safe_area_points_batch([good, triangle], 1)
        assert points[0] is not None
        assert points[1] is None

    def test_empty_batch_and_shape_validation(self):
        assert safe_area_points_batch([], 1) == []
        rng = np.random.default_rng(9)
        with pytest.raises(GeometryError):
            safe_area_points_batch(
                [rng.uniform(size=(5, 2)), rng.uniform(size=(6, 2))], 1
            )

    def test_subset_indices_must_cover_every_query(self):
        rng = np.random.default_rng(21)
        clouds = [rng.uniform(size=(5, 2)) for _ in range(3)]
        families = [[(0, 1, 2, 3), (1, 2, 3, 4)]] * 2  # one family list short
        with pytest.raises(GeometryError):
            safe_area_points_batch(clouds, 1, subset_indices=families)
        for engine in ("kernel", "oracle"):
            with pytest.raises(GeometryError):
                SafeAreaCalculator(fault_bound=1, engine=engine).choose_batch(
                    clouds, subset_indices=families
                )

    def test_batch_zero_faults_returns_centroids(self):
        rng = np.random.default_rng(10)
        clouds = [rng.uniform(size=(4, 2)) for _ in range(3)]
        points = safe_area_points_batch(clouds, 0)
        for cloud, point in zip(clouds, points):
            assert np.allclose(point, cloud.mean(axis=0))


class TestTemplateCacheAndStats:
    def test_templates_are_reused_across_rounds(self):
        rng = np.random.default_rng(11)
        # dense_crossover=0 pins the template path: 7-point clouds would
        # otherwise dispatch to the dense assembly.
        kernel = GammaKernel(dense_crossover=0)
        # Unpruned queries share the exact (C(7,5), 5, 2) LP shape, so after
        # the first assembly every later round hits the cached template.
        for _ in range(5):
            kernel.point(rng.uniform(size=(7, 2)), 2, prune=False)
        assert kernel.stats.template_misses == 1
        assert kernel.stats.template_hits == 4
        assert kernel.stats.lp_solves == 5
        assert kernel.stats.dense_solves == 0
        # Pruned queries may land on per-cloud shapes, but always record the
        # number of constraint blocks they avoided assembling.
        kernel.point(rng.uniform(size=(7, 2)), 2, prune=True)
        assert kernel.stats.blocks_pruned_away > 0

    def test_small_clouds_take_the_dense_path(self):
        rng = np.random.default_rng(14)
        kernel = GammaKernel()
        kernel.point(rng.uniform(size=(7, 2)), 2, prune=False)
        assert kernel.stats.dense_solves == 1
        assert kernel.stats.lp_solves == 1
        assert kernel.stats.template_misses == 0

    def test_cache_eviction_is_bounded(self):
        rng = np.random.default_rng(12)
        kernel = GammaKernel(max_cached_templates=2, dense_crossover=0)
        for point_count in (5, 6, 7, 8):
            kernel.point(rng.uniform(size=(point_count, 2)), 1)
        assert kernel.template_cache_size <= 2
        with pytest.raises(GeometryError):
            GammaKernel(max_cached_templates=0)
        with pytest.raises(GeometryError):
            GammaKernel(dense_crossover=-1)

    def test_reset_and_clear(self):
        rng = np.random.default_rng(13)
        kernel = GammaKernel()
        kernel.point(rng.uniform(size=(5, 2)), 1)
        assert kernel.stats.single_queries == 1
        previous = kernel.reset_stats()
        assert previous.single_queries == 1  # snapshot-and-reset returns the old stats
        assert kernel.stats.single_queries == 0
        kernel.clear_cache()
        assert kernel.template_cache_size == 0

    def test_stats_as_dict_round_trip(self):
        stats = GammaKernel().stats.as_dict()
        assert set(stats) >= {"single_queries", "lp_solves", "template_hits"}
        assert stats == GammaKernel().stats_snapshot()

    def test_snapshot_is_a_copy(self):
        kernel = GammaKernel()
        before = kernel.stats_snapshot()
        rng = np.random.default_rng(14)
        kernel.point(rng.uniform(size=(5, 2)), 1)
        after = kernel.stats_snapshot()
        assert before["single_queries"] == 0
        assert after["single_queries"] == 1
        assert set(after) == set(KernelStats.FIELDS)


class TestScalarInterval:
    def test_trimmed_interval(self):
        assert safe_area_interval_1d([0.0, 1.0, 2.0, 3.0, 4.0], 1) == (1.0, 3.0)
        assert safe_area_interval_1d([4.0, 0.0, 2.0, 1.0, 3.0], 2) == (2.0, 2.0)

    def test_zero_faults_full_range(self):
        assert safe_area_interval_1d([5.0, -1.0, 2.0], 0) == (-1.0, 5.0)

    def test_empty_cases(self):
        assert safe_area_interval_1d([], 1) is None
        assert safe_area_interval_1d([1.0, 2.0], 1) is None
        assert safe_area_interval_1d([1.0], 2) is None

    def test_invalid_fault_bound(self):
        with pytest.raises(GeometryError):
            safe_area_interval_1d([1.0, 2.0], -1)

    def test_matches_lp_route(self):
        values = np.asarray([[0.5], [1.5], [2.5], [3.5], [4.5], [5.5], [6.5]])
        interval = safe_area_interval_1d(values, 2)
        low = safe_area_point_kernel(values, 2, objective=[1.0])
        high = safe_area_point_kernel(values, 2, objective=[-1.0])
        assert float(low[0]) == pytest.approx(interval[0], abs=1e-6)
        assert float(high[0]) == pytest.approx(interval[1], abs=1e-6)


class TestCalculatorEngines:
    def test_kernel_and_oracle_engines_agree_on_objective_value(self):
        rng = np.random.default_rng(14)
        cloud = rng.uniform(0.0, 1.0, size=(7, 2))
        kernel_choice = SafeAreaCalculator(fault_bound=2, engine="kernel").choose(cloud)
        oracle_choice = SafeAreaCalculator(fault_bound=2, engine="oracle").choose(cloud)
        # Default objective minimises the first coordinate; the minimum over
        # Gamma is formulation independent.
        assert float(kernel_choice[0]) == pytest.approx(float(oracle_choice[0]), abs=1e-7)
        assert safe_area_contains(cloud, 2, kernel_choice, tolerance=1e-5)

    def test_choose_batch_matches_choose(self):
        rng = np.random.default_rng(16)
        calculator = SafeAreaCalculator(fault_bound=1)
        clouds = [rng.uniform(0.0, 1.0, size=(5, 2)) for _ in range(4)]
        batched = calculator.choose_batch(clouds)
        for cloud, from_batch in zip(clouds, batched):
            single = calculator.choose(cloud)
            assert np.allclose(single, from_batch, atol=1e-8)

    def test_choose_batch_raises_on_empty_gamma(self):
        triangle = np.vstack([np.eye(2), np.zeros((1, 2))])
        with pytest.raises(EmptyIntersectionError):
            SafeAreaCalculator(fault_bound=1).choose_batch([triangle])

    def test_choose_batch_oracle_engine_loops(self):
        rng = np.random.default_rng(17)
        calculator = SafeAreaCalculator(fault_bound=1, engine="oracle")
        clouds = [rng.uniform(0.0, 1.0, size=(5, 2)) for _ in range(2)]
        batched = calculator.choose_batch(clouds)
        assert len(batched) == 2
        assert all(safe_area_contains(cloud, 1, point, tolerance=1e-5)
                   for cloud, point in zip(clouds, batched))

    def test_empty_choose_batch(self):
        assert SafeAreaCalculator(fault_bound=1).choose_batch([]) == []


class TestMultiInstanceQueries:
    """points_multi: the columnar engine's whole-round entry point."""

    def test_dedup_mode_is_bit_identical_to_single_queries(self):
        rng = np.random.default_rng(91)
        kernel = GammaKernel()
        distinct = [rng.uniform(0.0, 1.0, size=(5, 2)) for _ in range(3)]
        # Duplicate clouds interleaved, as produced by identical receive views.
        clouds = [distinct[0], distinct[1], distinct[0], distinct[2], distinct[1]]
        answers = kernel.points_multi(clouds, 1)
        assert kernel.stats.multi_queries == 5
        assert kernel.stats.multi_dedup_hits == 2
        for cloud, answer in zip(clouds, answers):
            single = kernel.point(cloud, 1)
            assert np.array_equal(single, answer)
        # Duplicates share the exact same floats, not merely close ones.
        assert np.array_equal(answers[0], answers[2])
        assert np.array_equal(answers[1], answers[4])

    def test_heterogeneous_shapes_in_one_call(self):
        rng = np.random.default_rng(92)
        small = rng.uniform(0.0, 1.0, size=(4, 1))
        large = rng.uniform(0.0, 1.0, size=(6, 2))
        answers = safe_area_points_multi([small, large], 1)
        assert np.array_equal(answers[0], safe_area_point_kernel(small, 1))
        assert np.array_equal(answers[1], safe_area_point_kernel(large, 1))

    def test_empty_gamma_maps_to_none_per_query(self):
        rng = np.random.default_rng(93)
        healthy = rng.uniform(0.0, 1.0, size=(5, 2))
        empty = np.vstack([np.eye(2), np.zeros((1, 2))])  # |Y|=3, f=1, d=2
        answers = safe_area_points_multi([healthy, empty, healthy], 1)
        assert answers[0] is not None and answers[2] is not None
        assert answers[1] is None

    def test_fused_mode_returns_valid_gamma_points(self):
        rng = np.random.default_rng(94)
        clouds = [rng.uniform(0.0, 1.0, size=(5, 2)) for _ in range(4)]
        answers = safe_area_points_multi(clouds, 1, fused=True)
        for cloud, answer in zip(clouds, answers):
            assert answer is not None
            assert safe_area_contains(cloud, 1, answer, tolerance=1e-5)

    def test_empty_call_and_negative_faults(self):
        assert safe_area_points_multi([], 1) == []
        with pytest.raises(GeometryError):
            safe_area_points_multi([np.zeros((3, 2))], -1)


class TestCalculatorResolveMulti:
    def test_bitwise_parity_with_choose(self):
        rng = np.random.default_rng(95)
        calculator = SafeAreaCalculator(fault_bound=1)
        distinct = [rng.uniform(0.0, 1.0, size=(5, 2)) for _ in range(2)]
        clouds = [distinct[0], distinct[1], distinct[0]]
        answers = calculator.resolve_multi(clouds)
        for cloud, answer in zip(clouds, answers):
            assert np.array_equal(answer, calculator.choose(cloud))

    def test_empty_gamma_returns_none_instead_of_raising(self):
        healthy = np.random.default_rng(96).uniform(0.0, 1.0, size=(5, 2))
        empty = np.vstack([np.eye(2), np.zeros((1, 2))])
        answers = SafeAreaCalculator(fault_bound=1).resolve_multi([empty, healthy])
        assert answers[0] is None and answers[1] is not None

    def test_oracle_engine_loops_the_literal_program(self):
        rng = np.random.default_rng(97)
        calculator = SafeAreaCalculator(fault_bound=1, engine="oracle")
        clouds = [rng.uniform(0.0, 1.0, size=(5, 2)) for _ in range(2)]
        answers = calculator.resolve_multi(clouds)
        for cloud, answer in zip(clouds, answers):
            assert safe_area_contains(cloud, 1, answer, tolerance=1e-5)

    def test_mixed_dimensions_rejected_and_empty_call(self):
        calculator = SafeAreaCalculator(fault_bound=1)
        assert calculator.resolve_multi([]) == []
        with pytest.raises(GeometryError):
            calculator.resolve_multi([np.zeros((4, 1)), np.zeros((4, 2))])
