"""Unit tests for repro.geometry.convex_hull."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import GeometryError
from repro.geometry.convex_hull import (
    ConvexHullRegion,
    contains_point,
    convex_combination_weights,
    distance_to_hull,
    hull_vertices,
    hulls_intersect,
    hulls_intersection_point,
)

UNIT_SQUARE = [[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [1.0, 1.0]]
TRIANGLE = [[0.0, 0.0], [2.0, 0.0], [0.0, 2.0]]


class TestContainment:
    def test_interior_point(self):
        assert contains_point(UNIT_SQUARE, [0.5, 0.5])

    def test_vertex_is_contained(self):
        assert contains_point(UNIT_SQUARE, [1.0, 1.0])

    def test_boundary_point(self):
        assert contains_point(UNIT_SQUARE, [0.5, 0.0])

    def test_outside_point(self):
        assert not contains_point(UNIT_SQUARE, [1.5, 0.5])

    def test_degenerate_segment(self):
        segment = [[0.0, 0.0, 0.0], [1.0, 1.0, 1.0]]
        assert contains_point(segment, [0.5, 0.5, 0.5])
        assert not contains_point(segment, [0.5, 0.5, 0.6])

    def test_single_point_hull(self):
        assert contains_point([[2.0, 2.0]], [2.0, 2.0])
        assert not contains_point([[2.0, 2.0]], [2.0, 2.1])

    def test_weights_reconstruct_target(self):
        weights = convex_combination_weights(TRIANGLE, [0.5, 0.5])
        assert weights is not None
        assert weights.sum() == pytest.approx(1.0)
        reconstructed = weights @ np.asarray(TRIANGLE)
        assert np.allclose(reconstructed, [0.5, 0.5], atol=1e-6)

    def test_weights_none_outside(self):
        assert convex_combination_weights(TRIANGLE, [5.0, 5.0]) is None


class TestIntersection:
    def test_overlapping_squares(self):
        shifted = [[0.5, 0.5], [1.5, 0.5], [0.5, 1.5], [1.5, 1.5]]
        point = hulls_intersection_point([UNIT_SQUARE, shifted])
        assert point is not None
        assert contains_point(UNIT_SQUARE, point, tolerance=1e-6)
        assert contains_point(shifted, point, tolerance=1e-6)

    def test_disjoint_hulls(self):
        far = [[10.0, 10.0], [11.0, 10.0], [10.0, 11.0]]
        assert hulls_intersection_point([UNIT_SQUARE, far]) is None
        assert not hulls_intersect([UNIT_SQUARE, far])

    def test_touching_hulls(self):
        left = [[0.0, 0.0], [1.0, 0.0]]
        right = [[1.0, 0.0], [2.0, 0.0]]
        point = hulls_intersection_point([left, right])
        assert point is not None
        assert np.allclose(point, [1.0, 0.0], atol=1e-6)

    def test_three_way_intersection(self):
        a = [[0.0, 0.0], [2.0, 0.0], [0.0, 2.0]]
        b = [[1.0, 1.0], [-1.0, 1.0], [1.0, -1.0]]
        c = [[0.5, 0.5], [0.6, 0.5], [0.5, 0.6]]
        assert hulls_intersect([a, b, c])

    def test_mismatched_dimensions_raise(self):
        with pytest.raises(GeometryError):
            hulls_intersection_point([[[0.0, 0.0]], [[0.0, 0.0, 0.0]]])

    def test_no_hulls_raise(self):
        with pytest.raises(GeometryError):
            hulls_intersection_point([])


class TestDistance:
    def test_zero_inside(self):
        assert distance_to_hull(UNIT_SQUARE, [0.25, 0.75]) == pytest.approx(0.0, abs=1e-7)

    def test_positive_outside(self):
        assert distance_to_hull(UNIT_SQUARE, [2.0, 0.5]) == pytest.approx(1.0, abs=1e-6)

    def test_distance_to_single_point(self):
        assert distance_to_hull([[0.0, 0.0]], [0.0, 3.0]) == pytest.approx(3.0, abs=1e-6)

    def test_empty_hull_raises(self):
        with pytest.raises(GeometryError):
            distance_to_hull(np.empty((0, 2)), [0.0, 0.0])


class TestVertices:
    def test_square_with_interior_point(self):
        cloud = UNIT_SQUARE + [[0.5, 0.5]]
        vertices = hull_vertices(cloud)
        assert vertices.shape[0] == 4

    def test_all_identical_points(self):
        vertices = hull_vertices([[1.0, 1.0], [1.0, 1.0], [1.0, 1.0]])
        assert vertices.shape[0] == 1

    def test_collinear_points(self):
        vertices = hull_vertices([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]])
        assert vertices.shape[0] == 2


class TestConvexHullRegion:
    def test_contains_and_distance(self):
        region = ConvexHullRegion(TRIANGLE)
        assert region.contains([0.5, 0.5])
        assert region.distance_to([3.0, 0.0]) == pytest.approx(1.0, abs=1e-6)

    def test_intersection_point_with(self):
        a = ConvexHullRegion(UNIT_SQUARE)
        b = ConvexHullRegion([[0.5, 0.5], [2.0, 2.0]])
        point = a.intersection_point_with(b)
        assert point is not None
        assert a.contains(point, tolerance=1e-6)

    def test_empty_generators_raise(self):
        with pytest.raises(GeometryError):
            ConvexHullRegion(np.empty((0, 2)))

    def test_dimension(self):
        assert ConvexHullRegion(TRIANGLE).dimension == 2
