"""Unit tests for repro.geometry.linprog."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import LinearProgramError
from repro.geometry.linprog import feasibility_program, solve_linear_program


class TestSolveLinearProgram:
    def test_simple_minimisation(self):
        # minimise x + y subject to x + y >= 1, x, y >= 0.
        result = solve_linear_program(
            [1.0, 1.0],
            inequality_matrix=[[-1.0, -1.0]],
            inequality_rhs=[-1.0],
        )
        assert result.feasible
        assert result.objective == pytest.approx(1.0)

    def test_infeasible_program_is_reported_not_raised(self):
        # x >= 0 and x <= -1 simultaneously.
        result = solve_linear_program(
            [1.0],
            inequality_matrix=[[1.0]],
            inequality_rhs=[-1.0],
            bounds=(0, None),
        )
        assert not result.feasible
        assert result.solution is None

    def test_unbounded_program_raises(self):
        with pytest.raises(LinearProgramError):
            solve_linear_program([-1.0], bounds=(0, None))

    def test_equality_constraints(self):
        result = solve_linear_program(
            [0.0, 0.0],
            equality_matrix=[[1.0, 1.0]],
            equality_rhs=[2.0],
        )
        assert result.feasible
        assert result.solution is not None
        assert result.solution.sum() == pytest.approx(2.0)

    def test_matrix_without_rhs_raises(self):
        with pytest.raises(LinearProgramError):
            solve_linear_program([1.0], inequality_matrix=[[1.0]])

    def test_wrong_column_count_raises(self):
        with pytest.raises(LinearProgramError):
            solve_linear_program([1.0, 1.0], inequality_matrix=[[1.0]], inequality_rhs=[1.0])

    def test_non_vector_objective_raises(self):
        with pytest.raises(LinearProgramError):
            solve_linear_program(np.zeros((2, 2)))

    def test_free_variable_bounds(self):
        result = solve_linear_program(
            [1.0],
            inequality_matrix=[[-1.0]],
            inequality_rhs=[5.0],
            bounds=(None, None),
        )
        assert result.feasible
        assert result.objective == pytest.approx(-5.0)


class TestFeasibilityProgram:
    def test_feasible(self):
        result = feasibility_program(
            variable_count=2,
            equality_matrix=[[1.0, 1.0]],
            equality_rhs=[1.0],
        )
        assert result.feasible

    def test_infeasible(self):
        result = feasibility_program(
            variable_count=1,
            equality_matrix=[[1.0]],
            equality_rhs=[-2.0],
            bounds=(0, None),
        )
        assert not result.feasible

    def test_degenerate_duplicate_columns(self):
        # A degenerate system with duplicated columns used to trip the HiGHS
        # presolve; the wrapper must still answer feasible.
        column = np.asarray([1.0, -2.0])
        matrix = np.column_stack([column, column, column])
        result = feasibility_program(
            variable_count=3,
            equality_matrix=np.vstack([matrix, np.ones((1, 3))]),
            equality_rhs=np.asarray([1.0, -2.0, 1.0]),
        )
        assert result.feasible

    def test_presolve_false_infeasible_is_overruled(self):
        # Hypothesis-found regression: on this trivially feasible hull
        # membership program (duplicated points, coordinates spanning orders
        # of magnitude) HiGHS presolve reports "infeasible" while the
        # presolve-free solve finds the exact weights.  The wrapper must
        # confirm every infeasible verdict without presolve before trusting
        # it.
        cloud = np.asarray([[0.0, 0.001953125], [0.0, 0.001953125], [1.0, 1e-09]])
        target = cloud.mean(axis=0)
        result = feasibility_program(
            variable_count=3,
            equality_matrix=np.vstack([cloud.T, np.ones((1, 3))]),
            equality_rhs=np.concatenate([target, [1.0]]),
            bounds=(0, None),
        )
        assert result.feasible
        weights = result.solution
        assert np.allclose(weights @ cloud, target, atol=1e-7)
