"""Property-based tests (hypothesis) for the geometry substrate.

These check the structural invariants the BVC algorithms rely on:

* convex-combination weights, when found, really reconstruct the target;
* the centroid of any cloud is in its hull; hull membership is preserved
  under taking super-clouds;
* the distance-to-hull function is zero exactly on members of the hull;
* Radon / Tverberg partitions produce witnesses inside every block's hull;
* ``Gamma(Y)`` is non-empty whenever ``|Y| >= (d+1)f + 1`` (Lemma 1), and any
  point of ``Gamma`` lies in the hull of every ``(|Y|-f)``-subset.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.safe_area import safe_area_contains, safe_area_point
from repro.geometry.convex_hull import (
    contains_point,
    convex_combination_weights,
    distance_to_hull,
)
from repro.geometry.multisets import PointMultiset
from repro.geometry.tverberg import radon_partition

# Bounded, well-scaled coordinates keep the LPs numerically tame and the
# examples meaningful.
coordinate = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False)


def cloud_strategy(min_points: int, max_points: int, dimension: int):
    return st.lists(
        st.lists(coordinate, min_size=dimension, max_size=dimension),
        min_size=min_points,
        max_size=max_points,
    ).map(lambda rows: np.asarray(rows, dtype=float))


@settings(max_examples=40, deadline=None)
@given(cloud=cloud_strategy(1, 6, 2))
def test_centroid_is_in_hull(cloud):
    centroid = cloud.mean(axis=0)
    assert contains_point(cloud, centroid, tolerance=1e-6)


@settings(max_examples=40, deadline=None)
@given(cloud=cloud_strategy(1, 6, 2), extra=st.lists(coordinate, min_size=2, max_size=2))
def test_hull_membership_monotone_under_adding_points(cloud, extra):
    target = cloud[0]
    bigger = np.vstack([cloud, np.asarray(extra, dtype=float)[None, :]])
    assert contains_point(bigger, target, tolerance=1e-6)


@settings(max_examples=40, deadline=None)
@given(
    cloud=cloud_strategy(1, 6, 3),
    weights=st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=6, max_size=6),
)
def test_convex_combinations_are_inside_and_reconstructible(cloud, weights):
    raw = np.asarray(weights[: cloud.shape[0]], dtype=float)
    if raw.sum() <= 1e-9:
        raw = np.ones(cloud.shape[0])
    raw = raw / raw.sum()
    target = raw @ cloud
    found = convex_combination_weights(cloud, target)
    assert found is not None
    assert abs(found.sum() - 1.0) < 1e-6
    assert np.max(np.abs(found @ cloud - target)) < 1e-5


@settings(max_examples=40, deadline=None)
@given(cloud=cloud_strategy(2, 6, 2))
def test_distance_zero_iff_contained(cloud):
    member = cloud[-1]
    assert distance_to_hull(cloud, member) < 1e-6
    far_away = cloud.max(axis=0) + 5.0
    assert distance_to_hull(cloud, far_away) > 1.0


@settings(max_examples=30, deadline=None)
@given(cloud=cloud_strategy(4, 6, 2))
def test_radon_witness_lies_in_both_blocks(cloud):
    partition = radon_partition(PointMultiset(cloud))
    for block in partition.blocks:
        assert contains_point(cloud[list(block)], partition.witness, tolerance=1e-5)


@settings(max_examples=25, deadline=None)
@given(cloud=cloud_strategy(4, 7, 2))
def test_lemma1_gamma_nonempty_for_f1(cloud):
    # |Y| >= 4 = (d+1)*1 + 1 in the plane, so Gamma with f = 1 is never empty.
    point = safe_area_point(PointMultiset(cloud), fault_bound=1)
    assert point is not None
    assert safe_area_contains(PointMultiset(cloud), 1, point, tolerance=1e-5)


@settings(max_examples=25, deadline=None)
@given(cloud=cloud_strategy(4, 6, 1))
def test_gamma_point_in_every_leave_f_out_hull_1d(cloud):
    multiset = PointMultiset(cloud)
    point = safe_area_point(multiset, fault_bound=1)
    assert point is not None
    for subset in multiset.drop_count(1):
        assert distance_to_hull(subset, point) < 1e-5
