"""Unit tests for repro.geometry.halfspaces."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import GeometryError
from repro.geometry.halfspaces import Halfspace, HalfspaceRegion, separating_hyperplane


class TestHalfspace:
    def test_contains(self):
        halfspace = Halfspace([1.0, 0.0], 1.0)
        assert halfspace.contains([0.5, 7.0])
        assert halfspace.contains([1.0, 0.0])
        assert not halfspace.contains([1.5, 0.0])

    def test_margin_sign(self):
        halfspace = Halfspace([0.0, 1.0], 2.0)
        assert halfspace.margin([0.0, 0.0]) == pytest.approx(2.0)
        assert halfspace.margin([0.0, 3.0]) == pytest.approx(-1.0)

    def test_flipped(self):
        halfspace = Halfspace([1.0, 0.0], 1.0)
        flipped = halfspace.flipped()
        assert not flipped.contains([0.0, 0.0])
        assert flipped.contains([2.0, 0.0])

    def test_zero_normal_raises(self):
        with pytest.raises(GeometryError):
            Halfspace([0.0, 0.0], 1.0)


class TestHalfspaceRegion:
    def test_box_membership(self):
        box = HalfspaceRegion.box([0.0, 0.0], [1.0, 2.0])
        assert box.contains([0.5, 1.0])
        assert not box.contains([1.5, 1.0])
        assert not box.contains([0.5, -0.1])

    def test_find_point_in_nonempty_region(self):
        box = HalfspaceRegion.box([0.0, 0.0], [1.0, 1.0])
        point = box.find_point()
        assert point is not None
        assert box.contains(point)

    def test_empty_region(self):
        empty = HalfspaceRegion([Halfspace([1.0], 0.0), Halfspace([-1.0], -1.0)])
        assert empty.is_empty()
        assert empty.find_point() is None

    def test_chebyshev_center_of_unit_box(self):
        box = HalfspaceRegion.box([0.0, 0.0], [2.0, 2.0])
        result = box.chebyshev_center()
        assert result is not None
        center, radius = result
        assert np.allclose(center, [1.0, 1.0], atol=1e-6)
        assert radius == pytest.approx(1.0, abs=1e-6)

    def test_chebyshev_center_of_empty_region(self):
        empty = HalfspaceRegion([Halfspace([1.0], 0.0), Halfspace([-1.0], -1.0)])
        assert empty.chebyshev_center() is None

    def test_intersect(self):
        left = HalfspaceRegion.box([0.0, 0.0], [2.0, 2.0])
        right = HalfspaceRegion.box([1.0, 1.0], [3.0, 3.0])
        both = left.intersect(right)
        assert both.contains([1.5, 1.5])
        assert not both.contains([0.5, 0.5])

    def test_dimension_mismatch_raises(self):
        with pytest.raises(GeometryError):
            HalfspaceRegion([Halfspace([1.0], 0.0), Halfspace([1.0, 0.0], 0.0)])

    def test_bad_box_raises(self):
        with pytest.raises(GeometryError):
            HalfspaceRegion.box([1.0], [0.0])

    def test_empty_halfspace_list_raises(self):
        with pytest.raises(GeometryError):
            HalfspaceRegion([])


class TestSeparatingHyperplane:
    def test_separates_outside_point(self):
        square = [[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [1.0, 1.0]]
        halfspace = separating_hyperplane(square, [3.0, 3.0])
        assert halfspace is not None
        assert all(halfspace.contains(point) for point in square)
        assert not halfspace.contains([3.0, 3.0])

    def test_none_for_inside_point(self):
        square = [[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [1.0, 1.0]]
        assert separating_hyperplane(square, [0.5, 0.5]) is None

    def test_none_for_boundary_point(self):
        segment = [[0.0, 0.0], [2.0, 0.0]]
        assert separating_hyperplane(segment, [1.0, 0.0]) is None

    def test_empty_cloud_raises(self):
        with pytest.raises(GeometryError):
            separating_hyperplane(np.empty((0, 2)), [0.0, 0.0])
