"""Regression pins for the small-instance dense crossover.

The paper's experimental regime (E15) lives almost entirely at small ``n``,
where assembling the equality system densely beats the sparse-template
machinery.  These tests pin the crossover's two contracts: the dispatcher
takes the dense path exactly for clouds of at most
:data:`~repro.geometry.kernel.DENSE_POINT_CROSSOVER` points, and the dense
and template paths produce bitwise-identical Gamma points — the dense path
is a performance dispatch, never a semantic fork.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry.kernel import DENSE_POINT_CROSSOVER, GammaKernel


def _cloud(point_count: int, dimension: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.uniform(-2.0, 2.0, size=(point_count, dimension))


class TestDenseCrossoverDispatch:
    def test_crossover_covers_the_small_instance_regime(self):
        # n <= 9 covers every minimum-resilience configuration the paper's
        # small-instance experiments sweep; bumping this constant is a
        # deliberate perf decision, not a drive-by.
        assert DENSE_POINT_CROSSOVER == 9

    @pytest.mark.parametrize("point_count", range(4, 14))
    def test_dispatcher_picks_dense_below_threshold(self, point_count):
        kernel = GammaKernel()
        expected = point_count <= DENSE_POINT_CROSSOVER
        assert kernel.uses_dense_path(point_count) is expected

    def test_empty_clouds_and_disabled_crossover_never_dense(self):
        assert not GammaKernel().uses_dense_path(0)
        assert not GammaKernel(dense_crossover=0).uses_dense_path(4)


class TestDenseTemplateEquivalence:
    @pytest.mark.parametrize("point_count", range(4, 14))
    @pytest.mark.parametrize("dimension", (1, 2, 3))
    def test_dense_and_template_points_are_identical(self, point_count, dimension):
        fault_bound = 1
        cloud = _cloud(point_count, dimension, seed=100 + point_count * 10 + dimension)
        dense_kernel = GammaKernel()
        template_kernel = GammaKernel(dense_crossover=0)

        dense_point = dense_kernel.point(cloud, fault_bound)
        template_point = template_kernel.point(cloud, fault_bound)

        assert (dense_point is None) == (template_point is None)
        if dense_point is not None:
            assert np.array_equal(dense_point, template_point)

        # The dispatch actually took the advertised path on each kernel.
        assert template_kernel.stats.dense_solves == 0
        if point_count <= DENSE_POINT_CROSSOVER:
            assert dense_kernel.stats.dense_solves >= 1
            assert dense_kernel.stats.template_misses == 0
        else:
            assert dense_kernel.stats.dense_solves == 0
            assert dense_kernel.stats.template_misses >= 1

    def test_batched_queries_agree_across_the_crossover(self):
        fault_bound = 2
        clouds = [_cloud(point_count, 2, seed=point_count) for point_count in range(7, 12)]
        dense_kernel = GammaKernel()
        template_kernel = GammaKernel(dense_crossover=0)
        dense_points = dense_kernel.points_multi(clouds, fault_bound)
        template_points = template_kernel.points_multi(clouds, fault_bound)
        assert len(dense_points) == len(template_points) == len(clouds)
        for dense_point, template_point in zip(dense_points, template_points):
            assert (dense_point is None) == (template_point is None)
            if dense_point is not None:
                assert np.array_equal(dense_point, template_point)
