"""Unit tests for repro.geometry.centerpoint."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import GeometryError
from repro.geometry.centerpoint import (
    find_centerpoint,
    halfspace_depth,
    is_centerpoint,
    required_center_depth,
)


class TestRequiredDepth:
    def test_formula(self):
        assert required_center_depth(9, 2) == 3
        assert required_center_depth(10, 2) == 4
        assert required_center_depth(7, 1) == 4

    def test_invalid_arguments(self):
        with pytest.raises(GeometryError):
            required_center_depth(0, 2)
        with pytest.raises(GeometryError):
            required_center_depth(5, 0)


class TestHalfspaceDepth:
    def test_far_outside_point_has_zero_depth(self):
        cloud = [[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [1.0, 1.0]]
        assert halfspace_depth(cloud, [10.0, 10.0]) == 0

    def test_center_of_square_has_full_quadrant_depth(self):
        cloud = [[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [1.0, 1.0]]
        assert halfspace_depth(cloud, [0.5, 0.5]) >= 2

    def test_one_dimensional_depth_is_rank(self):
        cloud = [[0.0], [1.0], [2.0], [3.0], [4.0]]
        assert halfspace_depth(cloud, [2.0]) == 3
        assert halfspace_depth(cloud, [0.0]) == 1

    def test_vertex_has_depth_one(self):
        cloud = [[0.0, 0.0], [4.0, 0.0], [0.0, 4.0]]
        assert halfspace_depth(cloud, [0.0, 0.0]) == 1


class TestFindCenterpoint:
    def test_median_works_in_one_dimension(self, rng):
        cloud = rng.uniform(-1, 1, size=(15, 1))
        center = find_centerpoint(cloud, rng=rng)
        assert is_centerpoint(cloud, center)

    def test_square_grid_in_two_dimensions(self, rng):
        xs, ys = np.meshgrid(np.arange(4.0), np.arange(4.0))
        cloud = np.column_stack([xs.ravel(), ys.ravel()])
        center = find_centerpoint(cloud, rng=rng)
        assert is_centerpoint(cloud, center)

    def test_random_cloud_in_two_dimensions(self, rng):
        cloud = rng.normal(size=(20, 2))
        center = find_centerpoint(cloud, rng=rng)
        assert halfspace_depth(cloud, center) >= required_center_depth(20, 2) - 1

    def test_empty_cloud_raises(self, rng):
        with pytest.raises(GeometryError):
            find_centerpoint(np.empty((0, 2)), rng=rng)

    def test_identical_points(self, rng):
        cloud = np.ones((6, 2))
        center = find_centerpoint(cloud, rng=rng)
        assert np.allclose(center, [1.0, 1.0])
