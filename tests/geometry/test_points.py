"""Unit tests for repro.geometry.points."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import GeometryError
from repro.geometry import points


class TestAsPoint:
    def test_list_becomes_float_array(self):
        point = points.as_point([1, 2, 3])
        assert point.dtype == float
        assert point.shape == (3,)

    def test_dimension_check_passes(self):
        assert points.as_point([1.0, 2.0], dimension=2).shape == (2,)

    def test_dimension_mismatch_raises(self):
        with pytest.raises(GeometryError):
            points.as_point([1.0, 2.0], dimension=3)

    def test_two_dimensional_input_raises(self):
        with pytest.raises(GeometryError):
            points.as_point(np.zeros((2, 2)))

    def test_empty_point_raises(self):
        with pytest.raises(GeometryError):
            points.as_point([])

    def test_nan_raises(self):
        with pytest.raises(GeometryError):
            points.as_point([1.0, float("nan")])

    def test_infinity_raises(self):
        with pytest.raises(GeometryError):
            points.as_point([float("inf"), 0.0])


class TestAsCloud:
    def test_list_of_rows(self):
        cloud = points.as_cloud([[0.0, 1.0], [2.0, 3.0]])
        assert cloud.shape == (2, 2)

    def test_ndarray_is_copied(self):
        original = np.zeros((2, 2))
        cloud = points.as_cloud(original)
        cloud[0, 0] = 5.0
        assert original[0, 0] == 0.0

    def test_inconsistent_dimensions_raise(self):
        with pytest.raises(GeometryError):
            points.as_cloud([[1.0], [1.0, 2.0]])

    def test_empty_without_dimension_raises(self):
        with pytest.raises(GeometryError):
            points.as_cloud([])

    def test_empty_with_dimension_gives_zero_rows(self):
        cloud = points.as_cloud([], dimension=3)
        assert cloud.shape == (0, 3)

    def test_dimension_mismatch_raises(self):
        with pytest.raises(GeometryError):
            points.as_cloud([[1.0, 2.0]], dimension=3)


class TestSummaries:
    def test_bounding_box(self):
        lower, upper = points.bounding_box([[0.0, 5.0], [2.0, 1.0]])
        assert np.allclose(lower, [0.0, 1.0])
        assert np.allclose(upper, [2.0, 5.0])

    def test_bounding_box_empty_raises(self):
        with pytest.raises(GeometryError):
            points.bounding_box(points.as_cloud([], dimension=2))

    def test_coordinate_range(self):
        assert np.allclose(points.coordinate_range([[0.0, 5.0], [2.0, 1.0]]), [2.0, 4.0])

    def test_pairwise_max_coordinate_gap(self):
        assert points.pairwise_max_coordinate_gap([[0.0, 5.0], [2.0, 1.0]]) == pytest.approx(4.0)

    def test_centroid(self):
        assert np.allclose(points.centroid([[0.0, 0.0], [2.0, 4.0]]), [1.0, 2.0])

    def test_max_norm_distance(self):
        assert points.max_norm_distance([0.0, 0.0], [1.0, -3.0]) == pytest.approx(3.0)

    def test_euclidean_distance(self):
        assert points.euclidean_distance([0.0, 0.0], [3.0, 4.0]) == pytest.approx(5.0)


class TestAffineRank:
    def test_single_point_rank_zero(self):
        assert points.affine_rank([[1.0, 2.0]]) == 0

    def test_collinear_points_rank_one(self):
        assert points.affine_rank([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]]) == 1

    def test_triangle_rank_two(self):
        assert points.affine_rank([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]]) == 2

    def test_duplicated_points_rank_zero(self):
        assert points.affine_rank([[1.0, 1.0], [1.0, 1.0]]) == 0


class TestDeduplicate:
    def test_removes_near_duplicates(self):
        cloud = points.deduplicate([[0.0, 0.0], [0.0, 1e-12], [1.0, 1.0]])
        assert cloud.shape == (2, 2)

    def test_preserves_order(self):
        cloud = points.deduplicate([[2.0, 2.0], [1.0, 1.0], [2.0, 2.0]])
        assert np.allclose(cloud[0], [2.0, 2.0])
        assert np.allclose(cloud[1], [1.0, 1.0])

    def test_points_equal_tolerance(self):
        assert points.points_equal([1.0, 1.0], [1.0, 1.0 + 1e-12])
        assert not points.points_equal([1.0, 1.0], [1.0, 1.1])
