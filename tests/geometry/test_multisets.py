"""Unit tests for repro.geometry.multisets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import GeometryError
from repro.geometry.multisets import PointMultiset, iter_index_partitions, iter_index_subsets


class TestIndexEnumeration:
    def test_subsets_count(self):
        assert len(list(iter_index_subsets(5, 3))) == 10

    def test_subsets_of_bad_size_are_empty(self):
        assert list(iter_index_subsets(3, 4)) == []
        assert list(iter_index_subsets(3, -1)) == []

    def test_partition_counts_match_stirling_numbers(self):
        # Stirling numbers of the second kind: S(4, 2) = 7, S(5, 3) = 25.
        assert len(list(iter_index_partitions(4, 2))) == 7
        assert len(list(iter_index_partitions(5, 3))) == 25

    def test_partitions_cover_all_indices(self):
        for blocks in iter_index_partitions(5, 2):
            flattened = sorted(index for block in blocks for index in block)
            assert flattened == list(range(5))

    def test_partitions_blocks_nonempty(self):
        for blocks in iter_index_partitions(4, 3):
            assert all(len(block) >= 1 for block in blocks)

    def test_partition_into_more_parts_than_elements_is_empty(self):
        assert list(iter_index_partitions(2, 3)) == []


class TestPointMultiset:
    def test_len_and_dimension(self):
        multiset = PointMultiset([[0.0, 1.0], [2.0, 3.0], [0.0, 1.0]])
        assert len(multiset) == 3
        assert multiset.dimension == 2

    def test_duplicates_are_kept(self):
        multiset = PointMultiset([[1.0, 1.0], [1.0, 1.0]])
        assert len(multiset) == 2
        assert multiset.count_of([1.0, 1.0]) == 2

    def test_points_are_read_only(self):
        multiset = PointMultiset([[0.0, 1.0]])
        with pytest.raises(ValueError):
            multiset.points[0, 0] = 5.0

    def test_equality_and_hash(self):
        a = PointMultiset([[1.0, 2.0]])
        b = PointMultiset([[1.0, 2.0]])
        assert a == b
        assert hash(a) == hash(b)

    def test_from_mapping_preserves_iteration_order(self):
        multiset = PointMultiset.from_mapping({2: [5.0], 0: [1.0]})
        assert np.allclose(multiset[0], [5.0])
        assert np.allclose(multiset[1], [1.0])

    def test_with_point_appends(self):
        multiset = PointMultiset([[0.0, 0.0]]).with_point([1.0, 1.0])
        assert len(multiset) == 2

    def test_select_out_of_range_raises(self):
        with pytest.raises(GeometryError):
            PointMultiset([[0.0]]).select([3])

    def test_select_empty(self):
        empty = PointMultiset([[0.0, 1.0]]).select([])
        assert len(empty) == 0
        assert empty.dimension == 2

    def test_subsets_of_size(self):
        multiset = PointMultiset([[0.0], [1.0], [2.0]])
        subsets = list(multiset.subsets_of_size(2))
        assert len(subsets) == 3
        assert all(len(subset) == 2 for subset in subsets)

    def test_drop_count_matches_definition(self):
        multiset = PointMultiset([[0.0], [1.0], [2.0], [3.0]])
        dropped = list(multiset.drop_count(1))
        assert len(dropped) == 4
        assert all(len(subset) == 3 for subset in dropped)

    def test_drop_negative_raises(self):
        with pytest.raises(GeometryError):
            list(PointMultiset([[0.0]]).drop_count(-1))

    def test_partitions(self):
        multiset = PointMultiset([[0.0], [1.0], [2.0]])
        partitions = list(multiset.partitions(2))
        assert len(partitions) == 3
        for blocks in partitions:
            assert sum(len(block) for block in blocks) == 3

    def test_centroid(self):
        multiset = PointMultiset([[0.0, 0.0], [2.0, 2.0]])
        assert np.allclose(multiset.centroid(), [1.0, 1.0])

    def test_centroid_of_empty_raises(self):
        empty = PointMultiset([[0.0]]).select([])
        with pytest.raises(GeometryError):
            empty.centroid()
