"""Unit tests for repro.geometry.tverberg."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import GeometryError
from repro.geometry.convex_hull import contains_point
from repro.geometry.multisets import PointMultiset
from repro.geometry.tverberg import (
    figure1_instance,
    find_tverberg_partition,
    radon_partition,
    tverberg_points_required,
    verify_tverberg_partition,
)


class TestPointCounts:
    def test_required_points_formula(self):
        # (d + 1)(r - 1) + 1
        assert tverberg_points_required(2, 3) == 7
        assert tverberg_points_required(3, 2) == 5
        assert tverberg_points_required(1, 2) == 3

    def test_one_part_needs_one_point(self):
        assert tverberg_points_required(4, 1) == 1

    def test_invalid_arguments(self):
        with pytest.raises(GeometryError):
            tverberg_points_required(0, 2)
        with pytest.raises(GeometryError):
            tverberg_points_required(2, 0)


class TestRadonPartition:
    def test_square_plus_nothing(self):
        # 4 points in the plane always admit a Radon partition.
        partition = radon_partition([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        assert partition.parts == 2
        witness = verify_tverberg_partition(partition.multiset, partition.blocks)
        assert witness is not None

    def test_triangle_with_interior_point(self):
        partition = radon_partition([[0.0, 0.0], [4.0, 0.0], [0.0, 4.0], [1.0, 1.0]])
        # One block must be the interior point alone; the witness is that point.
        sizes = sorted(len(block) for block in partition.blocks)
        assert sizes == [1, 3]
        assert contains_point([[1.0, 1.0]], partition.witness, tolerance=1e-6)

    def test_witness_in_both_hulls(self):
        cloud = np.asarray([[0.0, 0.0], [2.0, 0.0], [1.0, 2.0], [1.0, 0.5]])
        partition = radon_partition(cloud)
        for block in partition.blocks:
            assert contains_point(cloud[list(block)], partition.witness, tolerance=1e-6)

    def test_too_few_points_raises(self):
        with pytest.raises(GeometryError):
            radon_partition([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])

    def test_one_dimensional_radon(self):
        partition = radon_partition([[0.0], [1.0], [3.0]])
        assert partition.parts == 2


class TestFindTverbergPartition:
    def test_single_part_returns_centroid(self):
        partition = find_tverberg_partition([[0.0, 0.0], [2.0, 2.0]], parts=1)
        assert partition is not None
        assert np.allclose(partition.witness, [1.0, 1.0])

    def test_more_parts_than_points_returns_none(self):
        assert find_tverberg_partition([[0.0, 0.0]], parts=2) is None

    def test_three_parts_in_the_plane(self):
        multiset, parts = figure1_instance()
        partition = find_tverberg_partition(multiset, parts)
        assert partition is not None
        assert partition.parts == 3
        witness = verify_tverberg_partition(partition.multiset, partition.blocks)
        assert witness is not None
        for index in range(partition.parts):
            assert contains_point(partition.block_points(index), partition.witness, tolerance=1e-6)

    def test_one_dimensional_three_parts(self):
        # 5 points on a line admit a partition into 3 parts with a common point.
        partition = find_tverberg_partition([[0.0], [1.0], [2.0], [3.0], [4.0]], parts=3)
        assert partition is not None

    def test_duplicate_points_are_allowed(self):
        cloud = [[0.0, 0.0]] * 4 + [[1.0, 1.0]] * 3
        partition = find_tverberg_partition(cloud, parts=3)
        assert partition is not None


class TestVerifyPartition:
    def test_rejects_non_partition(self):
        multiset = PointMultiset([[0.0], [1.0], [2.0]])
        with pytest.raises(GeometryError):
            verify_tverberg_partition(multiset, [(0, 1), (1, 2)])

    def test_rejects_empty_block(self):
        multiset = PointMultiset([[0.0], [1.0]])
        with pytest.raises(GeometryError):
            verify_tverberg_partition(multiset, [(0, 1), ()])

    def test_returns_none_for_disjoint_hulls(self):
        multiset = PointMultiset([[0.0], [1.0], [10.0], [11.0]])
        assert verify_tverberg_partition(multiset, [(0, 1), (2, 3)]) is None


class TestFigure1:
    def test_instance_shape(self):
        multiset, parts = figure1_instance()
        assert len(multiset) == 7
        assert multiset.dimension == 2
        assert parts == 3

    def test_matches_paper_parameters(self):
        # n = 7, d = 2, f = 2  =>  n = (d + 1) f + 1 exactly.
        multiset, parts = figure1_instance()
        fault_bound = parts - 1
        assert len(multiset) == (multiset.dimension + 1) * fault_bound + 1
