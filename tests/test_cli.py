"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import EXPERIMENT_REGISTRY, _ordered_experiment_ids, build_parser, main
from repro.engine import read_jsonl, strip_timing


class TestParser:
    def test_list_command(self):
        arguments = build_parser().parse_args(["list"])
        assert arguments.command == "list"

    def test_run_command_with_output(self, tmp_path):
        arguments = build_parser().parse_args(["run", "E2", "--output", str(tmp_path / "out.txt")])
        assert arguments.command == "run"
        assert arguments.experiment == "E2"

    def test_bounds_defaults(self):
        arguments = build_parser().parse_args(["bounds"])
        assert arguments.dimension == 2
        assert arguments.faults == 1

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_campaign_defaults(self):
        arguments = build_parser().parse_args(["campaign"])
        assert arguments.command == "campaign"
        assert arguments.protocols == ["exact"]
        assert arguments.workers == 1
        assert arguments.repeats == 25

    def test_campaign_grid_flags(self):
        arguments = build_parser().parse_args(
            ["campaign", "--protocols", "exact", "approx", "--dimensions", "1", "2",
             "--workers", "4", "--jsonl", "out.jsonl", "--seed", "9"]
        )
        assert arguments.protocols == ["exact", "approx"]
        assert arguments.dimensions == [1, 2]
        assert arguments.workers == 4
        assert arguments.seed == 9

    def test_campaign_rejects_unknown_protocol(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--protocols", "bogus"])

    def test_campaign_accepts_coordinated_adversaries(self):
        arguments = build_parser().parse_args(
            ["campaign", "--adversaries", "split_world", "hull_collapse",
             "adaptive_extreme", "theorem4_scenario"]
        )
        assert arguments.adversaries == [
            "split_world", "hull_collapse", "adaptive_extreme", "theorem4_scenario"
        ]

    def test_fuzz_defaults(self):
        arguments = build_parser().parse_args(["fuzz"])
        assert arguments.command == "fuzz"
        assert arguments.count == 200
        assert arguments.workers == 1
        assert "split_world" in arguments.adversaries

    def test_fuzz_rejects_unknown_adversary(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fuzz", "--adversaries", "bogus"])


class TestMain:
    def test_list_prints_all_ids(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for experiment_id in EXPERIMENT_REGISTRY:
            assert experiment_id in output

    def test_bounds(self, capsys):
        assert main(["bounds", "--dimension", "3", "--faults", "2"]) == 0
        output = capsys.readouterr().out
        assert "11" in output  # (d+2)f+1 = 11 for d=3, f=2

    def test_run_cheap_experiment(self, capsys):
        assert main(["run", "E2"]) == 0
        output = capsys.readouterr().out
        assert "Theorem 1" in output
        assert "yes" in output

    def test_run_is_case_insensitive(self, capsys):
        assert main(["run", "e13"]) == 0
        assert "approx_async" in capsys.readouterr().out

    def test_run_writes_output_file(self, tmp_path, capsys):
        target = tmp_path / "table.txt"
        assert main(["run", "E13", "--output", str(target)]) == 0
        capsys.readouterr()
        assert target.exists()
        assert "approx_async" in target.read_text()

    def test_unknown_experiment_fails(self, capsys):
        assert main(["run", "E99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_registry_covers_design_doc_ids(self):
        # E10 and E12 are covered by the E6/E11 runners respectively; everything
        # else from DESIGN.md must be present, plus the E15 kernel experiment.
        for required in (
            "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E11", "E13", "E14", "E15",
            "E16",
        ):
            assert required in EXPERIMENT_REGISTRY

    def test_experiments_ordered_numerically(self):
        # Lexicographic sorting would put E11/E13/E14/E15 between E1 and E2.
        assert _ordered_experiment_ids() == [
            "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E11", "E13", "E14", "E15",
            "E16",
        ]

    def test_list_output_in_numeric_order(self, capsys):
        assert main(["list"]) == 0
        lines = capsys.readouterr().out.splitlines()
        ids = [line.split()[0] for line in lines if line.startswith("E")]
        assert ids == _ordered_experiment_ids()

    def test_help_renders_examples_and_docs_epilog(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        output = capsys.readouterr().out
        assert "examples:" in output
        assert "python -m repro.cli run E15" in output
        assert "docs/ARCHITECTURE.md" in output
        assert "docs/PERFORMANCE.md" in output
        assert "PYTHONPATH=src python -m pytest -x -q" in output

    def test_run_help_carries_the_epilog_too(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--help"])
        assert excinfo.value.code == 0
        assert "examples:" in capsys.readouterr().out

    def test_help_documents_the_campaign_command(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        output = capsys.readouterr().out
        assert "campaign --repeats 25 --workers 4" in output
        assert "byte-identical JSONL" in output


class TestCampaignCommand:
    ARGS = ["campaign", "--repeats", "2", "--adversaries", "crash", "outside_hull",
            "--dimensions", "1", "2", "--seed", "17"]

    def test_runs_grid_and_writes_jsonl(self, tmp_path, capsys):
        target = tmp_path / "sweep.jsonl"
        assert main(self.ARGS + ["--jsonl", str(target)]) == 0
        output = capsys.readouterr().out
        assert "Campaign summary" in output
        assert "wrote 8 rows" in output
        rows = [json.loads(line) for line in target.read_text().splitlines()]
        assert len(rows) == 8
        assert all(row["status"] == "ok" for row in rows)

    def test_same_seed_same_rows_for_any_worker_count(self, tmp_path, capsys):
        one = tmp_path / "w1.jsonl"
        two = tmp_path / "w2.jsonl"
        assert main(self.ARGS + ["--jsonl", str(one), "--workers", "1"]) == 0
        assert main(self.ARGS + ["--jsonl", str(two), "--workers", "2"]) == 0
        capsys.readouterr()
        assert strip_timing(read_jsonl(one)) == strip_timing(read_jsonl(two))

    def test_grid_file(self, tmp_path, capsys):
        grid = tmp_path / "campaign.json"
        grid.write_text(json.dumps({
            "name": "filed",
            "grid": {"protocols": ["exact"], "adversaries": ["crash"], "repeats": 2},
        }))
        target = tmp_path / "filed.jsonl"
        assert main(["campaign", "--grid-file", str(grid), "--jsonl", str(target)]) == 0
        assert "filed" in capsys.readouterr().out
        assert len(target.read_text().splitlines()) == 2

    def test_coordinated_adversary_grid_runs_clean(self, capsys):
        assert main(["campaign", "--adversaries", "split_world", "hull_collapse",
                     "--dimensions", "1", "--repeats", "1", "--seed", "23"]) == 0
        assert "Campaign summary" in capsys.readouterr().out


class TestFuzzCommand:
    def test_small_fuzz_run_writes_jsonl(self, tmp_path, capsys):
        target = tmp_path / "fuzz.jsonl"
        assert main(["fuzz", "--count", "4", "--seed", "19",
                     "--protocols", "exact", "--jsonl", str(target)]) == 0
        output = capsys.readouterr().out
        assert "Fuzz summary" in output
        assert "all scenarios upheld agreement and validity" in output
        rows = [json.loads(line) for line in target.read_text().splitlines()]
        assert len(rows) == 4
        assert all(row["status"] == "ok" for row in rows)


class TestStoreFlags:
    ARGS = ["campaign", "--protocols", "restricted_sync", "--adversaries", "none", "crash",
            "--dimensions", "1", "--repeats", "2", "--seed", "17", "--max-rounds", "2"]

    def test_parser_accepts_store_trio(self):
        arguments = build_parser().parse_args(
            self.ARGS + ["--store", "s.db", "--store-backend", "sqlite", "--resume"]
        )
        assert str(arguments.store) == "s.db"
        assert arguments.store_backend == "sqlite"
        assert arguments.resume is True

    def test_resume_requires_store(self, capsys):
        with pytest.raises(SystemExit, match="--resume requires --store"):
            main(self.ARGS + ["--resume"])

    def test_campaign_store_roundtrip_serves_cached_trials(self, tmp_path, capsys):
        store = tmp_path / "s.db"
        cold = tmp_path / "cold.jsonl"
        warm = tmp_path / "warm.jsonl"
        assert main(self.ARGS + ["--store", str(store), "--jsonl", str(cold)]) == 0
        cold_out = capsys.readouterr().out
        assert "0 served from cache, 4 executed" in cold_out
        assert main(self.ARGS + ["--store", str(store), "--resume",
                                 "--jsonl", str(warm)]) == 0
        warm_out = capsys.readouterr().out
        assert "4 served from cache, 0 executed" in warm_out
        assert strip_timing(read_jsonl(cold)) == strip_timing(read_jsonl(warm))

    def test_without_resume_store_records_but_does_not_serve(self, tmp_path, capsys):
        store = tmp_path / "s.db"
        assert main(self.ARGS + ["--store", str(store)]) == 0
        capsys.readouterr()
        assert main(self.ARGS + ["--store", str(store)]) == 0
        assert "0 served from cache" in capsys.readouterr().out

    def test_fuzz_accepts_store_and_resume(self, tmp_path, capsys):
        store = tmp_path / "fuzz.db"
        args = ["fuzz", "--count", "4", "--seed", "19", "--protocols", "exact",
                "--store", str(store)]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args + ["--resume"]) == 0
        output = capsys.readouterr().out
        assert "4 served from cache, 0 executed" in output
        assert "all scenarios upheld agreement and validity" in output

    def test_run_experiment_against_store(self, tmp_path, capsys):
        from repro.store import open_store

        store = tmp_path / "exp.db"
        assert main(["run", "E5", "--store", str(store)]) == 0
        capsys.readouterr()
        with open_store(store) as opened:
            populated = len(opened)
        assert populated > 0
        # Warm rerun serves from the store and renders the same table.
        assert main(["run", "E5", "--store", str(store)]) == 0
        assert "Theorem 3" in capsys.readouterr().out


class TestStoreCommand:
    def _populate(self, tmp_path, capsys):
        store = tmp_path / "s.db"
        jsonl = tmp_path / "rows.jsonl"
        assert main(["campaign", "--protocols", "restricted_sync",
                     "--adversaries", "none", "crash", "--dimensions", "1",
                     "--repeats", "2", "--seed", "17", "--max-rounds", "2",
                     "--store", str(store), "--jsonl", str(jsonl)]) == 0
        capsys.readouterr()
        return store, jsonl

    def test_stats(self, tmp_path, capsys):
        store, _ = self._populate(tmp_path, capsys)
        assert main(["store", "stats", "--store", str(store)]) == 0
        output = capsys.readouterr().out
        assert "sqlite" in output
        assert "By status" in output

    def test_query_with_filters_and_limit(self, tmp_path, capsys):
        store, _ = self._populate(tmp_path, capsys)
        assert main(["store", "query", "--store", str(store),
                     "--adversary", "crash", "--limit", "1"]) == 0
        output = capsys.readouterr().out
        assert "Store query" in output
        assert "crash" in output
        assert main(["store", "query", "--store", str(store),
                     "--protocol", "approx"]) == 0
        assert "no matching trials" in capsys.readouterr().out

    def test_query_aggregate(self, tmp_path, capsys):
        store, _ = self._populate(tmp_path, capsys)
        assert main(["store", "query", "--store", str(store),
                     "--aggregate", "protocol", "adversary"]) == 0
        output = capsys.readouterr().out
        assert "Store aggregate" in output
        assert "restricted_sync" in output

    def test_export_matches_campaign_jsonl(self, tmp_path, capsys):
        store, jsonl = self._populate(tmp_path, capsys)
        exported = tmp_path / "export.jsonl"
        assert main(["store", "export", "--store", str(store),
                     "--output", str(exported)]) == 0
        assert "exported 4 rows" in capsys.readouterr().out
        # Same rows, just store-ordered (by content key) instead of spec order.
        assert sorted(strip_timing(read_jsonl(exported))) == sorted(
            strip_timing(read_jsonl(jsonl))
        )

    def test_export_excludes_other_engine_versions_by_default(self, tmp_path, capsys):
        # A version-mixed store must not produce a version-mixed (and
        # therefore unlabellable) export: only the requested revision ships.
        from repro.store import open_store

        store, jsonl = self._populate(tmp_path, capsys)
        with open_store(store) as opened:
            opened.import_jsonl(jsonl, engine_version="0.0.1/rows0")
            assert len(opened) == 8  # 4 current + 4 stale
        exported = tmp_path / "export.jsonl"
        assert main(["store", "export", "--store", str(store),
                     "--output", str(exported)]) == 0
        assert "exported 4 rows" in capsys.readouterr().out
        stale_export = tmp_path / "stale.jsonl"
        assert main(["store", "export", "--store", str(store),
                     "--engine-version", "0.0.1/rows0",
                     "--output", str(stale_export)]) == 0
        assert "exported 4 rows" in capsys.readouterr().out

    def test_gc_reports_zero_on_fresh_store(self, tmp_path, capsys):
        store, _ = self._populate(tmp_path, capsys)
        assert main(["store", "gc", "--store", str(store), "--dry-run"]) == 0
        assert "would delete 0 rows" in capsys.readouterr().out

    def test_query_rejects_negative_limit(self, tmp_path, capsys):
        store, _ = self._populate(tmp_path, capsys)
        with pytest.raises(SystemExit, match="--limit must be >= 0"):
            main(["store", "query", "--store", str(store), "--limit", "-5"])

    def test_import_with_stale_engine_version_is_not_served(self, tmp_path, capsys):
        _, jsonl = self._populate(tmp_path, capsys)
        rebuilt = tmp_path / "stale.db"
        assert main(["store", "import", "--store", str(rebuilt), "--jsonl", str(jsonl),
                     "--engine-version", "0.0.1/rows0"]) == 0
        capsys.readouterr()
        assert main(["campaign", "--protocols", "restricted_sync",
                     "--adversaries", "none", "crash", "--dimensions", "1",
                     "--repeats", "2", "--seed", "17", "--max-rounds", "2",
                     "--store", str(rebuilt), "--resume"]) == 0
        # Old-engine rows must not launder into cache hits.
        assert "0 served from cache, 4 executed" in capsys.readouterr().out

    def test_import_rebuilds_a_servable_store(self, tmp_path, capsys):
        _, jsonl = self._populate(tmp_path, capsys)
        rebuilt = tmp_path / "rebuilt.db"
        assert main(["store", "import", "--store", str(rebuilt),
                     "--jsonl", str(jsonl)]) == 0
        assert "imported 4 rows" in capsys.readouterr().out
        assert main(["campaign", "--protocols", "restricted_sync",
                     "--adversaries", "none", "crash", "--dimensions", "1",
                     "--repeats", "2", "--seed", "17", "--max-rounds", "2",
                     "--store", str(rebuilt), "--resume"]) == 0
        assert "4 served from cache, 0 executed" in capsys.readouterr().out


class TestEngineFlag:
    def test_run_help_derives_experiment_range_from_registry(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--help"])
        assert excinfo.value.code == 0
        output = capsys.readouterr().out
        ordered = _ordered_experiment_ids()
        assert f"experiment id ({ordered[0]}..{ordered[-1]})" in output
        assert "E1..E15" not in output  # the stale hard-coded range must be gone

    def test_campaign_engine_choices_are_byte_identical(self, tmp_path, capsys):
        args = ["campaign", "--protocols", "restricted_sync",
                "--adversaries", "none", "crash",
                "--dimensions", "2", "--repeats", "2", "--seed", "5",
                "--max-rounds", "3"]
        paths = {}
        for engine in ("object", "vectorized", "auto"):
            paths[engine] = tmp_path / f"{engine}.jsonl"
            assert main(args + ["--engine", engine, "--jsonl", str(paths[engine])]) == 0
        capsys.readouterr()
        rows = {engine: strip_timing(read_jsonl(path)) for engine, path in paths.items()}
        assert rows["object"] == rows["vectorized"] == rows["auto"]

    def test_campaign_summary_reports_engine(self, capsys):
        assert main(["campaign", "--protocols", "exact", "--adversaries", "none",
                     "--dimensions", "1", "--repeats", "2", "--engine", "vectorized"]) == 0
        output = capsys.readouterr().out
        assert "vectorized" in output

    def test_fuzz_accepts_engine_flag(self, tmp_path, capsys):
        target = tmp_path / "fuzz.jsonl"
        assert main(["fuzz", "--count", "4", "--seed", "19", "--protocols", "exact",
                     "--engine", "vectorized", "--jsonl", str(target)]) == 0
        assert "Fuzz summary" in capsys.readouterr().out
        assert len(target.read_text().splitlines()) == 4

    def test_unknown_engine_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", "--engine", "warp"])
        assert excinfo.value.code == 2
