"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import EXPERIMENT_REGISTRY, _ordered_experiment_ids, build_parser, main
from repro.engine import read_jsonl, strip_timing


class TestParser:
    def test_list_command(self):
        arguments = build_parser().parse_args(["list"])
        assert arguments.command == "list"

    def test_run_command_with_output(self, tmp_path):
        arguments = build_parser().parse_args(["run", "E2", "--output", str(tmp_path / "out.txt")])
        assert arguments.command == "run"
        assert arguments.experiment == "E2"

    def test_bounds_defaults(self):
        arguments = build_parser().parse_args(["bounds"])
        assert arguments.dimension == 2
        assert arguments.faults == 1

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_campaign_defaults(self):
        arguments = build_parser().parse_args(["campaign"])
        assert arguments.command == "campaign"
        assert arguments.protocols == ["exact"]
        assert arguments.workers == 1
        assert arguments.repeats == 25

    def test_campaign_grid_flags(self):
        arguments = build_parser().parse_args(
            ["campaign", "--protocols", "exact", "approx", "--dimensions", "1", "2",
             "--workers", "4", "--jsonl", "out.jsonl", "--seed", "9"]
        )
        assert arguments.protocols == ["exact", "approx"]
        assert arguments.dimensions == [1, 2]
        assert arguments.workers == 4
        assert arguments.seed == 9

    def test_campaign_rejects_unknown_protocol(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--protocols", "bogus"])

    def test_campaign_accepts_coordinated_adversaries(self):
        arguments = build_parser().parse_args(
            ["campaign", "--adversaries", "split_world", "hull_collapse",
             "adaptive_extreme", "theorem4_scenario"]
        )
        assert arguments.adversaries == [
            "split_world", "hull_collapse", "adaptive_extreme", "theorem4_scenario"
        ]

    def test_fuzz_defaults(self):
        arguments = build_parser().parse_args(["fuzz"])
        assert arguments.command == "fuzz"
        assert arguments.count == 200
        assert arguments.workers == 1
        assert "split_world" in arguments.adversaries

    def test_fuzz_rejects_unknown_adversary(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fuzz", "--adversaries", "bogus"])


class TestMain:
    def test_list_prints_all_ids(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for experiment_id in EXPERIMENT_REGISTRY:
            assert experiment_id in output

    def test_bounds(self, capsys):
        assert main(["bounds", "--dimension", "3", "--faults", "2"]) == 0
        output = capsys.readouterr().out
        assert "11" in output  # (d+2)f+1 = 11 for d=3, f=2

    def test_run_cheap_experiment(self, capsys):
        assert main(["run", "E2"]) == 0
        output = capsys.readouterr().out
        assert "Theorem 1" in output
        assert "yes" in output

    def test_run_is_case_insensitive(self, capsys):
        assert main(["run", "e13"]) == 0
        assert "approx_async" in capsys.readouterr().out

    def test_run_writes_output_file(self, tmp_path, capsys):
        target = tmp_path / "table.txt"
        assert main(["run", "E13", "--output", str(target)]) == 0
        capsys.readouterr()
        assert target.exists()
        assert "approx_async" in target.read_text()

    def test_unknown_experiment_fails(self, capsys):
        assert main(["run", "E99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_registry_covers_design_doc_ids(self):
        # E10 and E12 are covered by the E6/E11 runners respectively; everything
        # else from DESIGN.md must be present, plus the E15 kernel experiment.
        for required in (
            "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E11", "E13", "E14", "E15",
            "E16",
        ):
            assert required in EXPERIMENT_REGISTRY

    def test_experiments_ordered_numerically(self):
        # Lexicographic sorting would put E11/E13/E14/E15 between E1 and E2.
        assert _ordered_experiment_ids() == [
            "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E11", "E13", "E14", "E15",
            "E16",
        ]

    def test_list_output_in_numeric_order(self, capsys):
        assert main(["list"]) == 0
        lines = capsys.readouterr().out.splitlines()
        ids = [line.split()[0] for line in lines if line.startswith("E")]
        assert ids == _ordered_experiment_ids()

    def test_help_renders_examples_and_docs_epilog(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        output = capsys.readouterr().out
        assert "examples:" in output
        assert "python -m repro.cli run E15" in output
        assert "docs/ARCHITECTURE.md" in output
        assert "docs/PERFORMANCE.md" in output
        assert "PYTHONPATH=src python -m pytest -x -q" in output

    def test_run_help_carries_the_epilog_too(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--help"])
        assert excinfo.value.code == 0
        assert "examples:" in capsys.readouterr().out

    def test_help_documents_the_campaign_command(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        output = capsys.readouterr().out
        assert "campaign --repeats 25 --workers 4" in output
        assert "byte-identical JSONL" in output


class TestCampaignCommand:
    ARGS = ["campaign", "--repeats", "2", "--adversaries", "crash", "outside_hull",
            "--dimensions", "1", "2", "--seed", "17"]

    def test_runs_grid_and_writes_jsonl(self, tmp_path, capsys):
        target = tmp_path / "sweep.jsonl"
        assert main(self.ARGS + ["--jsonl", str(target)]) == 0
        output = capsys.readouterr().out
        assert "Campaign summary" in output
        assert "wrote 8 rows" in output
        rows = [json.loads(line) for line in target.read_text().splitlines()]
        assert len(rows) == 8
        assert all(row["status"] == "ok" for row in rows)

    def test_same_seed_same_rows_for_any_worker_count(self, tmp_path, capsys):
        one = tmp_path / "w1.jsonl"
        two = tmp_path / "w2.jsonl"
        assert main(self.ARGS + ["--jsonl", str(one), "--workers", "1"]) == 0
        assert main(self.ARGS + ["--jsonl", str(two), "--workers", "2"]) == 0
        capsys.readouterr()
        assert strip_timing(read_jsonl(one)) == strip_timing(read_jsonl(two))

    def test_grid_file(self, tmp_path, capsys):
        grid = tmp_path / "campaign.json"
        grid.write_text(json.dumps({
            "name": "filed",
            "grid": {"protocols": ["exact"], "adversaries": ["crash"], "repeats": 2},
        }))
        target = tmp_path / "filed.jsonl"
        assert main(["campaign", "--grid-file", str(grid), "--jsonl", str(target)]) == 0
        assert "filed" in capsys.readouterr().out
        assert len(target.read_text().splitlines()) == 2

    def test_coordinated_adversary_grid_runs_clean(self, capsys):
        assert main(["campaign", "--adversaries", "split_world", "hull_collapse",
                     "--dimensions", "1", "--repeats", "1", "--seed", "23"]) == 0
        assert "Campaign summary" in capsys.readouterr().out


class TestFuzzCommand:
    def test_small_fuzz_run_writes_jsonl(self, tmp_path, capsys):
        target = tmp_path / "fuzz.jsonl"
        assert main(["fuzz", "--count", "4", "--seed", "19",
                     "--protocols", "exact", "--jsonl", str(target)]) == 0
        output = capsys.readouterr().out
        assert "Fuzz summary" in output
        assert "all scenarios upheld agreement and validity" in output
        rows = [json.loads(line) for line in target.read_text().splitlines()]
        assert len(rows) == 4
        assert all(row["status"] == "ok" for row in rows)


class TestEngineFlag:
    def test_run_help_derives_experiment_range_from_registry(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--help"])
        assert excinfo.value.code == 0
        output = capsys.readouterr().out
        ordered = _ordered_experiment_ids()
        assert f"experiment id ({ordered[0]}..{ordered[-1]})" in output
        assert "E1..E15" not in output  # the stale hard-coded range must be gone

    def test_campaign_engine_choices_are_byte_identical(self, tmp_path, capsys):
        args = ["campaign", "--protocols", "restricted_sync",
                "--adversaries", "none", "crash",
                "--dimensions", "2", "--repeats", "2", "--seed", "5",
                "--max-rounds", "3"]
        paths = {}
        for engine in ("object", "vectorized", "auto"):
            paths[engine] = tmp_path / f"{engine}.jsonl"
            assert main(args + ["--engine", engine, "--jsonl", str(paths[engine])]) == 0
        capsys.readouterr()
        rows = {engine: strip_timing(read_jsonl(path)) for engine, path in paths.items()}
        assert rows["object"] == rows["vectorized"] == rows["auto"]

    def test_campaign_summary_reports_engine(self, capsys):
        assert main(["campaign", "--protocols", "exact", "--adversaries", "none",
                     "--dimensions", "1", "--repeats", "2", "--engine", "vectorized"]) == 0
        output = capsys.readouterr().out
        assert "vectorized" in output

    def test_fuzz_accepts_engine_flag(self, tmp_path, capsys):
        target = tmp_path / "fuzz.jsonl"
        assert main(["fuzz", "--count", "4", "--seed", "19", "--protocols", "exact",
                     "--engine", "vectorized", "--jsonl", str(target)]) == 0
        assert "Fuzz summary" in capsys.readouterr().out
        assert len(target.read_text().splitlines()) == 4

    def test_unknown_engine_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", "--engine", "warp"])
        assert excinfo.value.code == 2
