"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import EXPERIMENT_REGISTRY, build_parser, main


class TestParser:
    def test_list_command(self):
        arguments = build_parser().parse_args(["list"])
        assert arguments.command == "list"

    def test_run_command_with_output(self, tmp_path):
        arguments = build_parser().parse_args(["run", "E2", "--output", str(tmp_path / "out.txt")])
        assert arguments.command == "run"
        assert arguments.experiment == "E2"

    def test_bounds_defaults(self):
        arguments = build_parser().parse_args(["bounds"])
        assert arguments.dimension == 2
        assert arguments.faults == 1

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_prints_all_ids(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for experiment_id in EXPERIMENT_REGISTRY:
            assert experiment_id in output

    def test_bounds(self, capsys):
        assert main(["bounds", "--dimension", "3", "--faults", "2"]) == 0
        output = capsys.readouterr().out
        assert "11" in output  # (d+2)f+1 = 11 for d=3, f=2

    def test_run_cheap_experiment(self, capsys):
        assert main(["run", "E2"]) == 0
        output = capsys.readouterr().out
        assert "Theorem 1" in output
        assert "yes" in output

    def test_run_is_case_insensitive(self, capsys):
        assert main(["run", "e13"]) == 0
        assert "approx_async" in capsys.readouterr().out

    def test_run_writes_output_file(self, tmp_path, capsys):
        target = tmp_path / "table.txt"
        assert main(["run", "E13", "--output", str(target)]) == 0
        capsys.readouterr()
        assert target.exists()
        assert "approx_async" in target.read_text()

    def test_unknown_experiment_fails(self, capsys):
        assert main(["run", "E99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_registry_covers_design_doc_ids(self):
        # E10 and E12 are covered by the E6/E11 runners respectively; everything
        # else from DESIGN.md must be present, plus the E15 kernel experiment.
        for required in (
            "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E11", "E13", "E14", "E15",
        ):
            assert required in EXPERIMENT_REGISTRY

    def test_help_renders_examples_and_docs_epilog(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        output = capsys.readouterr().out
        assert "examples:" in output
        assert "python -m repro.cli run E15" in output
        assert "docs/ARCHITECTURE.md" in output
        assert "docs/PERFORMANCE.md" in output
        assert "PYTHONPATH=src python -m pytest -x -q" in output

    def test_run_help_carries_the_epilog_too(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--help"])
        assert excinfo.value.code == 0
        assert "examples:" in capsys.readouterr().out
