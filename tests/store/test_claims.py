"""Claim coordination: concurrent campaigns over one store do disjoint work.

The SQLite backend's ``claims`` table is the multi-process story behind the
executor's write-through cache: a miss is claimed before it runs, a denied
claim means another live process owns that trial, and the denier serves the
owner's committed rows instead of recomputing.  These tests pin the claim
semantics at the backend level and the zero-duplicate-computation guarantee
at the executor level.
"""

from __future__ import annotations

import threading

from repro.engine import TrialSpec, execute_specs, run_trial, strip_timing
from repro.engine.executor import StoreCacheStats
from repro.store.backend import JsonlDirectoryStore, SqliteResultStore


def _specs(count: int = 8) -> list[TrialSpec]:
    return [
        TrialSpec(protocol="exact", workload="uniform_box", process_count=5,
                  dimension=1, fault_bound=1, seed=index, trial_index=index)
        for index in range(count)
    ]


class TestSqliteClaims:
    def test_first_owner_wins_and_second_is_denied(self, tmp_path):
        path = tmp_path / "store.db"
        first, second = SqliteResultStore(path), SqliteResultStore(path)
        keys = [f"k{index}" for index in range(6)]
        assert first.claim_keys(keys, "A") == set(keys)
        assert second.claim_keys(keys, "B") == set()
        # Disjoint keys are granted freely.
        assert second.claim_keys(["other"], "B") == {"other"}
        first.close(), second.close()

    def test_reclaim_by_same_owner_is_idempotent(self, tmp_path):
        store = SqliteResultStore(tmp_path / "store.db")
        assert store.claim_keys(["k"], "A") == {"k"}
        assert store.claim_keys(["k"], "A") == {"k"}
        store.close()

    def test_commit_settles_the_claim_and_denies_future_claims(self, tmp_path):
        path = tmp_path / "store.db"
        first, second = SqliteResultStore(path), SqliteResultStore(path)
        first.claim_keys(["k"], "A")
        result = run_trial(_specs(1)[0])
        first.put_rows([("k", result.to_row())])
        # The claim died with the commit; a committed key is a cache hit,
        # not claimable work.
        assert second.claim_keys(["k"], "B") == set()
        assert first.release_claims(["k"], "A") == 0
        first.close(), second.close()

    def test_release_frees_keys_for_other_owners(self, tmp_path):
        path = tmp_path / "store.db"
        first, second = SqliteResultStore(path), SqliteResultStore(path)
        first.claim_keys(["k1", "k2"], "A")
        assert first.release_claims(["k1"], "A") == 1
        assert second.claim_keys(["k1", "k2"], "B") == {"k1"}
        first.close(), second.close()

    def test_release_requires_ownership(self, tmp_path):
        store = SqliteResultStore(tmp_path / "store.db")
        store.claim_keys(["k"], "A")
        assert store.release_claims(["k"], "B") == 0
        assert store.claim_keys(["k"], "C") == set()
        store.close()

    def test_expired_claims_are_reclaimable(self, tmp_path):
        store = SqliteResultStore(tmp_path / "store.db")
        store.claim_keys(["k"], "A")
        # Backdate the claim past the TTL: a crashed owner must not block
        # other processes forever.
        with store._connection:
            store._connection.execute(
                "UPDATE claims SET claimed_at = claimed_at - ?",
                (store.CLAIM_TTL_SECONDS + 1,),
            )
        assert store.claim_keys(["k"], "B") == {"k"}
        store.close()

    def test_jsonl_backend_grants_everything(self, tmp_path):
        store = JsonlDirectoryStore(tmp_path / "store")
        assert store.claim_keys(["a", "b"], "A") == {"a", "b"}
        assert store.claim_keys(["a"], "B") == {"a"}  # single-writer world
        assert store.release_claims(["a"], "A") == 0
        store.close()


class TestConcurrentCampaigns:
    def test_two_executors_sharing_a_store_never_duplicate_work(self, tmp_path):
        """ROADMAP item 1 acceptance: cache hits + executed = total, per run."""
        path = tmp_path / "store.db"
        specs = _specs(8)
        expected = strip_timing(result.to_row() for result in execute_specs(specs))

        outputs: dict[str, list[str]] = {}
        stats = {"A": StoreCacheStats(), "B": StoreCacheStats()}
        errors: list[BaseException] = []

        def campaign(name: str) -> None:
            store = SqliteResultStore(path)  # one connection per "process"
            try:
                rows = [
                    result.to_row()
                    for result in execute_specs(
                        specs, store=store, cache_stats=stats[name],
                        claim_wait_timeout=120.0,
                    )
                ]
                outputs[name] = strip_timing(rows)
            except BaseException as error:  # noqa: BLE001 — surface in main thread
                errors.append(error)
            finally:
                store.close()

        threads = [threading.Thread(target=campaign, args=(name,)) for name in ("A", "B")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        assert not errors, errors
        # Both campaigns emit the full, byte-identical row stream ...
        assert outputs["A"] == outputs["B"] == expected
        # ... but every trial was computed exactly once across the pair:
        # each run's misses are its executions, deferred trials served from
        # the other run's commits count as hits.
        assert stats["A"].misses + stats["B"].misses == len(specs)
        assert stats["A"].hits + stats["A"].misses == len(specs)
        assert stats["B"].hits + stats["B"].misses == len(specs)

    def test_abandoned_claims_are_recomputed_after_timeout(self, tmp_path):
        path = tmp_path / "store.db"
        specs = _specs(4)
        from repro.store.keys import trial_key

        saboteur = SqliteResultStore(path)
        # A "crashed process": claims two trials, never commits them.
        saboteur.claim_keys([trial_key(specs[1]), trial_key(specs[2])], "ghost")

        store = SqliteResultStore(path)
        stats = StoreCacheStats()
        rows = [
            result.to_row()
            for result in execute_specs(
                specs, store=store, cache_stats=stats, claim_wait_timeout=1.0
            )
        ]
        expected = strip_timing(result.to_row() for result in execute_specs(specs))
        assert strip_timing(rows) == expected
        # The ghost's trials were recomputed locally: everything is a miss.
        assert (stats.hits, stats.misses) == (0, len(specs))
        saboteur.close(), store.close()


class TestInterruptResumeUnderPersistentPool:
    def test_interrupted_pooled_run_resumes_without_recompute(self, tmp_path):
        store_path = tmp_path / "store.db"
        specs = _specs(12)
        store = SqliteResultStore(store_path)
        stream = execute_specs(specs, store=store, workers=2, chunksize=2)
        consumed = [next(stream) for _ in range(3)]
        stream.close()  # interrupt mid-campaign; emitted rows are committed
        store.close()

        store = SqliteResultStore(store_path)
        stats = StoreCacheStats()
        results = list(execute_specs(specs, store=store, workers=2, cache_stats=stats))
        store.close()
        assert len(results) == len(specs)
        expected = strip_timing(result.to_row() for result in execute_specs(specs))
        assert strip_timing(result.to_row() for result in results) == expected
        # Commit-then-emit: everything consumed before the interrupt (at
        # minimum) is served from the store on resume.
        assert stats.hits >= len(consumed)
        assert stats.hits + stats.misses == len(specs)
