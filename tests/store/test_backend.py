"""Unit tests for repro.store.backend: both ResultStore implementations."""

from __future__ import annotations

import json

import pytest

from repro.engine import TrialResult, TrialSpec, run_trial
from repro.exceptions import ConfigurationError
from repro.store import (
    ENGINE_VERSION,
    JsonlDirectoryStore,
    SqliteResultStore,
    open_store,
    trial_key,
)

BACKENDS = ("sqlite", "jsonl")


def _make_store(backend: str, tmp_path):
    if backend == "sqlite":
        return SqliteResultStore(tmp_path / "store.db")
    return JsonlDirectoryStore(tmp_path / "store-dir")


def _result(seed: int = 1, process_count: int = 5) -> TrialResult:
    # Under-provisioned specs (n=3) produce deterministic error rows without
    # touching the LP stack — cheap fodder for storage tests.
    spec = TrialSpec(protocol="exact", workload="uniform_box",
                     process_count=process_count, dimension=2, fault_bound=1, seed=seed)
    return run_trial(spec)


@pytest.mark.parametrize("backend", BACKENDS)
class TestResultStoreContract:
    def test_put_get_roundtrip_and_contains(self, backend, tmp_path):
        store = _make_store(backend, tmp_path)
        result = _result(seed=1)
        key = trial_key(result.spec)
        assert key not in store
        assert store.put_results([(key, result)]) == 1
        assert key in store
        assert len(store) == 1
        assert store.get_rows([key]) == {key: result.to_row()}
        assert store.get_rows(["0" * 64]) == {}

    def test_error_rows_store_like_any_other(self, backend, tmp_path):
        store = _make_store(backend, tmp_path)
        error_result = _result(seed=2, process_count=3)
        assert error_result.status == "error"
        key = trial_key(error_result.spec)
        store.put_results([(key, error_result)])
        (entry,) = list(store.iter_entries())
        assert entry.row["status"] == "error"
        assert entry.result().to_row() == error_result.to_row()

    def test_last_write_wins(self, backend, tmp_path):
        store = _make_store(backend, tmp_path)
        result = _result(seed=3)
        key = trial_key(result.spec)
        store.put_results([(key, result)])
        store.put_results([(key, result)])
        assert len(store) == 1

    def test_persistence_across_reopen(self, backend, tmp_path):
        store = _make_store(backend, tmp_path)
        results = [_result(seed=seed, process_count=3) for seed in range(5)]
        store.put_results([(trial_key(result.spec), result) for result in results])
        store.close()
        reopened = _make_store(backend, tmp_path)
        assert len(reopened) == 5
        for result in results:
            assert trial_key(result.spec) in reopened
        reopened.close()

    def test_delete_keys_and_len(self, backend, tmp_path):
        store = _make_store(backend, tmp_path)
        results = [_result(seed=seed, process_count=3) for seed in range(4)]
        keys = [trial_key(result.spec) for result in results]
        store.put_results(zip(keys, results))
        assert store.delete_keys(keys[:2] + ["0" * 64]) == 2
        assert len(store) == 2
        # Deletion survives reopen (the jsonl backend must rewrite shards).
        store.close()
        reopened = _make_store(backend, tmp_path)
        assert len(reopened) == 2
        assert keys[0] not in reopened and keys[2] in reopened
        reopened.close()

    def test_gc_deletes_only_stale_engine_versions(self, backend, tmp_path):
        store = _make_store(backend, tmp_path)
        fresh = _result(seed=10, process_count=3)
        stale = _result(seed=11, process_count=3)
        store.put_rows([(trial_key(fresh.spec), fresh.to_row())])
        store.put_rows(
            [(trial_key(stale.spec, engine_version="0.0.1/rows0"), stale.to_row())],
            engine_version="0.0.1/rows0",
        )
        assert store.stats()["stale_trials"] == 1
        assert store.gc(dry_run=True) == 1
        assert len(store) == 2  # dry run deletes nothing
        assert store.gc() == 1
        assert len(store) == 1
        (entry,) = list(store.iter_entries())
        assert entry.engine_version == ENGINE_VERSION

    def test_iter_entries_sorted_and_filterable(self, backend, tmp_path):
        store = _make_store(backend, tmp_path)
        ok_result = _result(seed=5)
        error_result = _result(seed=6, process_count=3)
        store.put_results([
            (trial_key(ok_result.spec), ok_result),
            (trial_key(error_result.spec), error_result),
        ])
        keys = [entry.key for entry in store.iter_entries()]
        assert keys == sorted(keys)
        errors = list(store.iter_entries(where={"status": "error"}))
        assert [entry.row["status"] for entry in errors] == ["error"]
        shaped = list(store.iter_entries(where={"process_count": 5, "status": "ok"}))
        assert len(shaped) == 1
        with pytest.raises(ConfigurationError, match="unfilterable"):
            list(store.iter_entries(where={"bogus": 1}))

    def test_import_jsonl_rederives_keys(self, backend, tmp_path):
        results = [_result(seed=seed, process_count=3) for seed in range(3)]
        jsonl = tmp_path / "campaign.jsonl"
        jsonl.write_text("".join(result.to_json() + "\n" for result in results))
        store = _make_store(backend, tmp_path)
        assert store.import_jsonl(jsonl) == 3
        for result in results:
            assert trial_key(result.spec) in store

    def test_import_rejects_malformed_rows(self, backend, tmp_path):
        jsonl = tmp_path / "bad.jsonl"
        jsonl.write_text(json.dumps({"status": "ok", "bogus_field": 1}) + "\n")
        store = _make_store(backend, tmp_path)
        with pytest.raises(ConfigurationError, match="bad.jsonl: row 1"):
            store.import_jsonl(jsonl)

    def test_import_commits_nothing_when_a_later_row_is_malformed(self, backend, tmp_path):
        # Validation runs over the whole file before the first commit, so a
        # bad row 4 must not leave rows 1-3 servable in the store.
        results = [_result(seed=seed, process_count=3) for seed in range(3)]
        jsonl = tmp_path / "tail-bad.jsonl"
        jsonl.write_text(
            "".join(result.to_json() + "\n" for result in results)
            + json.dumps({"status": "ok", "bogus_field": 1}) + "\n"
        )
        store = _make_store(backend, tmp_path)
        with pytest.raises(ConfigurationError, match="row 4"):
            store.import_jsonl(jsonl, batch_size=2)  # batches smaller than the file
        assert len(store) == 0

    def test_import_under_old_engine_version_stays_unreachable(self, backend, tmp_path):
        # An old export imported under its true provenance must not become a
        # cache hit for current-salt lookups — it lands stale and gc'able.
        result = _result(seed=4, process_count=3)
        jsonl = tmp_path / "old.jsonl"
        jsonl.write_text(result.to_json() + "\n")
        store = _make_store(backend, tmp_path)
        assert store.import_jsonl(jsonl, engine_version="0.0.1/rows0") == 1
        assert trial_key(result.spec) not in store  # current salt cannot reach it
        assert trial_key(result.spec, engine_version="0.0.1/rows0") in store
        assert store.stats()["stale_trials"] == 1
        assert store.gc() == 1


@pytest.mark.parametrize("backend", BACKENDS)
class TestGenerationCounter:
    """The serving layer's cache-invalidation contract: the generation moves
    exactly when stored content changes (rows added/deleted), never on
    no-ops, and is visible across handles and reopens."""

    def test_bumps_only_when_rows_actually_change(self, backend, tmp_path):
        store = _make_store(backend, tmp_path)
        start = store.generation()
        assert store.put_rows([]) == 0
        assert store.generation() == start  # empty commit: no bump

        result = _result(seed=20, process_count=3)
        store.put_rows([(trial_key(result.spec), result.to_row())])
        after_put = store.generation()
        assert after_put > start

        assert store.delete_keys(["0" * 64]) == 0
        assert store.generation() == after_put  # nothing deleted: no bump
        assert store.delete_keys([trial_key(result.spec)]) == 1
        assert store.generation() > after_put

    def test_import_and_gc_bump_like_any_write(self, backend, tmp_path):
        store = _make_store(backend, tmp_path)
        result = _result(seed=21, process_count=3)
        jsonl = tmp_path / "import.jsonl"
        jsonl.write_text(result.to_json() + "\n")
        before = store.generation()
        assert store.import_jsonl(jsonl, engine_version="0.0.1/rows0") == 1
        imported = store.generation()
        assert imported > before
        assert store.gc(dry_run=True) == 1
        assert store.generation() == imported  # dry run: no bump
        assert store.gc() == 1
        assert store.generation() > imported

    def test_survives_reopen(self, backend, tmp_path):
        store = _make_store(backend, tmp_path)
        result = _result(seed=22, process_count=3)
        store.put_rows([(trial_key(result.spec), result.to_row())])
        committed = store.generation()
        assert committed > 0
        store.close()
        reopened = _make_store(backend, tmp_path)
        assert reopened.generation() == committed
        reopened.close()

    def test_refresh_sees_external_commits(self, backend, tmp_path):
        """Two handles on one store: a commit through one becomes visible to
        the other after refresh() — the pooled-read-handle contract."""
        reader = _make_store(backend, tmp_path)
        writer = _make_store(backend, tmp_path)
        assert reader.generation() == 0
        result = _result(seed=23, process_count=3)
        key = trial_key(result.spec)
        writer.put_rows([(key, result.to_row())])
        reader.refresh()
        assert reader.generation() == writer.generation()
        assert key in reader
        writer.close()
        reader.close()

    def test_iter_keys_matches_iter_entries(self, backend, tmp_path):
        store = _make_store(backend, tmp_path)
        ok_result = _result(seed=24)
        error_result = _result(seed=25, process_count=3)
        store.put_results([
            (trial_key(ok_result.spec), ok_result),
            (trial_key(error_result.spec), error_result),
        ])
        assert list(store.iter_keys()) == [entry.key for entry in store.iter_entries()]
        assert list(store.iter_keys(where={"status": "error"})) == [
            entry.key for entry in store.iter_entries(where={"status": "error"})
        ]
        assert list(store.iter_keys(where={"status": "timeout"})) == []

    def test_iter_entries_paginates_in_key_order(self, backend, tmp_path):
        store = _make_store(backend, tmp_path)
        results = [_result(seed=seed, process_count=3) for seed in range(5)]
        store.put_results([(trial_key(result.spec), result) for result in results])
        full = [entry.key for entry in store.iter_entries()]
        assert full == sorted(full)

        paged: list[str] = []
        after = None
        while True:
            page = [
                entry.key
                for entry in store.iter_entries(after_key=after, limit=2)
            ]
            if not page:
                break
            assert len(page) <= 2
            paged.extend(page)
            after = page[-1]
        assert paged == full


class TestJsonlDurability:
    def test_torn_trailing_line_is_skipped_on_load(self, tmp_path):
        store = JsonlDirectoryStore(tmp_path / "dir")
        result = _result(seed=1, process_count=3)
        key = trial_key(result.spec)
        store.put_results([(key, result)])
        (shard,) = list((tmp_path / "dir").glob("*.jsonl"))
        with shard.open("a", encoding="utf-8") as handle:
            handle.write('{"key": "interrupted-mid-wr')  # torn append
        reopened = JsonlDirectoryStore(tmp_path / "dir")
        assert reopened.corrupt_lines == 1
        assert len(reopened) == 1
        assert key in reopened

    def test_rejects_file_path(self, tmp_path):
        target = tmp_path / "not-a-dir"
        target.write_text("hello")
        with pytest.raises(ConfigurationError, match="not a directory"):
            JsonlDirectoryStore(target)


class TestOpenStore:
    def test_auto_detection(self, tmp_path):
        assert open_store(tmp_path / "warehouse.db").backend_name == "sqlite"
        assert open_store(tmp_path / "warehouse").backend_name == "jsonl"
        # Existing layouts win over suffix heuristics.
        directory = tmp_path / "existing.db"
        directory.mkdir()
        assert open_store(directory).backend_name == "jsonl"

    def test_explicit_backend(self, tmp_path):
        assert open_store(tmp_path / "x", backend="sqlite").backend_name == "sqlite"
        assert open_store(tmp_path / "y.db", backend="jsonl").backend_name == "jsonl"

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="unknown store backend"):
            open_store(tmp_path / "x", backend="warp")

    def test_non_database_file_rejected(self, tmp_path):
        target = tmp_path / "corrupt.db"
        target.write_text("this is not a sqlite database, not even close")
        with pytest.raises(ConfigurationError, match="not a usable SQLite"):
            open_store(target)

    def test_unopenable_sqlite_path_rejected(self, tmp_path):
        # e.g. pointing the sqlite backend at a directory a jsonl store made.
        directory = tmp_path / "jsonl-store"
        directory.mkdir()
        with pytest.raises(ConfigurationError, match="not a usable SQLite"):
            open_store(directory, backend="sqlite")
