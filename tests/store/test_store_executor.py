"""Integration tests: the executor's write-through store cache.

The cache-correctness contract under test: a campaign run twice against the
same store produces byte-identical export rows (modulo ``elapsed_ms``) with
zero recomputed trials — whichever engine executes the misses and however
many workers fan them out.
"""

from __future__ import annotations

import pytest

from repro.engine import (
    ENGINE_CHOICES,
    Campaign,
    TrialSpec,
    StoreCacheStats,
    execute_specs,
    read_jsonl,
    run_campaign,
    strip_timing,
)
from repro.store import SqliteResultStore, open_store, trial_key


def _mixed_campaign() -> Campaign:
    """A small grid exercising columnar-eligible, object-only and error rows."""
    grid = Campaign.from_grid(
        "store-mixed",
        protocols=("restricted_sync",),
        adversaries=("none", "crash"),
        dimensions=(1,),
        repeats=2,
        base_seed=31,
        max_rounds_override=2,
    )
    extra = [
        # Coordinated adversary: always falls back to the object engine.
        TrialSpec(protocol="restricted_sync", workload="uniform_box", adversary="split_world",
                  process_count=4, dimension=1, fault_bound=1, max_rounds_override=2, seed=5),
        # Under-provisioned: a deterministic error row.
        TrialSpec(protocol="exact", workload="uniform_box",
                  process_count=3, dimension=2, fault_bound=1, seed=6),
    ]
    return Campaign.from_specs("store-mixed", list(grid.specs) + extra)


class TestCacheCorrectness:
    @pytest.mark.parametrize("engine", ENGINE_CHOICES)
    @pytest.mark.parametrize("workers", (1, 4))
    def test_second_run_is_byte_identical_with_zero_recomputation(
        self, engine, workers, tmp_path
    ):
        campaign = _mixed_campaign()
        store_path = tmp_path / "store.db"
        cold_jsonl = tmp_path / "cold.jsonl"
        warm_jsonl = tmp_path / "warm.jsonl"
        cold, _ = run_campaign(
            campaign, workers=workers, jsonl_path=cold_jsonl,
            engine=engine, store=store_path,
        )
        warm, _ = run_campaign(
            campaign, workers=workers, jsonl_path=warm_jsonl,
            engine=engine, store=store_path,
        )
        assert cold.cache_hits == 0
        assert warm.cache_hits == warm.trials == len(campaign)  # zero recomputed
        assert strip_timing(read_jsonl(cold_jsonl)) == strip_timing(read_jsonl(warm_jsonl))
        # Store-served rows are also identical to a storeless reference run.
        plain_jsonl = tmp_path / "plain.jsonl"
        run_campaign(campaign, workers=1, jsonl_path=plain_jsonl, engine=engine)
        assert strip_timing(read_jsonl(plain_jsonl)) == strip_timing(read_jsonl(warm_jsonl))

    def test_cache_serves_across_engines_and_worker_counts(self, tmp_path):
        # One cold auto run; every (engine, workers) combination replays warm.
        campaign = _mixed_campaign()
        store_path = tmp_path / "store.db"
        cold_jsonl = tmp_path / "cold.jsonl"
        run_campaign(campaign, workers=1, jsonl_path=cold_jsonl, engine="auto",
                     store=store_path)
        reference = strip_timing(read_jsonl(cold_jsonl))
        for engine in ENGINE_CHOICES:
            for workers in (1, 4):
                warm_jsonl = tmp_path / f"warm-{engine}-w{workers}.jsonl"
                warm, _ = run_campaign(
                    campaign, workers=workers, jsonl_path=warm_jsonl,
                    engine=engine, store=store_path,
                )
                assert warm.cache_hits == len(campaign), (engine, workers)
                assert strip_timing(read_jsonl(warm_jsonl)) == reference, (engine, workers)

    def test_cache_hits_across_different_trial_indices(self, tmp_path):
        # The same physical trial at a different campaign position must hit:
        # trial_index is excluded from the content address, and the served
        # row must carry the *requested* position.
        spec = TrialSpec(protocol="restricted_sync", workload="uniform_box", adversary="none",
                         process_count=4, dimension=1, fault_bound=1,
                         max_rounds_override=2, seed=9)
        filler = TrialSpec(protocol="exact", workload="uniform_box",
                           process_count=3, dimension=2, fault_bound=1, seed=10)
        store_path = tmp_path / "store.db"
        first = Campaign.from_specs("first", [spec])
        run_campaign(first, store=store_path)
        shifted = Campaign.from_specs("shifted", [filler, spec])
        summary, results = run_campaign(
            shifted, store=store_path, collect=True
        )
        assert summary.cache_hits == 1
        assert results[1].spec.trial_index == 1
        assert results[1].to_row()["spec_trial_index"] == 1

    def test_reuse_cached_false_records_but_recomputes(self, tmp_path):
        campaign = _mixed_campaign()
        store_path = tmp_path / "store.db"
        run_campaign(campaign, store=store_path)
        refreshed, _ = run_campaign(campaign, store=store_path, reuse_cached=False)
        assert refreshed.cache_hits == 0
        with open_store(store_path) as store:
            assert len(store) == len(campaign)  # idempotent overwrite, no duplicates

    def test_record_history_trials_are_never_served(self, tmp_path):
        spec = TrialSpec(protocol="approx", workload="uniform_box", adversary="none",
                         process_count=4, dimension=1, fault_bound=1, epsilon=0.3,
                         max_rounds_override=3, seed=5, record_history=True)
        campaign = Campaign.from_specs("history", [spec])
        store_path = tmp_path / "store.db"
        run_campaign(campaign, store=store_path)
        summary, results = run_campaign(campaign, store=store_path, collect=True)
        assert summary.cache_hits == 0  # cached row cannot satisfy histories
        assert results[0].state_histories  # the re-run kept them
        # But the row it recorded *is* servable by the history-free twin.
        twin = Campaign.from_specs(
            "twin", [TrialSpec(**{**spec.to_dict(), "record_history": False})]
        )
        twin_summary, _ = run_campaign(twin, store=store_path)
        assert twin_summary.cache_hits == 1


class TestResume:
    def test_interrupted_campaign_resumes_with_only_missing_trials(self, tmp_path):
        campaign = _mixed_campaign()
        store_path = tmp_path / "store.db"
        # "Interrupt" after the first three trials: run a prefix sub-campaign.
        prefix = Campaign.from_specs(campaign.name, campaign.specs[:3])
        run_campaign(prefix, store=store_path)
        resumed_jsonl = tmp_path / "resumed.jsonl"
        resumed, _ = run_campaign(
            campaign, jsonl_path=resumed_jsonl, store=store_path
        )
        assert resumed.cache_hits == 3  # only the missing trials executed
        uninterrupted_jsonl = tmp_path / "uninterrupted.jsonl"
        run_campaign(campaign, jsonl_path=uninterrupted_jsonl)
        assert strip_timing(read_jsonl(resumed_jsonl)) == strip_timing(
            read_jsonl(uninterrupted_jsonl)
        )

    def test_abandoned_iterator_keeps_committed_units(self, tmp_path):
        # Error specs are cheap and object-engine only: 40 of them split into
        # STORE_COMMIT_CHUNK-sized transactional units.
        specs = [
            TrialSpec(protocol="exact", workload="uniform_box",
                      process_count=3, dimension=2, fault_bound=1, seed=seed,
                      trial_index=index)
            for index, seed in enumerate(range(40))
        ]
        store = SqliteResultStore(tmp_path / "store.db")
        stats = StoreCacheStats()
        # engine="object": under "auto" these same-shape specs would form one
        # columnar unit and commit all 40 rows in its single transaction.
        iterator = execute_specs(specs, store=store, cache_stats=stats, engine="object")
        for _ in range(5):
            next(iterator)
        iterator.close()  # simulate the interruption
        committed = len(store)
        assert committed >= 5  # everything emitted was committed first
        assert committed < len(specs)  # ... but the run did not finish
        resumed_stats = StoreCacheStats()
        results = list(
            execute_specs(specs, store=store, cache_stats=resumed_stats)
        )
        assert len(results) == len(specs)
        assert resumed_stats.hits == committed
        assert resumed_stats.misses == len(specs) - committed
        store.close()

    def test_stats_hit_rate(self):
        stats = StoreCacheStats(hits=3, misses=1)
        assert stats.total == 4
        assert stats.hit_rate == 0.75
        assert StoreCacheStats().hit_rate == 0.0


class TestStoreKeysAgainstLiveRows:
    def test_store_rows_keyed_by_spec_content(self, tmp_path):
        campaign = _mixed_campaign()
        store_path = tmp_path / "store.db"
        run_campaign(campaign, store=store_path)
        with open_store(store_path) as store:
            for spec in campaign.specs:
                assert trial_key(spec) in store
