"""Unit tests for repro.store.keys: canonical content addresses."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.engine import TrialSpec
from repro.exceptions import ConfigurationError
from repro.store import ENGINE_VERSION, VOLATILE_SPEC_FIELDS, canonical_spec_payload, trial_key


def _spec(**overrides) -> TrialSpec:
    base = dict(protocol="exact", workload="uniform_box", adversary="crash",
                process_count=5, dimension=2, fault_bound=1, seed=7)
    base.update(overrides)
    return TrialSpec(**base)


class TestTrialKey:
    def test_deterministic_and_hex(self):
        assert trial_key(_spec()) == trial_key(_spec())
        assert len(trial_key(_spec())) == 64
        int(trial_key(_spec()), 16)  # valid hex digest

    def test_every_outcome_relevant_field_changes_the_key(self):
        base = trial_key(_spec())
        assert trial_key(_spec(seed=8)) != base
        assert trial_key(_spec(adversary="outside_hull")) != base
        assert trial_key(_spec(process_count=6)) != base
        assert trial_key(_spec(epsilon=0.3)) != base
        assert trial_key(_spec(adversary_params={"x": 1})) != base
        assert trial_key(_spec(workload_seed=3)) != base

    def test_volatile_fields_do_not_change_the_key(self):
        # trial_index is campaign bookkeeping and record_history only affects
        # in-memory state retention — the serialised row is identical, so the
        # same physical trial must resolve to the same address across runs.
        assert VOLATILE_SPEC_FIELDS == ("trial_index", "record_history")
        base = trial_key(_spec())
        assert trial_key(replace(_spec(), trial_index=42)) == base
        assert trial_key(replace(_spec(), record_history=True)) == base

    def test_param_spelling_is_canonicalised(self):
        # dict vs pre-sorted tuple-of-pairs, and tuple vs list values, are the
        # same logical spec and must share an address.
        as_dict = _spec(adversary_params={"b": 2, "a": 1})
        as_pairs = _spec(adversary_params=(("a", 1), ("b", 2)))
        assert trial_key(as_dict) == trial_key(as_pairs)
        tuple_value = _spec(workload_params={"box": (0.0, 1.0)})
        list_value = _spec(workload_params={"box": [0.0, 1.0]})
        assert trial_key(tuple_value) == trial_key(list_value)

    def test_engine_version_salts_the_key(self):
        spec = _spec()
        assert trial_key(spec) == trial_key(spec, engine_version=ENGINE_VERSION)
        assert trial_key(spec, engine_version="0.9.9/rows0") != trial_key(spec)

    def test_payload_excludes_volatile_fields_only(self):
        payload = canonical_spec_payload(replace(_spec(), trial_index=3, record_history=True))
        assert "trial_index" not in payload
        assert "record_history" not in payload
        assert payload["protocol"] == "exact"
        assert payload["seed"] == 7

    def test_non_json_parameter_value_is_rejected(self):
        spec = _spec(workload_params={"callback": object()})
        with pytest.raises(ConfigurationError, match="content-addressable"):
            trial_key(spec)
