"""Unit tests for repro.store.query: typed filters and aggregates."""

from __future__ import annotations

import pytest

from repro.engine import Campaign, run_campaign
from repro.exceptions import ConfigurationError
from repro.store import (
    JsonlDirectoryStore,
    SqliteResultStore,
    TrialFilter,
    aggregate_store,
    query_store,
)


@pytest.fixture(params=("sqlite", "jsonl"))
def populated_store(request, tmp_path):
    """A store holding a small mixed grid (two protocols, two adversaries)."""
    store = (
        SqliteResultStore(tmp_path / "store.db")
        if request.param == "sqlite"
        else JsonlDirectoryStore(tmp_path / "store-dir")
    )
    campaign = Campaign.from_grid(
        "query-grid",
        protocols=("exact", "restricted_sync"),
        adversaries=("none", "crash"),
        dimensions=(1,),
        repeats=1,
        base_seed=13,
        max_rounds_override=2,
    )
    run_campaign(campaign, store=store)
    yield store, len(campaign)
    store.close()


class TestQueryStore:
    def test_unfiltered_returns_everything_key_ordered(self, populated_store):
        store, total = populated_store
        hits = query_store(store)
        assert len(hits) == total
        assert [hit.key for hit in hits] == sorted(hit.key for hit in hits)
        assert all(hit.result.ok for hit in hits)
        assert all(not hit.stale for hit in hits)

    def test_shape_filters_match_spec_fields(self, populated_store):
        store, _ = populated_store
        exact_hits = query_store(store, TrialFilter(protocol="exact"))
        assert exact_hits and all(hit.result.spec.protocol == "exact" for hit in exact_hits)
        crash_hits = query_store(store, TrialFilter(protocol="exact", adversary="crash"))
        assert len(crash_hits) == 1
        assert query_store(store, TrialFilter(dimension=9)) == []

    def test_limit_truncates_deterministically(self, populated_store):
        store, total = populated_store
        limited = query_store(store, limit=2)
        assert len(limited) == 2
        assert [hit.key for hit in limited] == [hit.key for hit in query_store(store)][:2]
        assert len(query_store(store, limit=0)) == 0
        with pytest.raises(ConfigurationError):
            query_store(store, limit=-1)

    def test_typed_rows_render(self, populated_store):
        store, _ = populated_store
        row = query_store(store, limit=1)[0].to_row()
        assert set(row) >= {"key", "protocol", "adversary", "n", "d", "f", "status"}
        assert len(row["key"]) == 12


class TestAggregateStore:
    def test_counters_match_campaign_totals(self, populated_store):
        store, total = populated_store
        rows = aggregate_store(store, group_by=("protocol",))
        assert sum(row["trials"] for row in rows) == total
        assert all(row["errors"] == 0 for row in rows)
        by_protocol = {row["protocol"]: row for row in rows}
        assert set(by_protocol) == {"exact", "restricted_sync"}

    def test_multi_column_grouping_sorted(self, populated_store):
        store, _ = populated_store
        rows = aggregate_store(store, group_by=("protocol", "adversary"))
        groups = [(row["protocol"], row["adversary"]) for row in rows]
        assert groups == sorted(groups)
        assert all(row["trials"] == 1 for row in rows)

    def test_filter_composes_with_grouping(self, populated_store):
        store, _ = populated_store
        rows = aggregate_store(
            store, group_by=("adversary",), trial_filter=TrialFilter(protocol="exact")
        )
        assert sum(row["trials"] for row in rows) == 2

    def test_unknown_group_column_rejected(self, populated_store):
        store, _ = populated_store
        with pytest.raises(ConfigurationError, match="cannot group by"):
            aggregate_store(store, group_by=("epsilon",))
        with pytest.raises(ConfigurationError, match="at least one"):
            aggregate_store(store, group_by=())
