"""Trace recorder: Chrome trace-event well-formedness and span accounting.

Two claims matter for downstream tooling:

* the written file is a **valid Chrome trace** (Perfetto-loadable document
  shape, every event carrying the required fields for its phase), and
* span timestamps are **monotonically nested** — a span opened inside
  another lies within its parent's ``[ts, ts + dur]`` window, which is what
  makes the ``repro trace summary`` attribution trustworthy.
"""

from __future__ import annotations

import json

import pytest

from repro.engine import Campaign, run_campaign
from repro.obs.trace import (
    TraceRecorder,
    format_trace_summary,
    load_trace,
    summarize_trace,
)

_REQUIRED_BY_PHASE = {
    "X": ("name", "ts", "dur", "pid", "tid"),
    "i": ("name", "ts", "s", "pid", "tid"),
    "M": ("name", "pid", "tid", "args"),
}


def _assert_valid_chrome_trace(events: list[dict]) -> None:
    assert events, "trace must contain events"
    for event in events:
        phase = event.get("ph")
        assert phase in _REQUIRED_BY_PHASE, f"unexpected phase {phase!r}"
        for field in _REQUIRED_BY_PHASE[phase]:
            assert field in event, f"{phase!r} event missing {field!r}: {event}"
        if phase == "X":
            assert event["ts"] >= 0 and event["dur"] >= 0


class TestTraceRecorder:
    def test_written_file_is_a_valid_chrome_trace(self, tmp_path):
        recorder = TraceRecorder()
        base = recorder.started_at
        recorder.complete("outer", base, 1.0, category="lifecycle")
        recorder.instant("marker", args={"detail": 1})
        path = recorder.write(tmp_path / "nested" / "trace.json")
        document = json.loads(path.read_text(encoding="utf-8"))
        assert document["displayTimeUnit"] == "ms"
        _assert_valid_chrome_trace(document["traceEvents"])
        assert load_trace(path) == document["traceEvents"]

    def test_load_accepts_bare_event_arrays(self, tmp_path):
        path = tmp_path / "bare.json"
        path.write_text(json.dumps([{"ph": "X", "name": "a", "ts": 0, "dur": 1}]))
        assert len(load_trace(path)) == 1
        bad = tmp_path / "bad.json"
        bad.write_text('"not a trace"')
        with pytest.raises(ValueError):
            load_trace(bad)

    def test_spans_nest_monotonically(self):
        recorder = TraceRecorder()
        base = recorder.started_at
        recorder.complete("outer", base + 0.0, 1.0)
        recorder.complete("inner", base + 0.2, 0.5)
        recorder.complete("innermost", base + 0.3, 0.1)
        spans = {e["name"]: e for e in recorder.events() if e["ph"] == "X"}
        chain = [spans["outer"], spans["inner"], spans["innermost"]]
        for parent, child in zip(chain, chain[1:]):
            assert child["ts"] >= parent["ts"]
            assert child["ts"] + child["dur"] <= parent["ts"] + parent["dur"]

    def test_span_context_manager_measures_the_block(self):
        recorder = TraceRecorder()
        with recorder.span("work", category="test"):
            pass
        (span,) = [e for e in recorder.events() if e["ph"] == "X"]
        assert span["name"] == "work" and span["cat"] == "test"
        assert span["dur"] >= 0

    def test_each_track_gets_one_thread_name_lane(self):
        recorder = TraceRecorder()
        base = recorder.started_at
        for track in ("main", "worker-0", "worker-1", "worker-0"):
            recorder.complete("unit", base, 0.01, track=track)
        metadata = [e for e in recorder.events() if e["ph"] == "M"]
        assert sorted(m["args"]["name"] for m in metadata) == [
            "main", "worker-0", "worker-1",
        ]
        tids = {m["args"]["name"]: m["tid"] for m in metadata}
        assert len(set(tids.values())) == 3


class TestTraceSummary:
    @staticmethod
    def _events() -> list[dict]:
        return [
            {"ph": "X", "cat": "execute", "name": "unit", "ts": 0.0, "dur": 60_000.0},
            {"ph": "X", "cat": "execute", "name": "unit", "ts": 60_000.0, "dur": 20_000.0},
            {"ph": "X", "cat": "store", "name": "census", "ts": 0.0, "dur": 100_000.0},
            {"ph": "i", "cat": "session", "name": "noise", "ts": 5.0, "s": "t"},
        ]

    def test_aggregates_by_phase_and_name(self):
        summary = summarize_trace(self._events())
        assert summary["wall_ms"] == 100.0
        census, unit = summary["rows"]
        assert (census["phase"], census["name"], census["count"]) == ("store", "census", 1)
        assert census["share"] == 1.0
        assert (unit["count"], unit["total_ms"], unit["mean_ms"]) == (2, 80.0, 40.0)
        assert unit["max_ms"] == 60.0 and unit["share"] == 0.8

    def test_empty_trace(self):
        assert summarize_trace([]) == {"wall_ms": 0.0, "rows": []}
        assert "no spans" in format_trace_summary(summarize_trace([]))

    def test_format_is_a_table_with_wall_clock(self):
        text = format_trace_summary(summarize_trace(self._events()))
        lines = text.strip().splitlines()
        assert lines[0] == "trace wall-clock: 100.000 ms"
        assert lines[1].split() == [
            "phase", "name", "count", "total_ms", "mean_ms", "max_ms", "share",
        ]
        assert any("census" in line and "100.0%" in line for line in lines)


class TestSessionTracing:
    def test_traced_campaign_accounts_for_its_wall_clock(self):
        campaign = Campaign.from_grid(
            "traced", adversaries=("crash",), dimensions=(1,), repeats=3, base_seed=7
        )
        trace = TraceRecorder()
        summary, _ = run_campaign(campaign, workers=1, trace=trace)
        assert summary.errors == 0
        events = trace.events()
        _assert_valid_chrome_trace(events)
        spans = [e for e in events if e["ph"] == "X"]
        session = [e for e in spans if e["name"] == "session"]
        units = [e for e in spans if e["name"].startswith("unit:")]
        assert len(session) == 1 and units
        assert sum(unit["args"]["trials"] for unit in units) == summary.trials
        # Inline execution: unit spans nest inside the session span and
        # account for most of it (planning/commit overhead is the rest).
        session_span = session[0]
        unit_total = sum(unit["dur"] for unit in units)
        assert 0 < unit_total <= session_span["dur"] * 1.10
        for unit in units:
            assert unit["ts"] >= session_span["ts"]
