"""Metrics registry: bucket math, worker-delta merging, exposition format.

The registry is the backbone of the telemetry layer, so its arithmetic gets
reference-grade coverage:

* **bucket boundaries** — Prometheus ``le`` semantics (a value equal to a
  bound lands *in* that bound's bucket) at every edge, including the
  implicit ``+Inf`` overflow;
* **merge associativity** — simulated worker registries ship deltas that
  must fold into identical parent totals regardless of merge order, because
  that is exactly what the fork pool does with its result pipes;
* **quantile estimates vs numpy** — the interpolated histogram quantile must
  agree with ``numpy.percentile`` to within one bucket width.
"""

from __future__ import annotations

import math
import random

import numpy as np
import pytest

from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    CounterSync,
    MetricsRegistry,
    quantile_from_histogram,
    render_prometheus,
    snapshot_delta,
    snapshot_jsonable,
)

BOUNDS = (0.1, 1.0, 10.0)


def _hist_sample(registry: MetricsRegistry, name: str = "h"):
    snap = registry.snapshot(collect=False)
    return snap[name]["samples"][()]


class TestHistogramBuckets:
    def test_value_on_boundary_lands_in_that_bucket(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=BOUNDS)
        for bound in BOUNDS:
            hist.observe(bound)
        assert _hist_sample(registry)["counts"] == [1, 1, 1, 0]

    def test_below_first_and_above_last(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=BOUNDS)
        hist.observe(0.0)  # below every finite bound -> first bucket
        hist.observe(10.000001)  # above the last finite bound -> +Inf bucket
        hist.observe(1e9)
        sample = _hist_sample(registry)
        assert sample["counts"] == [1, 0, 0, 2]
        assert sample["count"] == 3

    def test_interior_values_respect_open_lower_bounds(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=BOUNDS)
        hist.observe(0.10000001)  # just above 0.1 -> second bucket
        assert _hist_sample(registry)["counts"] == [0, 1, 0, 0]

    def test_sum_and_count_track_observations(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=BOUNDS)
        values = (0.05, 0.5, 5.0, 50.0)
        for value in values:
            hist.observe(value)
        sample = _hist_sample(registry)
        assert sample["count"] == len(values)
        assert sample["sum"] == pytest.approx(sum(values))

    def test_buckets_must_be_ascending_and_non_empty(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("bad", buckets=())
        with pytest.raises(ValueError):
            registry.histogram("bad2", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            registry.histogram("bad3", buckets=(2.0, 1.0))

    def test_disabled_registry_observes_nothing(self):
        registry = MetricsRegistry(enabled=False)
        hist = registry.histogram("h", buckets=BOUNDS)
        counter = registry.counter("c")
        gauge = registry.gauge("g")
        hist.observe(0.5)
        counter.inc()
        gauge.set(3.0)
        snap = registry.snapshot(collect=False)
        assert snap["h"]["samples"][()] == {"counts": [0, 0, 0, 0], "sum": 0.0, "count": 0}
        assert snap["c"]["samples"][()] == 0.0
        assert snap["g"]["samples"][()] == 0.0


class TestMerge:
    @staticmethod
    def _simulated_worker(seed: int) -> MetricsRegistry:
        """A registry with the same families a fork worker would populate."""
        rng = random.Random(seed)
        registry = MetricsRegistry()
        units = registry.counter("units", labelnames=("kind",))
        seconds = registry.histogram("seconds", buckets=BOUNDS)
        for _ in range(rng.randrange(5, 40)):
            units.labels(kind=rng.choice(("trial", "batch"))).inc(rng.randrange(1, 4))
            seconds.observe(rng.uniform(0.0, 20.0))
        return registry

    def test_merge_is_associative_and_commutative(self):
        empty = MetricsRegistry().snapshot(collect=False)
        deltas = [
            snapshot_delta(self._simulated_worker(seed).snapshot(collect=False), empty)
            for seed in (1, 2, 3)
        ]
        orders = ([0, 1, 2], [2, 1, 0], [1, 0, 2])
        snapshots = []
        for order in orders:
            parent = MetricsRegistry()
            for index in order:
                parent.merge(deltas[index])
            snapshots.append(parent.snapshot(collect=False))
        assert snapshots[0] == snapshots[1] == snapshots[2]

    def test_incremental_deltas_sum_to_the_direct_total(self):
        # A worker snapshots between units and ships only what moved — the
        # parent's merged totals must equal the worker's own final state.
        worker = MetricsRegistry()
        parent = MetricsRegistry()
        counter = worker.counter("units", labelnames=("kind",))
        hist = worker.histogram("seconds", buckets=BOUNDS)
        baseline = worker.snapshot(collect=False)
        for step in range(4):
            counter.labels(kind="trial").inc(step + 1)
            hist.observe(0.3 * (step + 1))
            current = worker.snapshot(collect=False)
            parent.merge(snapshot_delta(current, baseline))
            baseline = current
        assert parent.snapshot(collect=False) == worker.snapshot(collect=False)

    def test_delta_drops_gauges_and_unchanged_samples(self):
        registry = MetricsRegistry()
        registry.gauge("depth").set(7.0)
        counter = registry.counter("c", labelnames=("kind",))
        counter.labels(kind="still").inc()
        baseline = registry.snapshot(collect=False)
        counter.labels(kind="moved").inc(2)
        delta = snapshot_delta(registry.snapshot(collect=False), baseline)
        assert "depth" not in delta
        assert delta["c"]["samples"] == {("moved",): 2.0}

    def test_merge_rejects_mismatched_buckets(self):
        source = MetricsRegistry()
        source.histogram("h", buckets=BOUNDS).observe(0.5)
        target = MetricsRegistry()
        target.histogram("h", buckets=(0.5, 5.0))
        with pytest.raises(ValueError, match="disagree"):
            target.merge(source.snapshot(collect=False))

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")


class TestQuantiles:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("q", [0.5, 0.9, 0.99])
    def test_quantile_matches_numpy_within_bucket_resolution(self, seed, q):
        rng = np.random.default_rng(seed)
        values = rng.uniform(0.0, 8.0, size=500)
        bounds = tuple(np.linspace(0.5, 8.0, 16))
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=bounds)
        for value in values:
            hist.observe(float(value))
        estimated = hist._default_child().quantile(q)
        reference = float(np.percentile(values, q * 100))
        bucket_width = bounds[1] - bounds[0]
        assert abs(estimated - reference) <= bucket_width

    def test_empty_histogram_is_nan(self):
        assert math.isnan(quantile_from_histogram(BOUNDS, [0, 0, 0, 0], 0.5))

    def test_overflow_clamps_to_last_finite_bound(self):
        assert quantile_from_histogram(BOUNDS, [0, 0, 0, 5], 0.5) == BOUNDS[-1]

    def test_invalid_q_raises(self):
        with pytest.raises(ValueError):
            quantile_from_histogram(BOUNDS, [1, 0, 0, 0], 1.5)


class TestCounterSync:
    def test_publishes_deltas_not_totals(self):
        registry = MetricsRegistry()
        family = registry.counter("events", labelnames=("kind",))
        totals = {"solve": 0.0}
        sync = CounterSync(family, lambda: dict(totals))
        registry.register_collector(sync)
        totals["solve"] = 3.0
        registry.collect()
        totals["solve"] = 5.0
        registry.collect()
        registry.collect()  # no movement -> no double count
        snap = registry.snapshot(collect=False)
        assert snap["events"]["samples"][("solve",)] == 5.0

    def test_external_reset_counts_the_new_total(self):
        registry = MetricsRegistry()
        family = registry.counter("events", labelnames=("kind",))
        totals = {"solve": 10.0}
        sync = CounterSync(family, lambda: dict(totals))
        registry.register_collector(sync)
        registry.collect()
        totals["solve"] = 2.0  # external reset_stats() happened
        registry.collect()
        snap = registry.snapshot(collect=False)
        assert snap["events"]["samples"][("solve",)] == 12.0

    def test_registry_reset_clears_sync_baselines(self):
        registry = MetricsRegistry()
        family = registry.counter("events", labelnames=("kind",))
        totals = {"solve": 4.0}
        sync = CounterSync(family, lambda: dict(totals))
        registry.register_collector(sync)
        registry.collect()
        registry.reset()
        registry.collect()  # totals unchanged, but the baseline was cleared
        snap = registry.snapshot(collect=False)
        assert snap["events"]["samples"][("solve",)] == 4.0


class TestPrometheusRender:
    @staticmethod
    def _populated() -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("repro_c_total", "counts \"things\"", ("kind",)).labels(
            kind="a\nb"
        ).inc(2)
        registry.gauge("repro_g", "a gauge").set(1.5)
        hist = registry.histogram("repro_h_seconds", "latency", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 2.0):
            hist.observe(value)
        return registry

    def test_lines_are_well_formed(self):
        text = render_prometheus(self._populated())
        assert text.endswith("\n")
        for line in text.strip().splitlines():
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE "))
                continue
            name_part, _, value_part = line.rpartition(" ")
            assert name_part and value_part
            float(value_part)  # every sample value parses as a number

    def test_histogram_exposition_is_cumulative_with_inf(self):
        text = render_prometheus(self._populated())
        assert 'repro_h_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_h_seconds_bucket{le="1"} 2' in text
        assert 'repro_h_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_h_seconds_count 3" in text
        assert "repro_h_seconds_sum 2.55" in text

    def test_type_lines_and_label_escaping(self):
        text = render_prometheus(self._populated())
        assert "# TYPE repro_c_total counter" in text
        assert "# TYPE repro_g gauge" in text
        assert "# TYPE repro_h_seconds histogram" in text
        assert 'repro_c_total{kind="a\\nb"} 2' in text
        assert '# HELP repro_c_total counts "things"' in text

    def test_jsonable_snapshot_rekeys_labels(self):
        snap = snapshot_jsonable(self._populated().snapshot(collect=False))
        assert snap["repro_c_total"]["samples"] == {"kind=a\nb": 2.0}
        assert snap["repro_g"]["samples"]["_"] == 1.5
