"""Package-level tests: public API surface and exception hierarchy."""

from __future__ import annotations

import importlib

import pytest

import repro
from repro import exceptions


PUBLIC_MODULES = [
    "repro.geometry",
    "repro.core",
    "repro.network",
    "repro.processes",
    "repro.byzantine",
    "repro.consensus",
    "repro.broadcast",
    "repro.analysis",
    "repro.workloads",
    "repro.cli",
]


class TestPublicSurface:
    def test_version_is_exposed(self):
        assert repro.__version__

    @pytest.mark.parametrize("module_name", PUBLIC_MODULES)
    def test_subpackages_import_cleanly(self, module_name):
        module = importlib.import_module(module_name)
        assert module is not None

    @pytest.mark.parametrize("module_name", PUBLIC_MODULES[:-1])
    def test_all_names_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.__all__ lists missing name {name}"

    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name)


class TestExceptionHierarchy:
    def test_every_error_derives_from_repro_error(self):
        for name in dir(exceptions):
            obj = getattr(exceptions, name)
            if isinstance(obj, type) and issubclass(obj, Exception) and obj is not exceptions.ReproError:
                assert issubclass(obj, exceptions.ReproError), name

    def test_resilience_error_is_a_configuration_error(self):
        assert issubclass(exceptions.ResilienceError, exceptions.ConfigurationError)

    def test_empty_intersection_is_a_geometry_error(self):
        assert issubclass(exceptions.EmptyIntersectionError, exceptions.GeometryError)

    def test_agreement_and_validity_violations_are_protocol_errors(self):
        assert issubclass(exceptions.AgreementViolation, exceptions.ProtocolError)
        assert issubclass(exceptions.ValidityViolation, exceptions.ProtocolError)

    def test_linear_program_error_carries_status(self):
        error = exceptions.LinearProgramError("boom", status=4)
        assert error.status == 4
