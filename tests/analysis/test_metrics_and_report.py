"""Unit tests for analysis metrics and the plain-text report renderer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.metrics import (
    decision_cloud,
    decision_spread_summary,
    max_coordinate_disagreement,
    max_validity_violation,
    mean_distance_to_point,
)
from repro.analysis.report import format_value, render_series, render_table
from repro.exceptions import ConfigurationError


class TestMetrics:
    def test_decision_cloud_orders_by_process_id(self):
        cloud = decision_cloud({3: [3.0, 3.0], 1: [1.0, 1.0]})
        assert np.allclose(cloud[0], [1.0, 1.0])
        assert np.allclose(cloud[1], [3.0, 3.0])

    def test_empty_decisions_rejected(self):
        with pytest.raises(ConfigurationError):
            decision_cloud({})

    def test_max_coordinate_disagreement(self):
        decisions = {0: [0.0, 0.0], 1: [0.2, 0.5]}
        assert max_coordinate_disagreement(decisions) == pytest.approx(0.5)

    def test_max_validity_violation(self, small_registry):
        inside = {pid: [0.5, 0.5] for pid in small_registry.honest_ids}
        outside = {pid: [3.0, 0.5] for pid in small_registry.honest_ids}
        assert max_validity_violation(small_registry, inside) == pytest.approx(0.0, abs=1e-9)
        assert max_validity_violation(small_registry, outside) == pytest.approx(2.0, abs=1e-6)

    def test_mean_distance_to_point(self):
        decisions = {0: [0.0, 0.0], 1: [2.0, 0.0]}
        assert mean_distance_to_point(decisions, [1.0, 0.0]) == pytest.approx(1.0)

    def test_spread_summary(self):
        summary = decision_spread_summary({0: [0.0, 0.0], 1: [1.0, 3.0]})
        assert summary["max_coordinate_spread"] == pytest.approx(3.0)
        assert summary["decision_count"] == 2


class TestReport:
    def test_format_value(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"
        assert format_value(None) == "-"
        assert format_value(0.123456, precision=3) == "0.123"
        assert format_value(float("nan")) == "nan"
        assert format_value("text") == "text"

    def test_render_table_alignment_and_missing_cells(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22}]
        text = render_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "-" in lines[-1]  # missing "b" cell rendered as -

    def test_render_table_with_title_and_columns(self):
        text = render_table([{"a": 1, "b": 2}], columns=["b", "a"], title="T")
        assert text.splitlines()[0] == "T"
        assert text.splitlines()[1].startswith("b")

    def test_render_empty_table(self):
        assert "(no rows)" in render_table([])

    def test_render_series(self):
        assert render_series([1.0, 0.5], "range") == "range: 1, 0.5"
