"""Unit tests for the convergence bookkeeping (Eq. 12 measurements)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.convergence import (
    coordinate_ranges_per_round,
    max_range_per_round,
    measured_contraction_factors,
    rounds_to_reach,
    trace_from_histories,
)
from repro.exceptions import ConfigurationError


def make_histories():
    """Three processes whose 2-D states converge geometrically."""
    histories = {}
    targets = np.asarray([0.5, 0.5])
    starts = {0: np.asarray([0.0, 0.0]), 1: np.asarray([1.0, 0.0]), 2: np.asarray([1.0, 1.0])}
    for pid, start in starts.items():
        history = [start]
        for round_index in range(1, 5):
            history.append(targets + (start - targets) * (0.5 ** round_index))
        histories[pid] = history
    return histories


class TestRangeSeries:
    def test_coordinate_ranges_shape(self):
        ranges = coordinate_ranges_per_round(make_histories())
        assert ranges.shape == (5, 2)
        assert ranges[0, 0] == pytest.approx(1.0)

    def test_ranges_shrink_monotonically(self):
        series = max_range_per_round(make_histories())
        assert all(series[t + 1] <= series[t] + 1e-12 for t in range(len(series) - 1))

    def test_contraction_factors_are_half(self):
        factors = measured_contraction_factors(make_histories())
        assert np.allclose(factors, 0.5)

    def test_contraction_reports_zero_after_collapse(self):
        histories = {0: [np.zeros(1), np.zeros(1), np.zeros(1)],
                     1: [np.zeros(1), np.zeros(1), np.zeros(1)]}
        factors = measured_contraction_factors(histories)
        assert np.allclose(factors, 0.0)

    def test_rounds_to_reach(self):
        assert rounds_to_reach(make_histories(), epsilon=0.3) == 2
        assert rounds_to_reach(make_histories(), epsilon=2.0) == 0
        assert rounds_to_reach(make_histories(), epsilon=1e-6) is None

    def test_invalid_epsilon(self):
        with pytest.raises(ConfigurationError):
            rounds_to_reach(make_histories(), epsilon=0.0)

    def test_empty_histories_rejected(self):
        with pytest.raises(ConfigurationError):
            max_range_per_round({})

    def test_histories_truncated_to_shortest(self):
        histories = make_histories()
        histories[0] = histories[0][:3]
        assert coordinate_ranges_per_round(histories).shape == (3, 2)


class TestTrace:
    def test_trace_fields(self):
        trace = trace_from_histories(make_histories(), epsilon=0.3, gamma=0.04)
        assert trace.gamma == 0.04
        assert trace.initial_range == pytest.approx(1.0)
        assert trace.final_range < 0.1
        assert trace.measured_rounds_to_epsilon == 2
        assert trace.worst_measured_contraction == pytest.approx(0.5)
        assert trace.theoretical_rounds >= trace.measured_rounds_to_epsilon

    def test_trace_with_explicit_value_range(self):
        trace = trace_from_histories(make_histories(), epsilon=0.3, gamma=0.04, value_range=10.0)
        assert trace.theoretical_rounds > trace_from_histories(
            make_histories(), epsilon=0.3, gamma=0.04
        ).theoretical_rounds
