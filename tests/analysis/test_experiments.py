"""Smoke tests for the experiment runners (reduced parameters).

Every experiment id from DESIGN.md must at least execute and report the
qualitative outcome the paper predicts; the benchmarks run the full-size
versions.
"""

from __future__ import annotations

import pytest

from repro.analysis import experiments
from repro.analysis.report import render_table


class TestCheapExperiments:
    def test_e1_baseline_validity(self):
        rows = experiments.experiment_baseline_validity()
        by_algorithm = {row["algorithm"]: row for row in rows}
        baseline = by_algorithm["coordinate-wise scalar consensus (n=4, paper example)"]
        exact = by_algorithm["Exact BVC (Gamma decision, n=5)"]
        assert baseline["agreement"] and not baseline["vector_validity"]
        assert exact["agreement"] and exact["vector_validity"]

    def test_e2_sync_impossibility(self):
        rows = experiments.experiment_sync_impossibility(dimensions=(1, 2, 3))
        for row in rows:
            assert row["gamma_empty_below"] is True
            assert row["gamma_empty_at_bound"] is False

    def test_e7_async_impossibility(self):
        rows = experiments.experiment_async_impossibility(dimensions=(1, 2), epsilon=0.25)
        for row in rows:
            assert row["violates_epsilon_agreement"] is True
            assert row["max_forced_gap"] == pytest.approx(1.0, abs=1e-6)

    def test_e3_safe_area_existence(self):
        rows = experiments.experiment_safe_area_existence(dimensions=(1, 2), fault_bounds=(1,), samples=3)
        for row in rows:
            assert row["gamma_nonempty"] == row["samples"]

    def test_e6_safe_area_cost(self):
        rows = experiments.experiment_safe_area_cost(configurations=((4, 1, 1), (5, 2, 1)))
        assert all(row["point_found"] for row in rows)
        assert rows[0]["subsets_in_gamma"] == 4
        # The kernel never assembles more blocks than the full enumeration.
        assert all(row["kernel_blocks"] <= row["subsets_in_gamma"] for row in rows)

    def test_e15_kernel_speedup(self):
        rows = experiments.experiment_kernel_speedup(
            configurations=((5, 2, 1), (7, 2, 2)), batch_size=3
        )
        for row in rows:
            assert row["kernel_matches_oracle"] is True
            assert row["batch_all_found"] is True
            assert row["blocks_pruned"] <= row["blocks_full"]

    def test_e4_figure1(self):
        rows = experiments.experiment_figure1_tverberg()
        assert rows[0]["found"] is True
        assert rows[0]["parts"] == 3
        assert rows[0]["witness_in_all_hulls"] is True

    def test_e13_resilience_landscape(self):
        rows = experiments.experiment_resilience_landscape(dimensions=(2,), fault_bounds=(1,))
        assert rows[0]["approx_async"] == 5

    def test_tables_render(self):
        rows = experiments.experiment_resilience_landscape(dimensions=(1, 2), fault_bounds=(1,))
        text = render_table(rows, title="landscape")
        assert "landscape" in text
        assert "approx_async" in text

    def test_make_strategy_rejects_unknown(self):
        registry = experiments.intro_counterexample_registry()
        with pytest.raises(ValueError):
            experiments.make_strategy("unknown", registry)


class TestProtocolExperiments:
    def test_e5_exact_bvc_small(self):
        rows = experiments.experiment_exact_bvc(configurations=((2, 1),), strategies=("crash", "outside_hull"))
        assert len(rows) == 2
        for row in rows:
            assert row["agreement"] and row["validity"]

    def test_e8_approx_bvc_small(self):
        rows = experiments.experiment_approx_bvc(
            configurations=((1, 1),), strategies=("crash",), epsilon=0.3
        )
        assert len(rows) == 1
        assert rows[0]["eps_agreement"] and rows[0]["validity"]

    def test_e9_contraction_rate(self):
        rows = experiments.experiment_contraction_rate(dimension=1, fault_bound=1, rounds=3)
        assert len(rows) == 3
        assert all(row["within_bound"] for row in rows)

    def test_e11_e12_restricted(self):
        rows = experiments.experiment_restricted_rounds(
            dimension=1, fault_bound=1, strategies=("crash",),
            sync_rounds_override=6, async_rounds_override=6,
        )
        assert len(rows) == 2
        for row in rows:
            assert row["eps_agreement"] and row["validity"]

    def test_e14_applications(self):
        rows = experiments.experiment_applications(epsilon=0.3)
        assert len(rows) == 3
        for row in rows:
            assert row["agreement"] and row["validity"]
        assert rows[0]["decision_is_distribution"] is True

    def test_experiments_serve_from_a_result_store(self, tmp_path):
        # With a store configured, the first run populates it and the second
        # is served from it — producing the identical table either way.
        store_path = tmp_path / "experiments.db"
        previous = experiments.set_result_store(store_path)
        try:
            cold = experiments.experiment_exact_bvc(
                configurations=((2, 1),), strategies=("crash",)
            )
            warm = experiments.experiment_exact_bvc(
                configurations=((2, 1),), strategies=("crash",)
            )
        finally:
            assert experiments.set_result_store(previous) == store_path
        assert cold == warm
        from repro.store import open_store

        with open_store(store_path) as store:
            assert len(store) == 1

    def test_e16_adversary_coordination(self):
        rows = experiments.experiment_adversary_coordination(dimension=1, epsilon=0.3)
        # Five independent strategies plus the four coordinated ones.
        assert len(rows) == 9
        families = {row["family"] for row in rows}
        assert families == {"independent", "coordinated"}
        for row in rows:
            # At the bound no adversary — coordinated or not — may succeed.
            assert row["attack_succeeded"] is False
            assert row["agreement"] and row["validity"]
        theorem4 = [row for row in rows if row["attack"] == "theorem4_scenario"]
        assert theorem4[0]["protocol"] == "approx"
