"""End-to-end checks of the paper's headline claims.

Each test maps to a theorem / claim and runs the full stack (workload
generator -> protocol over the simulated network with a live adversary ->
LP-based verification).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.byzantine.strategies import EquivocationStrategy, OutsideHullStrategy
from repro.core.approx_bvc import run_approx_bvc
from repro.core.conditions import (
    minimum_processes_approx_async,
    minimum_processes_exact_sync,
)
from repro.core.exact_bvc import run_exact_bvc
from repro.core.impossibility import analyze_async_necessity, analyze_sync_necessity
from repro.core.restricted_sync import run_restricted_sync_bvc
from repro.core.safe_area import safe_area_is_empty
from repro.core.validity import check_approximate_outcome, check_exact_outcome
from repro.exceptions import EmptyIntersectionError
from repro.network.scheduler import LaggingScheduler, RandomScheduler
from repro.workloads.generators import (
    basis_counterexample_registry,
    probability_vector_registry,
    uniform_box_registry,
)


class TestTheorem1And3ExactBVC:
    """Synchronous exact BVC: impossible below max(3f+1,(d+1)f+1), correct at it."""

    def test_sufficiency_at_the_bound_d2_f1(self):
        n = minimum_processes_exact_sync(2, 1)
        registry = uniform_box_registry(n, 2, 1, seed=31)
        mutators = {
            pid: EquivocationStrategy([registry.input_of(h) for h in registry.honest_ids])
            for pid in registry.faulty_ids
        }
        outcome = run_exact_bvc(registry, adversary_mutators=mutators)
        check_exact_outcome(registry, outcome.decisions).raise_on_failure()

    def test_sufficiency_at_the_bound_d3_f1(self):
        n = minimum_processes_exact_sync(3, 1)
        registry = probability_vector_registry(n, 3, 1, seed=32)
        mutators = {pid: OutsideHullStrategy(offset=77.0) for pid in registry.faulty_ids}
        outcome = run_exact_bvc(registry, adversary_mutators=mutators)
        report = check_exact_outcome(registry, outcome.decisions)
        assert report.all_ok
        # The decision of a probability-vector instance is itself a distribution.
        decision = outcome.decisions[registry.honest_ids[0]]
        assert float(decision.sum()) == pytest.approx(1.0, abs=1e-6)

    def test_necessity_step1_cannot_pick_a_valid_decision_below_the_bound(self):
        # Below the bound (n = d + 1, f = 1) Step 2 of the algorithm has no
        # point to pick: Gamma of the broadcast multiset is empty for the
        # standard-basis inputs, so the algorithm fails with an explicit error
        # (and, by Theorem 1, no other algorithm can do better).
        registry_below = basis_counterexample_registry(2, epsilon=0.25)
        # Use only d + 1 = 3 of its processes' inputs for the emptiness check.
        inputs = np.vstack([np.eye(2), np.zeros((1, 2))])
        assert safe_area_is_empty(inputs, fault_bound=1)

    def test_exact_bvc_raises_below_bound_when_forced(self):
        from repro.core.conditions import SystemConfiguration
        from repro.processes.registry import ProcessRegistry

        # n = d + 1 = 3 with the standard-basis construction and one (silent)
        # fault position; allow_insufficient bypasses the static check and the
        # run then fails because Gamma(S) is empty.
        configuration = SystemConfiguration(3, 2, 1)
        inputs = {0: [1.0, 0.0], 1: [0.0, 1.0], 2: [0.0, 0.0]}
        registry = ProcessRegistry(configuration, inputs, faulty_ids=frozenset())
        with pytest.raises(EmptyIntersectionError):
            run_exact_bvc(registry, allow_insufficient=True)


class TestTheorem4And5ApproxBVC:
    """Asynchronous approximate BVC: impossible below (d+2)f+1, correct at it."""

    @pytest.mark.parametrize("dimension", [1, 2, 3])
    def test_necessity_forced_gap_below_the_bound(self, dimension):
        witness = analyze_async_necessity(dimension, epsilon=0.2)
        assert witness.violates_epsilon_agreement
        assert witness.max_forced_gap == pytest.approx(0.8, abs=1e-6)

    def test_sufficiency_at_the_bound_with_slow_process_and_attack(self):
        n = minimum_processes_approx_async(2, 1)
        registry = uniform_box_registry(n, 2, 1, seed=33)
        mutators = {pid: OutsideHullStrategy(offset=44.0) for pid in registry.faulty_ids}
        scheduler = LaggingScheduler(slow_processes=[registry.honest_ids[0]], seed=2)
        outcome = run_approx_bvc(
            registry, epsilon=0.3, adversary_mutators=mutators, scheduler=scheduler
        )
        report = check_approximate_outcome(registry, outcome.decisions, epsilon=0.3)
        assert report.agreement_ok and report.validity_ok

    def test_round_count_matches_static_rule(self):
        n = minimum_processes_approx_async(1, 1)
        registry = uniform_box_registry(n, 1, 1, seed=34)
        outcome = run_approx_bvc(registry, epsilon=0.25, scheduler=RandomScheduler(1))
        from repro.core.approx_bvc import contraction_factor, round_threshold

        lower, upper = registry.value_bounds()
        expected = round_threshold(upper - lower, 0.25, contraction_factor(n, 1, "witness_subsets"))
        assert outcome.rounds_executed == expected


class TestSynchronousVsAsynchronousGap:
    """The asynchronous bound exceeds the synchronous one by f when d > 1."""

    def test_bound_gap(self):
        for dimension in (2, 3, 4):
            assert (
                minimum_processes_approx_async(dimension, 1)
                - minimum_processes_exact_sync(dimension, 1)
                == 1
            )

    def test_sync_possible_where_async_is_not(self):
        # At n = (d+1)f + 1 = 4 (d=2, f=1): exact synchronous BVC works...
        registry = uniform_box_registry(4, 2, 1, seed=35)
        mutators = {pid: OutsideHullStrategy() for pid in registry.faulty_ids}
        outcome = run_exact_bvc(registry, adversary_mutators=mutators)
        assert check_exact_outcome(registry, outcome.decisions).all_ok
        # ... while the asynchronous necessity construction shows no algorithm
        # with n = d + 2 = 4 can achieve epsilon-agreement.
        witness = analyze_async_necessity(2, epsilon=0.2)
        assert witness.violates_epsilon_agreement


class TestTheorem6Restricted:
    def test_restricted_sync_at_bound_with_attack(self):
        registry = uniform_box_registry(5, 2, 1, seed=36)
        mutators = {pid: OutsideHullStrategy(offset=20.0) for pid in registry.faulty_ids}
        outcome = run_restricted_sync_bvc(
            registry, epsilon=0.3, adversary_mutators=mutators, max_rounds_override=10
        )
        report = check_approximate_outcome(registry, outcome.decisions, epsilon=0.3)
        assert report.agreement_ok and report.validity_ok

    def test_lemma1_threshold_is_sharp_for_theorem1_inputs(self):
        # (d+1)f points can have empty Gamma; (d+1)f + 1 cannot.
        for dimension in (1, 2, 3):
            sparse = analyze_sync_necessity(dimension, process_count=dimension + 1)
            dense = analyze_sync_necessity(dimension, process_count=dimension + 2)
            assert sparse.gamma_empty and not dense.gamma_empty
