"""Attack matrix: every algorithm x every adversary strategy x every workload family.

A coarse-grained sweep that exercises the full stack under each combination
and verifies the appropriate correctness conditions.  Parameters are kept
small so the whole matrix runs in seconds.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import make_strategy
from repro.core.approx_bvc import run_approx_bvc
from repro.core.conditions import (
    minimum_processes_approx_async,
    minimum_processes_exact_sync,
    minimum_processes_restricted_sync,
)
from repro.core.exact_bvc import run_exact_bvc
from repro.core.restricted_sync import run_restricted_sync_bvc
from repro.core.validity import check_approximate_outcome, check_exact_outcome
from repro.network.scheduler import RandomScheduler
from repro.workloads.generators import (
    gradient_registry,
    probability_vector_registry,
    uniform_box_registry,
)

STRATEGIES = ("crash", "equivocate", "outside_hull", "random_noise")


def build_registry(workload: str, process_count: int, dimension: int, fault_bound: int, seed: int):
    if workload == "uniform":
        return uniform_box_registry(process_count, dimension, fault_bound, seed=seed)
    if workload == "probability":
        return probability_vector_registry(process_count, dimension, fault_bound, seed=seed)
    return gradient_registry(process_count, dimension, fault_bound, seed=seed)


@pytest.mark.parametrize("workload", ["uniform", "probability", "gradient"])
@pytest.mark.parametrize("strategy_name", STRATEGIES)
def test_exact_bvc_matrix(workload, strategy_name):
    dimension, fault_bound = 2, 1
    n = minimum_processes_exact_sync(dimension, fault_bound)
    registry = build_registry(workload, n, dimension, fault_bound, seed=41)
    mutators = {pid: make_strategy(strategy_name, registry, seed=1) for pid in registry.faulty_ids}
    outcome = run_exact_bvc(registry, adversary_mutators=mutators)
    report = check_exact_outcome(registry, outcome.decisions)
    assert report.all_ok, (workload, strategy_name, report)


@pytest.mark.parametrize("workload", ["uniform", "probability"])
@pytest.mark.parametrize("strategy_name", ("crash", "outside_hull"))
def test_approx_bvc_matrix(workload, strategy_name):
    dimension, fault_bound = 1, 1
    n = minimum_processes_approx_async(dimension, fault_bound)
    registry = build_registry(workload, n, dimension, fault_bound, seed=42)
    mutators = {pid: make_strategy(strategy_name, registry, seed=2) for pid in registry.faulty_ids}
    outcome = run_approx_bvc(
        registry, epsilon=0.3, adversary_mutators=mutators, scheduler=RandomScheduler(3)
    )
    report = check_approximate_outcome(registry, outcome.decisions, epsilon=0.3)
    assert report.agreement_ok and report.validity_ok, (workload, strategy_name, report)


@pytest.mark.parametrize("strategy_name", STRATEGIES)
def test_restricted_sync_matrix(strategy_name):
    dimension, fault_bound = 2, 1
    n = minimum_processes_restricted_sync(dimension, fault_bound)
    registry = build_registry("uniform", n, dimension, fault_bound, seed=43)
    mutators = {pid: make_strategy(strategy_name, registry, seed=3) for pid in registry.faulty_ids}
    outcome = run_restricted_sync_bvc(
        registry, epsilon=0.3, adversary_mutators=mutators, max_rounds_override=10
    )
    report = check_approximate_outcome(registry, outcome.decisions, epsilon=0.3)
    assert report.agreement_ok and report.validity_ok, (strategy_name, report)


def test_two_faults_exact_bvc_with_mixed_strategies():
    dimension, fault_bound = 2, 2
    n = minimum_processes_exact_sync(dimension, fault_bound)
    registry = uniform_box_registry(n, dimension, fault_bound, seed=44)
    faulty = sorted(registry.faulty_ids)
    mutators = {
        faulty[0]: make_strategy("equivocate", registry, seed=4),
        faulty[1]: make_strategy("outside_hull", registry, seed=5),
    }
    outcome = run_exact_bvc(registry, adversary_mutators=mutators)
    report = check_exact_outcome(registry, outcome.decisions)
    assert report.all_ok
