"""Property-based tests over whole protocol runs.

Hypothesis drives the *inputs* (honest input vectors, adversary seeds); every
generated scenario must satisfy the paper's correctness conditions.  Instance
sizes are kept minimal (the smallest configurations admitted by the bounds)
so each example runs in a fraction of a second.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.byzantine.strategies import EquivocationStrategy, OutsideHullStrategy
from repro.core.conditions import SystemConfiguration
from repro.core.exact_bvc import run_exact_bvc
from repro.core.restricted_sync import run_restricted_sync_bvc
from repro.core.safe_area import SafeAreaCalculator
from repro.core.validity import check_approximate_outcome, check_exact_outcome
from repro.geometry.multisets import PointMultiset
from repro.processes.registry import ProcessRegistry

coordinate = st.floats(min_value=-5.0, max_value=5.0, allow_nan=False, allow_infinity=False)


def vector_list(count: int, dimension: int):
    return st.lists(
        st.lists(coordinate, min_size=dimension, max_size=dimension),
        min_size=count,
        max_size=count,
    )


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(inputs=vector_list(4, 2), attack_offset=st.floats(min_value=5.0, max_value=100.0))
def test_exact_bvc_always_valid_under_outside_hull_attack(inputs, attack_offset):
    configuration = SystemConfiguration(4, 2, 1)
    registry = ProcessRegistry(
        configuration,
        {pid: np.asarray(vector) for pid, vector in enumerate(inputs)},
        faulty_ids={3},
    )
    outcome = run_exact_bvc(
        registry, adversary_mutators={3: OutsideHullStrategy(offset=attack_offset)}
    )
    report = check_exact_outcome(registry, outcome.decisions)
    assert report.agreement_ok
    assert report.validity_ok


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(inputs=vector_list(5, 2))
def test_restricted_sync_stays_in_honest_hull(inputs):
    configuration = SystemConfiguration(5, 2, 1)
    registry = ProcessRegistry(
        configuration,
        {pid: np.asarray(vector) for pid, vector in enumerate(inputs)},
        faulty_ids={4},
    )
    honest_inputs = [registry.input_of(pid) for pid in registry.honest_ids]
    outcome = run_restricted_sync_bvc(
        registry,
        epsilon=0.5,
        adversary_mutators={4: EquivocationStrategy(honest_inputs)},
        max_rounds_override=5,
    )
    report = check_approximate_outcome(registry, outcome.decisions, epsilon=1e6)
    assert report.validity_ok


@settings(max_examples=20, deadline=None)
@given(inputs=vector_list(5, 2))
def test_safe_area_choice_is_deterministic_across_processes(inputs):
    # Agreement in Step 2 of the exact algorithm rests on this determinism.
    cloud = PointMultiset(np.asarray(inputs, dtype=float))
    chooser_a = SafeAreaCalculator(fault_bound=1)
    chooser_b = SafeAreaCalculator(fault_bound=1)
    assert np.allclose(chooser_a.choose(cloud), chooser_b.choose(cloud), atol=1e-9)
