"""Unit tests for Bracha reliable broadcast.

The engine is exercised both in-memory (directly wiring sends between
engines, with full control over delivery order) and through adversarial
scenarios: an equivocating broadcaster, a silent broadcaster, and Byzantine
echo traffic.  The properties checked are consistency (no two honest
processes deliver different values), validity (an honest broadcaster's value
is delivered by everyone), and totality (if one honest process delivers,
all do).
"""

from __future__ import annotations

from collections import deque

import pytest

from repro.broadcast.reliable_broadcast import ReliableBroadcastEngine
from repro.exceptions import ConfigurationError


class BroadcastHarness:
    """Wire several engines together with an explicit FIFO message queue."""

    def __init__(self, process_count: int, fault_bound: int, byzantine: set[int] | None = None):
        self.process_ids = tuple(range(process_count))
        self.byzantine = byzantine or set()
        self.queue: deque[tuple[int, int, str, dict]] = deque()
        self.delivered: dict[int, dict] = {pid: {} for pid in self.process_ids}
        self.engines = {}
        for pid in self.process_ids:
            self.engines[pid] = ReliableBroadcastEngine(
                owner_id=pid,
                process_ids=self.process_ids,
                fault_bound=fault_bound,
                send=self._make_send(pid),
                deliver=self._make_deliver(pid),
            )

    def _make_send(self, sender: int):
        def send(recipient: int, kind: str, payload: dict) -> None:
            self.queue.append((sender, recipient, kind, dict(payload)))
        return send

    def _make_deliver(self, owner: int):
        def deliver(broadcast_id, value) -> None:
            assert broadcast_id not in self.delivered[owner], "duplicate delivery"
            self.delivered[owner][broadcast_id] = value
        return deliver

    def run(self, drop_from: set[int] | None = None) -> None:
        """Deliver all queued messages (FIFO), optionally dropping a sender's traffic."""
        drop_from = drop_from or set()
        while self.queue:
            sender, recipient, kind, payload = self.queue.popleft()
            if sender in drop_from:
                continue
            self.engines[recipient].handle(sender, kind, payload)

    def honest_deliveries(self, broadcast_id):
        return {
            pid: self.delivered[pid].get(broadcast_id)
            for pid in self.process_ids
            if pid not in self.byzantine
        }


class TestConstruction:
    def test_requires_n_greater_than_3f(self):
        with pytest.raises(ConfigurationError):
            ReliableBroadcastEngine(0, (0, 1, 2), 1, lambda *a: None, lambda *a: None)

    def test_owner_must_be_member(self):
        with pytest.raises(ConfigurationError):
            ReliableBroadcastEngine(9, (0, 1, 2, 3), 1, lambda *a: None, lambda *a: None)


class TestHonestBroadcast:
    def test_everyone_delivers_the_value(self):
        harness = BroadcastHarness(4, 1)
        harness.engines[0].broadcast("tag", (1.0, 2.0))
        harness.run()
        deliveries = harness.honest_deliveries((0, "tag"))
        assert all(value == (1.0, 2.0) for value in deliveries.values())

    def test_multiple_concurrent_broadcasts(self):
        harness = BroadcastHarness(4, 1)
        for pid in range(4):
            harness.engines[pid].broadcast("round1", (float(pid),))
        harness.run()
        for broadcaster in range(4):
            deliveries = harness.honest_deliveries((broadcaster, "round1"))
            assert all(value == (float(broadcaster),) for value in deliveries.values())

    def test_distinct_tags_are_independent(self):
        harness = BroadcastHarness(4, 1)
        harness.engines[1].broadcast("a", (1.0,))
        harness.engines[1].broadcast("b", (2.0,))
        harness.run()
        assert all(v == (1.0,) for v in harness.honest_deliveries((1, "a")).values())
        assert all(v == (2.0,) for v in harness.honest_deliveries((1, "b")).values())

    def test_no_delivery_without_broadcast(self):
        harness = BroadcastHarness(4, 1)
        harness.run()
        assert all(not delivered for delivered in harness.delivered.values())


class TestByzantineBroadcaster:
    def test_equivocation_never_yields_conflicting_deliveries(self):
        harness = BroadcastHarness(4, 1, byzantine={0})
        # Byzantine process 0 sends INIT with different values to different peers.
        for recipient, value in [(1, (1.0,)), (2, (2.0,)), (3, (1.0,))]:
            harness.queue.append((0, recipient, ReliableBroadcastEngine.KIND_INIT,
                                  {"broadcaster": 0, "tag": "t", "value": value}))
        harness.run()
        delivered_values = {
            value for value in harness.honest_deliveries((0, "t")).values() if value is not None
        }
        # Consistency: at most one distinct value may ever be delivered.
        assert len(delivered_values) <= 1

    def test_totality_when_one_honest_process_delivers(self):
        harness = BroadcastHarness(4, 1, byzantine={0})
        # A consistent-looking broadcast from the Byzantine process: everyone
        # who hears it echoes, so if anyone delivers, all must.
        for recipient in (1, 2, 3):
            harness.queue.append((0, recipient, ReliableBroadcastEngine.KIND_INIT,
                                  {"broadcaster": 0, "tag": "t", "value": (9.0,)}))
        harness.run()
        deliveries = harness.honest_deliveries((0, "t"))
        delivered_count = sum(1 for value in deliveries.values() if value is not None)
        assert delivered_count in (0, len(deliveries))
        assert delivered_count == len(deliveries)

    def test_forged_init_from_non_broadcaster_is_ignored(self):
        harness = BroadcastHarness(4, 1, byzantine={3})
        # Process 3 forges an INIT claiming to originate from process 1.
        harness.queue.append((3, 2, ReliableBroadcastEngine.KIND_INIT,
                              {"broadcaster": 1, "tag": "t", "value": (7.0,)}))
        harness.run()
        assert harness.honest_deliveries((1, "t")) == {0: None, 1: None, 2: None}

    def test_byzantine_echo_minority_cannot_force_delivery(self):
        harness = BroadcastHarness(4, 1, byzantine={3})
        # Only Byzantine ECHO/READY traffic for a value nobody broadcast.
        for kind in (ReliableBroadcastEngine.KIND_ECHO, ReliableBroadcastEngine.KIND_READY):
            for recipient in (0, 1, 2):
                harness.queue.append((3, recipient, kind,
                                      {"broadcaster": 3, "tag": "t", "value": (5.0,)}))
        harness.run()
        assert all(value is None for value in harness.honest_deliveries((3, "t")).values())

    def test_malformed_payloads_ignored(self):
        harness = BroadcastHarness(4, 1)
        harness.engines[0].handle(1, ReliableBroadcastEngine.KIND_ECHO, "not-a-dict")
        harness.engines[0].handle(1, ReliableBroadcastEngine.KIND_ECHO, {"broadcaster": 99, "tag": "t", "value": 1})
        harness.engines[0].handle(1, ReliableBroadcastEngine.KIND_ECHO, {"broadcaster": 1, "tag": ["unhashable"], "value": 1})
        assert harness.delivered[0] == {}
