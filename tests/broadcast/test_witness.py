"""Unit tests for the AAD witness exchange (Properties 1-3 of B_i[t])."""

from __future__ import annotations

from collections import deque

import numpy as np
import pytest

from repro.broadcast.witness import WitnessExchange


class ExchangeHarness:
    """Wire witness exchanges together with an explicit FIFO queue per channel pair."""

    def __init__(self, process_count: int, fault_bound: int, byzantine: set[int] | None = None):
        self.process_ids = tuple(range(process_count))
        self.fault_bound = fault_bound
        self.byzantine = byzantine or set()
        self.queue: deque[tuple[int, int, str, dict]] = deque()
        self.completed: dict[int, dict[int, object]] = {pid: {} for pid in self.process_ids}
        self.exchanges = {}
        for pid in self.process_ids:
            self.exchanges[pid] = WitnessExchange(
                owner_id=pid,
                process_ids=self.process_ids,
                fault_bound=fault_bound,
                send=self._make_send(pid),
                on_round_complete=self._make_complete(pid),
            )

    def _make_send(self, sender: int):
        def send(recipient: int, kind: str, payload: dict) -> None:
            self.queue.append((sender, recipient, kind, dict(payload)))
        return send

    def _make_complete(self, owner: int):
        def complete(result) -> None:
            assert result.round_index not in self.completed[owner], "round completed twice"
            self.completed[owner][result.round_index] = result
        return complete

    def start_round(self, round_index: int, states: dict[int, np.ndarray], skip: set[int] | None = None):
        skip = skip or set()
        for pid in self.process_ids:
            if pid in skip:
                continue
            self.exchanges[pid].start_round(round_index, states[pid])

    def run(self, drop_from: set[int] | None = None) -> None:
        drop_from = drop_from or set()
        while self.queue:
            sender, recipient, kind, payload = self.queue.popleft()
            if sender in drop_from:
                continue
            self.exchanges[recipient].handle(sender, kind, payload)

    def honest_results(self, round_index: int):
        return {
            pid: self.completed[pid].get(round_index)
            for pid in self.process_ids
            if pid not in self.byzantine
        }


STATES = {pid: np.asarray([float(pid), float(pid) * 2]) for pid in range(5)}


class TestFaultFreeExchange:
    def test_all_processes_complete_with_quorum(self):
        harness = ExchangeHarness(5, 1)
        harness.start_round(1, STATES)
        harness.run()
        results = harness.honest_results(1)
        assert all(result is not None for result in results.values())
        for result in results.values():
            assert len(result.tuples) >= 4  # n - f

    def test_property2_at_most_one_tuple_per_process(self):
        harness = ExchangeHarness(5, 1)
        harness.start_round(1, STATES)
        harness.run()
        for result in harness.honest_results(1).values():
            assert len(result.tuples) == len(set(result.tuples))
            assert len(result.arrival_order) == len(set(result.arrival_order))

    def test_property3_honest_tuples_carry_true_state(self):
        harness = ExchangeHarness(5, 1)
        harness.start_round(1, STATES)
        harness.run()
        for result in harness.honest_results(1).values():
            for pid, vector in result.tuples.items():
                assert np.allclose(vector, STATES[pid])

    def test_property1_pairwise_overlap_at_least_quorum(self):
        harness = ExchangeHarness(5, 1)
        harness.start_round(1, STATES)
        harness.run()
        results = list(harness.honest_results(1).values())
        quorum = 4
        for i in range(len(results)):
            for j in range(i + 1, len(results)):
                common = set(results[i].tuples) & set(results[j].tuples)
                assert len(common) >= quorum

    def test_witness_reports_have_quorum_size(self):
        harness = ExchangeHarness(5, 1)
        harness.start_round(1, STATES)
        harness.run()
        for result in harness.honest_results(1).values():
            assert len(result.witness_reports) >= 4
            for members in result.witness_reports.values():
                assert len(members) == 4

    def test_multiple_rounds_are_independent(self):
        harness = ExchangeHarness(5, 1)
        harness.start_round(1, STATES)
        harness.run()
        new_states = {pid: STATES[pid] + 10.0 for pid in STATES}
        harness.start_round(2, new_states)
        harness.run()
        for result in harness.honest_results(2).values():
            for pid, vector in result.tuples.items():
                assert np.allclose(vector, new_states[pid])


class TestFaultyExchange:
    def test_crashed_process_does_not_block_completion(self):
        harness = ExchangeHarness(5, 1, byzantine={4})
        harness.start_round(1, STATES, skip={4})
        harness.run(drop_from={4})
        results = harness.honest_results(1)
        assert all(result is not None for result in results.values())
        for result in results.values():
            assert 4 not in result.tuples

    def test_bogus_report_from_byzantine_is_not_counted_until_verifiable(self):
        harness = ExchangeHarness(5, 1, byzantine={4})
        harness.start_round(1, STATES, skip={4})
        # The Byzantine process claims a report listing itself (whose broadcast
        # nobody will ever deliver) — it must never become a witness.
        for recipient in range(4):
            harness.queue.append((4, recipient, WitnessExchange.KIND_REPORT,
                                  {"round": 1, "members": [4, 0, 1, 2]}))
        harness.run(drop_from=set())
        results = harness.honest_results(1)
        for result in results.values():
            assert result is not None
            assert 4 not in result.witness_reports

    def test_malformed_reports_ignored(self):
        harness = ExchangeHarness(5, 1)
        exchange = harness.exchanges[0]
        exchange.handle(1, WitnessExchange.KIND_REPORT, {"round": "x", "members": [0, 1, 2, 3]})
        exchange.handle(1, WitnessExchange.KIND_REPORT, {"round": 1, "members": [0, 0, 1, 2]})
        exchange.handle(1, WitnessExchange.KIND_REPORT, {"round": 1, "members": [0, 1]})
        exchange.handle(1, WitnessExchange.KIND_REPORT, {"round": 1, "members": [0, 1, 2, 99]})
        exchange.handle(1, WitnessExchange.KIND_REPORT, "garbage")
        # None of these should have registered a report.
        assert harness.completed[0] == {}

    def test_property1_with_byzantine_equivocation_in_broadcast(self):
        harness = ExchangeHarness(5, 1, byzantine={4})
        harness.start_round(1, STATES, skip={4})
        # The Byzantine process reliably-broadcasts two different INITs for the
        # same round to different peers; Bracha consistency means at most one
        # version can ever appear in any honest B set.
        from repro.broadcast.reliable_broadcast import ReliableBroadcastEngine
        for recipient, value in [(0, (9.0, 9.0)), (1, (8.0, 8.0)), (2, (9.0, 9.0)), (3, (9.0, 9.0))]:
            harness.queue.append((4, recipient, ReliableBroadcastEngine.KIND_INIT,
                                  {"broadcaster": 4, "tag": ("state", 1), "value": value}))
        harness.run()
        observed_versions = set()
        for result in harness.honest_results(1).values():
            assert result is not None
            if 4 in result.tuples:
                observed_versions.add(tuple(result.tuples[4]))
        assert len(observed_versions) <= 1

    def test_quorum_property(self):
        harness = ExchangeHarness(5, 1)
        assert harness.exchanges[0].quorum == 4
