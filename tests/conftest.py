"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.conditions import SystemConfiguration
from repro.processes.registry import ProcessRegistry


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministically seeded random generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_registry() -> ProcessRegistry:
    """5 processes, d = 2, f = 1: meets every bound except restricted-async."""
    configuration = SystemConfiguration(process_count=5, dimension=2, fault_bound=1)
    inputs = {
        0: np.asarray([0.0, 0.0]),
        1: np.asarray([1.0, 0.0]),
        2: np.asarray([0.0, 1.0]),
        3: np.asarray([1.0, 1.0]),
        4: np.asarray([0.5, 0.5]),
    }
    return ProcessRegistry(configuration, inputs, faulty_ids={4})


@pytest.fixture
def fault_free_registry() -> ProcessRegistry:
    """4 processes, d = 2, f = 1, but no process actually faulty."""
    configuration = SystemConfiguration(process_count=4, dimension=2, fault_bound=1)
    inputs = {
        0: np.asarray([0.0, 0.0]),
        1: np.asarray([2.0, 0.0]),
        2: np.asarray([0.0, 2.0]),
        3: np.asarray([2.0, 2.0]),
    }
    return ProcessRegistry(configuration, inputs, faulty_ids=frozenset())
