"""Campaign sessions: typed events, status snapshots, cooperative cancellation.

The session is the single execution path every consumer rides
(``execute_specs``, ``run_campaign``, ``run_fuzz``, the experiments, the
HTTP server), so these tests pin its contract directly:

* ``events()`` yields planned/claimed/fallback/unit-committed/row/finished
  in a coherent order, with rows in spec order and byte-identical to the
  functional API;
* ``status()`` snapshots are consistent mid-flight and terminal afterwards;
* cancellation — whether by ``cancel()`` or by abandoning the generator (the
  client-disconnect analog) — halts work promptly, **releases SQLite
  claims**, and leaves the store resumable: a rerun serves everything
  already committed and recomputes nothing twice.
"""

from __future__ import annotations

import pytest

from repro.engine import (
    Campaign,
    CampaignSession,
    ClaimedEvent,
    FinishedEvent,
    PlannedEvent,
    RowEvent,
    TrialSpec,
    UnitCommittedEvent,
    execute_specs,
    run_fuzz,
    strip_timing,
)
from repro.engine.executor import StoreCacheStats
from repro.store.backend import SqliteResultStore


def _specs(count: int = 8) -> list[TrialSpec]:
    return [
        TrialSpec(protocol="exact", workload="uniform_box", process_count=5,
                  dimension=1, fault_bound=1, seed=index, trial_index=index)
        for index in range(count)
    ]


def _rows(results) -> list[str]:
    return strip_timing(result.to_row() for result in results)


class TestEventStream:
    def test_rows_arrive_in_spec_order_and_match_execute_specs(self):
        specs = _specs(6)
        expected = _rows(execute_specs(specs))
        session = CampaignSession(specs, engine="auto")
        events = list(session.events())
        rows = [event for event in events if isinstance(event, RowEvent)]
        assert [event.position for event in rows] == list(range(len(specs)))
        assert _rows(event.result for event in rows) == expected
        assert all(event.source == "executed" for event in rows)

    def test_event_shape_planned_first_finished_last(self):
        session = CampaignSession(_specs(4), engine="auto")
        events = list(session.events())
        assert isinstance(events[0], PlannedEvent)
        assert events[0].trials == 4
        assert isinstance(events[-1], FinishedEvent)
        assert events[-1].status.state == "finished"
        assert session.state == "finished"

    def test_stored_session_emits_claimed_and_committed_events(self, tmp_path):
        specs = _specs(6)
        session = CampaignSession(specs, store=tmp_path / "store.db")
        events = list(session.events())
        claimed = [event for event in events if isinstance(event, ClaimedEvent)]
        assert len(claimed) == 1 and claimed[0].granted == len(specs)
        committed = [event for event in events if isinstance(event, UnitCommittedEvent)]
        assert committed and all(event.committed for event in committed)

    def test_warm_rerun_serves_rows_from_cache(self, tmp_path):
        specs = _specs(5)
        store_path = tmp_path / "store.db"
        assert len(list(CampaignSession(specs, store=store_path).rows())) == 5
        warm = CampaignSession(specs, store=store_path)
        rows = [event for event in warm.events() if isinstance(event, RowEvent)]
        assert all(event.source == "cache" for event in rows)
        assert warm.cache_stats.hits == len(specs)

    def test_session_is_single_use(self):
        session = CampaignSession(_specs(2))
        list(session.events())
        with pytest.raises(RuntimeError, match="single-use"):
            next(session.events())

    def test_rows_wrapper_filters_row_events(self):
        specs = _specs(4)
        assert _rows(CampaignSession(specs).rows()) == _rows(execute_specs(specs))


class TestStatus:
    def test_snapshot_midstream_and_terminal(self):
        specs = _specs(6)
        session = CampaignSession(specs, engine="object")
        assert session.status().state == "pending"
        rows = session.rows()
        next(rows), next(rows)
        status = session.status()
        assert status.state == "running"
        assert status.emitted == 2 and status.trials == 6
        list(rows)
        final = session.status()
        assert final.state == "finished"
        assert final.emitted == final.ok == 6
        assert final.done and final.elapsed_seconds > 0

    def test_summary_carries_run_id_and_fallbacks(self):
        specs = _specs(4)
        session = CampaignSession(specs, name="pinned", engine="object")
        list(session.rows())
        summary = session.summary("out.jsonl")
        assert summary.run_id == session.run_id and len(summary.run_id) == 16
        assert summary.name == "pinned"
        assert summary.jsonl_path == "out.jsonl"
        assert summary.trials == summary.ok == 4
        assert sum(summary.fallback_reasons.values()) == 4  # forced object

    def test_status_to_dict_is_json_shaped(self):
        session = CampaignSession(_specs(2))
        list(session.rows())
        payload = session.status().to_dict()
        assert payload["state"] == "finished"
        assert payload["run_id"] == session.run_id
        assert isinstance(payload["fallback_reasons"], dict)


class TestCancellation:
    def test_cancel_mid_stream_halts_and_releases_claims(self, tmp_path):
        store_path = tmp_path / "store.db"
        specs = _specs(12)
        # Object engine -> STORE_COMMIT_CHUNK-sized units, so cancellation
        # has unit boundaries to act on (a columnar batch ships whole).
        session = CampaignSession(specs, store=store_path, engine="object")
        consumed = []
        for result in session.rows():
            consumed.append(result)
            if len(consumed) == 3:
                session.cancel()
        assert session.state == "cancelled"
        assert len(consumed) < len(specs)
        with SqliteResultStore(store_path) as store:
            assert store.claim_stats() == {"live": 0, "expired": 0}

    def test_generator_close_is_client_disconnect(self, tmp_path):
        """Abandoning rows() (a dropped HTTP client) cancels like cancel()."""
        store_path = tmp_path / "store.db"
        session = CampaignSession(_specs(12), store=store_path)
        rows = session.rows()
        next(rows), next(rows)
        rows.close()
        assert session.state == "cancelled"
        with SqliteResultStore(store_path) as store:
            assert store.claim_stats() == {"live": 0, "expired": 0}

    def test_multiworker_cancel_halts_promptly_and_releases_claims(self, tmp_path):
        store_path = tmp_path / "store.db"
        specs = _specs(16)
        session = CampaignSession(
            specs, store=store_path, workers=2, chunksize=2, engine="object"
        )
        received = 0
        for _ in session.rows():
            received += 1
            if received == 2:
                session.cancel()
        assert session.state == "cancelled"
        assert session.status().emitted == received
        with SqliteResultStore(store_path) as store:
            assert store.claim_stats() == {"live": 0, "expired": 0}

    @pytest.mark.parametrize("workers", [1, 2])
    def test_resume_after_cancel_is_byte_identical_with_zero_recompute(
        self, tmp_path, workers
    ):
        """The satellite contract: cancel -> resume completes, recomputing
        nothing that was committed, and exports byte-identical rows."""
        store_path = tmp_path / "store.db"
        specs = _specs(12)
        expected = _rows(execute_specs(specs))

        first = CampaignSession(
            specs, store=store_path, workers=workers, chunksize=2, engine="object"
        )
        consumed = 0
        for _ in first.rows():
            consumed += 1
            if consumed == 3:
                first.cancel()
        assert first.state == "cancelled"

        committed = len(SqliteResultStore(store_path))
        # Commit-then-emit: every consumed row is durably in the store.
        assert committed >= consumed

        stats = StoreCacheStats()
        resumed = CampaignSession(
            specs, store=store_path, workers=workers, cache_stats=stats
        )
        rows = _rows(resumed.rows())
        assert rows == expected
        # Zero duplicate computation: everything the first run committed is
        # served from the store, only the remainder executes.
        assert stats.hits == committed
        assert stats.misses == len(specs) - committed

    def test_cancel_before_start_emits_nothing(self):
        session = CampaignSession(_specs(4))
        session.cancel()
        rows = list(session.rows())
        assert rows == []
        assert session.state == "cancelled"


class TestConsumersRideSessions:
    def test_fuzz_report_carries_run_id_and_fallback_reasons(self):
        report = run_fuzz(count=4, seed=3, workers=1)
        assert len(report.run_id) == 16
        assert isinstance(report.fallback_reasons, dict)
        assert report.runs == 4

    def test_run_campaign_summary_run_id_matches_session(self, tmp_path):
        from repro.engine import run_campaign

        campaign = Campaign.from_specs("c", _specs(3))
        summary, _ = run_campaign(campaign, store=tmp_path / "s.db")
        assert len(summary.run_id) == 16
        assert summary.cache_hits == 0 and summary.trials == 3
