"""Differential-oracle harness for the newly columnar scenario classes.

The object runtime is the oracle.  Every scenario class that PR 6 made
eligible for the vectorized engine — coordinated restricted-sync adversaries
and deterministic-scheduler restricted-async runs — is executed through both
engines here, asserting byte-identical JSONL rows (after
:func:`~repro.engine.executor.strip_timing`): decisions, verdicts, round and
traffic counters, recorded state histories, and error rows alike.  A
divergence anywhere in this file means the columnar path changed trial
*semantics*, not just trial *speed*.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.engine import (
    COORDINATED_STRATEGY_NAMES,
    Campaign,
    TrialSpec,
    execute_specs,
    run_trial,
    run_specs_vectorized,
    strip_timing,
)

DETERMINISTIC_SCHEDULERS = ("round_robin", "lagging")


def _rows(results) -> list[str]:
    return strip_timing([result.to_row() for result in results])


def _assert_rows_identical(specs) -> list[str]:
    object_rows = _rows(execute_specs(specs, engine="object"))
    vectorized_rows = _rows(execute_specs(specs, engine="vectorized"))
    assert object_rows == vectorized_rows
    return object_rows


class TestCoordinatedDifferential:
    """Coordinated restricted-sync adversaries: batched vs object mutators."""

    @pytest.mark.parametrize("adversary", COORDINATED_STRATEGY_NAMES)
    def test_adversary_grid_matches_oracle(self, adversary):
        campaign = Campaign.from_grid(
            f"diff-{adversary}",
            protocols=("restricted_sync",),
            adversaries=(adversary,),
            dimensions=(1, 2),
            fault_bounds=(1, 2),
            repeats=2,
            base_seed=41,
            max_rounds_override=3,
        )
        rows = _assert_rows_identical(campaign.specs)
        statuses = {json.loads(row)["status"] for row in rows}
        assert statuses == {"ok"}

    def test_reference_grid_class_matches_oracle(self):
        # The benchmark reference grid's scenario class: d=2, all three
        # value-level coordinated strategies, multiple repeats per cell.
        campaign = Campaign.from_grid(
            "diff-reference-class",
            protocols=("restricted_sync",),
            adversaries=("split_world", "hull_collapse", "adaptive_extreme"),
            dimensions=(2,),
            fault_bounds=(2,),
            repeats=3,
            base_seed=59,
            max_rounds_override=3,
        )
        _assert_rows_identical(campaign.specs)

    def test_explicit_collapse_target_matches_oracle(self):
        specs = [
            TrialSpec(
                protocol="restricted_sync", workload="uniform_box",
                adversary="hull_collapse", process_count=9, dimension=2,
                fault_bound=2, max_rounds_override=3, seed=seed,
                adversary_params={"target": [0.25, -0.5]}, trial_index=index,
            )
            for index, seed in enumerate((3, 4))
        ]
        _assert_rows_identical(specs)

    def test_coordinated_error_rows_match_oracle(self):
        specs = [
            # hull_collapse target with the wrong shape: the coordinator
            # raises ConfigurationError at the first mutate, which must
            # surface as an identical error row from both engines.
            TrialSpec(
                protocol="restricted_sync", workload="uniform_box",
                adversary="hull_collapse", process_count=9, dimension=2,
                fault_bound=2, max_rounds_override=3, seed=5,
                adversary_params={"target": [1.0, 2.0, 3.0]}, trial_index=0,
            ),
            # Below the resilience bound: fails in registry construction,
            # before any coordinated machinery runs.
            TrialSpec(
                protocol="restricted_sync", workload="uniform_box",
                adversary="split_world", process_count=4, dimension=2,
                fault_bound=1, max_rounds_override=3, seed=6, trial_index=1,
            ),
        ]
        rows = _assert_rows_identical(specs)
        statuses = [json.loads(row)["status"] for row in rows]
        assert statuses == ["error", "error"]

    @pytest.mark.parametrize("adversary", COORDINATED_STRATEGY_NAMES)
    def test_recorded_histories_match_oracle(self, adversary):
        spec = TrialSpec(
            protocol="restricted_sync", workload="uniform_box",
            adversary=adversary, process_count=9, dimension=2, fault_bound=2,
            max_rounds_override=3, seed=13, record_history=True,
        )
        object_result = run_trial(spec)
        (vectorized_result,) = run_specs_vectorized([spec])
        assert object_result.ok and vectorized_result.ok
        assert (
            object_result.state_histories.keys()
            == vectorized_result.state_histories.keys()
        )
        for process_id, object_history in object_result.state_histories.items():
            vectorized_history = vectorized_result.state_histories[process_id]
            assert len(object_history) == len(vectorized_history)
            for object_state, vectorized_state in zip(object_history, vectorized_history):
                assert np.array_equal(object_state, vectorized_state)


class TestAsyncDifferential:
    """Deterministic-scheduler restricted-async runs: skeleton replay vs object."""

    def _specs(self, scheduler, *, seeds=(5, 6, 7), rounds=4):
        specs = []
        for process_count, dimension, fault_bound in ((6, 1, 1), (7, 2, 1)):
            for seed in seeds:
                specs.append(TrialSpec(
                    protocol="restricted_async", workload="uniform_box",
                    scheduler=scheduler, process_count=process_count,
                    dimension=dimension, fault_bound=fault_bound,
                    max_rounds_override=rounds, seed=seed,
                    trial_index=len(specs),
                ))
        return specs

    @pytest.mark.parametrize("scheduler", DETERMINISTIC_SCHEDULERS)
    def test_scheduler_grid_matches_oracle(self, scheduler):
        rows = _assert_rows_identical(self._specs(scheduler))
        statuses = {json.loads(row)["status"] for row in rows}
        assert statuses == {"ok"}

    @pytest.mark.parametrize("scheduler", DETERMINISTIC_SCHEDULERS)
    def test_zero_round_budget_matches_oracle(self, scheduler):
        _assert_rows_identical(self._specs(scheduler, seeds=(9,), rounds=0))

    def test_async_histories_match_oracle(self):
        spec = TrialSpec(
            protocol="restricted_async", workload="uniform_box",
            scheduler="round_robin", process_count=6, dimension=1,
            fault_bound=1, max_rounds_override=3, seed=21,
            record_history=True,
        )
        object_result = run_trial(spec)
        (vectorized_result,) = run_specs_vectorized([spec])
        assert object_result.ok and vectorized_result.ok
        assert (
            object_result.state_histories.keys()
            == vectorized_result.state_histories.keys()
        )
        for process_id, object_history in object_result.state_histories.items():
            vectorized_history = vectorized_result.state_histories[process_id]
            assert len(object_history) == len(vectorized_history)
            for object_state, vectorized_state in zip(object_history, vectorized_history):
                assert np.array_equal(object_state, vectorized_state)


class TestAsyncDeterminism:
    """Batched-async runs are pure functions of their specs."""

    def _specs(self, scheduler):
        return [
            TrialSpec(
                protocol="restricted_async", workload="uniform_box",
                scheduler=scheduler, process_count=6, dimension=1,
                fault_bound=1, max_rounds_override=4, seed=seed,
                trial_index=index,
            )
            for index, seed in enumerate((2, 3, 2))
        ]

    @pytest.mark.parametrize("scheduler", DETERMINISTIC_SCHEDULERS)
    def test_repeated_vectorized_runs_are_byte_identical(self, scheduler):
        specs = self._specs(scheduler)
        first = _rows(execute_specs(specs, engine="vectorized"))
        second = _rows(execute_specs(specs, engine="vectorized"))
        assert first == second
        # Identical specs at different positions produce identical rows
        # modulo the trial index: the skeleton cache cannot leak state
        # between the trials that share it.
        first_row = json.loads(first[0])
        repeat_row = json.loads(first[2])
        first_row.pop("spec_trial_index"), repeat_row.pop("spec_trial_index")
        assert first_row == repeat_row

    @pytest.mark.parametrize("scheduler", DETERMINISTIC_SCHEDULERS)
    def test_worker_count_invariance(self, scheduler):
        specs = self._specs(scheduler)
        inline = _rows(execute_specs(specs, engine="vectorized", workers=1))
        pooled = _rows(execute_specs(specs, engine="vectorized", workers=2))
        assert inline == pooled

    def test_lagging_scheduler_seed_flows_from_trial_seed(self):
        # The lagging scheduler consumes a structure-only RNG stream keyed by
        # the trial's scheduler seed; two different trial seeds must each
        # still match the oracle (covered above) *and* be reproducible here.
        base = TrialSpec(
            protocol="restricted_async", workload="uniform_box",
            scheduler="lagging", process_count=6, dimension=1,
            fault_bound=1, max_rounds_override=4, seed=11,
        )
        other = dataclasses.replace(base, seed=12)
        for spec in (base, other):
            (first,) = run_specs_vectorized([spec])
            (second,) = run_specs_vectorized([spec])
            object_result = run_trial(spec)
            assert strip_timing([first.to_row()]) == strip_timing([second.to_row()])
            assert strip_timing([first.to_row()]) == strip_timing([object_result.to_row()])
