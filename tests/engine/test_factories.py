"""Tests for the engine's name factories (repro.engine.factories)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.byzantine.coordinator import AdversaryCoordinator, CoordinatedMutator
from repro.engine.factories import (
    ADVERSARY_NAMES,
    COORDINATED_STRATEGY_NAMES,
    build_mutators,
    build_registry,
    build_scheduler,
    derive_faulty_seeds,
    make_adversaries,
    make_strategy,
)
from repro.engine.spec import TrialSpec
from repro.exceptions import ConfigurationError
from repro.network.message import Message
from repro.network.scheduler import LaggingScheduler


def make_message(recipient=0, payload=None, round_index=1):
    if payload is None:
        payload = {"value": (0.25, 0.75)}
    return Message(sender=9, recipient=recipient, protocol="p", kind="K",
                   payload=payload, round_index=round_index)


class TestDeriveFaultySeeds:
    def test_one_seed_per_faulty_id(self):
        seeds = derive_faulty_seeds(42, [3, 1, 2])
        assert sorted(seeds) == [1, 2, 3]
        assert len(set(seeds.values())) == 3

    def test_deterministic_and_order_independent(self):
        assert derive_faulty_seeds(7, [1, 2]) == derive_faulty_seeds(7, [2, 1])

    def test_adjacent_root_seeds_do_not_collide(self):
        # The old scheme (adversary_seed + faulty_id) made seed s / id 2 and
        # seed s+1 / id 1 share a stream.  Spawned sequences must not.
        for base in (0, 10, 999):
            first = derive_faulty_seeds(base, [1, 2])
            second = derive_faulty_seeds(base + 1, [1, 2])
            assert first[2] != second[1]
            assert first[1] != second[1]


class TestMakeAdversaries:
    def _spec(self, adversary, **overrides):
        defaults = dict(
            protocol="exact",
            workload="uniform_box",
            adversary=adversary,
            process_count=7,
            dimension=2,
            fault_bound=2,
            seed=5,
        )
        defaults.update(overrides)
        return TrialSpec(**defaults)

    def test_none_has_no_mutators_or_coordinator(self):
        spec = self._spec("none")
        bundle = make_adversaries(spec, build_registry(spec))
        assert bundle.mutators == {}
        assert bundle.coordinator is None
        assert bundle.traffic_observer is None

    def test_independent_strategy_gets_one_mutator_per_faulty_id(self):
        spec = self._spec("random_noise")
        registry = build_registry(spec)
        bundle = make_adversaries(spec, registry)
        assert set(bundle.mutators) == set(registry.faulty_ids)
        assert bundle.coordinator is None

    def test_coordinated_strategy_shares_one_coordinator(self):
        for name in COORDINATED_STRATEGY_NAMES:
            spec = self._spec(name)
            registry = build_registry(spec)
            bundle = make_adversaries(spec, registry)
            assert isinstance(bundle.coordinator, AdversaryCoordinator)
            assert set(bundle.mutators) == set(registry.faulty_ids)
            coordinators = {
                mutator.coordinator
                for mutator in bundle.mutators.values()
                if isinstance(mutator, CoordinatedMutator)
            }
            assert coordinators == {bundle.coordinator}
            assert bundle.traffic_observer == bundle.coordinator.observe

    def test_adjacent_seed_trials_produce_distinct_noise_attacks(self):
        # Regression for the additive seeding bug: with seeds s and s+1 the
        # noise streams of (trial A, faulty id k) and (trial B, faulty id
        # k-1) used to be identical.
        spec_a = self._spec("random_noise", adversary_seed=100)
        spec_b = self._spec("random_noise", adversary_seed=101)
        registry = build_registry(spec_a)
        mutators_a = make_adversaries(spec_a, registry).mutators
        mutators_b = make_adversaries(spec_b, registry).mutators
        faulty = sorted(registry.faulty_ids)
        assert len(faulty) == 2
        high, low = faulty[1], faulty[0]
        noise_a = mutators_a[high].mutate(make_message())[0].payload["value"]
        noise_b = mutators_b[low].mutate(make_message())[0].payload["value"]
        assert noise_a != noise_b

    def test_build_mutators_compatibility_wrapper(self):
        spec = self._spec("crash")
        registry = build_registry(spec)
        assert set(build_mutators(spec, registry)) == set(registry.faulty_ids)


class TestMakeStrategy:
    def test_coordinate_attack_validated_against_registry_dimension(self):
        spec = TrialSpec(protocol="exact", workload="uniform_box", process_count=5,
                         dimension=2, fault_bound=1, seed=1)
        registry = build_registry(spec)
        with pytest.raises(ConfigurationError):
            make_strategy("coordinate_attack", registry, params={"coordinate": 2, "target": 0.0})
        strategy = make_strategy(
            "coordinate_attack", registry, params={"coordinate": 1, "target": 0.0}
        )
        assert strategy.coordinate == 1


class TestTheorem4SchedulerCoupling:
    def _spec(self, **overrides):
        defaults = dict(
            protocol="approx",
            workload="uniform_box",
            adversary="theorem4_scenario",
            scheduler="random",
            process_count=4,
            dimension=1,
            fault_bound=1,
            seed=2,
        )
        defaults.update(overrides)
        return TrialSpec(**defaults)

    def test_theorem4_overrides_scheduler_with_lagging(self):
        spec = self._spec()
        registry = build_registry(spec)
        scheduler = build_scheduler(spec, registry)
        assert isinstance(scheduler, LaggingScheduler)
        assert scheduler.slow_processes == {registry.honest_ids[-1]}

    def test_theorem4_slow_process_override(self):
        spec = self._spec(adversary_params={"slow_processes": (0,)})
        registry = build_registry(spec)
        scheduler = build_scheduler(spec, registry)
        assert scheduler.slow_processes == {0}

    def test_other_adversaries_keep_their_scheduler(self):
        spec = self._spec(adversary="crash")
        registry = build_registry(spec)
        assert not isinstance(build_scheduler(spec, registry), LaggingScheduler)


class TestAdversaryNames:
    def test_all_names_resolve(self):
        spec = TrialSpec(protocol="exact", workload="uniform_box", process_count=7,
                         dimension=2, fault_bound=2, seed=3)
        registry = build_registry(spec)
        for name in ADVERSARY_NAMES:
            params = {"coordinate": 0, "target": 1.0} if name == "coordinate_attack" else {}
            bundle = make_adversaries(
                TrialSpec(protocol="exact", workload="uniform_box", adversary=name,
                          process_count=7, dimension=2, fault_bound=2, seed=3,
                          adversary_params=params),
                registry,
            )
            if name == "none":
                assert bundle.mutators == {}
            else:
                assert set(bundle.mutators) == set(registry.faulty_ids)
