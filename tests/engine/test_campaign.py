"""Unit tests for repro.engine.campaign: grids, seeds, files."""

from __future__ import annotations

import json

import pytest

from repro.engine import Campaign, TrialSpec, minimum_processes_for, parameter_grid
from repro.exceptions import ConfigurationError


class TestParameterGrid:
    def test_cross_product_in_declaration_order(self):
        points = parameter_grid(dimension=(1, 2), fault_bound=(1,))
        assert points == [
            {"dimension": 1, "fault_bound": 1},
            {"dimension": 2, "fault_bound": 1},
        ]

    def test_last_axis_varies_fastest(self):
        points = parameter_grid(a=(1, 2), b=("x", "y"))
        assert [(p["a"], p["b"]) for p in points] == [(1, "x"), (1, "y"), (2, "x"), (2, "y")]

    def test_empty_grid_is_single_point(self):
        assert parameter_grid() == [{}]


class TestCampaignFromGrid:
    def test_trial_count_and_indexing(self):
        campaign = Campaign.from_grid(
            "grid",
            protocols=("exact",),
            adversaries=("crash", "outside_hull"),
            dimensions=(1, 2),
            repeats=3,
        )
        assert len(campaign) == 2 * 2 * 3
        assert [spec.trial_index for spec in campaign] == list(range(len(campaign)))

    def test_default_process_count_is_protocol_minimum(self):
        campaign = Campaign.from_grid(
            "bounds", protocols=("exact", "approx"), dimensions=(3,), fault_bounds=(2,)
        )
        by_protocol = {spec.protocol: spec.process_count for spec in campaign}
        assert by_protocol["exact"] == minimum_processes_for("exact", 3, 2)
        assert by_protocol["approx"] == minimum_processes_for("approx", 3, 2)

    def test_scheduler_axis_collapses_for_sync_protocols(self):
        campaign = Campaign.from_grid(
            "sync-only", protocols=("exact",), schedulers=("random", "round_robin", "lagging")
        )
        assert len(campaign) == 1  # the scheduler is never consulted

    def test_epsilon_axis_collapses_for_exact_protocols(self):
        campaign = Campaign.from_grid(
            "mixed-eps", protocols=("exact", "approx"), epsilons=(0.1, 0.2, 0.4)
        )
        by_protocol: dict[str, list[float]] = {}
        for spec in campaign:
            by_protocol.setdefault(spec.protocol, []).append(spec.epsilon)
        assert by_protocol["exact"] == [0.1]  # first value only, never consulted
        assert by_protocol["approx"] == [0.1, 0.2, 0.4]

    def test_seeds_unique_and_stable(self):
        first = Campaign.from_grid("a", protocols=("exact",), repeats=50, base_seed=9)
        second = Campaign.from_grid("a", protocols=("exact",), repeats=50, base_seed=9)
        assert first.specs == second.specs
        seeds = [spec.seed for spec in first]
        assert len(set(seeds)) == len(seeds)

    def test_different_base_seed_changes_trial_seeds(self):
        seeds_a = [spec.seed for spec in Campaign.from_grid("a", repeats=5, base_seed=1)]
        seeds_b = [spec.seed for spec in Campaign.from_grid("a", repeats=5, base_seed=2)]
        assert seeds_a != seeds_b

    def test_rejects_unknown_protocol_and_bad_repeats(self):
        with pytest.raises(ConfigurationError):
            Campaign.from_grid("bad", protocols=("nope",))
        with pytest.raises(ConfigurationError):
            Campaign.from_grid("bad", repeats=0)

    def test_describe_summarises_axes(self):
        campaign = Campaign.from_grid(
            "shape", protocols=("exact", "approx"), adversaries=("crash",)
        )
        shape = campaign.describe()
        assert shape["trials"] == len(campaign)
        assert shape["protocols"] == ["approx", "exact"]
        assert shape["adversaries"] == ["crash"]


class TestCampaignFromFile:
    def test_grid_file(self, tmp_path):
        path = tmp_path / "campaign.json"
        path.write_text(
            json.dumps(
                {
                    "name": "filed",
                    "grid": {
                        "protocols": ["exact"],
                        "adversaries": ["crash"],
                        "dimensions": [1, 2],
                        "repeats": 2,
                        "base_seed": 4,
                    },
                }
            )
        )
        campaign = Campaign.from_file(path)
        assert campaign.name == "filed"
        assert len(campaign) == 4
        assert campaign.specs == Campaign.from_grid(
            "filed", protocols=("exact",), adversaries=("crash",), dimensions=(1, 2),
            repeats=2, base_seed=4,
        ).specs

    def test_trials_file(self, tmp_path):
        spec = TrialSpec(protocol="exact", workload="uniform_box", seed=3)
        path = tmp_path / "trials.json"
        path.write_text(json.dumps({"trials": [spec.to_dict()]}))
        campaign = Campaign.from_file(path)
        assert campaign.name == "trials"
        assert campaign.specs == (spec,)

    def test_rejects_files_without_grid_or_trials(self, tmp_path):
        path = tmp_path / "nope.json"
        path.write_text(json.dumps({"name": "x"}))
        with pytest.raises(ConfigurationError):
            Campaign.from_file(path)

    def test_rejects_unknown_grid_axes(self, tmp_path):
        path = tmp_path / "typo.json"
        path.write_text(json.dumps({"grid": {"dimension": [1, 2]}}))  # typo for "dimensions"
        with pytest.raises(ConfigurationError, match="unknown grid axes"):
            Campaign.from_file(path)


class TestCampaignFromFileMalformedEntries:
    """Malformed declarations must raise ConfigurationError naming the key,
    never a bare TypeError from the dataclass constructor."""

    def _write(self, tmp_path, declaration) -> str:
        path = tmp_path / "campaign.json"
        path.write_text(json.dumps(declaration))
        return path

    def test_grid_axis_spelled_as_scalar_names_the_axis(self, tmp_path):
        path = self._write(tmp_path, {"grid": {"protocols": "exact"}})
        with pytest.raises(ConfigurationError, match="grid axis 'protocols'"):
            Campaign.from_file(path)

    def test_grid_scalar_spelled_as_wrong_type_names_the_key(self, tmp_path):
        path = self._write(tmp_path, {"grid": {"repeats": "three"}})
        with pytest.raises(ConfigurationError, match="grid key 'repeats'"):
            Campaign.from_file(path)
        path = self._write(tmp_path, {"grid": {"base_seed": True}})
        with pytest.raises(ConfigurationError, match="grid key 'base_seed'"):
            Campaign.from_file(path)

    def test_grid_max_rounds_override_accepts_null(self, tmp_path):
        path = self._write(
            tmp_path, {"grid": {"protocols": ["exact"], "max_rounds_override": None}}
        )
        assert len(Campaign.from_file(path)) == 1

    def test_grid_process_counts_accepts_explicit_null(self, tmp_path):
        # null means from_grid's own default: the paper's minimum n per (d, f).
        path = self._write(
            tmp_path, {"grid": {"protocols": ["exact"], "process_counts": None}}
        )
        campaign = Campaign.from_file(path)
        assert campaign.specs[0].process_count == minimum_processes_for("exact", 2, 1)

    def test_grid_must_be_an_object(self, tmp_path):
        path = self._write(tmp_path, {"grid": ["exact"]})
        with pytest.raises(ConfigurationError, match="'grid' must be a JSON object"):
            Campaign.from_file(path)

    def test_trials_must_be_a_list(self, tmp_path):
        path = self._write(tmp_path, {"trials": {"protocol": "exact"}})
        with pytest.raises(ConfigurationError, match="'trials' must be a list"):
            Campaign.from_file(path)

    def test_trial_entry_must_be_an_object_with_index_in_message(self, tmp_path):
        spec = TrialSpec(protocol="exact", workload="uniform_box", seed=1)
        path = self._write(tmp_path, {"trials": [spec.to_dict(), 42]})
        with pytest.raises(ConfigurationError, match=r"trials\[1\] must be a JSON object"):
            Campaign.from_file(path)

    def test_trial_entry_unknown_field_names_entry_and_field(self, tmp_path):
        path = self._write(
            tmp_path,
            {"trials": [{"protocol": "exact", "workload": "uniform_box", "bogus": 1}]},
        )
        with pytest.raises(ConfigurationError, match=r"trials\[0\].*bogus"):
            Campaign.from_file(path)

    def test_trial_entry_malformed_params_is_configuration_error(self, tmp_path):
        # workload_params spelled as a scalar used to escape as a bare
        # TypeError out of the frozen-dataclass parameter normalisation.
        path = self._write(
            tmp_path,
            {"trials": [{"protocol": "exact", "workload": "uniform_box",
                         "workload_params": 5}]},
        )
        with pytest.raises(ConfigurationError, match=r"trials\[0\]: malformed trial entry"):
            Campaign.from_file(path)
