"""Engine equivalence: the columnar substrate vs the object runtime.

The vectorized engine's contract is strict: for every spec it accepts it must
emit a :class:`~repro.engine.spec.TrialResult` row that is byte-identical
(after :func:`~repro.engine.executor.strip_timing`) to the object runtime's —
decisions, verdicts, round counts, message counters, and error rows alike —
in the same order, at any worker count.  These tests assert that contract on
a deterministic grid, on a randomized sample of eligible fuzz specs, and on
the failure paths, plus the planner mechanics around it.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    COORDINATED_STRATEGY_NAMES,
    Campaign,
    FallbackReason,
    TrialSpec,
    execute_specs,
    minimum_processes_for,
    plan_specs,
    run_campaign,
    run_specs_vectorized,
    run_trial,
    sample_specs,
    spec_is_vectorizable,
    strip_timing,
    vectorization_fallback,
    vectorized_group_key,
)
from repro.exceptions import ConfigurationError


def _rows(results) -> list[str]:
    return strip_timing([result.to_row() for result in results])


def _assert_engines_agree(specs) -> None:
    object_rows = _rows(execute_specs(specs, engine="object"))
    vectorized_rows = _rows(execute_specs(specs, engine="vectorized"))
    assert object_rows == vectorized_rows
    for row_text in object_rows:
        assert json.loads(row_text)  # every row is valid JSON


class TestEligibility:
    def test_sync_protocols_eligible(self):
        assert spec_is_vectorizable(TrialSpec(protocol="exact", workload="uniform_box"))
        assert spec_is_vectorizable(
            TrialSpec(protocol="restricted_sync", workload="uniform_box", adversary="crash")
        )

    def test_approx_protocol_falls_back(self):
        spec = TrialSpec(protocol="approx", workload="uniform_box")
        assert not spec_is_vectorizable(spec)
        assert vectorization_fallback(spec) is FallbackReason.ASYNC_PROTOCOL_NOT_COLUMNAR

    def test_broadcast_protocols_require_fault_free(self):
        for protocol in ("exact", "coordinatewise"):
            spec = TrialSpec(protocol=protocol, workload="uniform_box", adversary="crash")
            assert not spec_is_vectorizable(spec)
            assert vectorization_fallback(spec) is FallbackReason.ADVERSARY_NOT_COLUMNAR

    def test_coordinated_adversaries_are_eligible(self):
        for adversary in COORDINATED_STRATEGY_NAMES:
            spec = TrialSpec(
                protocol="restricted_sync", workload="uniform_box", adversary=adversary
            )
            assert spec_is_vectorizable(spec)
            assert vectorization_fallback(spec) is None

    def test_deterministic_async_schedulers_are_eligible(self):
        for scheduler in ("round_robin", "lagging"):
            spec = TrialSpec(
                protocol="restricted_async", workload="uniform_box", scheduler=scheduler
            )
            assert spec_is_vectorizable(spec)
            assert vectorization_fallback(spec) is None

    def test_random_async_scheduler_falls_back(self):
        # TrialSpec defaults to the random scheduler, whose decision stream
        # consumes an RNG per delivery — no shared skeleton across trials.
        spec = TrialSpec(protocol="restricted_async", workload="uniform_box")
        assert not spec_is_vectorizable(spec)
        assert vectorization_fallback(spec) is FallbackReason.SCHEDULER_NOT_DETERMINISTIC

    def test_faulty_async_runs_fall_back(self):
        spec = TrialSpec(
            protocol="restricted_async",
            workload="uniform_box",
            adversary="crash",
            scheduler="round_robin",
        )
        assert not spec_is_vectorizable(spec)
        assert vectorization_fallback(spec) is FallbackReason.ADVERSARY_NOT_COLUMNAR


class TestPlanner:
    def _specs(self):
        return [
            TrialSpec(protocol="restricted_sync", workload="uniform_box",
                      process_count=5, dimension=2, fault_bound=1, seed=1, trial_index=0),
            TrialSpec(protocol="approx", workload="uniform_box",
                      process_count=4, dimension=1, fault_bound=1, seed=2, trial_index=1),
            TrialSpec(protocol="restricted_sync", workload="gradient",
                      process_count=5, dimension=2, fault_bound=1, seed=3, trial_index=2),
            TrialSpec(protocol="exact", workload="uniform_box",
                      process_count=5, dimension=2, fault_bound=1, seed=4, trial_index=3),
        ]

    def test_object_engine_plans_one_unit(self):
        units = plan_specs(self._specs(), engine="object")
        assert [unit.kind for unit in units] == ["object"]
        assert units[0].positions == (0, 1, 2, 3)

    def test_vectorized_engine_groups_by_shape(self):
        units = plan_specs(self._specs(), engine="vectorized")
        covered = sorted(position for unit in units for position in unit.positions)
        assert covered == [0, 1, 2, 3]  # every spec exactly once
        columnar = [unit for unit in units if unit.kind == "columnar"]
        assert {unit.positions for unit in columnar} == {(0, 2), (3,)}

    def test_auto_keeps_singleton_groups_on_object_engine(self):
        units = plan_specs(self._specs(), engine="auto")
        columnar = [unit for unit in units if unit.kind == "columnar"]
        assert {unit.positions for unit in columnar} == {(0, 2)}
        fallback = [unit for unit in units if unit.kind == "object"]
        assert {position for unit in fallback for position in unit.positions} == {1, 3}

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            plan_specs(self._specs(), engine="warp")
        with pytest.raises(ConfigurationError):
            list(execute_specs(self._specs(), engine="warp"))

    def test_batch_runner_rejects_mixed_groups(self):
        specs = self._specs()
        with pytest.raises(ConfigurationError):
            run_specs_vectorized([specs[0], specs[3]])  # different shape groups
        with pytest.raises(ConfigurationError):
            run_specs_vectorized([specs[1]])  # not vectorizable at all

    def test_fallback_reasons_counted_per_engine(self):
        specs = self._specs()

        forced: dict[str, int] = {}
        plan_specs(specs, engine="object", fallback_reasons=forced)
        assert forced == {FallbackReason.FORCED_OBJECT.value: len(specs)}

        vectorized: dict[str, int] = {}
        plan_specs(specs, engine="vectorized", fallback_reasons=vectorized)
        assert vectorized == {FallbackReason.ASYNC_PROTOCOL_NOT_COLUMNAR.value: 1}

        auto: dict[str, int] = {}
        plan_specs(specs, engine="auto", fallback_reasons=auto)
        assert auto == {
            FallbackReason.ASYNC_PROTOCOL_NOT_COLUMNAR.value: 1,
            FallbackReason.SINGLETON_GROUP.value: 1,
        }

    def test_widened_eligibility_set_reports_no_fallback(self):
        # Every scenario class the tentpole made columnar — independent and
        # coordinated restricted-sync adversaries plus deterministic-scheduler
        # async runs — must plan without a single fallback.
        specs = []
        for adversary in ("none", "crash", "equivocate", "outside_hull",
                          "random_noise", "coordinate_attack",
                          *COORDINATED_STRATEGY_NAMES):
            for repeat in range(2):
                specs.append(TrialSpec(
                    protocol="restricted_sync", workload="uniform_box",
                    adversary=adversary, process_count=7, dimension=2,
                    fault_bound=1, seed=len(specs), trial_index=len(specs),
                ))
        for scheduler in ("round_robin", "lagging"):
            for repeat in range(2):
                specs.append(TrialSpec(
                    protocol="restricted_async", workload="uniform_box",
                    scheduler=scheduler, process_count=6, dimension=1,
                    fault_bound=1, seed=len(specs), trial_index=len(specs),
                ))
        reasons: dict[str, int] = {}
        units = plan_specs(specs, engine="auto", fallback_reasons=reasons)
        assert reasons == {}
        assert all(unit.kind == "columnar" for unit in units)


class TestEquivalenceGrid:
    """Deterministic grid across every eligible protocol/adversary combination."""

    def test_restricted_sync_all_independent_adversaries(self):
        campaign = Campaign.from_grid(
            "equiv-restricted",
            protocols=("restricted_sync",),
            adversaries=("none", "crash", "equivocate", "outside_hull",
                         "random_noise", "coordinate_attack"),
            dimensions=(1, 2),
            fault_bounds=(1,),
            repeats=1,
            base_seed=17,
            max_rounds_override=3,
        )
        _assert_engines_agree(campaign.specs)

    def test_broadcast_protocols_fault_free(self):
        campaign = Campaign.from_grid(
            "equiv-broadcast",
            protocols=("exact", "coordinatewise"),
            adversaries=("none",),
            dimensions=(1, 2, 3),
            fault_bounds=(1, 2),
            repeats=2,
            base_seed=23,
        )
        _assert_engines_agree(campaign.specs)

    def test_worker_count_invariance_on_vectorized_engine(self, tmp_path):
        campaign = Campaign.from_grid(
            "equiv-workers",
            protocols=("restricted_sync", "exact"),
            adversaries=("none", "crash"),
            dimensions=(2,),
            fault_bounds=(1,),
            repeats=2,
            base_seed=29,
            max_rounds_override=3,
        )
        inline = _rows(execute_specs(campaign.specs, engine="vectorized", workers=1))
        pooled = _rows(execute_specs(campaign.specs, engine="vectorized", workers=2))
        auto = _rows(execute_specs(campaign.specs, engine="auto", workers=2))
        assert inline == pooled == auto

    def test_results_arrive_in_spec_order(self):
        campaign = Campaign.from_grid(
            "equiv-order",
            protocols=("restricted_sync", "exact"),
            adversaries=("none", "crash"),
            dimensions=(1,),
            fault_bounds=(1,),
            repeats=2,
            base_seed=3,
            max_rounds_override=2,
        )
        results = list(execute_specs(campaign.specs, engine="vectorized", workers=2))
        assert [result.spec.trial_index for result in results] == list(range(len(campaign)))


class TestCoordinatedPropertySuite:
    """Seeded coordinated-adversary compositions × engine × worker count.

    The hypothesis-driven counterpart of the deterministic grid: every
    sampled composition of coordinated strategies must produce row-for-row
    byte-identical output on both engines at one and at four workers.
    """

    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_sampled_coordinated_specs_agree(self, seed):
        sampled = sample_specs(
            8,
            seed=seed,
            protocols=("restricted_sync",),
            adversaries=COORDINATED_STRATEGY_NAMES,
        )
        assert all(spec_is_vectorizable(spec) for spec in sampled)
        capped = [
            dataclasses.replace(spec, max_rounds_override=3) for spec in sampled
        ]
        reference = _rows(execute_specs(capped, engine="object", workers=1))
        for engine, workers in (("object", 4), ("vectorized", 1), ("vectorized", 4)):
            rows = _rows(execute_specs(capped, engine=engine, workers=workers))
            assert rows == reference, (engine, workers)


class TestEquivalenceSampled:
    """Seeded property suite over the fuzz sampler's eligible shape class."""

    def test_sampled_eligible_specs_agree(self):
        sampled = sample_specs(60, seed=2024)
        eligible = [spec for spec in sampled if spec_is_vectorizable(spec)]
        assert len(eligible) >= 10  # the sample must actually exercise the engine
        # Cap the restricted-round static rule so the object oracle stays fast;
        # both engines receive the identical capped spec.
        capped = [
            dataclasses.replace(spec, max_rounds_override=3)
            if spec.protocol == "restricted_sync"
            else spec
            for spec in eligible
        ]
        object_results = list(execute_specs(capped, engine="object"))
        vectorized_results = list(execute_specs(capped, engine="vectorized"))
        assert _rows(object_results) == _rows(vectorized_results)
        for object_result, vectorized_result in zip(object_results, vectorized_results):
            assert object_result.decision == vectorized_result.decision
            assert object_result.agreement is vectorized_result.agreement
            assert object_result.validity is vectorized_result.validity
            assert object_result.rounds == vectorized_result.rounds


class TestFallbackSurfacing:
    """Campaign summaries expose why trials left the columnar path."""

    def test_campaign_summary_reports_fallback_reasons(self):
        approx_n = minimum_processes_for("approx", 1, 1)
        specs = [
            TrialSpec(protocol="restricted_sync", workload="uniform_box",
                      process_count=5, dimension=2, fault_bound=1,
                      max_rounds_override=2, seed=1, trial_index=0),
            TrialSpec(protocol="restricted_sync", workload="uniform_box",
                      process_count=5, dimension=2, fault_bound=1,
                      max_rounds_override=2, seed=2, trial_index=1),
            TrialSpec(protocol="approx", workload="uniform_box",
                      process_count=approx_n, dimension=1, fault_bound=1,
                      max_rounds_override=2, seed=3, trial_index=2),
        ]
        campaign = Campaign.from_specs("fallback-surfacing", specs)
        summary, _ = run_campaign(campaign, engine="auto")
        assert summary.fallback_reasons == {
            FallbackReason.ASYNC_PROTOCOL_NOT_COLUMNAR.value: 1
        }
        assert summary.to_row()["fallbacks"] == 1

    def test_clean_columnar_campaign_reports_zero_fallbacks(self):
        campaign = Campaign.from_grid(
            "fallback-clean",
            protocols=("restricted_sync",),
            adversaries=("crash", "split_world"),
            dimensions=(2,),
            fault_bounds=(1,),
            repeats=2,
            base_seed=31,
            max_rounds_override=2,
        )
        summary, _ = run_campaign(campaign, engine="auto")
        assert summary.fallback_reasons == {}
        assert summary.to_row()["fallbacks"] == 0


class TestFailurePaths:
    def test_error_rows_are_byte_identical(self):
        specs = [
            # Below the resilience bound.
            TrialSpec(protocol="exact", workload="uniform_box",
                      process_count=3, dimension=2, fault_bound=1, seed=1, trial_index=0),
            TrialSpec(protocol="restricted_sync", workload="uniform_box",
                      process_count=4, dimension=2, fault_bound=1, seed=2, trial_index=1),
            # Round budget too small for the protocol.
            TrialSpec(protocol="coordinatewise", workload="uniform_box",
                      process_count=4, dimension=2, fault_bound=1,
                      max_rounds_override=1, seed=3, trial_index=2),
            TrialSpec(protocol="restricted_sync", workload="uniform_box",
                      process_count=5, dimension=2, fault_bound=1,
                      max_rounds_override=0, seed=4, trial_index=3),
            # Invalid adversary parameterisation.
            TrialSpec(protocol="restricted_sync", workload="uniform_box",
                      adversary="coordinate_attack", process_count=5, dimension=2,
                      fault_bound=1, max_rounds_override=2, seed=5,
                      adversary_params={"coordinate": 9, "target": 1.0}, trial_index=4),
            # Fixed-instance workload vs mismatched declared shape.
            TrialSpec(protocol="exact", workload="intro_counterexample",
                      process_count=4, dimension=2, fault_bound=1, seed=6, trial_index=5),
        ]
        object_rows = _rows(execute_specs(specs, engine="object"))
        vectorized_rows = _rows(execute_specs(specs, engine="vectorized"))
        assert object_rows == vectorized_rows
        statuses = [json.loads(row)["status"] for row in object_rows]
        assert statuses == ["error"] * len(specs)


class TestStateHistories:
    def test_restricted_histories_match_object_runtime(self):
        spec = TrialSpec(
            protocol="restricted_sync", workload="uniform_box", adversary="equivocate",
            process_count=5, dimension=2, fault_bound=1, max_rounds_override=4,
            seed=11, record_history=True,
        )
        object_result = run_trial(spec)
        (vectorized_result,) = run_specs_vectorized([spec])
        assert object_result.ok and vectorized_result.ok
        assert object_result.state_histories.keys() == vectorized_result.state_histories.keys()
        for process_id, object_history in object_result.state_histories.items():
            vectorized_history = vectorized_result.state_histories[process_id]
            assert len(object_history) == len(vectorized_history) == 5
            for object_state, vectorized_state in zip(object_history, vectorized_history):
                assert np.array_equal(object_state, vectorized_state)


class TestGroupKey:
    def test_key_ignores_per_trial_data_axes(self):
        base = TrialSpec(protocol="restricted_sync", workload="uniform_box",
                         process_count=5, dimension=2, fault_bound=1, seed=1)
        other = dataclasses.replace(base, workload="gradient", seed=99, epsilon=0.4)
        assert vectorized_group_key(base) == vectorized_group_key(other)

    def test_key_separates_shapes(self):
        base = TrialSpec(protocol="restricted_sync", workload="uniform_box",
                         process_count=5, dimension=2, fault_bound=1)
        assert vectorized_group_key(base) != vectorized_group_key(
            dataclasses.replace(base, process_count=9)
        )
        assert vectorized_group_key(base) != vectorized_group_key(
            dataclasses.replace(base, adversary="crash")
        )
