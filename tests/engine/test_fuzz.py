"""Tests for the scenario-fuzz harness (repro.engine.fuzz)."""

from __future__ import annotations

import pytest

from repro.engine import (
    COORDINATED_STRATEGY_NAMES,
    iter_jsonl,
    run_fuzz,
    sample_specs,
    strip_timing,
)
from repro.engine.factories import minimum_processes_for
from repro.engine.spec import PROTOCOLS
from repro.exceptions import ConfigurationError


class TestSampleSpecs:
    def test_deterministic_given_seed(self):
        assert sample_specs(30, seed=11) == sample_specs(30, seed=11)

    def test_different_seeds_differ(self):
        assert sample_specs(30, seed=11) != sample_specs(30, seed=12)

    def test_every_spec_at_or_above_the_bound(self):
        for spec in sample_specs(60, seed=5):
            minimum = minimum_processes_for(spec.protocol, spec.dimension, spec.fault_bound)
            assert minimum <= spec.process_count <= minimum + 1

    def test_trial_indices_sequential_and_seeds_distinct(self):
        specs = sample_specs(40, seed=9)
        assert [spec.trial_index for spec in specs] == list(range(40))
        assert len({spec.seed for spec in specs}) == 40

    def test_coordinate_attack_coordinates_in_range(self):
        specs = sample_specs(120, seed=2)
        attacks = [spec for spec in specs if spec.adversary == "coordinate_attack"]
        assert attacks, "sample large enough to hit coordinate_attack"
        for spec in attacks:
            assert dict(spec.adversary_params)["coordinate"] < spec.dimension

    def test_coordinated_strategies_are_sampled(self):
        adversaries = {spec.adversary for spec in sample_specs(120, seed=2)}
        assert adversaries & set(COORDINATED_STRATEGY_NAMES)

    def test_sync_protocols_collapse_scheduler(self):
        for spec in sample_specs(60, seed=4):
            if PROTOCOLS[spec.protocol][0] == "sync":
                assert spec.scheduler == "random"

    def test_invalid_axes_rejected(self):
        with pytest.raises(ConfigurationError):
            sample_specs(0, seed=1)
        with pytest.raises(ConfigurationError):
            sample_specs(5, seed=1, protocols=("bogus",))
        with pytest.raises(ConfigurationError):
            sample_specs(5, seed=1, adversaries=("bogus",))

    def test_non_fuzzable_protocols_rejected(self):
        # coordinatewise violates validity by design; restricted_async cannot
        # run unconstrained — both are unsound to assert invariants on.
        for protocol in ("coordinatewise", "restricted_async"):
            with pytest.raises(ConfigurationError):
                sample_specs(5, seed=1, protocols=(protocol,))

    def test_fixed_instance_workloads_rejected(self):
        # intro_counterexample builds a fixed (n, d, f) regardless of the
        # sampled configuration; fuzzing it would only yield config errors
        # dressed up as invariant violations.
        with pytest.raises(ConfigurationError):
            sample_specs(5, seed=1, workloads=("intro_counterexample",))


class TestRunFuzz:
    def test_small_run_upholds_invariants(self):
        report = run_fuzz(count=6, seed=13)
        assert report.runs == 6
        assert report.clean
        assert report.errors == 0
        assert report.to_row()["violations"] == 0

    def test_worker_count_invariance(self, tmp_path):
        # The engine guarantee carried over to fuzz: same seed, different
        # pool sizes, identical JSONL modulo the timing field.
        sequential = tmp_path / "w1.jsonl"
        pooled = tmp_path / "w2.jsonl"
        report_1 = run_fuzz(count=6, seed=21, workers=1, jsonl_path=sequential)
        report_2 = run_fuzz(count=6, seed=21, workers=2, jsonl_path=pooled)
        assert report_1.clean and report_2.clean
        assert strip_timing(iter_jsonl(sequential)) == strip_timing(iter_jsonl(pooled))

    def test_coordinated_adversaries_survive_fuzzing(self):
        report = run_fuzz(
            count=4,
            seed=3,
            protocols=("exact",),
            adversaries=COORDINATED_STRATEGY_NAMES,
        )
        assert report.clean
