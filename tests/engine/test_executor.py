"""Tests for run_trial and the campaign executor (including worker-pool paths).

The worker-count invariance test here is the unit-level version of the
engine's central guarantee: a trial is a pure function of its spec, so JSONL
output is byte-identical (modulo the ``elapsed_ms`` timing field) for any
``workers`` value.
"""

from __future__ import annotations

import json

from repro.engine import (
    ENGINE_CHOICES,
    Campaign,
    CampaignSummary,
    TrialSpec,
    execute_specs,
    iter_jsonl,
    read_jsonl,
    run_campaign,
    run_trial,
    strip_timing,
)


class TestRunTrial:
    def test_exact_trial_succeeds_at_the_bound(self):
        result = run_trial(
            TrialSpec(
                protocol="exact",
                workload="uniform_box",
                adversary="outside_hull",
                process_count=5,
                dimension=2,
                fault_bound=1,
                seed=42,
            )
        )
        assert result.ok
        assert result.agreement and result.validity
        assert result.rounds == 2  # f + 1 EIG rounds
        assert result.messages_sent > 0
        assert result.deliveries is None  # synchronous run
        assert len(result.decision) == 2
        assert result.elapsed_ms > 0

    def test_approx_trial_reports_async_counters(self):
        result = run_trial(
            TrialSpec(
                protocol="approx",
                workload="uniform_box",
                adversary="crash",
                scheduler="round_robin",
                process_count=4,
                dimension=1,
                fault_bound=1,
                epsilon=0.3,
                seed=1,
            )
        )
        assert result.ok
        assert result.agreement and result.validity
        assert result.deliveries > 0

    def test_is_pure_function_of_spec(self):
        spec = TrialSpec(
            protocol="approx",
            workload="uniform_box",
            adversary="random_noise",
            process_count=4,
            dimension=1,
            fault_bound=1,
            epsilon=0.3,
            seed=77,
        )
        first, second = run_trial(spec), run_trial(spec)
        assert first.decision == second.decision
        assert first.deliveries == second.deliveries
        assert first.messages_sent == second.messages_sent

    def test_protocol_failure_becomes_error_row(self):
        # n = 3 is below every vector resilience bound: the protocol's own
        # precondition check must surface as campaign data, not a crash.
        result = run_trial(
            TrialSpec(
                protocol="exact",
                workload="uniform_box",
                process_count=3,
                dimension=2,
                fault_bound=1,
            )
        )
        assert result.status == "error"
        assert "ResilienceError" in result.error
        assert result.decision is None

    def test_fixed_instance_workload_must_match_declared_configuration(self):
        # intro_counterexample always builds the paper's d=3 instance; a spec
        # declaring a different configuration is an error row, not a silently
        # mislabelled trial.
        result = run_trial(
            TrialSpec(
                protocol="exact",
                workload="intro_counterexample",
                process_count=4,
                dimension=2,
                fault_bound=1,
            )
        )
        assert result.status == "error"
        assert "declares" in result.error

    def test_coordinatewise_honours_round_cap(self):
        # A 1-round cap is below the f + 1 = 2 rounds EIG needs, so the
        # runtime's budget must trip — proving the override reaches the runner.
        result = run_trial(
            TrialSpec(
                protocol="coordinatewise",
                workload="uniform_box",
                process_count=4,
                dimension=2,
                fault_bound=1,
                max_rounds_override=1,
                seed=3,
            )
        )
        assert result.status == "error"
        assert "round budget" in result.error

    def test_record_history_keeps_per_round_states(self):
        spec = TrialSpec(
            protocol="approx",
            workload="uniform_box",
            process_count=4,
            dimension=1,
            fault_bound=1,
            epsilon=0.3,
            max_rounds_override=3,
            seed=5,
            record_history=True,
        )
        result = run_trial(spec)
        assert result.ok
        assert len(result.state_histories) == 3  # one of the four processes is faulty
        assert all(len(history) == 4 for history in result.state_histories.values())
        assert "state_histories" not in result.to_row()


class TestExecutor:
    GRID = dict(
        protocols=("exact",),
        adversaries=("crash", "outside_hull", "random_noise"),
        dimensions=(1, 2),
        repeats=2,
        base_seed=31,
    )

    def test_worker_count_does_not_change_rows(self, tmp_path):
        campaign = Campaign.from_grid("invariance", **self.GRID)
        sequential = tmp_path / "w1.jsonl"
        pooled = tmp_path / "w2.jsonl"
        summary_one, _ = run_campaign(campaign, workers=1, jsonl_path=sequential)
        summary_two, _ = run_campaign(campaign, workers=2, jsonl_path=pooled)
        assert summary_one.trials == summary_two.trials == len(campaign)
        # The equivalence comparison streams both files (strip_timing accepts
        # any row iterable) — no full materialisation needed.
        rows_one = strip_timing(iter_jsonl(sequential))
        rows_two = strip_timing(iter_jsonl(pooled))
        assert rows_one == rows_two

    def test_results_arrive_in_spec_order(self):
        campaign = Campaign.from_grid("order", **self.GRID)
        results = list(execute_specs(campaign.specs, workers=2))
        assert [result.spec.trial_index for result in results] == list(range(len(campaign)))

    def test_summary_counts_errors_and_streams_jsonl(self, tmp_path):
        # One good trial and one under-provisioned (error) trial.
        campaign = Campaign.from_specs(
            "mixed",
            [
                TrialSpec(protocol="exact", workload="uniform_box",
                          process_count=5, dimension=2, fault_bound=1, seed=1),
                TrialSpec(protocol="exact", workload="uniform_box",
                          process_count=3, dimension=2, fault_bound=1, seed=2),
            ],
        )
        path = tmp_path / "mixed.jsonl"
        summary, results = run_campaign(campaign, workers=1, jsonl_path=path, collect=True)
        assert (summary.ok, summary.errors) == (1, 1)
        assert summary.trials_per_second > 0
        rows = read_jsonl(path)
        assert len(rows) == 2
        assert [row["status"] for row in rows] == ["ok", "error"]
        assert [result.status for result in results] == ["ok", "error"]

    def test_summary_row_renders(self):
        campaign = Campaign.from_specs(
            "tiny",
            [TrialSpec(protocol="exact", workload="uniform_box",
                       process_count=5, dimension=2, fault_bound=1)],
        )
        summary, _ = run_campaign(campaign, workers=1)
        row = summary.to_row()
        assert row["campaign"] == "tiny"
        assert row["trials"] == 1
        assert row["errors"] == 0


class TestIterJsonl:
    def test_streams_rows_lazily(self, tmp_path):
        import json
        from itertools import islice

        path = tmp_path / "rows.jsonl"
        path.write_text(
            "".join(json.dumps({"index": index}) + "\n" for index in range(100))
            + "\n\n"  # trailing blank lines are skipped
        )
        iterator = iter_jsonl(path)
        assert iter(iterator) is iterator  # a generator, not a list
        head = list(islice(iterator, 3))
        assert head == [{"index": 0}, {"index": 1}, {"index": 2}]
        iterator.close()  # closing early must not error (file handle released)

    def test_read_jsonl_is_the_materialised_view(self, tmp_path):
        import json

        path = tmp_path / "rows.jsonl"
        path.write_text("\n".join(json.dumps({"index": index}) for index in range(5)) + "\n")
        assert read_jsonl(path) == list(iter_jsonl(path))
        assert len(read_jsonl(path)) == 5


class TestCampaignSummary:
    def _summary(self, elapsed_seconds: float) -> CampaignSummary:
        return CampaignSummary(
            name="s", trials=4, ok=4, errors=0, agreement_failures=0,
            validity_failures=0, elapsed_seconds=elapsed_seconds, workers=1,
            jsonl_path=None,
        )

    def test_trials_per_second_clamped_at_zero_elapsed(self):
        # A clock-resolution-zero run must not report float("inf"):
        # json.dumps would emit `Infinity`, which is not valid JSON.
        assert self._summary(0.0).trials_per_second == 0.0
        assert self._summary(2.0).trials_per_second == 2.0

    def test_to_row_serialises_to_valid_json_at_zero_elapsed(self):
        text = json.dumps(self._summary(0.0).to_row())
        assert "Infinity" not in text
        assert json.loads(text)["trials_per_s"] == 0.0

    def test_to_row_records_engine(self):
        campaign = Campaign.from_specs(
            "engine-row",
            [TrialSpec(protocol="exact", workload="uniform_box",
                       process_count=5, dimension=2, fault_bound=1)],
        )
        for engine in ENGINE_CHOICES:
            summary, _ = run_campaign(campaign, workers=1, engine=engine)
            assert summary.to_row()["engine"] == engine
