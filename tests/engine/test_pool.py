"""Tests for the persistent shared-memory worker pool (:mod:`repro.engine.pool`).

The pool inherits the engine's central guarantee — every trial is a pure
function of its spec — and must preserve it across its own machinery: the
compact wire form, the shared-memory delta-column transport, cost-model unit
cuts, demand-driven dispatch, and crash recovery all have to be invisible in
the emitted rows.
"""

from __future__ import annotations

import os
import signal

import pytest

from repro.engine import (
    Campaign,
    TrialSpec,
    execute_specs,
    get_pool,
    iter_jsonl,
    run_campaign,
    sample_specs,
    strip_timing,
)
from repro.engine.pool import (
    MAX_UNIT_TRIALS,
    PROBE_TRIALS,
    CostModel,
    ExecutionUnit,
    _release_shm,
    _SHM_MIN_TRIALS,
    decode_unit,
    encode_unit,
    execute_plan,
)
from repro.exceptions import ConfigurationError
from repro.obs.registry import get_registry, snapshot_delta


def _mixed_specs(count: int = 12) -> list[TrialSpec]:
    """Specs that exercise int/float/None/params/bool wire-field variation."""
    return [
        TrialSpec(
            protocol="restricted_sync",
            workload="uniform_box",
            process_count=5,
            dimension=1,
            fault_bound=1,
            epsilon=0.2 + 0.01 * (index % 3),
            seed=index,
            workload_seed=index * 7 if index % 2 else None,
            max_rounds_override=2 if index % 3 == 0 else None,
            workload_params=(("low", -1.0), ("high", 1.0)) if index % 2 else (),
            record_history=index % 5 == 0,
            trial_index=index,
        )
        for index in range(count)
    ]


class TestWireForm:
    def test_round_trips_every_sampled_spec(self):
        for spec in sample_specs(20, seed=3):
            assert TrialSpec.from_wire(spec.to_wire()) == spec

    def test_wire_fields_cover_the_dataclass(self):
        spec = TrialSpec(protocol="exact", workload="uniform_box")
        assert set(TrialSpec.WIRE_FIELDS) == set(spec.to_dict())


class TestUnitCodec:
    def test_round_trips_mixed_field_variation(self):
        specs = _mixed_specs(_SHM_MIN_TRIALS + 4)
        header, shm = encode_unit("object", specs)
        try:
            assert header["shm"] is not None  # large unit → shared memory
            assert decode_unit(header) == specs
        finally:
            _release_shm(shm)

    def test_small_units_ship_inline(self):
        specs = _mixed_specs(_SHM_MIN_TRIALS - 1)
        header, shm = encode_unit("columnar", specs)
        assert shm is None and header["shm"] is None
        assert decode_unit(header) == specs

    def test_constant_fields_travel_once(self):
        specs = [
            TrialSpec(protocol="exact", workload="uniform_box", seed=index)
            for index in range(4)
        ]
        header, shm = encode_unit("object", specs)
        assert shm is None
        # Only the varying field (seed) leaves the base tuple.
        assert header["int_fields"] == ["seed"]
        assert header["float_fields"] == []
        assert header["others"] == {}
        assert decode_unit(header) == specs


class TestCostModel:
    KEY = ("object", "exact", 5, 2, 1, "none")

    def test_unseen_shape_gets_probe_unit(self):
        model = CostModel()
        assert model.unit_trials(self.KEY, remaining=100, workers=2) == PROBE_TRIALS

    def test_observation_sizes_units_toward_target_seconds(self):
        from repro.engine.pool import TARGET_UNIT_SECONDS

        model = CostModel()
        model.observe(self.KEY, trials=10, seconds=0.1)  # 10 ms/trial
        size = model.unit_trials(self.KEY, remaining=10_000, workers=1)
        assert size == round(TARGET_UNIT_SECONDS / 0.01)

    def test_kind_default_covers_unseen_shapes_of_same_kind(self):
        model = CostModel()
        model.observe(self.KEY, trials=10, seconds=0.1)
        other = ("object", "approx", 7, 1, 2, "crash")
        assert model.per_trial_seconds(other) == pytest.approx(0.01)

    def test_explicit_chunksize_always_wins(self):
        model = CostModel()
        model.observe(self.KEY, trials=10, seconds=100.0)  # model would say 1
        assert model.unit_trials(self.KEY, remaining=50, workers=4, chunksize=7) == 7
        # ... capped only by the remaining work.
        assert model.unit_trials(self.KEY, remaining=3, workers=4, chunksize=7) == 3

    def test_tail_splits_across_workers(self):
        model = CostModel()
        model.observe(self.KEY, trials=1000, seconds=0.001)  # ~everything fits
        # 8 trials left on 4 workers: no unit may swallow more than the even split.
        assert model.unit_trials(self.KEY, remaining=8, workers=4) == 2

    def test_size_never_exceeds_hard_cap(self):
        model = CostModel()
        model.observe(self.KEY, trials=10**9, seconds=0.001)
        assert model.unit_trials(self.KEY, remaining=10**9, workers=1) == MAX_UNIT_TRIALS


class TestExecutePlan:
    SPECS = [
        TrialSpec(protocol="exact", workload="uniform_box", process_count=5,
                  dimension=1, fault_bound=1, seed=index, trial_index=index)
        for index in range(10)
    ]

    def test_rejects_unknown_pool(self):
        with pytest.raises(ConfigurationError, match="unknown pool"):
            list(execute_plan(self.SPECS, [ExecutionUnit("object", (0,))], 2, pool="threads"))

    def test_explicit_chunksize_shapes_every_task(self):
        units = [ExecutionUnit("object", tuple(range(len(self.SPECS))))]
        sizes = sorted(
            len(positions)
            for positions, _ in execute_plan(self.SPECS, units, workers=2, chunksize=3)
        )
        assert sizes == [1, 3, 3, 3]

    def test_spawn_pool_produces_identical_rows(self):
        units = [ExecutionUnit("object", tuple(range(len(self.SPECS))))]
        by_pool = {}
        for pool in ("persistent", "spawn"):
            rows = {}
            for positions, results in execute_plan(self.SPECS, units, workers=2, pool=pool):
                for position, result in zip(positions, results):
                    rows[position] = result
            by_pool[pool] = strip_timing(
                rows[position].to_row() for position in sorted(rows)
            )
        assert by_pool["persistent"] == by_pool["spawn"]


class TestPersistentPoolLifecycle:
    GRID = dict(
        protocols=("exact",),
        adversaries=("crash", "outside_hull", "random_noise"),
        dimensions=(1, 2),
        repeats=2,
        base_seed=31,
    )

    def test_byte_identical_rows_across_worker_counts(self, tmp_path):
        campaign = Campaign.from_grid("pool-invariance", **self.GRID)
        canonical = {}
        for workers in (1, 2, 4):
            path = tmp_path / f"w{workers}.jsonl"
            summary, _ = run_campaign(campaign, workers=workers, jsonl_path=path)
            assert summary.trials == len(campaign)
            assert summary.pool == "persistent"
            canonical[workers] = strip_timing(iter_jsonl(path))
        assert canonical[1] == canonical[2] == canonical[4]

    def test_pool_is_reused_across_execute_specs_calls(self):
        specs = TestExecutePlan.SPECS
        list(execute_specs(specs, workers=2))
        first_pids = set(get_pool(2).worker_pids())
        list(execute_specs(specs, workers=2))
        assert set(get_pool(2).worker_pids()) == first_pids

    def test_worker_crash_mid_campaign_recovers(self):
        specs = [
            TrialSpec(protocol="exact", workload="uniform_box", process_count=5,
                      dimension=2, fault_bound=1, seed=index, trial_index=index)
            for index in range(24)
        ]
        expected = strip_timing(
            result.to_row() for result in execute_specs(specs, workers=1)
        )
        # chunksize=2 forces many dispatches, so the killed seat is certain
        # to be involved again after the kill.
        stream = execute_specs(specs, workers=2, chunksize=2)
        results = [next(stream)]
        pool = get_pool(2)
        recoveries_before = pool.crash_recoveries
        os.kill(pool.worker_pids()[0], signal.SIGKILL)
        results.extend(stream)
        assert strip_timing(result.to_row() for result in results) == expected
        assert pool.crash_recoveries > recoveries_before

    def test_interrupted_run_leaves_pool_reusable(self):
        specs = TestExecutePlan.SPECS
        stream = execute_specs(specs, workers=2, chunksize=2)
        next(stream)
        stream.close()  # abandon mid-campaign (in-flight units are drained)
        results = list(execute_specs(specs, workers=2))
        assert len(results) == len(specs)
        assert [result.spec.trial_index for result in results] == list(range(len(specs)))


class TestPoolTelemetry:
    def test_worker_registry_deltas_merge_into_the_parent(self):
        campaign = Campaign.from_grid(
            "pool-telemetry",
            protocols=("exact",),
            adversaries=("crash",),
            dimensions=(1, 2),
            repeats=2,
            base_seed=13,
        )
        registry = get_registry()
        before = registry.snapshot()
        summary, _ = run_campaign(campaign, workers=2, engine="object")
        assert summary.errors == 0
        delta = snapshot_delta(registry.snapshot(), before)

        trials = sum(delta["repro_pool_trials_total"]["samples"].values())
        assert trials == summary.trials == len(campaign)
        units = sum(delta["repro_pool_units_total"]["samples"].values())
        seconds = delta["repro_pool_unit_seconds"]["samples"]
        assert sum(sample["count"] for sample in seconds.values()) == units

        # The exact protocol's LP solves only ever run inside the fork
        # workers for a workers=2 object-engine campaign, so kernel counters
        # moving in *this* process proves the piped worker deltas merged.
        kernel = delta.get("repro_kernel_events_total", {"samples": {}})
        assert sum(kernel["samples"].values()) > 0


class TestColumnarFanout:
    def test_single_columnar_group_splits_across_workers(self):
        # One same-shape restricted_sync group used to ship as one unit —
        # the whole campaign on one worker.  The pool must cut it.
        specs = [
            TrialSpec(protocol="restricted_sync", workload="uniform_box",
                      adversary="random_noise", process_count=5, dimension=1,
                      fault_bound=1, epsilon=0.25, seed=index, trial_index=index)
            for index in range(8)
        ]
        from repro.engine import plan_specs

        units = plan_specs(specs, "auto")
        assert [unit.kind for unit in units] == ["columnar"]
        tasks = list(execute_plan(specs, units, workers=2, chunksize=2))
        assert len(tasks) == 4  # cut into chunksize-sized sub-groups
        rows = {}
        for positions, results in tasks:
            for position, result in zip(positions, results):
                rows[position] = result
        expected = strip_timing(
            result.to_row() for result in execute_specs(specs, workers=1)
        )
        assert strip_timing(rows[index].to_row() for index in range(8)) == expected
