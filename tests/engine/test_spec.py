"""Unit tests for repro.engine.spec: TrialSpec and TrialResult."""

from __future__ import annotations

import json

import pytest

from repro.engine import TrialResult, TrialSpec
from repro.exceptions import ConfigurationError


class TestTrialSpec:
    def test_rejects_unknown_protocol(self):
        with pytest.raises(ConfigurationError):
            TrialSpec(protocol="does_not_exist", workload="uniform_box")

    def test_model_and_approximation_flags(self):
        assert TrialSpec(protocol="exact", workload="uniform_box").model == "sync"
        assert TrialSpec(protocol="approx", workload="uniform_box").model == "async"
        assert TrialSpec(protocol="approx", workload="uniform_box").is_approximate
        assert not TrialSpec(protocol="exact", workload="uniform_box").is_approximate

    def test_params_are_frozen_and_sorted(self):
        spec = TrialSpec(
            protocol="exact",
            workload="uniform_box",
            workload_params={"upper": 2.0, "lower": -1.0},
        )
        assert spec.workload_params == (("lower", -1.0), ("upper", 2.0))
        assert spec.params("workload") == {"lower": -1.0, "upper": 2.0}

    def test_dict_roundtrip(self):
        spec = TrialSpec(
            protocol="approx",
            workload="robot_position",
            adversary="outside_hull",
            scheduler="lagging",
            process_count=6,
            dimension=3,
            fault_bound=1,
            epsilon=0.1,
            seed=99,
            adversary_params={"offset": 10.0},
            max_rounds_override=7,
        )
        record = spec.to_dict()
        assert json.loads(json.dumps(record)) == record  # JSON-serialisable
        assert TrialSpec.from_dict(record) == spec

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError):
            TrialSpec.from_dict({"protocol": "exact", "workload": "uniform_box", "bogus": 1})

    def test_resolved_seeds_deterministic_and_independent(self):
        spec = TrialSpec(protocol="exact", workload="uniform_box", seed=123)
        first = spec.resolved_seeds()
        second = spec.resolved_seeds()
        assert first == second
        # Three distinct derived streams, none equal to the root seed.
        assert len(set(first)) == 3
        assert 123 not in first

    def test_explicit_seed_overrides_derivation(self):
        spec = TrialSpec(
            protocol="exact", workload="uniform_box", seed=123, workload_seed=7, adversary_seed=8
        )
        workload_seed, adversary_seed, scheduler_seed = spec.resolved_seeds()
        assert (workload_seed, adversary_seed) == (7, 8)
        assert scheduler_seed not in (7, 8, 123)

    def test_different_root_seeds_derive_different_streams(self):
        seeds_a = TrialSpec(protocol="exact", workload="uniform_box", seed=1).resolved_seeds()
        seeds_b = TrialSpec(protocol="exact", workload="uniform_box", seed=2).resolved_seeds()
        assert seeds_a != seeds_b


class TestTrialResult:
    def test_row_is_flat_json_and_excludes_histories(self):
        spec = TrialSpec(protocol="exact", workload="uniform_box", seed=5)
        result = TrialResult(
            spec=spec,
            status="ok",
            agreement=True,
            validity=True,
            rounds=2,
            messages_sent=40,
            messages_dropped=0,
            decision=(0.25, 0.75),
            state_histories={0: []},
            elapsed_ms=1.5,
        )
        row = result.to_row()
        assert row["spec_protocol"] == "exact"
        assert row["spec_seed"] == 5
        assert row["agreement"] is True
        assert row["decision"] == [0.25, 0.75]
        assert "state_histories" not in row
        # The serialised line is valid JSON with sorted keys.
        line = result.to_json()
        assert json.loads(line) == row
        assert list(json.loads(line)) == sorted(row)

    def test_timing_fields_named(self):
        assert TrialResult.TIMING_FIELDS == ("elapsed_ms",)
