"""Unit tests for repro.engine.spec: TrialSpec and TrialResult."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import TrialResult, TrialSpec, run_trial, sample_specs
from repro.exceptions import ConfigurationError


class TestTrialSpec:
    def test_rejects_unknown_protocol(self):
        with pytest.raises(ConfigurationError):
            TrialSpec(protocol="does_not_exist", workload="uniform_box")

    def test_model_and_approximation_flags(self):
        assert TrialSpec(protocol="exact", workload="uniform_box").model == "sync"
        assert TrialSpec(protocol="approx", workload="uniform_box").model == "async"
        assert TrialSpec(protocol="approx", workload="uniform_box").is_approximate
        assert not TrialSpec(protocol="exact", workload="uniform_box").is_approximate

    def test_params_are_frozen_and_sorted(self):
        spec = TrialSpec(
            protocol="exact",
            workload="uniform_box",
            workload_params={"upper": 2.0, "lower": -1.0},
        )
        assert spec.workload_params == (("lower", -1.0), ("upper", 2.0))
        assert spec.params("workload") == {"lower": -1.0, "upper": 2.0}

    def test_dict_roundtrip(self):
        spec = TrialSpec(
            protocol="approx",
            workload="robot_position",
            adversary="outside_hull",
            scheduler="lagging",
            process_count=6,
            dimension=3,
            fault_bound=1,
            epsilon=0.1,
            seed=99,
            adversary_params={"offset": 10.0},
            max_rounds_override=7,
        )
        record = spec.to_dict()
        assert json.loads(json.dumps(record)) == record  # JSON-serialisable
        assert TrialSpec.from_dict(record) == spec

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError):
            TrialSpec.from_dict({"protocol": "exact", "workload": "uniform_box", "bogus": 1})

    def test_resolved_seeds_deterministic_and_independent(self):
        spec = TrialSpec(protocol="exact", workload="uniform_box", seed=123)
        first = spec.resolved_seeds()
        second = spec.resolved_seeds()
        assert first == second
        # Three distinct derived streams, none equal to the root seed.
        assert len(set(first)) == 3
        assert 123 not in first

    def test_explicit_seed_overrides_derivation(self):
        spec = TrialSpec(
            protocol="exact", workload="uniform_box", seed=123, workload_seed=7, adversary_seed=8
        )
        workload_seed, adversary_seed, scheduler_seed = spec.resolved_seeds()
        assert (workload_seed, adversary_seed) == (7, 8)
        assert scheduler_seed not in (7, 8, 123)

    def test_different_root_seeds_derive_different_streams(self):
        seeds_a = TrialSpec(protocol="exact", workload="uniform_box", seed=1).resolved_seeds()
        seeds_b = TrialSpec(protocol="exact", workload="uniform_box", seed=2).resolved_seeds()
        assert seeds_a != seeds_b


class TestTrialResult:
    def test_row_is_flat_json_and_excludes_histories(self):
        spec = TrialSpec(protocol="exact", workload="uniform_box", seed=5)
        result = TrialResult(
            spec=spec,
            status="ok",
            agreement=True,
            validity=True,
            rounds=2,
            messages_sent=40,
            messages_dropped=0,
            decision=(0.25, 0.75),
            state_histories={0: []},
            elapsed_ms=1.5,
        )
        row = result.to_row()
        assert row["spec_protocol"] == "exact"
        assert row["spec_seed"] == 5
        assert row["agreement"] is True
        assert row["decision"] == [0.25, 0.75]
        assert "state_histories" not in row
        # The serialised line is valid JSON with sorted keys.
        line = result.to_json()
        assert json.loads(line) == row
        assert list(json.loads(line)) == sorted(row)

    def test_timing_fields_named(self):
        assert TrialResult.TIMING_FIELDS == ("elapsed_ms",)


# Synthetic-but-valid TrialResult strategy: spec fields and outcome fields are
# drawn independently, which is exactly what from_row must not care about —
# it inverts the serialisation, not the protocol semantics.
_spec_strategy = st.builds(
    TrialSpec,
    protocol=st.sampled_from(("exact", "coordinatewise", "approx", "restricted_sync")),
    workload=st.sampled_from(("uniform_box", "gradient")),
    adversary=st.sampled_from(("none", "crash", "split_world")),
    scheduler=st.sampled_from(("random", "round_robin")),
    process_count=st.integers(min_value=1, max_value=50),
    dimension=st.integers(min_value=1, max_value=8),
    fault_bound=st.integers(min_value=0, max_value=5),
    epsilon=st.floats(min_value=1e-3, max_value=2.0, allow_nan=False),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    workload_seed=st.none() | st.integers(min_value=0, max_value=2**32 - 1),
    max_rounds_override=st.none() | st.integers(min_value=1, max_value=20),
    workload_params=st.dictionaries(
        st.sampled_from(("lower", "upper", "scale")),
        st.floats(min_value=-5, max_value=5, allow_nan=False) | st.integers(-5, 5),
        max_size=2,
    ),
    trial_index=st.integers(min_value=0, max_value=10_000),
)

_result_strategy = st.one_of(
    # ok rows
    st.builds(
        TrialResult,
        spec=_spec_strategy,
        status=st.just("ok"),
        agreement=st.booleans(),
        validity=st.booleans(),
        max_disagreement=st.none() | st.floats(min_value=0, max_value=10, allow_nan=False),
        max_hull_distance=st.none() | st.floats(min_value=0, max_value=10, allow_nan=False),
        rounds=st.none() | st.integers(min_value=0, max_value=100),
        deliveries=st.none() | st.integers(min_value=0, max_value=10_000),
        messages_sent=st.none() | st.integers(min_value=0, max_value=10_000),
        messages_dropped=st.none() | st.integers(min_value=0, max_value=100),
        decision=st.none()
        | st.tuples(st.floats(min_value=-5, max_value=5, allow_nan=False)),
        elapsed_ms=st.floats(min_value=0, max_value=1e4, allow_nan=False),
    ),
    # error rows
    st.builds(
        TrialResult,
        spec=_spec_strategy,
        status=st.just("error"),
        error=st.text(min_size=1, max_size=60),
        elapsed_ms=st.floats(min_value=0, max_value=1e4, allow_nan=False),
    ),
)


class TestFromRowRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(result=_result_strategy)
    def test_from_row_is_the_exact_inverse_of_to_row(self, result):
        row = result.to_row()
        rebuilt = TrialResult.from_row(row)
        assert rebuilt.to_row() == row
        assert rebuilt.to_json() == result.to_json()
        # Field-level equality too (histories are never serialised).
        assert rebuilt.spec == result.spec
        assert rebuilt.status == result.status
        assert rebuilt.decision == result.decision
        assert rebuilt.state_histories is None

    def test_round_trips_executed_results_from_seeded_samples(self):
        # Real rows from the fuzz sampler (sync protocols keep this fast),
        # plus a genuine error row from an under-provisioned spec.
        specs = sample_specs(6, seed=11, protocols=("exact", "restricted_sync"))
        specs.append(
            TrialSpec(protocol="exact", workload="uniform_box",
                      process_count=3, dimension=2, fault_bound=1, seed=3)
        )
        statuses = set()
        for spec in specs:
            result = run_trial(spec)
            statuses.add(result.status)
            row = json.loads(result.to_json())  # through the serialised form
            rebuilt = TrialResult.from_row(row)
            assert rebuilt.to_json() == result.to_json()
            assert rebuilt.spec == spec
        assert "error" in statuses  # the error path was exercised

    def test_rejects_unknown_and_missing_fields(self):
        result = run_trial(
            TrialSpec(protocol="exact", workload="uniform_box",
                      process_count=3, dimension=2, fault_bound=1, seed=1)
        )
        row = result.to_row()
        with pytest.raises(ConfigurationError, match="unknown TrialResult row field"):
            TrialResult.from_row(row | {"bogus": 1})
        with pytest.raises(ConfigurationError, match="status"):
            TrialResult.from_row({key: value for key, value in row.items() if key != "status"})
        with pytest.raises(ConfigurationError, match="unknown TrialSpec fields"):
            TrialResult.from_row(row | {"spec_bogus": 1})

    def test_state_histories_are_the_documented_loss(self):
        spec = TrialSpec(protocol="approx", workload="uniform_box", process_count=4,
                         dimension=1, fault_bound=1, epsilon=0.3,
                         max_rounds_override=3, seed=5, record_history=True)
        result = run_trial(spec)
        assert result.state_histories
        rebuilt = TrialResult.from_row(result.to_row())
        assert rebuilt.state_histories is None
        assert rebuilt.to_row() == result.to_row()
