"""Unit tests for repro.byzantine.adversary (payload mutation machinery)."""

from __future__ import annotations

import numpy as np

from repro.byzantine.adversary import (
    ByzantineAsyncProcess,
    ByzantineSyncProcess,
    mutate_numeric_leaves,
)
from repro.byzantine.strategies import CrashStrategy, OutsideHullStrategy
from repro.network.message import Message
from repro.processes.process import AsyncProcess, SyncProcess


def double_scalar(value: float) -> float:
    return value * 2.0


def double_vector(vector: np.ndarray) -> np.ndarray:
    return vector * 2.0


class TestMutateNumericLeaves:
    def test_floats_are_mutated(self):
        assert mutate_numeric_leaves(1.5, double_scalar, double_vector) == 3.0

    def test_ints_and_bools_are_preserved(self):
        payload = {"count": 3, "flag": True}
        assert mutate_numeric_leaves(payload, double_scalar, double_vector) == payload

    def test_float_tuples_treated_as_vectors(self):
        result = mutate_numeric_leaves((1.0, 2.0), double_scalar, double_vector)
        assert result == (2.0, 4.0)
        assert isinstance(result, tuple)

    def test_numpy_arrays_treated_as_vectors(self):
        result = mutate_numeric_leaves(np.asarray([1.0, 2.0]), double_scalar, double_vector)
        assert np.allclose(result, [2.0, 4.0])

    def test_structural_keys_untouched(self):
        payload = {"round": 2.0, "members": [1, 2], "value": (1.0, 1.0)}
        result = mutate_numeric_leaves(payload, double_scalar, double_vector)
        assert result["round"] == 2.0
        assert result["members"] == [1, 2]
        assert result["value"] == (2.0, 2.0)

    def test_nested_dicts_and_lists(self):
        payload = {"a": {"b": [0.5, {"c": 1.0}]}}
        result = mutate_numeric_leaves(payload, double_scalar, double_vector)
        # [0.5, {...}] is a mixed list, so 0.5 is a scalar leaf.
        assert result["a"]["b"][0] == 1.0
        assert result["a"]["b"][1]["c"] == 2.0

    def test_original_payload_not_modified(self):
        payload = {"value": [1.0, 2.0]}
        mutate_numeric_leaves(payload, double_scalar, double_vector)
        assert payload["value"] == [1.0, 2.0]

    def test_strings_preserved(self):
        assert mutate_numeric_leaves({"kind": "ECHO"}, double_scalar, double_vector) == {"kind": "ECHO"}


class EchoSyncProcess(SyncProcess):
    def __init__(self, process_id=0):
        super().__init__(process_id)
        self.delivered = []

    def outgoing(self, round_index):
        return [Message(sender=self.process_id, recipient=1, protocol="p", kind="K",
                        payload={"value": (1.0, 2.0)}, round_index=round_index)]

    def deliver(self, round_index, inbox):
        self.delivered.extend(inbox)

    def has_decided(self):
        return True

    def decision(self):
        return "inner-decision"


class SenderAsyncProcess(AsyncProcess):
    def on_start(self):
        self.send(Message(sender=self.process_id, recipient=1, protocol="p", kind="K",
                          payload={"value": (1.0, 2.0)}, round_index=1))

    def on_message(self, message):
        pass

    def has_decided(self):
        return False

    def decision(self):
        return None


class TestByzantineSyncProcess:
    def test_outgoing_is_mutated(self):
        wrapped = ByzantineSyncProcess(EchoSyncProcess(), OutsideHullStrategy(offset=10.0, scale=1.0))
        messages = wrapped.outgoing(1)
        assert messages[0].payload["value"] == (11.0, 12.0)

    def test_crash_drops_everything(self):
        wrapped = ByzantineSyncProcess(EchoSyncProcess(), CrashStrategy())
        assert wrapped.outgoing(1) == []

    def test_deliver_passes_through(self):
        inner = EchoSyncProcess()
        wrapped = ByzantineSyncProcess(inner, CrashStrategy())
        message = Message(sender=1, recipient=0, protocol="p", kind="K", payload=None)
        wrapped.deliver(1, [message])
        assert inner.delivered == [message]

    def test_always_reports_decided(self):
        wrapped = ByzantineSyncProcess(EchoSyncProcess(), CrashStrategy())
        assert wrapped.has_decided()
        assert wrapped.decision() == "inner-decision"


class TestByzantineAsyncProcess:
    def test_sends_are_intercepted(self):
        sent = []
        wrapped = ByzantineAsyncProcess(SenderAsyncProcess(0), OutsideHullStrategy(offset=10.0, scale=1.0))
        wrapped.bind_transport(sent.append)
        wrapped.on_start()
        assert len(sent) == 1
        assert sent[0].payload["value"] == (11.0, 12.0)

    def test_crash_suppresses_sends(self):
        sent = []
        wrapped = ByzantineAsyncProcess(SenderAsyncProcess(0), CrashStrategy())
        wrapped.bind_transport(sent.append)
        wrapped.on_start()
        assert sent == []
