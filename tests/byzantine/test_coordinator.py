"""Tests for the coordinated adversary layer (repro.byzantine.coordinator)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.byzantine.coordinator import (
    COORDINATED_STRATEGY_NAMES,
    AdversaryCoordinator,
    collect_value_leaves,
)
from repro.core.conditions import SystemConfiguration
from repro.exceptions import ByzantineBehaviorError, ConfigurationError
from repro.geometry.convex_hull import contains_point
from repro.network.message import Message
from repro.processes.registry import ProcessRegistry


def make_registry(process_count=5, dimension=2, fault_bound=1, faulty=(4,)):
    configuration = SystemConfiguration(process_count, dimension, fault_bound)
    rng = np.random.default_rng(17)
    inputs = {pid: rng.uniform(0.0, 1.0, size=dimension) for pid in range(process_count)}
    return ProcessRegistry(configuration, inputs, faulty_ids=faulty)


def make_message(sender=4, recipient=0, payload=None, round_index=1):
    if payload is None:
        payload = {"value": (0.5, 0.5)}
    return Message(sender=sender, recipient=recipient, protocol="p", kind="K",
                   payload=payload, round_index=round_index)


class TestConstruction:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigurationError):
            AdversaryCoordinator("nonsense", make_registry())

    def test_empty_faulty_set_rejected(self):
        with pytest.raises(ConfigurationError):
            AdversaryCoordinator("split_world", make_registry(faulty=()))

    def test_mutator_for_non_faulty_id_rejected(self):
        coordinator = AdversaryCoordinator("split_world", make_registry(faulty=(4,)))
        with pytest.raises(ConfigurationError):
            coordinator.mutator_for(0)

    def test_all_named_strategies_construct(self):
        for name in COORDINATED_STRATEGY_NAMES:
            coordinator = AdversaryCoordinator(name, make_registry())
            assert coordinator.mutator_for(4).faulty_id == 4


class TestSplitWorld:
    def test_camps_are_cross_faulty_consistent(self):
        # Two different faulty senders must tell the *same* recipient the
        # same story — that is what distinguishes the coordinated attack from
        # independent equivocation.
        registry = make_registry(process_count=6, fault_bound=2, faulty=(4, 5))
        coordinator = AdversaryCoordinator("split_world", registry)
        first = coordinator.mutator_for(4)
        second = coordinator.mutator_for(5)
        for recipient in (0, 1, 2, 3):
            told_by_first = first.mutate(make_message(sender=4, recipient=recipient))[0]
            told_by_second = second.mutate(make_message(sender=5, recipient=recipient))[0]
            assert told_by_first.payload == told_by_second.payload

    def test_recipients_split_into_dimension_plus_one_camps(self):
        registry = make_registry(process_count=8, dimension=2, fault_bound=1, faulty=(7,))
        coordinator = AdversaryCoordinator("split_world", registry)
        mutator = coordinator.mutator_for(7)
        stories = {}
        for recipient in registry.honest_ids:
            payload = mutator.mutate(make_message(sender=7, recipient=recipient))[0].payload
            stories.setdefault(tuple(payload["value"]), []).append(recipient)
        assert len(stories) == registry.configuration.dimension + 1

    def test_camp_values_are_honest_inputs(self):
        registry = make_registry()
        coordinator = AdversaryCoordinator("split_world", registry)
        mutator = coordinator.mutator_for(4)
        honest_inputs = {tuple(registry.input_of(pid)) for pid in registry.honest_ids}
        for recipient in registry.honest_ids:
            payload = mutator.mutate(make_message(recipient=recipient))[0].payload
            assert tuple(payload["value"]) in honest_inputs


class TestHullCollapse:
    def test_report_lies_inside_honest_hull(self):
        registry = make_registry(process_count=6, dimension=2, faulty=(5,))
        coordinator = AdversaryCoordinator("hull_collapse", registry)
        payload = coordinator.mutator_for(5).mutate(make_message(sender=5))[0].payload
        point = np.asarray(payload["value"])
        assert contains_point(registry.honest_input_multiset(), point, tolerance=1e-6)

    def test_explicit_target_used_everywhere(self):
        registry = make_registry()
        coordinator = AdversaryCoordinator(
            "hull_collapse", registry, params={"target": (0.25, 0.75)}
        )
        mutator = coordinator.mutator_for(4)
        for recipient in registry.honest_ids:
            payload = mutator.mutate(make_message(recipient=recipient))[0].payload
            assert tuple(payload["value"]) == (0.25, 0.75)

    def test_wrong_target_shape_rejected(self):
        registry = make_registry(dimension=2)
        coordinator = AdversaryCoordinator(
            "hull_collapse", registry, params={"target": (1.0, 2.0, 3.0)}
        )
        with pytest.raises(ConfigurationError):
            coordinator.mutator_for(4).mutate(make_message())

    def test_mismatched_leaf_shape_rejected(self):
        registry = make_registry(dimension=2)
        coordinator = AdversaryCoordinator("hull_collapse", registry)
        with pytest.raises(ByzantineBehaviorError):
            coordinator.mutator_for(4).mutate(
                make_message(payload={"value": (0.1, 0.2, 0.3)})
            )


class TestAdaptiveExtreme:
    def test_aim_tracks_sighted_traffic(self):
        registry = make_registry(dimension=2)
        coordinator = AdversaryCoordinator("adaptive_extreme", registry)
        mutator = coordinator.mutator_for(4)
        # Round 1: no sightings yet, the aim derives from the honest inputs.
        first_aim = np.asarray(mutator.mutate(make_message(round_index=1))[0].payload["value"])
        # Round 2 sightings: honest states have moved to a tight cluster near
        # the origin; the re-aimed report must move with them.
        for sender in registry.honest_ids:
            coordinator.observe(
                make_message(sender=sender, recipient=4,
                             payload={"value": (0.01 * sender, 0.02)}, round_index=2)
            )
        second_aim = np.asarray(mutator.mutate(make_message(round_index=2))[0].payload["value"])
        assert not np.allclose(first_aim, second_aim)
        assert np.linalg.norm(second_aim) < np.linalg.norm(first_aim) + 1.0

    def test_aim_is_consistent_within_a_round(self):
        registry = make_registry(process_count=6, fault_bound=2, faulty=(4, 5))
        coordinator = AdversaryCoordinator("adaptive_extreme", registry)
        first = coordinator.mutator_for(4).mutate(make_message(sender=4, round_index=3))[0]
        second = coordinator.mutator_for(5).mutate(make_message(sender=5, round_index=3))[0]
        assert first.payload == second.payload

    def test_faulty_traffic_is_not_sighted(self):
        registry = make_registry()
        coordinator = AdversaryCoordinator("adaptive_extreme", registry)
        coordinator.observe(
            make_message(sender=4, recipient=0, payload={"value": (99.0, 99.0)}, round_index=1)
        )
        assert coordinator._sightings == {}


class TestTheorem4Scenario:
    def test_faulty_processes_crash(self):
        registry = make_registry(process_count=6, fault_bound=2, faulty=(4, 5))
        coordinator = AdversaryCoordinator("theorem4_scenario", registry)
        assert coordinator.mutator_for(4).mutate(make_message(sender=4, round_index=1)) == []
        assert coordinator.mutator_for(5).mutate(make_message(sender=5, round_index=2)) == []

    def test_deferred_crash_round(self):
        registry = make_registry()
        coordinator = AdversaryCoordinator(
            "theorem4_scenario", registry, params={"crash_round": 2}
        )
        mutator = coordinator.mutator_for(4)
        assert mutator.mutate(make_message(round_index=1)) != []
        assert mutator.mutate(make_message(round_index=2)) == []

    def test_scheduler_hint_nominates_last_honest(self):
        registry = make_registry(process_count=5, faulty=(4,))
        coordinator = AdversaryCoordinator("theorem4_scenario", registry)
        assert coordinator.scheduler_hint() == (3,)

    def test_scheduler_hint_override(self):
        coordinator = AdversaryCoordinator(
            "theorem4_scenario", make_registry(), params={"slow_processes": [1, 2]}
        )
        assert coordinator.scheduler_hint() == (1, 2)

    def test_other_strategies_have_no_hint(self):
        assert AdversaryCoordinator("split_world", make_registry()).scheduler_hint() is None


class TestCollectValueLeaves:
    def test_collects_matching_vectors_only(self):
        payload = {
            "value": (0.1, 0.2),
            "other": np.array([1.0, 2.0, 3.0]),  # wrong dimension: skipped
            "nested": {"inner": [0.3, 0.4]},
            "members": [0, 1],  # structural key: skipped
            "count": 7,  # int: skipped
        }
        leaves = collect_value_leaves(payload, dimension=2)
        assert len(leaves) == 2
        assert {tuple(leaf) for leaf in leaves} == {(0.1, 0.2), (0.3, 0.4)}

    def test_scalars_are_not_vectors(self):
        assert collect_value_leaves({"x": 0.5}, dimension=1) == []
