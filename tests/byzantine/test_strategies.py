"""Unit tests for repro.byzantine.strategies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.byzantine.strategies import (
    CoordinateAttackStrategy,
    CrashStrategy,
    EquivocationStrategy,
    HonestStrategy,
    OutsideHullStrategy,
    RandomNoiseStrategy,
)
from repro.exceptions import ByzantineBehaviorError, ConfigurationError
from repro.network.message import Message


def make_message(recipient=1, payload=None, round_index=1):
    if payload is None:
        payload = {"value": (0.25, 0.75)}
    return Message(sender=9, recipient=recipient, protocol="p", kind="K",
                   payload=payload, round_index=round_index)


class TestHonestStrategy:
    def test_passes_message_unchanged(self):
        message = make_message()
        assert HonestStrategy().mutate(message) == [message]


class TestCrashStrategy:
    def test_immediate_crash_drops_all(self):
        strategy = CrashStrategy()
        assert strategy.mutate(make_message(round_index=1)) == []
        assert strategy.mutate(make_message(round_index=None)) == []

    def test_crash_after_round(self):
        strategy = CrashStrategy(crash_round=3)
        assert strategy.mutate(make_message(round_index=1)) != []
        assert strategy.mutate(make_message(round_index=2)) != []
        assert strategy.mutate(make_message(round_index=3)) == []
        # Once crashed, even untagged messages are suppressed.
        assert strategy.mutate(make_message(round_index=None)) == []

    def test_round_free_traffic_before_crash_passes(self):
        # A deferred crash (crash_round > 1) must let round-free traffic
        # (round_index=None, e.g. one-shot broadcasts) through while the
        # process is still alive — only round-tagged traffic can trigger the
        # crash.
        strategy = CrashStrategy(crash_round=2)
        untagged = make_message(round_index=None)
        assert strategy.mutate(untagged) == [untagged]
        # Still alive after round-1 traffic and further untagged messages.
        assert strategy.mutate(make_message(round_index=1)) != []
        later_untagged = make_message(round_index=None)
        assert strategy.mutate(later_untagged) == [later_untagged]

    def test_round_free_traffic_after_crash_is_dropped(self):
        strategy = CrashStrategy(crash_round=2)
        assert strategy.mutate(make_message(round_index=None)) != []
        # The round-2 message triggers the crash; everything after — tagged
        # or round-free — is suppressed, and the crash is permanent even if
        # later traffic carries an earlier round tag.
        assert strategy.mutate(make_message(round_index=2)) == []
        assert strategy.mutate(make_message(round_index=None)) == []
        assert strategy.mutate(make_message(round_index=1)) == []


class TestEquivocationStrategy:
    def test_different_recipients_get_different_values(self):
        pool = [[0.0, 0.0], [1.0, 1.0]]
        strategy = EquivocationStrategy(pool)
        to_even = strategy.mutate(make_message(recipient=2))[0]
        to_odd = strategy.mutate(make_message(recipient=3))[0]
        assert to_even.payload["value"] != to_odd.payload["value"]

    def test_same_recipient_is_consistent(self):
        strategy = EquivocationStrategy([[0.0, 0.0], [1.0, 1.0]])
        first = strategy.mutate(make_message(recipient=2))[0]
        second = strategy.mutate(make_message(recipient=2))[0]
        assert first.payload == second.payload

    def test_mismatched_vector_dimension_rejected(self):
        # Tiling a 3-vector into a 2-leaf would recycle coordinates and
        # report a value nobody chose; the strategy must refuse instead.
        strategy = EquivocationStrategy([[5.0, 6.0, 7.0]])
        with pytest.raises(ByzantineBehaviorError):
            strategy.mutate(make_message(payload={"value": (0.0, 0.0)}))

    def test_scalar_leaves_get_first_coordinate(self):
        # Per-coordinate broadcasts carry scalar leaves; those are replaced
        # by the pool vector's first coordinate, never rejected.
        strategy = EquivocationStrategy([[5.0, 6.0, 7.0]])
        mutated = strategy.mutate(make_message(recipient=3, payload={"value": 0.25}))[0]
        assert mutated.payload["value"] == 5.0

    def test_matching_vector_dimension_replaced(self):
        strategy = EquivocationStrategy([[5.0, 6.0]])
        mutated = strategy.mutate(make_message(payload={"value": (0.0, 0.0)}))[0]
        assert mutated.payload["value"] == (5.0, 6.0)

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            EquivocationStrategy([])


class TestOutsideHullStrategy:
    def test_values_shifted_far_away(self):
        strategy = OutsideHullStrategy(offset=100.0, scale=2.0)
        mutated = strategy.mutate(make_message())[0]
        assert mutated.payload["value"] == (100.5, 101.5)

    def test_metadata_untouched(self):
        strategy = OutsideHullStrategy()
        payload = {"round": 4, "members": [0, 1], "value": (0.5,)}
        mutated = strategy.mutate(make_message(payload=payload))[0]
        assert mutated.payload["round"] == 4
        assert mutated.payload["members"] == [0, 1]


class TestRandomNoiseStrategy:
    def test_values_within_box(self):
        strategy = RandomNoiseStrategy(low=-2.0, high=2.0, seed=1)
        for _ in range(20):
            mutated = strategy.mutate(make_message())[0]
            values = np.asarray(mutated.payload["value"])
            assert np.all(values >= -2.0) and np.all(values <= 2.0)

    def test_deterministic_given_seed(self):
        first = RandomNoiseStrategy(seed=5).mutate(make_message())[0]
        second = RandomNoiseStrategy(seed=5).mutate(make_message())[0]
        assert first.payload == second.payload

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            RandomNoiseStrategy(low=1.0, high=0.0)


class TestCoordinateAttackStrategy:
    def test_vector_coordinate_overridden(self):
        strategy = CoordinateAttackStrategy(coordinate=1, target=9.0)
        mutated = strategy.mutate(make_message(payload={"value": (0.1, 0.2, 0.3)}))[0]
        assert mutated.payload["value"] == (0.1, 9.0, 0.3)

    def test_scalar_leaves_always_replaced(self):
        strategy = CoordinateAttackStrategy(coordinate=0, target=9.0)
        mutated = strategy.mutate(make_message(payload={"x": 0.5}))[0]
        assert mutated.payload["x"] == 9.0

    def test_out_of_range_coordinate_rejected_at_construction(self):
        # The silent no-op regression: an out-of-range coordinate used to
        # pass honest values through untouched.  With the dimension known it
        # must be refused up front.
        with pytest.raises(ConfigurationError):
            CoordinateAttackStrategy(coordinate=2, target=9.0, dimension=2)

    def test_coordinate_at_dimension_boundary_accepted(self):
        strategy = CoordinateAttackStrategy(coordinate=1, target=9.0, dimension=2)
        mutated = strategy.mutate(make_message(payload={"value": (0.1, 0.2)}))[0]
        assert mutated.payload["value"] == (0.1, 9.0)

    def test_out_of_range_coordinate_rejected_at_mutation(self):
        # Without a declared dimension the mismatch can only surface at
        # mutation time — it must raise, not silently forward honest values.
        strategy = CoordinateAttackStrategy(coordinate=5, target=9.0)
        with pytest.raises(ByzantineBehaviorError):
            strategy.mutate(make_message(payload={"value": (0.1, 0.2)}))

    def test_negative_coordinate_rejected(self):
        with pytest.raises(ValueError):
            CoordinateAttackStrategy(coordinate=-1, target=0.0)
