"""Unit and protocol tests for the baselines (intro counterexample, E1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.byzantine.strategies import CoordinateAttackStrategy
from repro.core.baselines import (
    coordinatewise_median,
    coordinatewise_trimmed_mean,
    run_coordinatewise_consensus,
)
from repro.core.exact_bvc import run_exact_bvc
from repro.core.validity import check_exact_outcome
from repro.exceptions import ConfigurationError
from repro.workloads.generators import intro_counterexample_registry


class TestAggregationFunctions:
    def test_coordinatewise_median(self):
        cloud = np.asarray([[1.0, 10.0], [2.0, 20.0], [3.0, 30.0]])
        assert np.allclose(coordinatewise_median(cloud), [2.0, 20.0])

    def test_coordinatewise_median_even_count_lower(self):
        cloud = np.asarray([[1.0], [2.0], [3.0], [4.0]])
        assert coordinatewise_median(cloud)[0] == 2.0

    def test_coordinatewise_median_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            coordinatewise_median(np.empty((0, 2)))

    def test_trimmed_mean(self):
        cloud = np.asarray([[0.0], [1.0], [2.0], [3.0], [100.0]])
        assert coordinatewise_trimmed_mean(cloud, trim=1)[0] == pytest.approx(2.0)

    def test_trimmed_mean_zero_trim_is_mean(self):
        cloud = np.asarray([[1.0, 2.0], [3.0, 4.0]])
        assert np.allclose(coordinatewise_trimmed_mean(cloud, 0), [2.0, 3.0])

    def test_trimmed_mean_rejects_over_trimming(self):
        with pytest.raises(ConfigurationError):
            coordinatewise_trimmed_mean(np.asarray([[1.0], [2.0]]), trim=1)


class TestIntroCounterexample:
    def attack(self, registry):
        return {
            pid: CoordinateAttackStrategy(coordinate=0, target=1.0 / 6.0)
            for pid in registry.faulty_ids
        }

    def test_paper_example_baseline_decides_one_sixth_vector(self):
        registry = intro_counterexample_registry()
        outcome = run_coordinatewise_consensus(registry, adversary_mutators=self.attack(registry))
        decision = outcome.decisions[registry.honest_ids[0]]
        assert np.allclose(decision, [1.0 / 6.0] * 3, atol=1e-9)

    def test_baseline_satisfies_agreement_but_not_vector_validity(self):
        registry = intro_counterexample_registry()
        outcome = run_coordinatewise_consensus(registry, adversary_mutators=self.attack(registry))
        report = check_exact_outcome(registry, outcome.decisions)
        assert report.agreement_ok
        assert not report.validity_ok
        assert report.max_hull_distance > 0.1

    def test_baseline_satisfies_scalar_validity_per_coordinate(self):
        registry = intro_counterexample_registry()
        outcome = run_coordinatewise_consensus(registry, adversary_mutators=self.attack(registry))
        decision = outcome.decisions[registry.honest_ids[0]]
        honest = registry.honest_input_multiset().points
        for coordinate in range(3):
            assert honest[:, coordinate].min() - 1e-9 <= decision[coordinate]
            assert decision[coordinate] <= honest[:, coordinate].max() + 1e-9

    def test_exact_bvc_on_extended_example_is_valid(self):
        registry = intro_counterexample_registry(extended=True)
        outcome = run_exact_bvc(registry, adversary_mutators=self.attack(registry))
        report = check_exact_outcome(registry, outcome.decisions)
        assert report.all_ok
        decision = outcome.decisions[registry.honest_ids[0]]
        assert float(np.sum(decision)) == pytest.approx(1.0, abs=1e-6)

    def test_baseline_still_invalid_on_extended_example(self):
        registry = intro_counterexample_registry(extended=True)
        outcome = run_coordinatewise_consensus(registry, adversary_mutators=self.attack(registry))
        report = check_exact_outcome(registry, outcome.decisions)
        assert report.agreement_ok
        assert not report.validity_ok

    def test_baseline_without_attack_can_still_be_invalid(self):
        # Even the nominal faulty input [1/6,1/6,1/6] (sent honestly) drags the
        # coordinate-wise medians outside the honest hull.
        registry = intro_counterexample_registry()
        outcome = run_coordinatewise_consensus(registry)
        report = check_exact_outcome(registry, outcome.decisions)
        assert not report.validity_ok
