"""Unit tests for the resilience bounds (Theorems 1, 3, 4, 5, 6 as predicates)."""

from __future__ import annotations

import pytest

from repro.core.conditions import (
    Setting,
    SystemConfiguration,
    check_approx_async,
    check_exact_sync,
    check_restricted_async,
    check_restricted_sync,
    max_tolerable_faults,
    minimum_processes,
    minimum_processes_approx_async,
    minimum_processes_exact_sync,
    minimum_processes_restricted_async,
    minimum_processes_restricted_sync,
    minimum_processes_scalar,
    resilience_table,
)
from repro.exceptions import ConfigurationError, ResilienceError


class TestMinimumProcesses:
    def test_exact_sync_matches_paper_formula(self):
        # max(3f+1, (d+1)f+1)
        assert minimum_processes_exact_sync(1, 1) == 4
        assert minimum_processes_exact_sync(2, 1) == 4
        assert minimum_processes_exact_sync(3, 1) == 5
        assert minimum_processes_exact_sync(2, 2) == 7
        assert minimum_processes_exact_sync(5, 2) == 13

    def test_approx_async_matches_paper_formula(self):
        # (d+2)f + 1
        assert minimum_processes_approx_async(1, 1) == 4
        assert minimum_processes_approx_async(2, 1) == 5
        assert minimum_processes_approx_async(3, 2) == 11

    def test_restricted_bounds(self):
        assert minimum_processes_restricted_sync(2, 1) == 5
        assert minimum_processes_restricted_async(2, 1) == 7
        assert minimum_processes_restricted_async(1, 2) == 11

    def test_async_bound_is_exactly_f_larger_for_d_above_one(self):
        # The paper notes the asynchronous lower bound exceeds the synchronous
        # one by exactly f whenever d > 1.
        for dimension in range(2, 8):
            for fault_bound in range(1, 4):
                assert (
                    minimum_processes_approx_async(dimension, fault_bound)
                    == minimum_processes_exact_sync(dimension, fault_bound) + fault_bound
                )

    def test_bounds_coincide_for_scalar_case(self):
        # For d = 1 both vector bounds collapse to the classical 3f + 1.
        for fault_bound in range(1, 5):
            assert minimum_processes_exact_sync(1, fault_bound) == 3 * fault_bound + 1
            assert minimum_processes_approx_async(1, fault_bound) == 3 * fault_bound + 1

    def test_fault_free_needs_two(self):
        assert minimum_processes_exact_sync(4, 0) == 2
        assert minimum_processes_approx_async(4, 0) == 2

    def test_scalar_bound(self):
        assert minimum_processes_scalar(1) == 4
        assert minimum_processes_scalar(0) == 2

    def test_dispatch(self):
        assert minimum_processes(Setting.EXACT_SYNC, 3, 1) == 5
        assert minimum_processes(Setting.SCALAR, 3, 1) == 4

    def test_invalid_arguments(self):
        with pytest.raises(ConfigurationError):
            minimum_processes_exact_sync(0, 1)
        with pytest.raises(ConfigurationError):
            minimum_processes_approx_async(2, -1)


class TestChecks:
    def test_check_passes_at_bound(self):
        check_exact_sync(SystemConfiguration(5, 3, 1))
        check_approx_async(SystemConfiguration(5, 2, 1))
        check_restricted_sync(SystemConfiguration(5, 2, 1))
        check_restricted_async(SystemConfiguration(7, 2, 1))

    def test_check_fails_below_bound(self):
        with pytest.raises(ResilienceError):
            check_exact_sync(SystemConfiguration(4, 3, 1))
        with pytest.raises(ResilienceError):
            check_approx_async(SystemConfiguration(4, 2, 1))
        with pytest.raises(ResilienceError):
            check_restricted_async(SystemConfiguration(6, 2, 1))

    def test_allow_insufficient_bypasses(self):
        check_exact_sync(SystemConfiguration(4, 3, 1), allow_insufficient=True)

    def test_configuration_satisfies_and_deficit(self):
        configuration = SystemConfiguration(4, 3, 1)
        assert not configuration.satisfies(Setting.EXACT_SYNC)
        assert configuration.deficit(Setting.EXACT_SYNC) == 1
        assert configuration.satisfies(Setting.SCALAR)


class TestMaxTolerableFaults:
    def test_exact_sync(self):
        assert max_tolerable_faults(Setting.EXACT_SYNC, 7, 2) == 2
        assert max_tolerable_faults(Setting.EXACT_SYNC, 6, 2) == 1
        assert max_tolerable_faults(Setting.EXACT_SYNC, 3, 2) == 0

    def test_approx_async(self):
        assert max_tolerable_faults(Setting.APPROX_ASYNC, 9, 2) == 2
        assert max_tolerable_faults(Setting.APPROX_ASYNC, 8, 2) == 1


class TestResilienceTable:
    def test_rows_cover_grid(self):
        rows = resilience_table([1, 2], [1, 2])
        assert len(rows) == 4
        assert {row["dimension"] for row in rows} == {1, 2}

    def test_row_values_are_consistent(self):
        rows = resilience_table([3], [2])
        row = rows[0]
        assert row["exact_sync"] == 9
        assert row["approx_async"] == 11
        assert row["restricted_async"] == 15
