"""Protocol tests for the asynchronous Approximate BVC algorithm (Theorem 5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.byzantine.strategies import CrashStrategy, EquivocationStrategy, OutsideHullStrategy
from repro.core.approx_bvc import (
    ApproxBVCProcess,
    contraction_factor,
    round_threshold,
    run_approx_bvc,
)
from repro.core.conditions import SystemConfiguration, minimum_processes_approx_async
from repro.core.validity import check_approximate_outcome
from repro.exceptions import ConfigurationError, ResilienceError
from repro.network.scheduler import LaggingScheduler, RandomScheduler, RoundRobinScheduler
from repro.workloads.generators import uniform_box_registry


def registry_at_bound(dimension, fault_bound, seed=0):
    process_count = minimum_processes_approx_async(dimension, fault_bound)
    return uniform_box_registry(process_count, dimension, fault_bound, seed=seed)


class TestContractionAndRounds:
    def test_gamma_formula_all_subsets(self):
        # gamma = 1 / (n * C(n, n-f))
        assert contraction_factor(4, 1, "all_subsets") == pytest.approx(1 / (4 * 4))
        assert contraction_factor(5, 1, "all_subsets") == pytest.approx(1 / (5 * 5))
        assert contraction_factor(7, 2, "all_subsets") == pytest.approx(1 / (7 * 21))

    def test_gamma_formula_witness_subsets(self):
        # Appendix F: gamma = 1 / n^2.
        assert contraction_factor(5, 1, "witness_subsets") == pytest.approx(1 / 25)

    def test_round_threshold_matches_paper_formula(self):
        gamma = 0.04
        # 1 + ceil(log_{1/(1-gamma)}((U - nu) / eps))
        expected = 1 + int(np.ceil(np.log(1.0 / 0.2) / np.log(1.0 / 0.96)))
        assert round_threshold(1.0, 0.2, gamma) == expected

    def test_round_threshold_when_already_converged(self):
        assert round_threshold(0.05, 0.1, 0.04) == 1

    def test_invalid_arguments(self):
        with pytest.raises(ConfigurationError):
            round_threshold(1.0, 0.0, 0.04)
        with pytest.raises(ConfigurationError):
            round_threshold(1.0, 0.1, 1.5)
        with pytest.raises(ConfigurationError):
            contraction_factor(1, 0)


class TestProcessConstruction:
    def test_resilience_enforced(self):
        configuration = SystemConfiguration(4, 2, 1)
        with pytest.raises(ResilienceError):
            ApproxBVCProcess(0, configuration, np.zeros(2), 0.1, 0.0, 1.0)

    def test_value_bounds_validated(self):
        configuration = SystemConfiguration(5, 2, 1)
        with pytest.raises(ConfigurationError):
            ApproxBVCProcess(0, configuration, np.zeros(2), 0.1, 1.0, 0.0)

    def test_total_rounds_follow_static_rule(self):
        configuration = SystemConfiguration(5, 2, 1)
        process = ApproxBVCProcess(0, configuration, np.zeros(2), 0.25, 0.0, 1.0)
        assert process.total_rounds == round_threshold(1.0, 0.25, process.gamma)


class TestFaultFreeConvergence:
    def test_epsilon_agreement_and_validity(self):
        registry = uniform_box_registry(4, 1, 1, fault_count=0, seed=2)
        outcome = run_approx_bvc(registry, epsilon=0.2, scheduler=RoundRobinScheduler())
        report = check_approximate_outcome(registry, outcome.decisions, epsilon=0.2)
        assert report.agreement_ok
        assert report.validity_ok

    def test_identical_inputs_fixed_point(self):
        registry = uniform_box_registry(5, 2, 1, fault_count=0, seed=3)
        inputs = {pid: np.asarray([0.3, 0.7]) for pid in registry.process_ids}
        from repro.processes.registry import ProcessRegistry
        registry = ProcessRegistry(registry.configuration, inputs)
        outcome = run_approx_bvc(registry, epsilon=0.2, scheduler=RandomScheduler(1))
        for decision in outcome.decisions.values():
            assert np.allclose(decision, [0.3, 0.7], atol=1e-5)

    def test_state_histories_recorded(self):
        registry = uniform_box_registry(4, 1, 1, fault_count=0, seed=4)
        outcome = run_approx_bvc(registry, epsilon=0.3, scheduler=RandomScheduler(2))
        for history in outcome.state_histories.values():
            assert len(history) == outcome.rounds_executed + 1


@pytest.mark.parametrize("strategy_name", ["crash", "equivocate", "outside_hull"])
class TestUnderAttackAtTheBound:
    def test_epsilon_agreement_and_validity_d1(self, strategy_name):
        registry = registry_at_bound(1, 1, seed=11)
        honest_inputs = [registry.input_of(pid) for pid in registry.honest_ids]
        strategies = {
            "crash": lambda: CrashStrategy(),
            "equivocate": lambda: EquivocationStrategy(honest_inputs),
            "outside_hull": lambda: OutsideHullStrategy(offset=30.0),
        }
        mutators = {pid: strategies[strategy_name]() for pid in registry.faulty_ids}
        outcome = run_approx_bvc(
            registry, epsilon=0.25, adversary_mutators=mutators, scheduler=RandomScheduler(7)
        )
        report = check_approximate_outcome(registry, outcome.decisions, epsilon=0.25)
        assert report.agreement_ok, f"disagreement {report.max_disagreement}"
        assert report.validity_ok, f"hull distance {report.max_hull_distance}"

    def test_epsilon_agreement_and_validity_d2(self, strategy_name):
        registry = registry_at_bound(2, 1, seed=12)
        honest_inputs = [registry.input_of(pid) for pid in registry.honest_ids]
        strategies = {
            "crash": lambda: CrashStrategy(),
            "equivocate": lambda: EquivocationStrategy(honest_inputs),
            "outside_hull": lambda: OutsideHullStrategy(offset=30.0),
        }
        mutators = {pid: strategies[strategy_name]() for pid in registry.faulty_ids}
        outcome = run_approx_bvc(
            registry, epsilon=0.35, adversary_mutators=mutators, scheduler=RandomScheduler(8)
        )
        report = check_approximate_outcome(registry, outcome.decisions, epsilon=0.35)
        assert report.agreement_ok
        assert report.validity_ok


class TestSchedulersAndModes:
    def test_lagging_scheduler_does_not_break_convergence(self):
        registry = registry_at_bound(1, 1, seed=13)
        scheduler = LaggingScheduler(slow_processes=[registry.honest_ids[-1]], seed=1)
        mutators = {pid: CrashStrategy() for pid in registry.faulty_ids}
        outcome = run_approx_bvc(
            registry, epsilon=0.3, adversary_mutators=mutators, scheduler=scheduler
        )
        report = check_approximate_outcome(registry, outcome.decisions, epsilon=0.3)
        assert report.agreement_ok and report.validity_ok

    def test_all_subsets_mode(self):
        registry = registry_at_bound(1, 1, seed=14)
        outcome = run_approx_bvc(
            registry, epsilon=0.3, subset_mode="all_subsets", scheduler=RandomScheduler(5),
            max_rounds_override=6,
        )
        report = check_approximate_outcome(registry, outcome.decisions, epsilon=1.0)
        assert report.validity_ok

    def test_rounds_override(self):
        registry = registry_at_bound(1, 1, seed=15)
        outcome = run_approx_bvc(
            registry, epsilon=0.01, max_rounds_override=3, scheduler=RandomScheduler(6)
        )
        assert outcome.rounds_executed == 3

    def test_contraction_bound_holds_per_round(self):
        # Equation (12): the honest range contracts at least by (1 - gamma).
        from repro.analysis.convergence import measured_contraction_factors

        registry = registry_at_bound(2, 1, seed=16)
        mutators = {pid: OutsideHullStrategy(offset=20.0) for pid in registry.faulty_ids}
        outcome = run_approx_bvc(
            registry, epsilon=0.1, adversary_mutators=mutators,
            max_rounds_override=5, scheduler=RandomScheduler(9),
        )
        gamma = contraction_factor(registry.configuration.process_count, 1, "witness_subsets")
        factors = measured_contraction_factors(outcome.state_histories)
        assert np.all(factors <= 1.0 - gamma + 1e-9)
