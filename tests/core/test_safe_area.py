"""Unit tests for the safe area Gamma(Y) (definition (1), Lemma 1, Section 2.2 LP)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.safe_area import (
    SafeAreaCalculator,
    safe_area_contains,
    safe_area_is_empty,
    safe_area_point,
    safe_area_point_via_tverberg,
    safe_area_subset_count,
)
from repro.exceptions import EmptyIntersectionError, GeometryError
from repro.geometry.convex_hull import distance_to_hull
from repro.geometry.multisets import PointMultiset

SQUARE_PLUS_CENTER = np.asarray([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [1.0, 1.0], [0.5, 0.5]])
BASIS_PLUS_ORIGIN_3D = np.vstack([np.eye(3), np.zeros((1, 3))])


class TestSubsetCount:
    def test_formula(self):
        assert safe_area_subset_count(5, 1) == 5
        assert safe_area_subset_count(7, 2) == 21

    def test_invalid(self):
        with pytest.raises(GeometryError):
            safe_area_subset_count(3, -1)
        with pytest.raises(GeometryError):
            safe_area_subset_count(3, 4)


class TestSafeAreaPoint:
    def test_lemma1_point_exists_at_the_bound(self):
        # |Y| = 5 >= (2+1)*1 + 1 = 4 in the plane.
        point = safe_area_point(SQUARE_PLUS_CENTER, fault_bound=1)
        assert point is not None
        assert safe_area_contains(SQUARE_PLUS_CENTER, 1, point, tolerance=1e-5)

    def test_point_is_in_every_leave_f_out_hull(self):
        multiset = PointMultiset(SQUARE_PLUS_CENTER)
        point = safe_area_point(multiset, fault_bound=1)
        for subset in multiset.drop_count(1):
            assert distance_to_hull(subset, point) < 1e-5

    def test_empty_below_the_bound(self):
        # The Theorem 1 construction: d+1 points in R^d make Gamma empty for f=1.
        assert safe_area_is_empty(BASIS_PLUS_ORIGIN_3D, fault_bound=1)
        assert safe_area_point(BASIS_PLUS_ORIGIN_3D, fault_bound=1) is None

    def test_zero_faults_returns_centroid(self):
        point = safe_area_point(SQUARE_PLUS_CENTER, fault_bound=0)
        assert np.allclose(point, SQUARE_PLUS_CENTER.mean(axis=0))

    def test_duplicate_points_are_fine(self):
        cloud = np.asarray([[1.0, 1.0]] * 5)
        point = safe_area_point(cloud, fault_bound=1)
        assert np.allclose(point, [1.0, 1.0], atol=1e-6)

    def test_one_dimensional_gamma_is_trimmed_interval(self):
        cloud = np.asarray([[0.0], [1.0], [2.0], [3.0], [4.0]])
        point = safe_area_point(cloud, fault_bound=1)
        # Gamma = [1, 3] (dropping one extreme from each side).
        assert 1.0 - 1e-6 <= float(point[0]) <= 3.0 + 1e-6

    def test_objective_steers_the_choice(self):
        cloud = np.asarray([[0.0], [1.0], [2.0], [3.0], [4.0]])
        low = safe_area_point(cloud, 1, objective=np.asarray([1.0]))
        high = safe_area_point(cloud, 1, objective=np.asarray([-1.0]))
        assert float(low[0]) == pytest.approx(1.0, abs=1e-6)
        assert float(high[0]) == pytest.approx(3.0, abs=1e-6)

    def test_explicit_subset_families(self):
        cloud = np.asarray([[0.0], [1.0], [2.0], [3.0], [4.0]])
        point = safe_area_point(cloud, 1, subset_indices=[(0, 1, 2, 3), (1, 2, 3, 4)])
        assert point is not None

    def test_bad_subset_family_rejected(self):
        cloud = np.asarray([[0.0], [1.0], [2.0], [3.0]])
        with pytest.raises(GeometryError):
            safe_area_point(cloud, 1, subset_indices=[(0, 1)])

    def test_bad_objective_rejected(self):
        with pytest.raises(GeometryError):
            safe_area_point(SQUARE_PLUS_CENTER, 1, objective=np.asarray([1.0, 2.0, 3.0]))

    def test_more_faults_than_points(self):
        assert safe_area_point(np.asarray([[0.0], [1.0]]), fault_bound=3) is None


class TestTverbergRoute:
    def test_matches_lp_route_on_small_instance(self):
        lp_point = safe_area_point(SQUARE_PLUS_CENTER, 1)
        tverberg_point = safe_area_point_via_tverberg(SQUARE_PLUS_CENTER, 1)
        assert lp_point is not None and tverberg_point is not None
        # Both must lie in Gamma (they need not coincide).
        assert safe_area_contains(SQUARE_PLUS_CENTER, 1, tverberg_point, tolerance=1e-5)

    def test_empty_for_insufficient_points(self):
        assert safe_area_point_via_tverberg(BASIS_PLUS_ORIGIN_3D, 1) is None

    def test_zero_faults(self):
        point = safe_area_point_via_tverberg(SQUARE_PLUS_CENTER, 0)
        assert np.allclose(point, SQUARE_PLUS_CENTER.mean(axis=0))


class TestSafeAreaCalculator:
    def test_deterministic_choice(self):
        calculator = SafeAreaCalculator(fault_bound=1)
        first = calculator.choose(SQUARE_PLUS_CENTER)
        second = calculator.choose(SQUARE_PLUS_CENTER)
        assert np.allclose(first, second)

    def test_identical_across_instances(self):
        # Two independent calculators (as at two different processes) must make
        # the same choice on the same multiset — required for agreement.
        a = SafeAreaCalculator(fault_bound=1).choose(SQUARE_PLUS_CENTER)
        b = SafeAreaCalculator(fault_bound=1).choose(SQUARE_PLUS_CENTER)
        assert np.allclose(a, b)

    def test_raises_on_empty_gamma(self):
        with pytest.raises(EmptyIntersectionError):
            SafeAreaCalculator(fault_bound=1).choose(BASIS_PLUS_ORIGIN_3D)

    def test_custom_tie_break(self):
        cloud = np.asarray([[0.0], [1.0], [2.0], [3.0], [4.0]])
        calculator = SafeAreaCalculator(fault_bound=1, tie_break_objective=(-1.0,))
        assert float(calculator.choose(cloud)[0]) == pytest.approx(3.0, abs=1e-6)

    def test_collapsed_states_yield_that_point(self):
        # All states identical (the fixed point of the iterative algorithms).
        cloud = np.asarray([[2.0, -3.0]] * 4)
        point = SafeAreaCalculator(fault_bound=1).choose(cloud)
        assert np.allclose(point, [2.0, -3.0], atol=1e-5)
