"""Unit tests for the impossibility constructions (Theorems 1 and 4 necessity)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.impossibility import (
    analyze_async_necessity,
    analyze_sync_necessity,
    theorem1_construction,
    theorem4_construction,
)
from repro.exceptions import ConfigurationError


class TestTheorem1Construction:
    def test_construction_shape(self):
        multiset = theorem1_construction(4)
        assert len(multiset) == 5
        assert multiset.dimension == 4

    @pytest.mark.parametrize("dimension", [1, 2, 3, 4, 5])
    def test_gamma_empty_below_the_bound(self, dimension):
        witness = analyze_sync_necessity(dimension)
        assert witness.process_count == dimension + 1
        assert witness.gamma_empty
        assert witness.witness_point is None

    @pytest.mark.parametrize("dimension", [1, 2, 3, 4])
    def test_gamma_nonempty_at_the_bound(self, dimension):
        witness = analyze_sync_necessity(dimension, process_count=dimension + 2)
        assert not witness.gamma_empty
        assert witness.witness_point is not None

    def test_too_few_processes_rejected(self):
        with pytest.raises(ConfigurationError):
            analyze_sync_necessity(3, process_count=2)

    def test_invalid_dimension_rejected(self):
        with pytest.raises(ConfigurationError):
            theorem1_construction(0)


class TestTheorem4Construction:
    def test_construction_shape(self):
        multiset = theorem4_construction(3, epsilon=0.25)
        assert len(multiset) == 5
        assert np.allclose(multiset[0], [1.0, 0.0, 0.0])
        assert np.allclose(multiset[4], [0.0, 0.0, 0.0])

    @pytest.mark.parametrize("dimension", [1, 2, 3, 4])
    def test_forced_gap_is_four_epsilon(self, dimension):
        epsilon = 0.25
        witness = analyze_async_necessity(dimension, epsilon=epsilon)
        assert witness.max_forced_gap == pytest.approx(4.0 * epsilon, abs=1e-6)
        assert witness.violates_epsilon_agreement

    def test_forced_decisions_equal_own_inputs(self):
        epsilon = 0.5
        witness = analyze_async_necessity(2, epsilon=epsilon)
        construction = theorem4_construction(2, epsilon=epsilon)
        for index, decision in enumerate(witness.forced_decisions):
            assert np.allclose(decision, construction[index], atol=1e-6)

    def test_invalid_epsilon_rejected(self):
        with pytest.raises(ConfigurationError):
            theorem4_construction(2, epsilon=0.0)

    def test_invalid_dimension_rejected(self):
        with pytest.raises(ConfigurationError):
            theorem4_construction(0, epsilon=0.1)
