"""Unit tests for the shared pure round/decision functions."""

from __future__ import annotations

import numpy as np

from repro.core.aggregation import SafeAverageAggregator
from repro.core.baselines import coordinatewise_median
from repro.core.round_ops import (
    approx_subset_families,
    coordinatewise_decision,
    quorum_families,
    restricted_round_clouds,
    restricted_round_step,
)


class TestRestrictedRoundStep:
    def test_matches_the_aggregator_on_full_membership(self):
        # The process classes used SafeAverageAggregator before the
        # extraction; on a full 0..n-1 membership the pure function must
        # reproduce its update bit for bit.
        rng = np.random.default_rng(7)
        received = rng.uniform(0.0, 1.0, size=(5, 2))
        aggregator = SafeAverageAggregator(fault_bound=1, quorum=4)
        step = aggregator.aggregate({i: received[i] for i in range(5)})
        update = restricted_round_step(received, fault_bound=1, quorum=4)
        assert np.array_equal(step.new_state, update)

    def test_cloud_enumeration_is_lexicographic(self):
        received = np.arange(8.0).reshape(4, 2)
        clouds = restricted_round_clouds(received, quorum=3)
        families = quorum_families(4, 3)
        assert families == [(0, 1, 2), (0, 1, 3), (0, 2, 3), (1, 2, 3)]
        for cloud, family in zip(clouds, families):
            assert np.array_equal(cloud, received[list(family)])

    def test_memoised_choose_is_transparent(self):
        rng = np.random.default_rng(8)
        received = rng.uniform(0.0, 1.0, size=(5, 2))
        plain = restricted_round_step(received, fault_bound=1, quorum=4)
        from repro.core.safe_area import SafeAreaCalculator

        chooser = SafeAreaCalculator(fault_bound=1)
        cache: dict[bytes, np.ndarray] = {}

        def memoised(cloud: np.ndarray) -> np.ndarray:
            key = cloud.tobytes()
            if key not in cache:
                cache[key] = chooser.choose(cloud)
            return cache[key]

        assert np.array_equal(
            plain, restricted_round_step(received, fault_bound=1, quorum=4, choose=memoised)
        )


class TestCoordinatewiseDecision:
    def test_matches_baseline_median(self):
        rng = np.random.default_rng(9)
        cloud = rng.uniform(-1.0, 1.0, size=(6, 3))
        assert np.array_equal(coordinatewise_decision(cloud), coordinatewise_median(cloud))


class TestApproxSubsetFamilies:
    def test_all_subsets_mode(self):
        families = approx_subset_families([3, 1, 2], {}, quorum=2, subset_mode="all_subsets")
        assert families == [(1, 3), (2, 3), (1, 2)]  # member order, sorted within

    def test_witness_mode_filters_and_dedupes(self):
        families = approx_subset_families(
            [0, 1, 2, 3],
            {
                10: (1, 0),       # valid
                11: (0, 1),       # duplicate of the first after sorting
                12: (0, 9),       # unknown member -> dropped
                13: (0, 1, 2),    # wrong size -> dropped
                14: (2, 3),       # valid
            },
            quorum=2,
            subset_mode="witness_subsets",
        )
        assert families == [(0, 1), (2, 3)]

    def test_witness_mode_falls_back_to_enumeration(self):
        families = approx_subset_families(
            [0, 1, 2], {10: (0, 9)}, quorum=2, subset_mode="witness_subsets"
        )
        assert families == [(0, 1), (0, 2), (1, 2)]
