"""Unit and protocol tests for the Exact BVC algorithm (Theorem 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.byzantine.strategies import (
    CrashStrategy,
    EquivocationStrategy,
    OutsideHullStrategy,
    RandomNoiseStrategy,
)
from repro.core.conditions import SystemConfiguration, minimum_processes_exact_sync
from repro.core.exact_bvc import ExactBVCProcess, run_exact_bvc
from repro.core.validity import check_exact_outcome
from repro.exceptions import ProtocolError, ResilienceError
from repro.processes.registry import ProcessRegistry
from repro.workloads.generators import uniform_box_registry


def registry_at_bound(dimension, fault_bound, seed=0):
    process_count = minimum_processes_exact_sync(dimension, fault_bound)
    return uniform_box_registry(process_count, dimension, fault_bound, seed=seed)


class TestProcessConstruction:
    def test_resilience_enforced(self):
        configuration = SystemConfiguration(4, 3, 1)
        with pytest.raises(ResilienceError):
            ExactBVCProcess(0, configuration, np.zeros(3))

    def test_allow_insufficient(self):
        configuration = SystemConfiguration(4, 3, 1)
        process = ExactBVCProcess(0, configuration, np.zeros(3), allow_insufficient=True)
        assert process.total_rounds == 2

    def test_wrong_input_dimension_rejected(self):
        configuration = SystemConfiguration(5, 3, 1)
        with pytest.raises(ProtocolError):
            ExactBVCProcess(0, configuration, np.zeros(2))

    def test_decision_before_termination_raises(self):
        configuration = SystemConfiguration(5, 3, 1)
        process = ExactBVCProcess(0, configuration, np.zeros(3))
        assert not process.has_decided()
        with pytest.raises(ProtocolError):
            process.decision()


class TestFaultFreeRuns:
    def test_agreement_and_validity_without_faults(self, fault_free_registry):
        outcome = run_exact_bvc(fault_free_registry)
        report = check_exact_outcome(fault_free_registry, outcome.decisions)
        assert report.all_ok

    def test_rounds_equal_f_plus_one(self, fault_free_registry):
        outcome = run_exact_bvc(fault_free_registry)
        assert outcome.rounds_executed == 2

    def test_identical_inputs_decide_that_input(self):
        configuration = SystemConfiguration(4, 2, 1)
        inputs = {pid: np.asarray([0.25, 0.75]) for pid in range(4)}
        registry = ProcessRegistry(configuration, inputs)
        outcome = run_exact_bvc(registry)
        for decision in outcome.decisions.values():
            assert np.allclose(decision, [0.25, 0.75], atol=1e-6)

    def test_per_coordinate_broadcast_mode(self, fault_free_registry):
        outcome = run_exact_bvc(fault_free_registry, broadcast_mode="per_coordinate")
        report = check_exact_outcome(fault_free_registry, outcome.decisions)
        assert report.all_ok

    def test_agreed_multiset_matches_inputs_without_faults(self, fault_free_registry):
        outcome = run_exact_bvc(fault_free_registry)
        # In a fault-free run the reconstructed multiset is exactly the inputs.
        assert outcome.decisions  # run completed
        all_inputs = fault_free_registry.all_input_multiset()
        # Re-run with direct access to a process to inspect its multiset.
        from repro.network.sync_runtime import SynchronousRuntime

        processes = {
            pid: ExactBVCProcess(pid, fault_free_registry.configuration,
                                 fault_free_registry.input_of(pid))
            for pid in fault_free_registry.process_ids
        }
        SynchronousRuntime(processes).run()
        for process in processes.values():
            assert process.agreed_multiset == all_inputs


@pytest.mark.parametrize("dimension,fault_bound", [(1, 1), (2, 1), (3, 1), (2, 2)])
@pytest.mark.parametrize("strategy_name", ["crash", "equivocate", "outside_hull", "noise"])
class TestUnderAttackAtTheBound:
    def test_agreement_and_validity(self, dimension, fault_bound, strategy_name):
        registry = registry_at_bound(dimension, fault_bound, seed=dimension * 7 + fault_bound)
        honest_inputs = [registry.input_of(pid) for pid in registry.honest_ids]
        strategies = {
            "crash": lambda: CrashStrategy(),
            "equivocate": lambda: EquivocationStrategy(honest_inputs),
            "outside_hull": lambda: OutsideHullStrategy(offset=25.0),
            "noise": lambda: RandomNoiseStrategy(low=-10, high=10, seed=1),
        }
        mutators = {pid: strategies[strategy_name]() for pid in registry.faulty_ids}
        outcome = run_exact_bvc(registry, adversary_mutators=mutators)
        report = check_exact_outcome(registry, outcome.decisions)
        assert report.agreement_ok, f"disagreement {report.max_disagreement}"
        assert report.validity_ok, f"hull distance {report.max_hull_distance}"


class TestAttackDetails:
    def test_crash_in_second_round(self):
        registry = registry_at_bound(2, 2, seed=3)
        mutators = {pid: CrashStrategy(crash_round=2) for pid in registry.faulty_ids}
        outcome = run_exact_bvc(registry, adversary_mutators=mutators)
        report = check_exact_outcome(registry, outcome.decisions)
        assert report.all_ok

    def test_adversary_not_using_budget(self, small_registry):
        # Faulty id exists but no mutator: behaves honestly.
        outcome = run_exact_bvc(small_registry)
        report = check_exact_outcome(small_registry, outcome.decisions)
        assert report.all_ok

    def test_per_coordinate_mode_under_attack(self):
        registry = registry_at_bound(2, 1, seed=5)
        mutators = {pid: OutsideHullStrategy(offset=50.0) for pid in registry.faulty_ids}
        outcome = run_exact_bvc(registry, adversary_mutators=mutators, broadcast_mode="per_coordinate")
        report = check_exact_outcome(registry, outcome.decisions)
        assert report.all_ok

    def test_message_complexity_grows_with_n(self):
        small = run_exact_bvc(registry_at_bound(1, 1, seed=1))
        large = run_exact_bvc(registry_at_bound(3, 1, seed=1))
        assert large.messages_sent > small.messages_sent
