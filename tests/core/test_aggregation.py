"""Unit tests for the shared Step-2 aggregation (Equation (9))."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.aggregation import SafeAverageAggregator
from repro.exceptions import ConfigurationError
from repro.geometry.convex_hull import distance_to_hull


HONEST = {
    0: np.asarray([0.0, 0.0]),
    1: np.asarray([1.0, 0.0]),
    2: np.asarray([0.0, 1.0]),
    3: np.asarray([1.0, 1.0]),
}


class TestConstruction:
    def test_quorum_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            SafeAverageAggregator(fault_bound=1, quorum=0)

    def test_negative_faults_rejected(self):
        with pytest.raises(ConfigurationError):
            SafeAverageAggregator(fault_bound=-1, quorum=3)

    def test_subset_budget(self):
        aggregator = SafeAverageAggregator(fault_bound=1, quorum=4)
        assert aggregator.subset_budget(5) == 5
        assert aggregator.subset_budget(3) == 0


class TestAggregate:
    def test_fault_free_average_stays_in_hull(self):
        aggregator = SafeAverageAggregator(fault_bound=1, quorum=4)
        vectors = dict(HONEST)
        vectors[4] = np.asarray([0.5, 0.5])
        step = aggregator.aggregate(vectors)
        assert step.subset_count == 5
        honest_cloud = np.vstack(list(HONEST.values()))
        assert distance_to_hull(honest_cloud, step.new_state) < 1e-6

    def test_byzantine_outlier_excluded_from_influence(self):
        # One of the five vectors is wildly off; the aggregate must stay inside
        # the hull of every 4-subset, hence inside the honest hull.
        aggregator = SafeAverageAggregator(fault_bound=1, quorum=4)
        vectors = dict(HONEST)
        vectors[4] = np.asarray([1000.0, -1000.0])
        step = aggregator.aggregate(vectors)
        honest_cloud = np.vstack(list(HONEST.values()))
        assert distance_to_hull(honest_cloud, step.new_state) < 1e-5

    def test_explicit_subset_families(self):
        aggregator = SafeAverageAggregator(fault_bound=1, quorum=4)
        vectors = dict(HONEST)
        vectors[4] = np.asarray([0.5, 0.5])
        step = aggregator.aggregate(vectors, subset_families=[(0, 1, 2, 3), (1, 2, 3, 4)])
        assert step.subset_count == 2

    def test_bad_subset_families_fall_back_to_enumeration(self):
        aggregator = SafeAverageAggregator(fault_bound=1, quorum=4)
        vectors = dict(HONEST)
        vectors[4] = np.asarray([0.5, 0.5])
        step = aggregator.aggregate(vectors, subset_families=[(0, 1), (0, 1, 2, 99)])
        assert step.subset_count == 5

    def test_duplicate_families_deduplicated(self):
        aggregator = SafeAverageAggregator(fault_bound=1, quorum=4)
        vectors = dict(HONEST)
        vectors[4] = np.asarray([0.5, 0.5])
        step = aggregator.aggregate(vectors, subset_families=[(0, 1, 2, 3), (3, 2, 1, 0)])
        assert step.subset_count == 1

    def test_too_few_vectors_rejected(self):
        aggregator = SafeAverageAggregator(fault_bound=1, quorum=4)
        with pytest.raises(ConfigurationError):
            aggregator.aggregate({0: np.zeros(2), 1: np.ones(2)})

    def test_chosen_points_exposed(self):
        aggregator = SafeAverageAggregator(fault_bound=1, quorum=4)
        vectors = dict(HONEST)
        vectors[4] = np.asarray([0.5, 0.5])
        step = aggregator.aggregate(vectors)
        assert len(step.chosen_points) == step.subset_count
        assert np.allclose(np.mean(np.vstack(step.chosen_points), axis=0), step.new_state)
