"""Protocol tests for the restricted-round algorithms (Theorem 6)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.byzantine.strategies import CrashStrategy, EquivocationStrategy, OutsideHullStrategy
from repro.core.conditions import (
    SystemConfiguration,
    minimum_processes_restricted_async,
    minimum_processes_restricted_sync,
)
from repro.core.restricted_async import (
    RestrictedAsyncProcess,
    restricted_async_contraction_factor,
    run_restricted_async_bvc,
)
from repro.core.restricted_sync import RestrictedSyncProcess, run_restricted_sync_bvc
from repro.core.validity import check_approximate_outcome
from repro.exceptions import ConfigurationError, ResilienceError
from repro.network.scheduler import RandomScheduler
from repro.workloads.generators import uniform_box_registry


def sync_registry(dimension=2, fault_bound=1, seed=0):
    n = minimum_processes_restricted_sync(dimension, fault_bound)
    return uniform_box_registry(n, dimension, fault_bound, seed=seed)


def async_registry(dimension=2, fault_bound=1, seed=0):
    n = minimum_processes_restricted_async(dimension, fault_bound)
    return uniform_box_registry(n, dimension, fault_bound, seed=seed)


class TestConstruction:
    def test_sync_resilience_enforced(self):
        configuration = SystemConfiguration(4, 2, 1)  # needs 5
        with pytest.raises(ResilienceError):
            RestrictedSyncProcess(0, configuration, np.zeros(2), 0.1, 0.0, 1.0)

    def test_async_resilience_enforced(self):
        configuration = SystemConfiguration(6, 2, 1)  # needs 7
        with pytest.raises(ResilienceError):
            RestrictedAsyncProcess(0, configuration, np.zeros(2), 0.1, 0.0, 1.0)

    def test_async_contraction_factor(self):
        # gamma = 1 / (n * C(n - f, n - 3f))
        assert restricted_async_contraction_factor(7, 1) == pytest.approx(1 / (7 * 15))

    def test_async_contraction_requires_positive_quorum(self):
        with pytest.raises(ConfigurationError):
            restricted_async_contraction_factor(6, 2)

    def test_value_bounds_validated(self):
        configuration = SystemConfiguration(5, 2, 1)
        with pytest.raises(ConfigurationError):
            RestrictedSyncProcess(0, configuration, np.zeros(2), 0.1, 1.0, 0.0)


class TestRestrictedSync:
    def test_fault_free_convergence(self):
        registry = uniform_box_registry(5, 2, 1, fault_count=0, seed=1)
        outcome = run_restricted_sync_bvc(registry, epsilon=0.25, max_rounds_override=10)
        report = check_approximate_outcome(registry, outcome.decisions, epsilon=0.25)
        assert report.agreement_ok and report.validity_ok

    @pytest.mark.parametrize("strategy_name", ["crash", "equivocate", "outside_hull"])
    def test_under_attack_at_the_bound(self, strategy_name):
        registry = sync_registry(seed=21)
        honest_inputs = [registry.input_of(pid) for pid in registry.honest_ids]
        strategies = {
            "crash": lambda: CrashStrategy(),
            "equivocate": lambda: EquivocationStrategy(honest_inputs),
            "outside_hull": lambda: OutsideHullStrategy(offset=40.0),
        }
        mutators = {pid: strategies[strategy_name]() for pid in registry.faulty_ids}
        outcome = run_restricted_sync_bvc(
            registry, epsilon=0.25, adversary_mutators=mutators, max_rounds_override=12
        )
        report = check_approximate_outcome(registry, outcome.decisions, epsilon=0.25)
        assert report.agreement_ok, f"disagreement {report.max_disagreement}"
        assert report.validity_ok, f"hull distance {report.max_hull_distance}"

    def test_static_round_rule_used_by_default(self):
        registry = uniform_box_registry(4, 1, 1, fault_count=0, seed=2)
        outcome = run_restricted_sync_bvc(registry, epsilon=0.5)
        process = RestrictedSyncProcess(
            0, registry.configuration, registry.input_of(0), 0.5, *registry.value_bounds()
        )
        assert outcome.rounds_executed == process.total_rounds

    def test_state_histories_have_one_entry_per_round(self):
        registry = uniform_box_registry(5, 2, 1, fault_count=0, seed=3)
        outcome = run_restricted_sync_bvc(registry, epsilon=0.3, max_rounds_override=4)
        for history in outcome.state_histories.values():
            assert len(history) == 5


class TestRestrictedAsync:
    def test_fault_free_convergence(self):
        registry = uniform_box_registry(7, 2, 1, fault_count=0, seed=4)
        outcome = run_restricted_async_bvc(
            registry, epsilon=0.25, max_rounds_override=8, scheduler=RandomScheduler(1)
        )
        report = check_approximate_outcome(registry, outcome.decisions, epsilon=0.25)
        assert report.agreement_ok and report.validity_ok

    @pytest.mark.parametrize("strategy_name", ["crash", "outside_hull"])
    def test_under_attack_at_the_bound(self, strategy_name):
        registry = async_registry(seed=22)
        strategies = {
            "crash": lambda: CrashStrategy(),
            "outside_hull": lambda: OutsideHullStrategy(offset=40.0),
        }
        mutators = {pid: strategies[strategy_name]() for pid in registry.faulty_ids}
        outcome = run_restricted_async_bvc(
            registry, epsilon=0.3, adversary_mutators=mutators,
            max_rounds_override=10, scheduler=RandomScheduler(2),
        )
        report = check_approximate_outcome(registry, outcome.decisions, epsilon=0.3)
        assert report.agreement_ok, f"disagreement {report.max_disagreement}"
        assert report.validity_ok, f"hull distance {report.max_hull_distance}"

    def test_decisions_inside_honest_hull_even_with_equivocation(self):
        registry = async_registry(dimension=1, fault_bound=1, seed=23)
        honest_inputs = [registry.input_of(pid) for pid in registry.honest_ids]
        mutators = {pid: EquivocationStrategy(honest_inputs) for pid in registry.faulty_ids}
        outcome = run_restricted_async_bvc(
            registry, epsilon=0.3, adversary_mutators=mutators,
            max_rounds_override=8, scheduler=RandomScheduler(3),
        )
        report = check_approximate_outcome(registry, outcome.decisions, epsilon=0.3)
        assert report.validity_ok
