"""Unit tests for the independent agreement/validity verification layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.validity import check_approximate_outcome, check_exact_outcome
from repro.exceptions import AgreementViolation, ValidityViolation


class TestExactChecks:
    def test_all_ok(self, small_registry):
        decisions = {pid: np.asarray([0.5, 0.5]) for pid in small_registry.honest_ids}
        report = check_exact_outcome(small_registry, decisions)
        assert report.all_ok
        assert report.max_disagreement == pytest.approx(0.0)
        assert report.max_hull_distance == pytest.approx(0.0, abs=1e-9)

    def test_disagreement_detected(self, small_registry):
        decisions = {pid: np.asarray([0.5, 0.5]) for pid in small_registry.honest_ids}
        decisions[small_registry.honest_ids[0]] = np.asarray([0.4, 0.5])
        report = check_exact_outcome(small_registry, decisions)
        assert not report.agreement_ok
        assert report.max_disagreement == pytest.approx(0.1)
        with pytest.raises(AgreementViolation):
            report.raise_on_failure()

    def test_validity_violation_detected(self, small_registry):
        decisions = {pid: np.asarray([2.0, 2.0]) for pid in small_registry.honest_ids}
        report = check_exact_outcome(small_registry, decisions)
        assert report.agreement_ok
        assert not report.validity_ok
        assert report.max_hull_distance == pytest.approx(1.0, abs=1e-6)
        with pytest.raises(ValidityViolation):
            report.raise_on_failure()

    def test_no_decisions_raises(self, small_registry):
        with pytest.raises(AgreementViolation):
            check_exact_outcome(small_registry, {})


class TestApproximateChecks:
    def test_within_epsilon(self, small_registry):
        decisions = {
            pid: np.asarray([0.5 + 0.01 * index, 0.5])
            for index, pid in enumerate(small_registry.honest_ids)
        }
        report = check_approximate_outcome(small_registry, decisions, epsilon=0.1)
        assert report.agreement_ok
        assert report.validity_ok
        assert report.epsilon == 0.1

    def test_beyond_epsilon(self, small_registry):
        decisions = {pid: np.asarray([0.0, 0.0]) for pid in small_registry.honest_ids}
        decisions[small_registry.honest_ids[-1]] = np.asarray([0.5, 0.0])
        report = check_approximate_outcome(small_registry, decisions, epsilon=0.1)
        assert not report.agreement_ok
        assert report.max_disagreement == pytest.approx(0.5)

    def test_validity_checked_against_honest_inputs_only(self, small_registry):
        # (0.9, 0.9) is in the hull of all five inputs and of the honest four.
        decisions = {pid: np.asarray([0.9, 0.9]) for pid in small_registry.honest_ids}
        report = check_approximate_outcome(small_registry, decisions, epsilon=0.1)
        assert report.validity_ok

    def test_invalid_epsilon_rejected(self, small_registry):
        decisions = {pid: np.asarray([0.5, 0.5]) for pid in small_registry.honest_ids}
        with pytest.raises(ValueError):
            check_approximate_outcome(small_registry, decisions, epsilon=0.0)
