"""E1 — the introduction's counterexample.

Paper claim (Section 1): running Byzantine *scalar* consensus independently on
every coordinate can produce the decision ``[1/6, 1/6, 1/6]``, which satisfies
scalar validity per coordinate but lies outside the convex hull of the honest
inputs; the Exact BVC algorithm's ``Gamma``-based decision does not.
"""

from __future__ import annotations

from repro.analysis.experiments import experiment_baseline_validity


def test_e1_intro_counterexample(benchmark, record_table):
    rows = benchmark.pedantic(experiment_baseline_validity, rounds=1, iterations=1)
    record_table("E1_baseline_validity", rows, "E1 — coordinate-wise scalar consensus vs Exact BVC")
    by_algorithm = {row["algorithm"]: row for row in rows}
    baseline = by_algorithm["coordinate-wise scalar consensus (n=4, paper example)"]
    exact = by_algorithm["Exact BVC (Gamma decision, n=5)"]
    # Paper shape: the baseline agrees but violates vector validity (decision
    # coordinates sum to 1/2); Exact BVC satisfies both.
    assert baseline["agreement"] and not baseline["vector_validity"]
    assert abs(baseline["decision_sum"] - 0.5) < 1e-6
    assert exact["agreement"] and exact["vector_validity"]
    assert abs(exact["decision_sum"] - 1.0) < 1e-6
