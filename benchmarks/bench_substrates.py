"""Substrate micro-benchmarks (ablation support).

Not tied to a single figure of the paper; these time the primitives whose
costs dominate the algorithm-level experiments, so regressions in the
geometry or broadcast layers are visible independently of the end-to-end
numbers:

* convex-hull membership and distance LPs,
* the ``Gamma`` LP at increasing ``n``,
* one EIG Byzantine broadcast (``f = 1`` and ``f = 2``),
* one Bracha reliable-broadcast wave,
* one witness-exchange round.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.broadcast.reliable_broadcast import ReliableBroadcastEngine
from repro.broadcast.witness import WitnessExchange
from repro.consensus.eig import EigBroadcastProcess
from repro.core.safe_area import safe_area_point
from repro.geometry.convex_hull import contains_point, distance_to_hull
from repro.geometry.multisets import PointMultiset
from repro.network.sync_runtime import SynchronousRuntime

RNG = np.random.default_rng(123)
CLOUD_2D = RNG.uniform(-1.0, 1.0, size=(12, 2))
CLOUD_5D = RNG.uniform(-1.0, 1.0, size=(12, 5))


def test_hull_membership_2d(benchmark):
    target = CLOUD_2D.mean(axis=0)
    assert benchmark(lambda: contains_point(CLOUD_2D, target))


def test_hull_membership_5d(benchmark):
    target = CLOUD_5D.mean(axis=0)
    assert benchmark(lambda: contains_point(CLOUD_5D, target))


def test_hull_distance_2d(benchmark):
    target = CLOUD_2D.max(axis=0) + 1.0
    distance = benchmark(lambda: distance_to_hull(CLOUD_2D, target))
    assert distance > 0.5


def test_gamma_lp_n5_f1(benchmark):
    cloud = PointMultiset(RNG.uniform(0.0, 1.0, size=(5, 2)))
    assert benchmark(lambda: safe_area_point(cloud, 1)) is not None


def test_gamma_lp_n9_f2(benchmark):
    cloud = PointMultiset(RNG.uniform(0.0, 1.0, size=(9, 2)))
    result = benchmark.pedantic(lambda: safe_area_point(cloud, 2), rounds=3, iterations=1)
    assert result is not None


def _run_eig(process_count: int, fault_bound: int) -> None:
    process_ids = tuple(range(process_count))
    processes = {
        pid: EigBroadcastProcess(
            process_id=pid, sender_id=0, process_ids=process_ids,
            fault_bound=fault_bound, value=1.25 if pid == 0 else None,
        )
        for pid in process_ids
    }
    result = SynchronousRuntime(processes).run()
    assert set(result.decisions.values()) == {1.25}


def test_eig_broadcast_n4_f1(benchmark):
    benchmark(lambda: _run_eig(4, 1))


def test_eig_broadcast_n7_f2(benchmark):
    benchmark.pedantic(lambda: _run_eig(7, 2), rounds=3, iterations=1)


def _run_reliable_broadcast_wave(process_count: int, fault_bound: int) -> None:
    queue: deque = deque()
    delivered = {pid: {} for pid in range(process_count)}
    engines = {}
    for pid in range(process_count):
        engines[pid] = ReliableBroadcastEngine(
            owner_id=pid,
            process_ids=tuple(range(process_count)),
            fault_bound=fault_bound,
            send=lambda recipient, kind, payload, _pid=pid: queue.append((_pid, recipient, kind, payload)),
            deliver=lambda broadcast_id, value, _pid=pid: delivered[_pid].__setitem__(broadcast_id, value),
        )
    for pid in range(process_count):
        engines[pid].broadcast("wave", (float(pid),))
    while queue:
        sender, recipient, kind, payload = queue.popleft()
        engines[recipient].handle(sender, kind, payload)
    assert all(len(deliveries) == process_count for deliveries in delivered.values())


def test_reliable_broadcast_wave_n4(benchmark):
    benchmark(lambda: _run_reliable_broadcast_wave(4, 1))


def test_reliable_broadcast_wave_n7(benchmark):
    benchmark(lambda: _run_reliable_broadcast_wave(7, 2))


def _run_witness_round(process_count: int, fault_bound: int) -> None:
    queue: deque = deque()
    completed = {}
    exchanges = {}
    for pid in range(process_count):
        exchanges[pid] = WitnessExchange(
            owner_id=pid,
            process_ids=tuple(range(process_count)),
            fault_bound=fault_bound,
            send=lambda recipient, kind, payload, _pid=pid: queue.append((_pid, recipient, kind, payload)),
            on_round_complete=lambda result, _pid=pid: completed.__setitem__(_pid, result),
        )
    states = {pid: np.asarray([float(pid), 1.0]) for pid in range(process_count)}
    for pid in range(process_count):
        exchanges[pid].start_round(1, states[pid])
    while queue:
        sender, recipient, kind, payload = queue.popleft()
        exchanges[recipient].handle(sender, kind, payload)
    assert len(completed) == process_count


def test_witness_exchange_round_n5(benchmark):
    benchmark(lambda: _run_witness_round(5, 1))


def test_witness_exchange_round_n7(benchmark):
    benchmark(lambda: _run_witness_round(7, 2))
