"""E4 — Figure 1: the Tverberg partition of a regular heptagon.

Paper claim (Figure 1 / Theorem 2): 7 points in the plane (``n = (d+1)f + 1``
with ``d = 2``, ``f = 2``) admit a partition into ``f + 1 = 3`` parts whose
convex hulls share a point; in the paper's drawing the parts are one triangle
and two segments.
"""

from __future__ import annotations

from repro.analysis.experiments import experiment_figure1_tverberg
from repro.geometry.tverberg import figure1_instance, find_tverberg_partition, radon_partition
from repro.geometry.multisets import PointMultiset
import numpy as np


def test_e4_figure1_partition(benchmark, record_table):
    rows = benchmark.pedantic(experiment_figure1_tverberg, rounds=1, iterations=1)
    record_table("E4_figure1_tverberg", rows, "E4 — Figure 1: Tverberg partition of the heptagon")
    row = rows[0]
    assert row["found"] is True
    assert row["parts"] == 3
    assert row["witness_in_all_hulls"] is True
    # The paper's drawing splits the heptagon into a triangle and two segments.
    assert sorted(row["block_sizes"]) == [2, 2, 3]


def test_e4_partition_search_timing(benchmark):
    """Micro-benchmark: exhaustive Tverberg partition search on the heptagon."""
    multiset, parts = figure1_instance()
    partition = benchmark.pedantic(
        lambda: find_tverberg_partition(multiset, parts), rounds=3, iterations=1
    )
    assert partition is not None


def test_e4_radon_point_timing(benchmark):
    """Micro-benchmark: the Radon-point primitive (f = 1 Tverberg case)."""
    rng = np.random.default_rng(3)
    cloud = PointMultiset(rng.normal(size=(4, 2)))
    partition = benchmark(lambda: radon_partition(cloud))
    assert partition.parts == 2
