"""Results-store throughput: cold (execute + record) vs warm (serve) campaigns.

Not a paper experiment — this benchmarks the content-addressed store layer.
The reference grid is the same synchronous restricted-round campaign as
``bench_vectorized.py`` (``restricted_sync``, ``d = 2, n = 13, f = 1`` under
the recipient-uniform adversaries): the **cold** run executes every trial on
the ``auto`` engine and commits each execution unit to a fresh SQLite store;
the **warm** run replays the identical campaign against the populated store,
where every trial is a cache hit and nothing is executed.

The acceptance bar is **warm >= 10x cold trials/second** on the reference
grid; in practice warm throughput is bounded by SQLite reads plus JSONL
serialisation and lands orders of magnitude above that.  The correctness
assertions are the store contract: the warm hit-rate is 100%, and cold and
warm runs export byte-identical rows (modulo ``elapsed_ms``).

The grid shrinks when ``REPRO_BENCH_SMOKE`` is set (CI smoke), and the
speedup bar drops with it — a sub-second cold run leaves the warm ratio at
the mercy of timer resolution.
"""

from __future__ import annotations

import os

from repro.engine import Campaign, read_jsonl, run_campaign, strip_timing

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

PROCESS_COUNT = 9 if SMOKE else 13
REPEATS = 1 if SMOKE else 3
ROUNDS = 2 if SMOKE else 3
MIN_WARM_SPEEDUP = 3.0 if SMOKE else 10.0


def _reference_campaign() -> Campaign:
    return Campaign.from_grid(
        "bench-store",
        protocols=("restricted_sync",),
        adversaries=("none", "crash", "outside_hull", "coordinate_attack"),
        dimensions=(2,),
        fault_bounds=(1,),
        process_counts=(PROCESS_COUNT,),
        repeats=REPEATS,
        base_seed=7,
        max_rounds_override=ROUNDS,
    )


def test_store_cold_vs_warm_throughput(benchmark, record_table, tmp_path):
    campaign = _reference_campaign()
    store_path = tmp_path / "store.db"

    def run_cold_then_warm() -> list[dict[str, object]]:
        rows = []
        for phase in ("cold", "warm"):
            jsonl_path = tmp_path / f"{phase}.jsonl"
            summary, _ = run_campaign(
                campaign, workers=1, jsonl_path=jsonl_path,
                engine="auto", store=store_path,
            )
            rows.append(
                summary.to_row()
                | {"phase": phase, "jsonl_rows": len(read_jsonl(jsonl_path))}
            )
        return rows

    rows = benchmark.pedantic(run_cold_then_warm, rounds=1, iterations=1)
    cold, warm = rows
    assert cold["phase"] == "cold" and warm["phase"] == "warm"
    for row in rows:
        assert row["errors"] == 0
        assert row["jsonl_rows"] == len(campaign)
    # The store contract: a populated store serves the whole campaign.
    assert cold["cache_hits"] == 0
    assert warm["cache_hits"] == len(campaign), "warm hit-rate must be 100%"
    # ... with byte-identical exported rows.
    assert strip_timing(read_jsonl(tmp_path / "cold.jsonl")) == strip_timing(
        read_jsonl(tmp_path / "warm.jsonl")
    )

    speedup = warm["trials_per_s"] / max(cold["trials_per_s"], 1e-9)
    for row in rows:
        row["speedup_vs_cold"] = round(row["trials_per_s"] / max(cold["trials_per_s"], 1e-9), 1)
    record_table(
        "E20_store_throughput",
        rows,
        "Results store — campaign trials/second, cold (execute + record) vs "
        f"warm (serve) (restricted_sync, d=2, n={PROCESS_COUNT}, f=1, {ROUNDS} rounds)",
    )
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm store rerun is only {speedup:.2f}x the cold run "
        f"(needs >= {MIN_WARM_SPEEDUP}x on the reference grid)"
    )
