"""E9 — per-round contraction of the honest-state range (Equation (12)).

Paper claim (Appendix E): in every asynchronous round the per-coordinate range
of the non-faulty processes' states shrinks by a factor of at least
``1 - gamma`` with ``gamma = 1/(n * C(n, n-f))`` (or ``1/n^2`` with the
Appendix F optimisation).  Measured contraction is typically far better than
the bound; the bound must never be violated.
"""

from __future__ import annotations

from repro.analysis.experiments import experiment_contraction_rate


def test_e9_contraction_per_round(benchmark, record_table):
    rows = benchmark.pedantic(
        experiment_contraction_rate,
        kwargs={"dimension": 2, "fault_bound": 1, "rounds": 6},
        rounds=1, iterations=1,
    )
    record_table("E9_contraction_rate", rows, "E9 — measured vs bound per-round contraction")
    assert rows, "no rounds recorded"
    for row in rows:
        assert row["within_bound"], row
        assert row["range_after"] <= row["range_before"] + 1e-12
    # The range must shrink overall across the recorded rounds.
    assert rows[-1]["range_after"] < rows[0]["range_before"]


def test_e9_contraction_d1(benchmark, record_table):
    rows = benchmark.pedantic(
        experiment_contraction_rate,
        kwargs={"dimension": 1, "fault_bound": 1, "rounds": 6, "seed": 10},
        rounds=1, iterations=1,
    )
    record_table("E9_contraction_rate_d1", rows, "E9b — contraction, d = 1")
    for row in rows:
        assert row["within_bound"], row
