"""Columnar engine throughput: campaign trials/second, engines × workers.

Not a paper experiment — this benchmarks the execution substrate itself.
The reference grid is the synchronous approximate-BVC (restricted-round)
campaign at ``d = 2, n = 13, f = 1`` under the recipient-uniform adversaries
(``none``, ``crash``, ``outside_hull``, ``coordinate_attack``): the regime
where honest receive views coincide and the columnar engine amortises one
``Gamma`` solve across all thirteen processes of a round.  The acceptance
bar is **>= 5x single-worker trials/s over the object engine**; measured
runs land around 15-20x (see ``docs/PERFORMANCE.md``).

The equality assertion is the engine contract: both engines must emit
byte-identical JSONL rows (modulo ``elapsed_ms``), in the same order, at any
worker count.  A second recorded row runs the per-recipient ``equivocate``
adversary, where views diverge and deduplication cannot help — documenting
the honest lower end of the speedup rather than hiding it.

A second recorded table covers the *coordinated* reference grid
(``split_world`` / ``hull_collapse`` / ``adaptive_extreme`` at ``d = 2``):
the scenario class PR 6 moved onto the columnar path, where the batched
coordinator planning hooks reuse one plan per trial group and view
deduplication amortises the Gamma solves.  Its acceptance bar is **>= 10x
single-worker trials/s over the object engine** on the grid aggregate.

The grids shrink when ``REPRO_BENCH_SMOKE`` is set (CI smoke).
"""

from __future__ import annotations

import os
import time

from conftest import effective_cores, scaling_floor

from repro.engine import Campaign, read_jsonl, run_campaign, strip_timing
from repro.obs.registry import get_registry

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

PROCESS_COUNT = 9 if SMOKE else 13
REPEATS = 1 if SMOKE else 3
ROUNDS = 2 if SMOKE else 3
MIN_SPEEDUP = 1.2 if SMOKE else 5.0

# The coordinated grid needs a larger n: split_world keeps d + 1 = 3 distinct
# camp views alive per round, so the dedup ratio (and with it the speedup)
# grows with the number of honest recipients sharing each view.
COORDINATED_PROCESS_COUNT = 9 if SMOKE else 17
MIN_COORDINATED_SPEEDUP = 1.2 if SMOKE else 10.0


def _reference_campaign() -> Campaign:
    return Campaign.from_grid(
        "bench-vectorized",
        protocols=("restricted_sync",),
        adversaries=("none", "crash", "outside_hull", "coordinate_attack"),
        dimensions=(2,),
        fault_bounds=(1,),
        process_counts=(PROCESS_COUNT,),
        repeats=REPEATS,
        base_seed=7,
        max_rounds_override=ROUNDS,
    )


def _equivocate_campaign() -> Campaign:
    return Campaign.from_grid(
        "bench-vectorized-equivocate",
        protocols=("restricted_sync",),
        adversaries=("equivocate",),
        dimensions=(2,),
        fault_bounds=(1,),
        process_counts=(PROCESS_COUNT,),
        repeats=REPEATS,
        base_seed=7,
        max_rounds_override=ROUNDS,
    )


def test_vectorized_campaign_throughput(benchmark, record_table, tmp_path):
    reference = _reference_campaign()
    equivocate = _equivocate_campaign()

    def run_matrix() -> list[dict[str, object]]:
        rows = []
        for campaign, tag, engines_workers in (
            (reference, "reference", (("object", 1), ("vectorized", 1), ("vectorized", 4))),
            (equivocate, "equivocate", (("object", 1), ("vectorized", 1))),
        ):
            for engine, workers in engines_workers:
                jsonl_path = tmp_path / f"{tag}-{engine}-w{workers}.jsonl"
                summary, _ = run_campaign(
                    campaign, workers=workers, jsonl_path=jsonl_path, engine=engine
                )
                rows.append(
                    summary.to_row()
                    | {"grid": tag, "jsonl_rows": len(read_jsonl(jsonl_path))}
                )
        return rows

    rows = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    for row in rows:
        assert row["errors"] == 0
        assert row["jsonl_rows"] == (
            len(reference) if row["grid"] == "reference" else len(equivocate)
        )

    by_key = {(row["grid"], row["engine"], row["workers"]): row for row in rows}
    speedup = (
        by_key[("reference", "vectorized", 1)]["trials_per_s"]
        / max(by_key[("reference", "object", 1)]["trials_per_s"], 1e-9)
    )
    for row in rows:
        row["speedup_vs_object_w1"] = round(
            row["trials_per_s"]
            / max(by_key[(row["grid"], "object", 1)]["trials_per_s"], 1e-9),
            2,
        )
    record_table(
        "E18_vectorized_throughput",
        rows,
        "Columnar engine — campaign trials/second, engines x workers "
        f"(restricted_sync, d=2, n={PROCESS_COUNT}, f=1, {ROUNDS} rounds)",
    )
    assert speedup >= MIN_SPEEDUP, (
        f"vectorized engine is only {speedup:.2f}x the object engine "
        f"(needs >= {MIN_SPEEDUP}x on the reference grid)"
    )

    # The engine contract: byte-identical rows (modulo timing), same order,
    # any engine, any worker count.
    canonical = strip_timing(read_jsonl(tmp_path / "reference-object-w1.jsonl"))
    assert canonical == strip_timing(read_jsonl(tmp_path / "reference-vectorized-w1.jsonl"))
    assert canonical == strip_timing(read_jsonl(tmp_path / "reference-vectorized-w4.jsonl"))
    assert strip_timing(read_jsonl(tmp_path / "equivocate-object-w1.jsonl")) == strip_timing(
        read_jsonl(tmp_path / "equivocate-vectorized-w1.jsonl")
    )


def _coordinated_campaign() -> Campaign:
    return Campaign.from_grid(
        "bench-vectorized-coordinated",
        protocols=("restricted_sync",),
        adversaries=("split_world", "hull_collapse", "adaptive_extreme"),
        dimensions=(2,),
        fault_bounds=(1,),
        process_counts=(COORDINATED_PROCESS_COUNT,),
        repeats=REPEATS,
        base_seed=7,
        max_rounds_override=ROUNDS,
    )


def test_vectorized_coordinated_throughput(benchmark, record_table, tmp_path):
    campaign = _coordinated_campaign()

    def run_matrix() -> list[dict[str, object]]:
        rows = []
        for engine, workers in (("object", 1), ("vectorized", 1), ("vectorized", 4)):
            jsonl_path = tmp_path / f"coordinated-{engine}-w{workers}.jsonl"
            summary, _ = run_campaign(
                campaign, workers=workers, jsonl_path=jsonl_path, engine=engine
            )
            rows.append(summary.to_row() | {"jsonl_rows": len(read_jsonl(jsonl_path))})
        return rows

    rows = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    for row in rows:
        assert row["errors"] == 0
        assert row["jsonl_rows"] == len(campaign)
        # Every coordinated spec now plans onto the columnar path: the only
        # fallbacks allowed are the forced ones on the object-engine row.
        if row["engine"] == "vectorized":
            assert row["fallbacks"] == 0

    by_key = {(row["engine"], row["workers"]): row for row in rows}
    object_rate = max(by_key[("object", 1)]["trials_per_s"], 1e-9)
    speedup = by_key[("vectorized", 1)]["trials_per_s"] / object_rate
    for row in rows:
        row["speedup_vs_object_w1"] = round(row["trials_per_s"] / object_rate, 2)
    record_table(
        "E19_vectorized_coordinated",
        rows,
        "Columnar engine — coordinated-adversary reference grid "
        "(restricted_sync, d=2, split_world/hull_collapse/adaptive_extreme, "
        f"n={COORDINATED_PROCESS_COUNT}, f=1, {ROUNDS} rounds)",
    )
    assert speedup >= MIN_COORDINATED_SPEEDUP, (
        f"vectorized engine is only {speedup:.2f}x the object engine on the "
        f"coordinated grid (needs >= {MIN_COORDINATED_SPEEDUP}x)"
    )

    # The differential contract holds on the benchmark grid itself.
    canonical = strip_timing(read_jsonl(tmp_path / "coordinated-object-w1.jsonl"))
    assert canonical == strip_timing(read_jsonl(tmp_path / "coordinated-vectorized-w1.jsonl"))
    assert canonical == strip_timing(read_jsonl(tmp_path / "coordinated-vectorized-w4.jsonl"))


# Telemetry guard: an enabled metrics registry must cost <= 3% over a
# disabled one on the vectorized reference grid.  One campaign run is only
# ~60 ms, so single-shot wall-clock comparisons at that scale measure the
# box, not the registry: samples are batches of runs, modes strictly
# interleaved with alternating order, each mode scored by its best batch
# (the pytest-benchmark floor estimate).  The bound applies net of the
# box's measured timer noise — the gap between the two best disabled
# batches, which run *identical* work, so any gap there is measurement
# error, not registry cost.  On a quiet machine that term is well under
# 1% and the 3% bound applies at nearly full strength.
OVERHEAD_REPEATS = 3 if SMOKE else 14
OVERHEAD_BATCH = 1 if SMOKE else 2
MAX_REGISTRY_OVERHEAD = 0.25 if SMOKE else 0.03


def test_registry_overhead_within_bound(benchmark, record_table):
    campaign = _reference_campaign()
    registry = get_registry()

    def timed_batch() -> float:
        start = time.perf_counter()
        for _ in range(OVERHEAD_BATCH):
            summary, _ = run_campaign(campaign, workers=1, engine="vectorized")
            assert summary.errors == 0
        return time.perf_counter() - start

    def measure() -> dict[str, float]:
        timed_batch()  # warm the kernel/memo caches so neither mode pays them
        timings: dict[str, list[float]] = {"enabled": [], "disabled": []}
        try:
            for index in range(OVERHEAD_REPEATS):
                # Alternate which mode samples first so ramp-up/ramp-down
                # drift on shared boxes cancels instead of biasing one mode.
                order = ("enabled", "disabled") if index % 2 == 0 else ("disabled", "enabled")
                for mode in order:
                    registry.enabled = mode == "enabled"
                    timings[mode].append(timed_batch())
        finally:
            registry.enabled = True
        return timings

    timings = benchmark.pedantic(measure, rounds=1, iterations=1)
    best = {mode: min(samples) for mode, samples in timings.items()}
    overhead = best["enabled"] / max(best["disabled"], 1e-9) - 1.0
    disabled_floor = sorted(timings["disabled"])[:2]
    noise = disabled_floor[-1] / max(disabled_floor[0], 1e-9) - 1.0
    allowed = MAX_REGISTRY_OVERHEAD + noise
    record_table(
        "E23_registry_overhead",
        [
            {
                "grid": "reference",
                "enabled_s": round(best["enabled"], 4),
                "disabled_s": round(best["disabled"], 4),
                "overhead_pct": round(overhead * 100.0, 2),
                "noise_pct": round(noise * 100.0, 2),
                "bound_pct": round(allowed * 100.0, 1),
            }
        ],
        "Telemetry — metrics registry overhead, enabled vs disabled "
        f"(vectorized reference grid, best of {OVERHEAD_REPEATS} "
        f"batches of {OVERHEAD_BATCH})",
    )
    assert overhead <= allowed, (
        f"metrics registry costs {overhead * 100.0:.2f}% on the reference grid "
        f"(bound {allowed * 100.0:.1f}%, measured noise floor {noise * 100.0:.2f}%)"
    )


SCALING_REPEATS = 12 if SMOKE else 8
SCALING_WORKER_SWEEP = (1, 4) if SMOKE else (1, 2, 4, 8)
# Cutting a same-shape columnar group into sub-units trades some batching
# width for parallelism, so the columnar sweep gets 75% of the generic floor.
COLUMNAR_FLOOR_FACTOR = 0.75


def _scaling_campaign() -> Campaign:
    # One same-shape columnar group per adversary: before the persistent
    # pool this shipped as whole units (one worker each, ~zero parallelism);
    # the cost model now cuts groups into sub-units, so the sweep measures
    # real columnar fan-out.
    return Campaign.from_grid(
        "bench-pool-scaling",
        protocols=("restricted_sync",),
        adversaries=("none", "crash", "outside_hull"),
        dimensions=(2,),
        fault_bounds=(1,),
        process_counts=(PROCESS_COUNT,),
        repeats=SCALING_REPEATS,
        base_seed=7,
        max_rounds_override=ROUNDS,
    )


def test_pool_scaling_sweep(benchmark, record_table, tmp_path):
    campaign = _scaling_campaign()

    def run_sweep() -> list[dict[str, object]]:
        rows = []
        for workers in SCALING_WORKER_SWEEP:
            jsonl_path = tmp_path / f"scaling-w{workers}.jsonl"
            summary, _ = run_campaign(campaign, workers=workers, jsonl_path=jsonl_path)
            rows.append(summary.to_row() | {"jsonl_rows": len(read_jsonl(jsonl_path))})
        return rows

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    w1_rate = max(rows[0]["trials_per_s"], 1e-9)
    for row in rows:
        row["speedup_vs_w1"] = round(row["trials_per_s"] / w1_rate, 2)
        row["cores"] = effective_cores()
    record_table(
        "E21_pool_scaling",
        rows,
        "Persistent pool — columnar campaign scaling, workers sweep "
        f"(restricted_sync, d=2, n={PROCESS_COUNT}, f=1, {ROUNDS} rounds)",
    )
    for row in rows:
        assert row["errors"] == 0
        assert row["jsonl_rows"] == len(campaign)
        if row["workers"] > 1:
            floor = round(scaling_floor(row["workers"]) * COLUMNAR_FLOOR_FACTOR, 2)
            assert row["speedup_vs_w1"] >= floor, (
                f"workers={row['workers']} reached only "
                f"{row['speedup_vs_w1']}x over workers=1 "
                f"(floor {floor}x on {effective_cores()} cores)"
            )
    canonical = strip_timing(read_jsonl(tmp_path / f"scaling-w{SCALING_WORKER_SWEEP[0]}.jsonl"))
    for workers in SCALING_WORKER_SWEEP[1:]:
        assert canonical == strip_timing(read_jsonl(tmp_path / f"scaling-w{workers}.jsonl"))
