"""E5 — the Exact BVC algorithm at the bound, under every attack family.

Paper claim (Theorem 3): with ``n = max(3f+1, (d+1)f+1)`` processes the
two-step algorithm (Byzantine broadcast of every input, then a deterministic
point of ``Gamma(S)``) satisfies agreement, validity and termination in
``f + 1`` synchronous rounds, whatever the Byzantine processes do.
"""

from __future__ import annotations

from repro.analysis.experiments import STRATEGY_NAMES, experiment_exact_bvc

CONFIGURATIONS = ((1, 1), (2, 1), (3, 1), (2, 2))


def test_e5_exact_bvc_under_attack(benchmark, record_table):
    rows = benchmark.pedantic(
        experiment_exact_bvc,
        kwargs={"configurations": CONFIGURATIONS, "strategies": STRATEGY_NAMES},
        rounds=1, iterations=1,
    )
    record_table("E5_exact_bvc", rows, "E5 — Exact BVC at the bound under attack")
    for row in rows:
        assert row["agreement"], row
        assert row["validity"], row
        # Termination in f + 1 rounds.
        assert row["rounds"] == row["f"] + 1
    # Message complexity grows with n (EIG relaying).
    by_n = sorted({(row["n"], row["messages"]) for row in rows if row["attack"] == "crash"})
    assert by_n[-1][1] > by_n[0][1]


def test_e5_single_run_timing(benchmark):
    """Micro-benchmark: one full Exact BVC run at n = 7, d = 2, f = 2."""
    from repro.analysis.experiments import make_strategy
    from repro.core.exact_bvc import run_exact_bvc
    from repro.workloads.generators import uniform_box_registry

    registry = uniform_box_registry(7, 2, 2, seed=51)
    mutators = {pid: make_strategy("equivocate", registry) for pid in registry.faulty_ids}

    outcome = benchmark.pedantic(
        lambda: run_exact_bvc(registry, adversary_mutators=mutators), rounds=1, iterations=1
    )
    assert outcome.rounds_executed == 3
