"""Campaign engine throughput: trials/second at workers ∈ {1, 4}.

Not a paper experiment — this benchmarks the execution layer itself: a fixed
Exact-BVC grid (the protocol's minimum ``n`` at each ``(d, f)``, all four
attack strategies) is expanded once and run through
:func:`repro.engine.run_campaign` sequentially and on a 4-worker pool.  The
recorded table is the trials/second number the scaling PRs build on; the
worker-count-invariance assertion is the engine's core guarantee (same seed →
same rows, any pool size).

The grid shrinks when ``REPRO_BENCH_SMOKE`` is set (CI smoke).
"""

from __future__ import annotations

import os

from repro.engine import Campaign, read_jsonl, run_campaign, strip_timing

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

REPEATS = 3 if SMOKE else 25
DIMENSIONS = (1, 2) if SMOKE else (1, 2, 3)


def _campaign() -> Campaign:
    return Campaign.from_grid(
        "bench-campaign",
        protocols=("exact",),
        adversaries=("crash", "equivocate", "outside_hull", "random_noise"),
        dimensions=DIMENSIONS,
        fault_bounds=(1,),
        repeats=REPEATS,
        base_seed=42,
    )


def test_campaign_throughput(benchmark, record_table, tmp_path):
    campaign = _campaign()

    def run_both() -> list[dict[str, object]]:
        rows = []
        for workers in (1, 4):
            jsonl_path = tmp_path / f"w{workers}.jsonl"
            summary, _ = run_campaign(campaign, workers=workers, jsonl_path=jsonl_path)
            rows.append(summary.to_row() | {"jsonl_rows": len(read_jsonl(jsonl_path))})
        return rows

    rows = benchmark.pedantic(run_both, rounds=1, iterations=1)
    record_table(
        "E16_campaign_throughput", rows, "Campaign engine — trials/second at workers 1 vs 4"
    )
    for row in rows:
        assert row["errors"] == 0
        assert row["jsonl_rows"] == len(campaign)
    # Same seed, different pool sizes: the streamed rows must be identical
    # modulo the timing field.
    assert strip_timing(read_jsonl(tmp_path / "w1.jsonl")) == strip_timing(
        read_jsonl(tmp_path / "w4.jsonl")
    )
