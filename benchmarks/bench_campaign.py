"""Campaign engine throughput: trials/second across the worker sweep.

Not a paper experiment — this benchmarks the execution layer itself: a fixed
Exact-BVC grid (the protocol's minimum ``n`` at each ``(d, f)``, all four
attack strategies) is expanded once and run through
:func:`repro.engine.run_campaign` at workers ∈ {1, 2, 4, 8} on the
persistent shared-memory pool.  Each row records ``speedup_vs_w1`` and the
``cores`` the box actually granted; the assertion is the cores-gated scaling
floor (2x at ≥4 effective cores — the ROADMAP item 1 acceptance bar — down
to a no-pessimization floor on a 1-core container).  The worker-count
byte-identity assertion is the engine's core guarantee (same seed → same
rows, any pool size).

The grid shrinks when ``REPRO_BENCH_SMOKE`` is set (CI smoke).
"""

from __future__ import annotations

import os

from conftest import effective_cores, scaling_floor

from repro.engine import Campaign, read_jsonl, run_campaign, strip_timing

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

# Smoke keeps the grid small but not tiny: the workers=4 scaling floor needs
# a couple of seconds of single-worker work to dominate pool start-up.
REPEATS = 16 if SMOKE else 25
DIMENSIONS = (1, 2) if SMOKE else (1, 2, 3)
WORKER_SWEEP = (1, 4) if SMOKE else (1, 2, 4, 8)


def _campaign() -> Campaign:
    return Campaign.from_grid(
        "bench-campaign",
        protocols=("exact",),
        adversaries=("crash", "equivocate", "outside_hull", "random_noise"),
        dimensions=DIMENSIONS,
        fault_bounds=(1,),
        repeats=REPEATS,
        base_seed=42,
    )


def test_campaign_throughput(benchmark, record_table, tmp_path):
    campaign = _campaign()

    def run_sweep() -> list[dict[str, object]]:
        rows = []
        for workers in WORKER_SWEEP:
            jsonl_path = tmp_path / f"w{workers}.jsonl"
            summary, _ = run_campaign(campaign, workers=workers, jsonl_path=jsonl_path)
            rows.append(summary.to_row() | {"jsonl_rows": len(read_jsonl(jsonl_path))})
        return rows

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    w1_rate = max(rows[0]["trials_per_s"], 1e-9)
    for row in rows:
        row["speedup_vs_w1"] = round(row["trials_per_s"] / w1_rate, 2)
        row["cores"] = effective_cores()
    record_table(
        "E16_campaign_throughput",
        rows,
        "Campaign engine — trials/second, persistent pool, workers sweep",
    )
    for row in rows:
        assert row["errors"] == 0
        assert row["jsonl_rows"] == len(campaign)
        if row["workers"] > 1:
            floor = scaling_floor(row["workers"])
            assert row["speedup_vs_w1"] >= floor, (
                f"workers={row['workers']} reached only "
                f"{row['speedup_vs_w1']}x over workers=1 "
                f"(floor {floor}x on {effective_cores()} cores)"
            )
    # Same seed, different pool sizes: the streamed rows must be identical
    # modulo the timing field.
    canonical = strip_timing(read_jsonl(tmp_path / "w1.jsonl"))
    for workers in WORKER_SWEEP[1:]:
        assert canonical == strip_timing(read_jsonl(tmp_path / f"w{workers}.jsonl"))
