"""Serving-layer latency: warm-store reads under concurrent mixed traffic.

Not a paper experiment — this benchmarks the HTTP serving layer added with
the campaign-session refactor and the keep-alive fast path layered on top
of it.  A store is pre-warmed with the reference grid, the stdlib asyncio
server is started on an ephemeral port, and then two kinds of traffic hit
it at once:

* **read traffic** — reader threads hammering ``/store/query``,
  ``/store/aggregate`` and ``/store/stats`` over **persistent keep-alive
  connections** (one socket per reader for its whole request loop), plus
  ``If-None-Match`` revalidations of the query ETag (the amortised-O(1)
  304 path);
* **compute traffic** — a campaign with fresh seeds submitted over
  ``POST /campaigns`` and streamed to completion via its NDJSON row stream,
  so sessions execute and commit while the readers poll.

The recorded table (E22) reports per-endpoint request counts, p50/p99
latency in milliseconds, and per-connection throughput in requests/sec.
The qualitative bar: the store's read path must stay responsive while
sessions compute — zero failed requests — and the warm-store query p99
must beat the pre-fast-path reference (147.6 ms committed with PR 8) by at
least 3x, which is the no-regression floor CI's bench-smoke enforces.

The grid shrinks when ``REPRO_BENCH_SMOKE`` is set (CI smoke).
"""

from __future__ import annotations

import asyncio
import contextlib
import http.client
import json
import os
import threading
import time
import urllib.request

from repro.engine import Campaign, run_campaign
from repro.server import CampaignService, serve

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

#: Trials pre-committed to the warm store (the read-side working set).
WARM_TRIALS = 60 if SMOKE else 200
#: Trials in the campaign submitted over HTTP while readers poll.
COMPUTE_TRIALS = 20 if SMOKE else 60
READERS = 3 if SMOKE else 4
REQUESTS_PER_READER = 24 if SMOKE else 64
#: The committed E22 query p99 from the pre-fast-path serving layer
#: (open-per-request stores, full-row ETag scans, ``Connection: close``).
PRIOR_QUERY_P99_MS = 147.6
#: No-regression floor: the fast path must hold at least a 3x improvement.
MAX_QUERY_P99_MS = PRIOR_QUERY_P99_MS / 3

#: (name, path, revalidate?) — revalidating entries send ``If-None-Match``
#: with the last tag seen and measure the 304 path.
_READ_ENDPOINTS = (
    ("query", "/store/query?protocol=exact", False),
    ("aggregate", "/store/aggregate?group_by=protocol,dimension", False),
    ("stats", "/store/stats", False),
    ("revalidate", "/store/query?protocol=exact", True),
)


def _grid(trials: int, base_seed: int) -> Campaign:
    return Campaign.from_grid(
        "bench-server",
        protocols=("exact",),
        dimensions=(1,),
        fault_bounds=(1,),
        repeats=trials,
        base_seed=base_seed,
    )


class _Server:
    """The asyncio server on an ephemeral port, in a background thread."""

    def __init__(self, service: CampaignService) -> None:
        self.service = service
        self.port: int | None = None
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._ready.wait(15), "server did not come up"

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        task = asyncio.create_task(
            serve(self.service, host="127.0.0.1", port=0, ready=self._on_ready)
        )
        await self._stop.wait()
        task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await task

    def _on_ready(self, _host: str, port: int) -> None:
        self.port = port
        self._ready.set()

    def url(self, path: str) -> str:
        return f"http://127.0.0.1:{self.port}{path}"

    def close(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(60)


def _percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


def test_server_latency_under_mixed_traffic(benchmark, record_table, tmp_path):
    store_path = tmp_path / "store.db"
    summary, _ = run_campaign(_grid(WARM_TRIALS, base_seed=7), store=store_path)
    assert summary.errors == 0

    latencies: dict[str, list[float]] = {name: [] for name, _, _ in _READ_ENDPOINTS}
    failures: list[tuple[str, int]] = []
    lock = threading.Lock()

    def run_mixed_traffic() -> dict[str, float]:
        server = _Server(CampaignService(store_path, max_active=2))
        try:
            # Compute traffic: a fresh-seed campaign submitted over HTTP,
            # streamed to completion so sessions commit while readers poll.
            body = json.dumps(
                {
                    "campaign": {
                        "name": "bench-compute",
                        "grid": {
                            "protocols": ["exact"],
                            "dimensions": [1],
                            "fault_bounds": [1],
                            "repeats": COMPUTE_TRIALS,
                            "base_seed": 1_000_003,
                        },
                    }
                }
            ).encode("utf-8")
            request = urllib.request.Request(
                server.url("/campaigns"),
                data=body,
                headers={"Content-Type": "application/json", "X-Api-Key": "bench"},
                method="POST",
            )
            with urllib.request.urlopen(request, timeout=60) as response:
                accepted = json.loads(response.read())
                assert response.status == 202

            streamed: list[int] = []

            def stream_rows() -> None:
                with urllib.request.urlopen(
                    server.url(accepted["rows_url"]), timeout=120
                ) as stream:
                    streamed.append(len(stream.read().splitlines()))

            def read_loop() -> None:
                # One persistent connection per reader: every request in the
                # loop reuses the same socket (the keep-alive fast path).
                connection = http.client.HTTPConnection(
                    "127.0.0.1", server.port, timeout=60
                )
                etag: str | None = None
                try:
                    for turn in range(REQUESTS_PER_READER):
                        name, path, revalidate = _READ_ENDPOINTS[
                            turn % len(_READ_ENDPOINTS)
                        ]
                        headers = (
                            {"If-None-Match": etag}
                            if revalidate and etag is not None
                            else {}
                        )
                        started = time.perf_counter()
                        connection.request("GET", path, headers=headers)
                        response = connection.getresponse()
                        response.read()
                        elapsed_ms = (time.perf_counter() - started) * 1000.0
                        fresh_tag = response.getheader("etag")
                        if fresh_tag is not None:
                            # The compute campaign commits to the same store,
                            # so the tag legitimately rolls mid-run; track it.
                            etag = fresh_tag
                        with lock:
                            if revalidate:
                                # A 200 here is a genuine miss (the store
                                # moved) — only the 304 path is the sample.
                                if response.status == 304:
                                    latencies[name].append(elapsed_ms)
                                elif response.status != 200:
                                    failures.append((name, response.status))
                            elif response.status == 200:
                                latencies[name].append(elapsed_ms)
                            else:
                                failures.append((name, response.status))
                finally:
                    connection.close()

            threads = [threading.Thread(target=stream_rows)]
            threads.extend(threading.Thread(target=read_loop) for _ in range(READERS))
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(300)
            assert streamed == [COMPUTE_TRIALS], "row stream must drain the campaign"

            status = json.loads(
                urllib.request.urlopen(
                    server.url(accepted["status_url"]), timeout=60
                ).read()
            )
            assert status["state"] == "finished" and status["errors"] == 0
            return {"compute_trials": streamed[0]}
        finally:
            server.close()

    benchmark.pedantic(run_mixed_traffic, rounds=1, iterations=1)

    assert failures == [], f"failed read responses under load: {failures}"
    rows = [
        {
            "endpoint": name,
            "requests": len(samples),
            "p50_ms": round(_percentile(samples, 0.50), 2),
            "p99_ms": round(_percentile(samples, 0.99), 2),
            "max_ms": round(max(samples), 2),
            # Per-connection throughput: requests per second of socket-busy
            # time on a persistent connection (1000 / mean latency).
            "rps": round(1000.0 * len(samples) / sum(samples), 1),
        }
        for name, samples in latencies.items()
        if samples
    ]
    record_table(
        "E22_server_latency",
        rows,
        "Serving layer — warm-store read latency (ms) and per-connection "
        "throughput (requests/sec) over keep-alive sockets under concurrent "
        f"compute traffic ({WARM_TRIALS} stored trials, {READERS} readers, "
        f"{COMPUTE_TRIALS}-trial campaign streaming; 'revalidate' is the "
        "If-None-Match 304 path)",
    )
    by_endpoint = {row["endpoint"]: row for row in rows}
    assert "revalidate" in by_endpoint, "no 304 revalidations were observed"
    query_p99 = by_endpoint["query"]["p99_ms"]
    assert query_p99 <= MAX_QUERY_P99_MS, (
        f"warm-store query p99 is {query_p99:.1f} ms under mixed load — the "
        f"fast path must stay >=3x under the pre-keep-alive reference "
        f"({PRIOR_QUERY_P99_MS:.1f} ms), i.e. <= {MAX_QUERY_P99_MS:.1f} ms"
    )
    assert by_endpoint["revalidate"]["p99_ms"] <= MAX_QUERY_P99_MS, (
        "the 304 revalidation path must be at least as fast as the floor "
        "on full query responses"
    )
