"""Serving-layer latency: warm-store reads under concurrent mixed traffic.

Not a paper experiment — this benchmarks the HTTP serving layer added with
the campaign-session refactor.  A store is pre-warmed with the reference
grid, the stdlib asyncio server is started on an ephemeral port, and then
two kinds of traffic hit it at once:

* **read traffic** — reader threads hammering ``/store/query``,
  ``/store/aggregate`` and ``/store/stats`` against the warm store;
* **compute traffic** — a campaign with fresh seeds submitted over
  ``POST /campaigns`` and streamed to completion via its NDJSON row stream,
  so sessions execute and commit while the readers poll.

The recorded table (E22) reports per-endpoint request counts and p50/p99
latency in milliseconds.  The qualitative bar: the store's read path must
stay responsive while sessions compute — zero failed requests, and the
warm-store query p99 stays under a generous sanity ceiling (seconds-scale
latency would mean reads are serialised behind compute, i.e. the
``asyncio.to_thread`` offloading is broken).

The grid shrinks when ``REPRO_BENCH_SMOKE`` is set (CI smoke).
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import threading
import time
import urllib.request

from repro.engine import Campaign, run_campaign
from repro.server import CampaignService, serve

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

#: Trials pre-committed to the warm store (the read-side working set).
WARM_TRIALS = 60 if SMOKE else 200
#: Trials in the campaign submitted over HTTP while readers poll.
COMPUTE_TRIALS = 20 if SMOKE else 60
READERS = 3 if SMOKE else 4
REQUESTS_PER_READER = 20 if SMOKE else 60
#: Sanity ceiling on the warm-store query p99 under load (milliseconds).
MAX_QUERY_P99_MS = 2_000.0

_READ_ENDPOINTS = (
    ("query", "/store/query?protocol=exact"),
    ("aggregate", "/store/aggregate?group_by=protocol,dimension"),
    ("stats", "/store/stats"),
)


def _grid(trials: int, base_seed: int) -> Campaign:
    return Campaign.from_grid(
        "bench-server",
        protocols=("exact",),
        dimensions=(1,),
        fault_bounds=(1,),
        repeats=trials,
        base_seed=base_seed,
    )


class _Server:
    """The asyncio server on an ephemeral port, in a background thread."""

    def __init__(self, service: CampaignService) -> None:
        self.service = service
        self.port: int | None = None
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._ready.wait(15), "server did not come up"

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        task = asyncio.create_task(
            serve(self.service, host="127.0.0.1", port=0, ready=self._on_ready)
        )
        await self._stop.wait()
        task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await task

    def _on_ready(self, _host: str, port: int) -> None:
        self.port = port
        self._ready.set()

    def url(self, path: str) -> str:
        return f"http://127.0.0.1:{self.port}{path}"

    def close(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(60)


def _percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _timed_get(url: str) -> tuple[float, int]:
    started = time.perf_counter()
    with urllib.request.urlopen(url, timeout=60) as response:
        response.read()
        status = response.status
    return (time.perf_counter() - started) * 1000.0, status


def test_server_latency_under_mixed_traffic(benchmark, record_table, tmp_path):
    store_path = tmp_path / "store.db"
    summary, _ = run_campaign(_grid(WARM_TRIALS, base_seed=7), store=store_path)
    assert summary.errors == 0

    latencies: dict[str, list[float]] = {name: [] for name, _ in _READ_ENDPOINTS}
    failures: list[tuple[str, int]] = []
    lock = threading.Lock()

    def run_mixed_traffic() -> dict[str, float]:
        server = _Server(CampaignService(store_path, max_active=2))
        try:
            # Compute traffic: a fresh-seed campaign submitted over HTTP,
            # streamed to completion so sessions commit while readers poll.
            body = json.dumps(
                {
                    "campaign": {
                        "name": "bench-compute",
                        "grid": {
                            "protocols": ["exact"],
                            "dimensions": [1],
                            "fault_bounds": [1],
                            "repeats": COMPUTE_TRIALS,
                            "base_seed": 1_000_003,
                        },
                    }
                }
            ).encode("utf-8")
            request = urllib.request.Request(
                server.url("/campaigns"),
                data=body,
                headers={"Content-Type": "application/json", "X-Api-Key": "bench"},
                method="POST",
            )
            with urllib.request.urlopen(request, timeout=60) as response:
                accepted = json.loads(response.read())
                assert response.status == 202

            streamed: list[int] = []

            def stream_rows() -> None:
                with urllib.request.urlopen(
                    server.url(accepted["rows_url"]), timeout=120
                ) as stream:
                    streamed.append(len(stream.read().splitlines()))

            def read_loop() -> None:
                for turn in range(REQUESTS_PER_READER):
                    name, path = _READ_ENDPOINTS[turn % len(_READ_ENDPOINTS)]
                    elapsed_ms, status = _timed_get(server.url(path))
                    with lock:
                        if status != 200:
                            failures.append((name, status))
                        latencies[name].append(elapsed_ms)

            threads = [threading.Thread(target=stream_rows)]
            threads.extend(threading.Thread(target=read_loop) for _ in range(READERS))
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(300)
            assert streamed == [COMPUTE_TRIALS], "row stream must drain the campaign"

            status = json.loads(
                urllib.request.urlopen(
                    server.url(accepted["status_url"]), timeout=60
                ).read()
            )
            assert status["state"] == "finished" and status["errors"] == 0
            return {"compute_trials": streamed[0]}
        finally:
            server.close()

    benchmark.pedantic(run_mixed_traffic, rounds=1, iterations=1)

    assert failures == [], f"non-200 read responses under load: {failures}"
    rows = [
        {
            "endpoint": name,
            "requests": len(samples),
            "p50_ms": round(_percentile(samples, 0.50), 2),
            "p99_ms": round(_percentile(samples, 0.99), 2),
            "max_ms": round(max(samples), 2),
        }
        for name, samples in latencies.items()
    ]
    record_table(
        "E22_server_latency",
        rows,
        "Serving layer — warm-store read latency (ms) under concurrent "
        f"compute traffic ({WARM_TRIALS} stored trials, {READERS} readers, "
        f"{COMPUTE_TRIALS}-trial campaign streaming)",
    )
    query_p99 = next(row["p99_ms"] for row in rows if row["endpoint"] == "query")
    assert query_p99 <= MAX_QUERY_P99_MS, (
        f"warm-store query p99 is {query_p99:.0f} ms under mixed load "
        f"(sanity ceiling: {MAX_QUERY_P99_MS:.0f} ms)"
    )
