"""Shared helpers for the benchmark harness.

Every benchmark regenerates one experiment from ``DESIGN.md`` (E1-E14): it
runs the experiment once under ``pytest-benchmark`` timing, asserts the
qualitative outcome the paper predicts, and writes the measured table to
``benchmarks/results/<experiment id>.txt`` so the numbers can be inspected
after a ``pytest benchmarks/ --benchmark-only`` run (stdout is captured by
pytest).  ``EXPERIMENTS.md`` records the expected shape of each table.

``benchmarks/results/`` is gitignored scratch space for fresh runs; the
checked-in copies of representative tables live in ``benchmarks/reference/``
(update them by copying a fresh result over when a PR changes the numbers).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Mapping, Sequence

import pytest

from repro.analysis.report import render_table

RESULTS_DIR = Path(__file__).parent / "results"


def effective_cores() -> int:
    """CPU cores actually available to this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover — non-Linux
        return os.cpu_count() or 1


def scaling_floor(workers: int) -> float:
    """Minimum acceptable speedup over workers=1 for a ``workers``-wide run.

    Gated on the cores the box actually grants: a w-worker pool can only use
    ``min(w, cores)`` cores, so the floor a 1-core container must clear is
    "don't pessimize" (IPC overhead stays under ~40%), a 2-core box must show
    real speedup, and the ≥4-core CI runners must clear 2x — the ROADMAP
    item 1 acceptance bar.
    """
    parallelism = min(workers, effective_cores())
    if parallelism >= 4:
        return 2.0
    if parallelism >= 2:
        return 1.2
    return 0.6


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_table(results_dir):
    """Return a callable that renders rows to text and stores them under an experiment id."""

    def _record(experiment_id: str, rows: Sequence[Mapping[str, object]], title: str) -> str:
        text = render_table(rows, title=title)
        (results_dir / f"{experiment_id}.txt").write_text(text + "\n")
        print(f"\n{text}\n")
        return text

    return _record
