"""Scenario-fuzz throughput: sampled compositions/second at workers ∈ {1, 4}.

Not a paper experiment — this benchmarks the scenario-fuzz harness
(`repro.engine.fuzz`): a fixed-seed sample of random protocol × workload ×
adversary (independent *and* coordinated) × scheduler compositions is
executed sequentially and on a 4-worker pool, asserting the paper's
agreement/validity invariants on every run.  The recorded table tracks how
many randomized scenarios per second the adversary layer sustains, and the
worker-count-invariance assertion extends the engine's determinism guarantee
to fuzz runs.

The sample shrinks when ``REPRO_BENCH_SMOKE`` is set (CI smoke).
"""

from __future__ import annotations

import os

from repro.engine import read_jsonl, run_fuzz, strip_timing

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

COUNT = 8 if SMOKE else 60
SEED = 31


def test_fuzz_throughput(benchmark, record_table, tmp_path):
    def run_both() -> list[dict[str, object]]:
        rows = []
        for workers in (1, 4):
            jsonl_path = tmp_path / f"w{workers}.jsonl"
            report = run_fuzz(count=COUNT, seed=SEED, workers=workers, jsonl_path=jsonl_path)
            rows.append(
                report.to_row()
                | {
                    "scenarios_per_s": round(report.runs / max(report.elapsed_seconds, 1e-9), 2),
                    "jsonl_rows": len(read_jsonl(jsonl_path)),
                }
            )
        return rows

    rows = benchmark.pedantic(run_both, rounds=1, iterations=1)
    record_table(
        "E17_fuzz_throughput", rows, "Scenario fuzz — compositions/second at workers 1 vs 4"
    )
    for row in rows:
        assert row["violations"] == 0
        assert row["errors"] == 0
        assert row["jsonl_rows"] == COUNT
    # Same seed, different pool sizes: identical rows modulo the timing field.
    assert strip_timing(read_jsonl(tmp_path / "w1.jsonl")) == strip_timing(
        read_jsonl(tmp_path / "w4.jsonl")
    )
