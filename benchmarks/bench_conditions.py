"""E13 — the resilience landscape (the paper's summary of bounds as a table).

Paper claims (Theorems 1, 3, 4, 5, 6): minimum number of processes

* Exact BVC, synchronous:            ``max(3f+1, (d+1)f+1)``
* Approximate BVC, asynchronous:     ``(d+2)f + 1``
* Restricted rounds, synchronous:    ``(d+2)f + 1``
* Restricted rounds, asynchronous:   ``(d+4)f + 1``
* Scalar consensus (both models):    ``3f + 1``
"""

from __future__ import annotations

from repro.analysis.experiments import experiment_resilience_landscape

DIMENSIONS = (1, 2, 3, 4, 5, 6, 7, 8)
FAULTS = (1, 2, 3, 4)


def test_e13_resilience_landscape(benchmark, record_table):
    rows = benchmark.pedantic(
        experiment_resilience_landscape, args=(DIMENSIONS, FAULTS), rounds=1, iterations=1
    )
    record_table("E13_resilience_landscape", rows, "E13 — minimum n per setting")
    for row in rows:
        d, f = row["dimension"], row["fault_bound"]
        assert row["exact_sync"] == max(3 * f + 1, (d + 1) * f + 1)
        assert row["approx_async"] == (d + 2) * f + 1
        assert row["restricted_sync"] == (d + 2) * f + 1
        assert row["restricted_async"] == (d + 4) * f + 1
        assert row["scalar"] == 3 * f + 1
        # The paper's observation: for d > 1 the asynchronous bound exceeds the
        # synchronous one by exactly f; for d = 1 they coincide.
        if d > 1:
            assert row["approx_async"] == row["exact_sync"] + f
        else:
            assert row["approx_async"] == row["exact_sync"]
