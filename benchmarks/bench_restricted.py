"""E11 / E12 — the restricted-round algorithms of Section 4.

Paper claim (Theorem 6): with the simple one-message-delay round structure,
approximate BVC needs ``n >= (d+2)f + 1`` in synchronous systems and
``n >= (d+4)f + 1`` in asynchronous systems — an extra ``2f`` versus the
witness-based algorithm, the price of the restricted structure.
"""

from __future__ import annotations

from repro.analysis.experiments import experiment_restricted_rounds
from repro.core.conditions import (
    minimum_processes_approx_async,
    minimum_processes_restricted_async,
)


def test_e11_e12_restricted_rounds(benchmark, record_table):
    rows = benchmark.pedantic(
        experiment_restricted_rounds,
        kwargs={"dimension": 2, "fault_bound": 1, "epsilon": 0.25,
                "strategies": ("crash", "equivocate", "outside_hull")},
        rounds=1, iterations=1,
    )
    record_table("E11_E12_restricted", rows, "E11/E12 — restricted-round algorithms at their bounds")
    for row in rows:
        assert row["eps_agreement"], row
        assert row["validity"], row
    # The asynchronous restricted structure pays 2f extra processes over the
    # witness-based asynchronous algorithm.
    sync_rows = [row for row in rows if row["structure"] == "restricted synchronous"]
    async_rows = [row for row in rows if row["structure"] == "restricted asynchronous"]
    assert async_rows[0]["n"] - minimum_processes_approx_async(2, 1) == 2
    assert minimum_processes_restricted_async(2, 1) == async_rows[0]["n"]
    assert sync_rows[0]["n"] == minimum_processes_approx_async(2, 1)


def test_e12_restricted_async_higher_fault_budget(benchmark, record_table):
    rows = benchmark.pedantic(
        experiment_restricted_rounds,
        kwargs={"dimension": 1, "fault_bound": 2, "epsilon": 0.3,
                "strategies": ("outside_hull",),
                "sync_rounds_override": 8, "async_rounds_override": 5},
        rounds=1, iterations=1,
    )
    record_table("E12_restricted_f2", rows, "E12b — restricted rounds with f = 2, d = 1")
    for row in rows:
        assert row["eps_agreement"] and row["validity"], row
