"""E8 — the asynchronous Approximate BVC algorithm at the bound.

Paper claim (Theorem 5): with ``n = (d+2)f + 1`` processes the witness-based
iterative algorithm achieves epsilon-agreement and validity after
``1 + ceil(log_{1/(1-gamma)}((U - nu)/epsilon))`` asynchronous rounds, for any
message delays and any Byzantine behaviour.
"""

from __future__ import annotations

from repro.analysis.experiments import experiment_approx_bvc
from repro.core.approx_bvc import contraction_factor, round_threshold

CONFIGURATIONS = ((1, 1), (2, 1))
STRATEGIES = ("crash", "equivocate", "outside_hull")


def test_e8_approx_bvc_under_attack(benchmark, record_table):
    rows = benchmark.pedantic(
        experiment_approx_bvc,
        kwargs={"configurations": CONFIGURATIONS, "strategies": STRATEGIES, "epsilon": 0.25},
        rounds=1, iterations=1,
    )
    record_table("E8_approx_bvc", rows, "E8 — Approximate async BVC at the bound under attack")
    for row in rows:
        assert row["eps_agreement"], row
        assert row["validity"], row
        assert row["max_disagreement"] <= row["epsilon"]
        # The executed round count equals the static threshold of the paper.
        gamma = contraction_factor(row["n"], row["f"], "witness_subsets")
        assert row["rounds"] == round_threshold(1.0, row["epsilon"], gamma) or row["rounds"] >= 1


def test_e8_adversarial_scheduling(benchmark, record_table):
    """Same sweep but with a scheduler that starves one honest process."""
    rows = benchmark.pedantic(
        experiment_approx_bvc,
        kwargs={
            "configurations": ((1, 1),),
            "strategies": ("outside_hull",),
            "epsilon": 0.25,
            "lagging": True,
        },
        rounds=1, iterations=1,
    )
    record_table("E8_approx_bvc_lagging", rows, "E8b — Approximate BVC with a starved honest process")
    for row in rows:
        assert row["eps_agreement"] and row["validity"]


def test_e8_single_round_cost(benchmark):
    """Micro-benchmark: one full approximate-BVC run at n = 4, d = 1, f = 1, few rounds."""
    from repro.analysis.experiments import make_strategy
    from repro.core.approx_bvc import run_approx_bvc
    from repro.network.scheduler import RandomScheduler
    from repro.workloads.generators import uniform_box_registry

    registry = uniform_box_registry(4, 1, 1, seed=61)
    mutators = {pid: make_strategy("crash", registry) for pid in registry.faulty_ids}

    outcome = benchmark.pedantic(
        lambda: run_approx_bvc(
            registry, epsilon=0.2, adversary_mutators=mutators,
            scheduler=RandomScheduler(1), max_rounds_override=5,
        ),
        rounds=1, iterations=1,
    )
    assert outcome.rounds_executed == 5
