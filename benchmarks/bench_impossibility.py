"""E2 / E7 — the necessity constructions of Theorems 1 and 4.

Paper claims:
* Theorem 1: with ``n = d + 1`` processes (``f = 1``) and standard-basis
  inputs, no decision can lie in every leave-one-out hull — the intersection
  is empty; one more process removes the obstruction.
* Theorem 4: with ``n = d + 2`` processes (``f = 1``) and scaled-basis inputs,
  validity alone forces decisions that are ``4 * epsilon`` apart, so
  epsilon-agreement is impossible.
"""

from __future__ import annotations

from repro.analysis.experiments import (
    experiment_async_impossibility,
    experiment_sync_impossibility,
)

DIMENSIONS = (1, 2, 3, 4, 5, 6)


def test_e2_sync_necessity(benchmark, record_table):
    rows = benchmark.pedantic(
        experiment_sync_impossibility, args=(DIMENSIONS,), rounds=1, iterations=1
    )
    record_table("E2_sync_impossibility", rows, "E2 — Theorem 1 necessity (f = 1)")
    for row in rows:
        assert row["gamma_empty_below"] is True
        assert row["gamma_empty_at_bound"] is False


def test_e7_async_necessity(benchmark, record_table):
    rows = benchmark.pedantic(
        experiment_async_impossibility, kwargs={"dimensions": DIMENSIONS, "epsilon": 0.25},
        rounds=1, iterations=1,
    )
    record_table("E7_async_impossibility", rows, "E7 — Theorem 4 necessity (f = 1)")
    for row in rows:
        assert row["violates_epsilon_agreement"] is True
        # Forced gap is 4 * epsilon = 1.0 in every dimension.
        assert abs(row["max_forced_gap"] - 1.0) < 1e-6
