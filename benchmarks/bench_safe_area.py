"""E3 / E6 / E10 / E15 — the safe area ``Gamma``: existence (Lemma 1), LP cost
(Section 2.2), the Appendix F subset optimisation, and the geometry kernel.

Paper claims:
* Lemma 1: ``Gamma(Y)`` is non-empty whenever ``|Y| >= (d+1)f + 1``.
* Section 2.2: a point of ``Gamma`` is computable by an LP whose size grows
  with ``C(n, n-f)`` — polynomial for fixed ``f``, expensive as ``f`` grows.
* Appendix F: restricting Step 2 to at most ``n`` witness-derived subsets
  (instead of all ``C(n, n-f)``) preserves correctness and cuts the work.

E15 additionally records the before/after numbers for the batched, cached,
pruned kernel of :mod:`repro.geometry.kernel` against the seed path; the
sweep shrinks to a tiny grid when ``REPRO_BENCH_SMOKE`` is set (CI smoke).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.analysis.experiments import (
    experiment_kernel_speedup,
    experiment_safe_area_cost,
    experiment_safe_area_existence,
)
from repro.core.safe_area import safe_area_point, safe_area_subset_count
from repro.geometry.kernel import GammaKernel
from repro.geometry.multisets import PointMultiset

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))


def test_e3_gamma_existence(benchmark, record_table):
    rows = benchmark.pedantic(
        experiment_safe_area_existence,
        kwargs={"dimensions": (1, 2, 3), "fault_bounds": (1, 2), "samples": 5},
        rounds=1, iterations=1,
    )
    record_table("E3_safe_area_existence", rows, "E3 — Lemma 1: Gamma non-empty at (d+1)f+1 points")
    for row in rows:
        assert row["gamma_nonempty"] == row["samples"]


def test_e6_gamma_lp_cost(benchmark, record_table):
    rows = benchmark.pedantic(
        experiment_safe_area_cost, rounds=1, iterations=1,
    )
    record_table("E6_safe_area_cost", rows, "E6 — Section 2.2 LP: subset count and feasibility")
    for row in rows:
        assert row["point_found"]
    # The subset count (and hence LP size) grows with f for fixed n - f gap.
    assert rows[-1]["subsets_in_gamma"] > rows[0]["subsets_in_gamma"]


def test_e6_single_gamma_lp_timing(benchmark):
    """Micro-benchmark: one Gamma LP at n = 7, d = 2, f = 2 (21 subsets)."""
    rng = np.random.default_rng(5)
    cloud = PointMultiset(rng.uniform(0.0, 1.0, size=(7, 2)))

    result = benchmark(lambda: safe_area_point(cloud, 2))
    assert result is not None


def test_e10_appendix_f_subset_reduction(benchmark, record_table):
    """Appendix F: n witness subsets versus C(n, n-f) subsets — cost and identical validity."""
    rng = np.random.default_rng(9)
    rows = []

    def run_both():
        rows.clear()
        for process_count, dimension, fault_bound in ((5, 2, 1), (7, 2, 2), (9, 2, 2)):
            cloud = rng.uniform(0.0, 1.0, size=(process_count, dimension))
            multiset = PointMultiset(cloud)
            all_subsets = safe_area_subset_count(process_count, fault_bound)
            # The witness optimisation touches at most n subsets.
            witness_subsets = min(process_count, all_subsets)
            point_full = safe_area_point(multiset, fault_bound)
            rows.append(
                {
                    "n": process_count,
                    "d": dimension,
                    "f": fault_bound,
                    "subsets_full": all_subsets,
                    "subsets_witness_bound": witness_subsets,
                    "reduction_factor": all_subsets / witness_subsets,
                    "gamma_point_found": point_full is not None,
                }
            )
        return rows

    benchmark.pedantic(run_both, rounds=1, iterations=1)
    record_table("E10_appendix_f", rows, "E10 — Appendix F: subsets explored, full vs witness-based")
    assert all(row["gamma_point_found"] for row in rows)
    # The reduction grows with f (paper: C(n, n-f) vs <= n).
    assert rows[-1]["reduction_factor"] > rows[0]["reduction_factor"]


# ---------------------------------------------------------------------------
# E15 — the geometry kernel: seed path vs pruned + cached + batched kernel
# ---------------------------------------------------------------------------

# (n, d, f) grid.  The acceptance bar is >= 3x on every d = 2, n >= 13 row;
# in practice the pruned kernel clears it by 2-3 orders of magnitude.
_E15_GRID = (
    ((7, 2, 2), (9, 2, 1)) if SMOKE
    else ((7, 2, 2), (9, 2, 2), (11, 2, 3), (13, 2, 3), (13, 2, 4), (14, 2, 4))
)


def test_e15_kernel_speedup_sweep(benchmark, record_table):
    """Before/after sweep over the (n, d, f) grid: seed LP vs the kernel.

    Reuses the E15 experiment runner (one measurement path shared with the
    CLI table); the benchmark only supplies the heavy grid.
    """
    rows = benchmark.pedantic(
        experiment_kernel_speedup,
        kwargs={"configurations": _E15_GRID, "seed": 15},
        rounds=1, iterations=1,
    )
    record_table(
        "E15_kernel_speedup", rows,
        "E15 — safe-area kernel: seed Section 2.2 LP vs pruned+cached+batched kernel",
    )
    assert all(row["kernel_matches_oracle"] for row in rows)
    assert all(row["batch_all_found"] for row in rows)
    assert all(row["blocks_pruned"] <= row["blocks_full"] for row in rows)
    # Acceptance bar: >= 3x on every d = 2, n >= 13 configuration.
    for row in rows:
        if row["d"] == 2 and row["n"] >= 13:
            assert row["speedup"] >= 3.0, f"kernel speedup below bar: {row}"


def _timed(thunk):
    start = time.perf_counter()
    thunk()
    return time.perf_counter() - start


def test_e15_batched_queries_amortise(benchmark):
    """One fused batch of Gamma queries is no slower than solving one-by-one."""
    rng = np.random.default_rng(23)
    kernel = GammaKernel()
    clouds = [rng.uniform(0.0, 1.0, size=(9, 2)) for _ in range(16)]
    objective = np.asarray([1.0, 0.0])
    kernel.points_batch(clouds, 2, objective=objective)  # warm the template cache

    def fused():
        return kernel.points_batch(clouds, 2, objective=objective)

    points = benchmark(fused)
    assert all(point is not None for point in points)

    singles = [kernel.point(cloud, 2, objective=objective) for cloud in clouds]
    for single, fused_point in zip(singles, points):
        assert np.allclose(single, fused_point, atol=1e-8)

    # Report (don't assert) the fused-vs-loop ratio: sub-millisecond wall
    # clocks are too noisy for a pass/fail bar, and the correctness of the
    # fused path is covered above and in tests/geometry/test_kernel.py.
    loop_seconds = min(
        _timed(lambda: [kernel.point(cloud, 2, objective=objective) for cloud in clouds])
        for _ in range(3)
    )
    fused_seconds = min(
        _timed(lambda: kernel.points_batch(clouds, 2, objective=objective))
        for _ in range(3)
    )
    print(f"\nfused batch: {fused_seconds*1e3:.2f} ms for 16 queries "
          f"vs loop {loop_seconds*1e3:.2f} ms ({loop_seconds/max(fused_seconds,1e-9):.1f}x)")
