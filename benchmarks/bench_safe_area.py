"""E3 / E6 / E10 — the safe area ``Gamma``: existence (Lemma 1), LP cost
(Section 2.2) and the Appendix F subset optimisation.

Paper claims:
* Lemma 1: ``Gamma(Y)`` is non-empty whenever ``|Y| >= (d+1)f + 1``.
* Section 2.2: a point of ``Gamma`` is computable by an LP whose size grows
  with ``C(n, n-f)`` — polynomial for fixed ``f``, expensive as ``f`` grows.
* Appendix F: restricting Step 2 to at most ``n`` witness-derived subsets
  (instead of all ``C(n, n-f)``) preserves correctness and cuts the work.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.experiments import experiment_safe_area_cost, experiment_safe_area_existence
from repro.core.safe_area import safe_area_point, safe_area_subset_count
from repro.geometry.multisets import PointMultiset


def test_e3_gamma_existence(benchmark, record_table):
    rows = benchmark.pedantic(
        experiment_safe_area_existence,
        kwargs={"dimensions": (1, 2, 3), "fault_bounds": (1, 2), "samples": 5},
        rounds=1, iterations=1,
    )
    record_table("E3_safe_area_existence", rows, "E3 — Lemma 1: Gamma non-empty at (d+1)f+1 points")
    for row in rows:
        assert row["gamma_nonempty"] == row["samples"]


def test_e6_gamma_lp_cost(benchmark, record_table):
    rows = benchmark.pedantic(
        experiment_safe_area_cost, rounds=1, iterations=1,
    )
    record_table("E6_safe_area_cost", rows, "E6 — Section 2.2 LP: subset count and feasibility")
    for row in rows:
        assert row["point_found"]
    # The subset count (and hence LP size) grows with f for fixed n - f gap.
    assert rows[-1]["subsets_in_gamma"] > rows[0]["subsets_in_gamma"]


def test_e6_single_gamma_lp_timing(benchmark):
    """Micro-benchmark: one Gamma LP at n = 7, d = 2, f = 2 (21 subsets)."""
    rng = np.random.default_rng(5)
    cloud = PointMultiset(rng.uniform(0.0, 1.0, size=(7, 2)))

    result = benchmark(lambda: safe_area_point(cloud, 2))
    assert result is not None


def test_e10_appendix_f_subset_reduction(benchmark, record_table):
    """Appendix F: n witness subsets versus C(n, n-f) subsets — cost and identical validity."""
    rng = np.random.default_rng(9)
    rows = []

    def run_both():
        rows.clear()
        for process_count, dimension, fault_bound in ((5, 2, 1), (7, 2, 2), (9, 2, 2)):
            cloud = rng.uniform(0.0, 1.0, size=(process_count, dimension))
            multiset = PointMultiset(cloud)
            all_subsets = safe_area_subset_count(process_count, fault_bound)
            # The witness optimisation touches at most n subsets.
            witness_subsets = min(process_count, all_subsets)
            point_full = safe_area_point(multiset, fault_bound)
            rows.append(
                {
                    "n": process_count,
                    "d": dimension,
                    "f": fault_bound,
                    "subsets_full": all_subsets,
                    "subsets_witness_bound": witness_subsets,
                    "reduction_factor": all_subsets / witness_subsets,
                    "gamma_point_found": point_full is not None,
                }
            )
        return rows

    benchmark.pedantic(run_both, rounds=1, iterations=1)
    record_table("E10_appendix_f", rows, "E10 — Appendix F: subsets explored, full vs witness-based")
    assert all(row["gamma_point_found"] for row in rows)
    # The reduction grows with f (paper: C(n, n-f) vs <= n).
    assert rows[-1]["reduction_factor"] > rows[0]["reduction_factor"]
