"""E14 — the application workloads the introduction motivates.

Paper claims (Section 1): BVC guarantees that when every non-faulty process
proposes a feasible point (a probability vector, a location in an allowed
region, a gradient), the agreed vector is also feasible — a guarantee
coordinate-wise scalar consensus cannot give.
"""

from __future__ import annotations

from repro.analysis.experiments import experiment_applications


def test_e14_application_workloads(benchmark, record_table):
    rows = benchmark.pedantic(
        experiment_applications, kwargs={"epsilon": 0.25}, rounds=1, iterations=1
    )
    record_table("E14_applications", rows, "E14 — application workloads under attack")
    assert len(rows) == 3
    for row in rows:
        assert row["agreement"], row
        assert row["validity"], row
    # The probability-vector decision is itself a distribution.
    assert rows[0]["decision_is_distribution"] is True
