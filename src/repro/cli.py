"""Command-line interface: run the paper's experiments without writing code.

Usage (after ``pip install -e .``)::

    python -m repro.cli list                      # list experiment ids and descriptions
    python -m repro.cli run E2                    # run one experiment, print its table
    python -m repro.cli run all                   # run every experiment
    python -m repro.cli run E8 --output out.txt   # also write the table to a file
    python -m repro.cli bounds --dimension 3 --faults 2   # query the resilience bounds
    python -m repro.cli campaign --workers 4 --jsonl out.jsonl   # parallel trial sweep
    python -m repro.cli campaign --store sweep.db --resume       # resumable, cached sweep
    python -m repro.cli fuzz --count 200 --workers 4      # random-scenario invariant fuzz
    python -m repro.cli store stats --store sweep.db      # inspect a results store
    python -m repro.cli serve --store sweep.db            # HTTP API over store + executor
    python -m repro.cli --help                    # usage examples + documentation map

The experiment ids match ``DESIGN.md`` §4 and ``EXPERIMENTS.md``; E15 is the
geometry-kernel speedup experiment added alongside ``docs/PERFORMANCE.md``,
E16 the independent-vs-coordinated adversary comparison.
The ``campaign`` command is the scale path: it expands a (protocol, workload,
adversary, scheduler, n/d/f, epsilon, repeat) grid — from flags or a JSON
file — into deterministic trials and fans them out over a worker pool,
streaming one JSON line per trial.  The ``fuzz`` command samples random
scenario compositions (including the coordinated adversaries) at or above
the resilience bounds and asserts agreement + validity on every run.  Both
accept ``--store PATH`` to record every trial in a content-addressed results
store and ``--resume`` to serve already-stored trials without re-executing
them; the ``store`` command group (``stats`` / ``query`` / ``export`` /
``gc`` / ``import``) inspects and manages such stores.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Callable, Sequence

from repro.analysis import experiments
from repro.analysis.report import render_table
from repro.core.conditions import resilience_table
from repro.engine import (
    ADVERSARY_NAMES,
    ENGINE_CHOICES,
    FUZZ_ADVERSARIES,
    FUZZ_PROTOCOLS,
    FUZZ_WORKLOADS,
    POOL_CHOICES,
    PROTOCOLS,
    SCHEDULER_NAMES,
    STRATEGY_NAMES,
    WORKLOAD_NAMES,
    Campaign,
    run_campaign,
    run_fuzz,
)
from repro.obs.trace import (
    TraceRecorder,
    format_trace_summary,
    load_trace,
    summarize_trace,
)
from repro.store import (
    BACKEND_CHOICES,
    ENGINE_VERSION,
    TrialFilter,
    aggregate_store,
    open_store,
    query_store,
)

__all__ = ["EXPERIMENT_REGISTRY", "build_parser", "main"]

# Experiment id -> (description, zero-argument callable returning table rows).
EXPERIMENT_REGISTRY: dict[str, tuple[str, Callable[[], list[dict[str, object]]]]] = {
    "E1": (
        "Intro counterexample: coordinate-wise scalar consensus vs Exact BVC",
        experiments.experiment_baseline_validity,
    ),
    "E2": (
        "Theorem 1 necessity: Gamma emptiness below vs at the bound (f=1)",
        experiments.experiment_sync_impossibility,
    ),
    "E3": (
        "Lemma 1: Gamma non-empty on random multisets of size (d+1)f+1",
        experiments.experiment_safe_area_existence,
    ),
    "E4": (
        "Figure 1: Tverberg partition of the regular heptagon",
        experiments.experiment_figure1_tverberg,
    ),
    "E5": (
        "Theorem 3: Exact BVC at the bound under attack",
        experiments.experiment_exact_bvc,
    ),
    "E6": (
        "Section 2.2 LP: subset count and feasibility across (n, d, f)",
        experiments.experiment_safe_area_cost,
    ),
    "E7": (
        "Theorem 4 necessity: forced decision gap at n = d+2 (f=1)",
        experiments.experiment_async_impossibility,
    ),
    "E8": (
        "Theorem 5: Approximate async BVC at the bound under attack",
        experiments.experiment_approx_bvc,
    ),
    "E9": (
        "Equation (12): measured vs bound per-round contraction",
        experiments.experiment_contraction_rate,
    ),
    "E11": (
        "Theorem 6: restricted-round algorithms at their bounds (also covers E12)",
        experiments.experiment_restricted_rounds,
    ),
    "E13": (
        "Resilience landscape: minimum n per setting",
        experiments.experiment_resilience_landscape,
    ),
    "E14": (
        "Application workloads (probability vectors, robots, gradients)",
        experiments.experiment_applications,
    ),
    "E15": (
        "Geometry kernel: pruned/cached/batched Gamma vs the literal Section 2.2 LP",
        experiments.experiment_kernel_speedup,
    ),
    "E16": (
        "Adversary coordination: independent vs coordinated attacks at the bound",
        experiments.experiment_adversary_coordination,
    ),
}


def _experiment_order(experiment_id: str) -> tuple[int, str]:
    """Sort key putting ids in numeric order (E2 before E11, not after)."""
    digits = "".join(ch for ch in experiment_id if ch.isdigit())
    return (int(digits) if digits else 0, experiment_id)


def _ordered_experiment_ids() -> list[str]:
    return sorted(EXPERIMENT_REGISTRY, key=_experiment_order)


_EPILOG = """\
examples:
  python -m repro.cli list                    show every experiment id with a description
  python -m repro.cli run E3                  Lemma 1: Gamma non-empty at (d+1)f+1 points
  python -m repro.cli run E15                 safe-area kernel speedup vs the literal LP
  python -m repro.cli run all --output out.txt
  python -m repro.cli bounds --dimension 3 --faults 2
  python -m repro.cli campaign --repeats 25 --workers 4 --jsonl sweep.jsonl
                                              100-trial Exact-BVC sweep on 4 workers
  python -m repro.cli campaign --protocols exact approx \\
      --adversaries crash outside_hull random_noise \\
      --dimensions 1 2 3 --repeats 5 --seed 7 --workers 4 --jsonl sweep.jsonl
  python -m repro.cli campaign --grid-file campaign.json --workers 8
  python -m repro.cli campaign --adversaries split_world hull_collapse \\
      --repeats 10 --workers 4
                                              coordinated-adversary sweep
  python -m repro.cli campaign --protocols restricted_sync --adversaries none crash \\
      --process-counts 13 --max-rounds 3 --repeats 10 --engine vectorized
                                              columnar batch execution
  python -m repro.cli fuzz --count 200 --seed 0 --workers 4 --jsonl fuzz.jsonl
                                              random scenarios, invariants asserted
  python -m repro.cli campaign --store sweep.db --jsonl sweep.jsonl
                                              record every trial in a results store
  python -m repro.cli campaign --store sweep.db --resume --jsonl sweep.jsonl
                                              resume: serve stored trials, run only misses
  python -m repro.cli store stats --store sweep.db
  python -m repro.cli store claims --store sweep.db
                                              outstanding cross-process claims
  python -m repro.cli store query --store sweep.db --protocol exact --status error
  python -m repro.cli store export --store sweep.db --output rows.jsonl
  python -m repro.cli store gc --store sweep.db   drop rows from older engine versions
  python -m repro.cli campaign --repeats 2 --summary-json -
                                              machine-readable summary line on stdout
  python -m repro.cli serve --store sweep.db --port 8321
                                              HTTP API: query/export the store,
                                              submit campaigns, stream rows
  python -m repro.cli campaign --repeats 5 --trace trace.json
                                              record a Chrome trace-event timeline
  python -m repro.cli trace summary trace.json
                                              top time sinks per phase (Perfetto
                                              or chrome://tracing renders the file)

campaigns and fuzz runs are deterministic: the same --seed produces
byte-identical JSONL rows (modulo the elapsed_ms timing field) for any
--workers value and any --engine choice (eligible synchronous trials run as
columnar array batches; everything else falls back to the object runtime).
that purity is what makes the results store safe: trials are keyed by a
content address of their spec, so an interrupted --store run resumed with
--resume executes only the missing trials and exports identical rows.

documentation:
  README.md                  install, quickstart, paper-section -> module map
  docs/ARCHITECTURE.md       layer stack: geometry kernel, runtimes, engine/campaigns
  docs/PERFORMANCE.md        measured before/after numbers for the kernel
  docs/OBSERVABILITY.md      metric catalog, /metrics scraping, trace timelines

verify the installation with the tier-1 test suite:
  PYTHONPATH=src python -m pytest -x -q
"""


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Byzantine Vector Consensus in Complete Graphs' (PODC 2013)",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    run_parser = subparsers.add_parser(
        "run",
        help="run one experiment (or 'all')",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    # Derive the advertised id range from the registry so the help text
    # cannot rot as experiments are added.
    ordered_ids = _ordered_experiment_ids()
    run_parser.add_argument(
        "experiment",
        help=f"experiment id ({ordered_ids[0]}..{ordered_ids[-1]}) or 'all'",
    )
    run_parser.add_argument(
        "--output", type=Path, default=None, help="also write the rendered table(s) to this file"
    )
    run_parser.add_argument(
        "--store", type=Path, default=None,
        help="serve campaign-backed experiment trials from this results store "
             "(missing trials run and are recorded)",
    )
    run_parser.add_argument(
        "--store-backend", choices=BACKEND_CHOICES, default="auto",
        help="results-store backend (auto: directory/suffix-less path = jsonl, else sqlite)",
    )

    bounds_parser = subparsers.add_parser("bounds", help="print the resilience bounds for (d, f)")
    bounds_parser.add_argument("--dimension", type=int, default=2, help="vector dimension d")
    bounds_parser.add_argument("--faults", type=int, default=1, help="fault bound f")

    campaign_parser = subparsers.add_parser(
        "campaign",
        help="expand a trial grid and run it on a worker pool",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    campaign_parser.add_argument(
        "--grid-file",
        type=Path,
        default=None,
        help="JSON campaign file ({'grid': {...}} or {'trials': [...]}); overrides the grid flags",
    )
    campaign_parser.add_argument(
        "--name", default="cli-campaign", help="campaign name (used in the summary row)"
    )
    campaign_parser.add_argument(
        "--protocols", nargs="+", default=["exact"], choices=sorted(PROTOCOLS),
        help="protocols to sweep",
    )
    campaign_parser.add_argument(
        "--workloads", nargs="+", default=["uniform_box"], choices=WORKLOAD_NAMES,
        help="input workload generators",
    )
    campaign_parser.add_argument(
        "--adversaries", nargs="+",
        default=list(STRATEGY_NAMES),
        choices=ADVERSARY_NAMES,
        help="adversary strategies (independent and coordinated)",
    )
    campaign_parser.add_argument(
        "--schedulers", nargs="+", default=["random"], choices=SCHEDULER_NAMES,
        help="delivery schedulers (asynchronous protocols)",
    )
    campaign_parser.add_argument(
        "--dimensions", nargs="+", type=int, default=[2], help="vector dimensions d"
    )
    campaign_parser.add_argument(
        "--faults", nargs="+", type=int, default=[1], help="fault bounds f"
    )
    campaign_parser.add_argument(
        "--process-counts", nargs="+", type=int, default=None,
        help="process counts n (default: each protocol's minimum at its (d, f))",
    )
    campaign_parser.add_argument(
        "--epsilons", nargs="+", type=float, default=[0.2],
        help="epsilon-agreement parameters (approximate protocols)",
    )
    campaign_parser.add_argument(
        "--max-rounds", type=int, default=None,
        help="cap approximate protocols at this many rounds instead of the static rule",
    )
    campaign_parser.add_argument(
        "--repeats", type=int, default=25,
        help="repeat the grid this many times with fresh derived seeds",
    )
    campaign_parser.add_argument("--seed", type=int, default=0, help="campaign base seed")
    campaign_parser.add_argument(
        "--workers", type=int, default=1, help="worker processes (1 = run inline)"
    )
    campaign_parser.add_argument(
        "--jsonl", type=Path, default=None, help="stream one JSON line per trial to this file"
    )
    campaign_parser.add_argument(
        "--engine", choices=ENGINE_CHOICES, default="auto",
        help="execution substrate: 'vectorized' runs eligible synchronous trials "
             "as columnar batches, 'object' forces the per-process runtime, "
             "'auto' (default) picks per shape group; rows are byte-identical "
             "(modulo elapsed_ms) for every choice",
    )
    campaign_parser.add_argument(
        "--pool", choices=POOL_CHOICES, default="persistent",
        help="multi-worker dispatch: 'persistent' (default) reuses long-lived "
             "shared-memory workers with cost-model work stealing, 'spawn' "
             "keeps the legacy per-run process pool; rows are identical",
    )
    _add_store_run_flags(campaign_parser)

    fuzz_parser = subparsers.add_parser(
        "fuzz",
        help="run random scenario compositions and assert the paper's invariants",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    fuzz_parser.add_argument(
        "--count", type=int, default=200, help="number of scenario compositions to sample"
    )
    fuzz_parser.add_argument("--seed", type=int, default=0, help="fuzz sample seed")
    fuzz_parser.add_argument(
        "--workers", type=int, default=1, help="worker processes (1 = run inline)"
    )
    fuzz_parser.add_argument(
        "--jsonl", type=Path, default=None, help="stream one JSON line per trial to this file"
    )
    fuzz_parser.add_argument(
        "--protocols", nargs="+", default=list(FUZZ_PROTOCOLS), choices=FUZZ_PROTOCOLS,
        help="protocols to sample from (only those whose invariants fuzzing may assert)",
    )
    fuzz_parser.add_argument(
        "--workloads", nargs="+", default=list(FUZZ_WORKLOADS), choices=FUZZ_WORKLOADS,
        help="input workloads to sample from (fixed-instance workloads excluded)",
    )
    fuzz_parser.add_argument(
        "--adversaries", nargs="+", default=list(FUZZ_ADVERSARIES), choices=ADVERSARY_NAMES,
        help="adversary strategies to sample from (independent and coordinated)",
    )
    fuzz_parser.add_argument(
        "--schedulers", nargs="+", default=list(SCHEDULER_NAMES), choices=SCHEDULER_NAMES,
        help="delivery schedulers to sample from (asynchronous protocols)",
    )
    fuzz_parser.add_argument(
        "--engine", choices=ENGINE_CHOICES, default="auto",
        help="execution substrate (see 'campaign --engine')",
    )
    fuzz_parser.add_argument(
        "--pool", choices=POOL_CHOICES, default="persistent",
        help="multi-worker dispatch substrate (see 'campaign --pool')",
    )
    _add_store_run_flags(fuzz_parser)

    serve_parser = subparsers.add_parser(
        "serve",
        help="serve the results store and campaign submission over HTTP",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    serve_parser.add_argument(
        "--store", type=Path, required=True,
        help="results store to serve (created if missing); submitted "
             "campaigns read cached trials from it and commit misses to it",
    )
    serve_parser.add_argument(
        "--store-backend", choices=BACKEND_CHOICES, default="auto",
        help="results-store backend (auto: directory/suffix-less path = jsonl, else sqlite)",
    )
    serve_parser.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_parser.add_argument(
        "--port", type=int, default=8321, help="bind port (0 = ephemeral)"
    )
    serve_parser.add_argument(
        "--workers", type=int, default=1,
        help="default worker processes per submitted campaign "
             "(submissions may override with a 'workers' field)",
    )
    serve_parser.add_argument(
        "--max-active", type=int, default=2,
        help="campaign sessions executing concurrently",
    )
    serve_parser.add_argument(
        "--max-pending", type=int, default=8,
        help="submissions allowed to queue behind the active sessions "
             "(beyond this, POST /campaigns answers 429)",
    )
    serve_parser.add_argument(
        "--idle-timeout", type=float, default=30.0,
        help="seconds a keep-alive connection may sit idle between requests "
             "before the server closes it",
    )
    serve_parser.add_argument(
        "--trace-dir", type=Path, default=None, metavar="DIR",
        help="record a Chrome trace-event timeline per submitted run to "
             "DIR/<run_id>.json (written when the run retires)",
    )

    trace_parser = subparsers.add_parser(
        "trace",
        help="inspect Chrome trace-event timelines recorded with --trace",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    trace_sub = trace_parser.add_subparsers(dest="trace_command", required=True)
    trace_summary_parser = trace_sub.add_parser(
        "summary", help="print the top time sinks per phase from a trace file"
    )
    trace_summary_parser.add_argument("path", type=Path, help="trace JSON file")
    trace_summary_parser.add_argument(
        "--limit", type=int, default=20, help="rows to print (default 20)"
    )

    store_parser = subparsers.add_parser(
        "store",
        help="inspect and manage a content-addressed results store",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    store_sub = store_parser.add_subparsers(dest="store_command", required=True)

    def _store_common(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument(
            "--store", type=Path, required=True, help="results-store path"
        )
        sub_parser.add_argument(
            "--store-backend", choices=BACKEND_CHOICES, default="auto",
            help="results-store backend (auto: directory/suffix-less path = jsonl, else sqlite)",
        )

    def _store_filters(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument("--protocol", default=None, help="filter: protocol name")
        sub_parser.add_argument("--workload", default=None, help="filter: workload name")
        sub_parser.add_argument("--adversary", default=None, help="filter: adversary strategy")
        sub_parser.add_argument("--scheduler", default=None, help="filter: delivery scheduler")
        sub_parser.add_argument("--status", default=None, choices=("ok", "error"),
                                help="filter: trial status")
        sub_parser.add_argument("--dimension", type=int, default=None, help="filter: d")
        sub_parser.add_argument("--fault-bound", type=int, default=None, help="filter: f")
        sub_parser.add_argument("--process-count", type=int, default=None, help="filter: n")

    stats_parser = store_sub.add_parser(
        "stats", help="row counts by status and engine version, plus claim counters"
    )
    _store_common(stats_parser)

    claims_parser = store_sub.add_parser(
        "claims", help="list outstanding cross-process claims (owner, age)"
    )
    _store_common(claims_parser)

    query_parser = store_sub.add_parser(
        "query", help="list stored trials matching shape filters"
    )
    _store_common(query_parser)
    _store_filters(query_parser)
    query_parser.add_argument(
        "--limit", type=int, default=50, help="maximum rows to print (0 = no limit)"
    )
    query_parser.add_argument(
        "--aggregate", nargs="+", default=None, metavar="COLUMN",
        help="instead of listing trials, aggregate outcome counters grouped "
             "by these spec columns (e.g. --aggregate protocol adversary)",
    )

    export_parser = store_sub.add_parser(
        "export", help="write stored trial rows as JSONL (campaign-row schema)"
    )
    _store_common(export_parser)
    _store_filters(export_parser)
    export_parser.add_argument(
        "--output", type=Path, default=None,
        help="JSONL destination (default: stdout)",
    )
    export_parser.add_argument(
        "--engine-version", default=ENGINE_VERSION,
        help="export only rows recorded under this engine revision (default: "
             "the current one), keeping exports version-homogeneous — a "
             "re-import under one declared --engine-version stays truthful",
    )

    gc_parser = store_sub.add_parser(
        "gc", help="delete rows recorded under older engine versions (unreachable by lookup)"
    )
    _store_common(gc_parser)
    gc_parser.add_argument(
        "--dry-run", action="store_true", help="only report how many rows would be deleted"
    )

    import_parser = store_sub.add_parser(
        "import", help="ingest a campaign/fuzz JSONL export into the store"
    )
    _store_common(import_parser)
    import_parser.add_argument(
        "--jsonl", type=Path, required=True, help="campaign/fuzz JSONL file to ingest"
    )
    import_parser.add_argument(
        "--engine-version", default=ENGINE_VERSION,
        help="engine revision that produced the rows (JSONL carries no stamp; "
             "importing an old export under its true version keeps its rows "
             "unreachable by current lookups instead of serving stale results; "
             f"default: {ENGINE_VERSION})",
    )

    return parser


def _add_store_run_flags(sub_parser: argparse.ArgumentParser) -> None:
    """Attach the --store/--resume trio shared by `campaign` and `fuzz`."""
    sub_parser.add_argument(
        "--store", type=Path, default=None,
        help="record every trial row in this content-addressed results store "
             "(transactional per execution unit, so interrupted runs keep "
             "their completed work)",
    )
    sub_parser.add_argument(
        "--store-backend", choices=BACKEND_CHOICES, default="auto",
        help="results-store backend (auto: directory/suffix-less path = jsonl, else sqlite)",
    )
    sub_parser.add_argument(
        "--resume", action="store_true",
        help="serve trials already present in --store instead of re-executing "
             "them; only the missing trials run (requires --store)",
    )
    sub_parser.add_argument(
        "--summary-json", default=None, metavar="PATH",
        help="emit the summary row (plus run_id and per-reason fallback "
             "counts) as one machine-readable JSON line to PATH ('-' = stdout)",
    )
    sub_parser.add_argument(
        "--trace", type=Path, default=None, metavar="PATH",
        help="record a Chrome trace-event timeline of the run to PATH "
             "(open in Perfetto / chrome://tracing, or summarise with "
             "'repro trace summary PATH')",
    )


def _emit_summary_json(destination: str, row: dict[str, object]) -> None:
    """Write the --summary-json line ('-' = stdout), always exactly one line."""
    line = json.dumps(row, sort_keys=True)
    if destination == "-":
        print(line)
    else:
        Path(destination).write_text(line + "\n", encoding="utf-8")


def _run_experiments(ids: Sequence[str]) -> str:
    sections: list[str] = []
    for experiment_id in ids:
        description, runner = EXPERIMENT_REGISTRY[experiment_id]
        rows = runner()
        sections.append(render_table(rows, title=f"{experiment_id} — {description}"))
    return "\n\n".join(sections)


def _build_campaign(arguments: argparse.Namespace) -> Campaign:
    if arguments.grid_file is not None:
        return Campaign.from_file(arguments.grid_file)
    return Campaign.from_grid(
        arguments.name,
        protocols=arguments.protocols,
        workloads=arguments.workloads,
        adversaries=arguments.adversaries,
        schedulers=arguments.schedulers,
        dimensions=arguments.dimensions,
        fault_bounds=arguments.faults,
        process_counts=arguments.process_counts,
        epsilons=arguments.epsilons,
        repeats=arguments.repeats,
        base_seed=arguments.seed,
        max_rounds_override=arguments.max_rounds,
    )


def _open_run_store(arguments: argparse.Namespace):
    """Resolve the --store/--store-backend/--resume trio for campaign/fuzz.

    Returns ``(store, reuse_cached)``; the caller owns closing the store.
    """
    if arguments.resume and arguments.store is None:
        raise SystemExit("--resume requires --store (nothing to resume from)")
    if arguments.store is None:
        return None, False
    return open_store(arguments.store, backend=arguments.store_backend), arguments.resume


def _print_store_outcome(arguments: argparse.Namespace, cache_hits: int, trials: int) -> None:
    executed = trials - cache_hits
    mode = "resume" if arguments.resume else "record"
    print(f"store {arguments.store} ({mode}): {cache_hits} served from cache, {executed} executed")


def _run_campaign_command(arguments: argparse.Namespace) -> int:
    campaign = _build_campaign(arguments)
    shape = campaign.describe()
    print(
        f"campaign '{shape['name']}': {shape['trials']} trials "
        f"(protocols={','.join(shape['protocols'])} adversaries={','.join(shape['adversaries'])}) "
        f"on {arguments.workers} worker(s)"
    )
    store, reuse_cached = _open_run_store(arguments)
    trace = TraceRecorder() if arguments.trace is not None else None
    try:
        summary, _ = run_campaign(
            campaign,
            workers=arguments.workers,
            jsonl_path=arguments.jsonl,
            engine=arguments.engine,
            store=store,
            reuse_cached=reuse_cached,
            pool=arguments.pool,
            trace=trace,
        )
    finally:
        if store is not None:
            store.close()
        # Written even on failure: a partial timeline is exactly what you
        # want when diagnosing the run that died.
        if trace is not None:
            trace.write(arguments.trace)
            print(f"wrote trace to {arguments.trace}")
    print(render_table([summary.to_row()], title="Campaign summary"))
    if store is not None:
        _print_store_outcome(arguments, summary.cache_hits, summary.trials)
    if arguments.jsonl is not None:
        print(f"wrote {summary.trials} rows to {arguments.jsonl}")
    if arguments.summary_json is not None:
        _emit_summary_json(
            arguments.summary_json,
            {
                **summary.to_row(),
                "run_id": summary.run_id,
                "fallback_reasons": dict(summary.fallback_reasons),
            },
        )
    return 0 if summary.errors == 0 else 1


def _run_fuzz_command(arguments: argparse.Namespace) -> int:
    print(
        f"fuzz: {arguments.count} scenario compositions (seed {arguments.seed}) "
        f"on {arguments.workers} worker(s)"
    )
    store, reuse_cached = _open_run_store(arguments)
    trace = TraceRecorder() if arguments.trace is not None else None
    try:
        report = run_fuzz(
            count=arguments.count,
            seed=arguments.seed,
            workers=arguments.workers,
            jsonl_path=arguments.jsonl,
            protocols=arguments.protocols,
            workloads=arguments.workloads,
            adversaries=arguments.adversaries,
            schedulers=arguments.schedulers,
            engine=arguments.engine,
            store=store,
            reuse_cached=reuse_cached,
            pool=arguments.pool,
            trace=trace,
        )
    finally:
        if store is not None:
            store.close()
        if trace is not None:
            trace.write(arguments.trace)
            print(f"wrote trace to {arguments.trace}")
    if store is not None:
        _print_store_outcome(arguments, report.cache_hits, report.runs)
    print(render_table([report.to_row()], title="Fuzz summary"))
    if arguments.jsonl is not None:
        print(f"wrote {report.runs} rows to {arguments.jsonl}")
    if arguments.summary_json is not None:
        _emit_summary_json(
            arguments.summary_json,
            {
                **report.to_row(),
                "run_id": report.run_id,
                "fallback_reasons": dict(report.fallback_reasons),
            },
        )
    if report.violations:
        print(
            render_table(
                [violation.to_row() for violation in report.violations],
                title="Invariant violations",
            )
        )
        return 1
    print("all scenarios upheld agreement and validity")
    return 0


def _run_serve_command(arguments: argparse.Namespace) -> int:
    # Imported here so the CLI stays import-light for non-serving commands.
    from repro.server import run_server

    def _ready(host: str, port: int) -> None:
        # Flushed readiness line — smoke scripts wait for it before connecting.
        print(f"serving {arguments.store} on http://{host}:{port}", flush=True)

    run_server(
        str(arguments.store),
        host=arguments.host,
        port=arguments.port,
        backend=arguments.store_backend,
        workers=arguments.workers,
        max_active=arguments.max_active,
        max_pending=arguments.max_pending,
        ready=_ready,
        idle_timeout=arguments.idle_timeout,
        trace_dir=str(arguments.trace_dir) if arguments.trace_dir is not None else None,
    )
    return 0


def _run_trace_command(arguments: argparse.Namespace) -> int:
    if not arguments.path.exists():
        raise SystemExit(f"no trace file at {arguments.path}")
    events = load_trace(arguments.path)
    summary = summarize_trace(events)
    print(format_trace_summary(summary, limit=arguments.limit))
    return 0


def _store_filter(arguments: argparse.Namespace) -> TrialFilter:
    return TrialFilter(
        protocol=arguments.protocol,
        workload=arguments.workload,
        adversary=arguments.adversary,
        scheduler=arguments.scheduler,
        status=arguments.status,
        dimension=arguments.dimension,
        fault_bound=arguments.fault_bound,
        process_count=arguments.process_count,
    )


def _run_store_command(arguments: argparse.Namespace) -> int:
    with open_store(arguments.store, backend=arguments.store_backend) as store:
        if arguments.store_command == "stats":
            stats = store.stats()
            print(render_table([{
                "backend": stats["backend"],
                "trials": stats["trials"],
                "stale": stats["stale_trials"],
                "claims_live": stats["claims_live"],
                "claims_expired": stats["claims_expired"],
                "engine_version": stats["current_engine_version"],
            }], title=f"Store {stats['path']}"))
            for title, counts in (("By status", stats["statuses"]),
                                  ("By engine version", stats["engine_versions"])):
                if counts:
                    rows = [{"value": value, "trials": count} for value, count in counts.items()]
                    print(render_table(rows, title=title))
            return 0
        if arguments.store_command == "claims":
            claims = store.list_claims()
            if not claims:
                print("no outstanding claims")
                return 0
            print(render_table(
                [
                    {
                        "key": claim["key"][:16],
                        "owner": claim["owner"],
                        "age_s": round(claim["age_seconds"], 1),
                        "state": "expired" if claim["expired"] else "live",
                    }
                    for claim in claims
                ],
                title=f"Outstanding claims ({len(claims)})",
            ))
            return 0
        if arguments.store_command == "query":
            trial_filter = _store_filter(arguments)
            if arguments.aggregate:
                rows = aggregate_store(
                    store, group_by=tuple(arguments.aggregate), trial_filter=trial_filter
                )
                print(render_table(rows, title="Store aggregate") if rows else "no matching trials")
                return 0
            if arguments.limit < 0:
                raise SystemExit("--limit must be >= 0 (0 means no limit)")
            limit = arguments.limit if arguments.limit > 0 else None
            hits = query_store(store, trial_filter, limit=limit)
            if not hits:
                print("no matching trials")
                return 0
            print(render_table([hit.to_row() for hit in hits], title="Store query"))
            return 0
        if arguments.store_command == "export":
            # Stream straight off iter_entries (key order, constant memory) —
            # query_store would buffer the whole result set as typed rows.
            # The stored row *is* the serialised form, so re-dumping it with
            # sorted keys reproduces TrialResult.to_json() byte-for-byte
            # without materialising results (and without tripping over rows
            # whose schema predates the current code).
            where = _store_filter(arguments).to_where()
            where["engine_version"] = arguments.engine_version
            lines = (
                json.dumps(entry.row, sort_keys=True)
                for entry in store.iter_entries(where=where)
            )
            if arguments.output is not None:
                with arguments.output.open("w", encoding="utf-8") as handle:
                    count = 0
                    for line in lines:
                        handle.write(line + "\n")
                        count += 1
                print(f"exported {count} rows to {arguments.output}")
            else:
                for line in lines:
                    print(line)
            return 0
        if arguments.store_command == "gc":
            stale = store.gc(dry_run=arguments.dry_run)
            verb = "would delete" if arguments.dry_run else "deleted"
            print(f"{verb} {stale} rows from engine versions other than {ENGINE_VERSION}")
            return 0
        # store_command == "import"
        ingested = store.import_jsonl(arguments.jsonl, engine_version=arguments.engine_version)
        print(f"imported {ingested} rows from {arguments.jsonl}")
        return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point.  Returns a process exit code."""
    parser = build_parser()
    arguments = parser.parse_args(argv)

    if arguments.command == "list":
        rows = [
            {"id": experiment_id, "description": EXPERIMENT_REGISTRY[experiment_id][0]}
            for experiment_id in _ordered_experiment_ids()
        ]
        print(render_table(rows, title="Available experiments"))
        return 0

    if arguments.command == "bounds":
        rows = resilience_table([arguments.dimension], [arguments.faults])
        print(render_table(rows, title="Minimum number of processes"))
        return 0

    if arguments.command == "campaign":
        return _run_campaign_command(arguments)

    if arguments.command == "fuzz":
        return _run_fuzz_command(arguments)

    if arguments.command == "serve":
        return _run_serve_command(arguments)

    if arguments.command == "trace":
        return _run_trace_command(arguments)

    if arguments.command == "store":
        return _run_store_command(arguments)

    # command == "run"
    requested = arguments.experiment.upper()
    if requested == "ALL":
        ids: list[str] = _ordered_experiment_ids()
    elif requested in EXPERIMENT_REGISTRY:
        ids = [requested]
    else:
        known = ", ".join(_ordered_experiment_ids())
        print(f"unknown experiment '{arguments.experiment}'; known ids: {known}, or 'all'", file=sys.stderr)
        return 2

    store = (
        open_store(arguments.store, backend=arguments.store_backend)
        if arguments.store is not None
        else None
    )
    previous = experiments.set_result_store(store) if store is not None else None
    try:
        text = _run_experiments(ids)
    finally:
        if store is not None:
            experiments.set_result_store(previous)
            store.close()
    print(text)
    if arguments.output is not None:
        arguments.output.write_text(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
