"""Command-line interface: run the paper's experiments without writing code.

Usage (after ``pip install -e .``)::

    python -m repro.cli list                      # list experiment ids and descriptions
    python -m repro.cli run E2                    # run one experiment, print its table
    python -m repro.cli run all                   # run every experiment
    python -m repro.cli run E8 --output out.txt   # also write the table to a file
    python -m repro.cli bounds --dimension 3 --faults 2   # query the resilience bounds
    python -m repro.cli --help                    # usage examples + documentation map

The experiment ids match ``DESIGN.md`` §4 and ``EXPERIMENTS.md``; E15 is the
geometry-kernel speedup experiment added alongside ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, Sequence

from repro.analysis import experiments
from repro.analysis.report import render_table
from repro.core.conditions import resilience_table

__all__ = ["EXPERIMENT_REGISTRY", "build_parser", "main"]

# Experiment id -> (description, zero-argument callable returning table rows).
EXPERIMENT_REGISTRY: dict[str, tuple[str, Callable[[], list[dict[str, object]]]]] = {
    "E1": (
        "Intro counterexample: coordinate-wise scalar consensus vs Exact BVC",
        experiments.experiment_baseline_validity,
    ),
    "E2": (
        "Theorem 1 necessity: Gamma emptiness below vs at the bound (f=1)",
        experiments.experiment_sync_impossibility,
    ),
    "E3": (
        "Lemma 1: Gamma non-empty on random multisets of size (d+1)f+1",
        experiments.experiment_safe_area_existence,
    ),
    "E4": (
        "Figure 1: Tverberg partition of the regular heptagon",
        experiments.experiment_figure1_tverberg,
    ),
    "E5": (
        "Theorem 3: Exact BVC at the bound under attack",
        experiments.experiment_exact_bvc,
    ),
    "E6": (
        "Section 2.2 LP: subset count and feasibility across (n, d, f)",
        experiments.experiment_safe_area_cost,
    ),
    "E7": (
        "Theorem 4 necessity: forced decision gap at n = d+2 (f=1)",
        experiments.experiment_async_impossibility,
    ),
    "E8": (
        "Theorem 5: Approximate async BVC at the bound under attack",
        experiments.experiment_approx_bvc,
    ),
    "E9": (
        "Equation (12): measured vs bound per-round contraction",
        experiments.experiment_contraction_rate,
    ),
    "E11": (
        "Theorem 6: restricted-round algorithms at their bounds (also covers E12)",
        experiments.experiment_restricted_rounds,
    ),
    "E13": (
        "Resilience landscape: minimum n per setting",
        experiments.experiment_resilience_landscape,
    ),
    "E14": (
        "Application workloads (probability vectors, robots, gradients)",
        experiments.experiment_applications,
    ),
    "E15": (
        "Geometry kernel: pruned/cached/batched Gamma vs the literal Section 2.2 LP",
        experiments.experiment_kernel_speedup,
    ),
}

_EPILOG = """\
examples:
  python -m repro.cli list                    show every experiment id with a description
  python -m repro.cli run E3                  Lemma 1: Gamma non-empty at (d+1)f+1 points
  python -m repro.cli run E15                 safe-area kernel speedup vs the literal LP
  python -m repro.cli run all --output out.txt
  python -m repro.cli bounds --dimension 3 --faults 2

documentation:
  README.md                  install, quickstart, paper-section -> module map
  docs/ARCHITECTURE.md       layer stack and where the geometry kernel sits
  docs/PERFORMANCE.md        measured before/after numbers for the kernel

verify the installation with the tier-1 test suite:
  PYTHONPATH=src python -m pytest -x -q
"""


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Byzantine Vector Consensus in Complete Graphs' (PODC 2013)",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    run_parser = subparsers.add_parser(
        "run",
        help="run one experiment (or 'all')",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    run_parser.add_argument("experiment", help="experiment id (E1..E15) or 'all'")
    run_parser.add_argument(
        "--output", type=Path, default=None, help="also write the rendered table(s) to this file"
    )

    bounds_parser = subparsers.add_parser("bounds", help="print the resilience bounds for (d, f)")
    bounds_parser.add_argument("--dimension", type=int, default=2, help="vector dimension d")
    bounds_parser.add_argument("--faults", type=int, default=1, help="fault bound f")

    return parser


def _run_experiments(ids: Sequence[str]) -> str:
    sections: list[str] = []
    for experiment_id in ids:
        description, runner = EXPERIMENT_REGISTRY[experiment_id]
        rows = runner()
        sections.append(render_table(rows, title=f"{experiment_id} — {description}"))
    return "\n\n".join(sections)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point.  Returns a process exit code."""
    parser = build_parser()
    arguments = parser.parse_args(argv)

    if arguments.command == "list":
        rows = [
            {"id": experiment_id, "description": description}
            for experiment_id, (description, _) in sorted(EXPERIMENT_REGISTRY.items())
        ]
        print(render_table(rows, title="Available experiments"))
        return 0

    if arguments.command == "bounds":
        rows = resilience_table([arguments.dimension], [arguments.faults])
        print(render_table(rows, title="Minimum number of processes"))
        return 0

    # command == "run"
    requested = arguments.experiment.upper()
    if requested == "ALL":
        ids: list[str] = sorted(EXPERIMENT_REGISTRY)
    elif requested in EXPERIMENT_REGISTRY:
        ids = [requested]
    else:
        known = ", ".join(sorted(EXPERIMENT_REGISTRY))
        print(f"unknown experiment '{arguments.experiment}'; known ids: {known}, or 'all'", file=sys.stderr)
        return 2

    text = _run_experiments(ids)
    print(text)
    if arguments.output is not None:
        arguments.output.write_text(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
