"""Concrete Byzantine strategies.

Each strategy is a :class:`~repro.byzantine.adversary.MessageMutator` factory
describing *how* a faulty process lies.  The library ships the attack families
the paper's proofs implicitly reason about:

* :class:`CrashStrategy` — the process stops sending (immediately or after a
  chosen round); this is the weakest Byzantine behaviour and the one the
  Theorem 4 necessity scenario combines with a slow correct process.
* :class:`EquivocationStrategy` — the process reports *different* values to
  different recipients, drawn from a caller-supplied pool (e.g. the honest
  inputs themselves, the hardest case for agreement).
* :class:`OutsideHullStrategy` — the process reports values far outside the
  convex hull of the honest inputs, stressing the validity condition.
* :class:`RandomNoiseStrategy` — the process reports independent random
  values inside a box each time it speaks, a "chaotic" fault.
* :class:`CoordinateAttackStrategy` — the process pushes one chosen
  coordinate to an extreme while leaving the others plausible, the attack
  that breaks coordinate-wise scalar consensus (intro counterexample).
* :class:`HonestStrategy` — no corruption at all; a "faulty" process that
  behaves correctly (useful as a control: algorithms must also work when the
  adversary does not use its budget).

All strategies are deterministic given their seed so that every experiment is
reproducible.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.byzantine.adversary import (
    MessageMutator,
    mutate_numeric_leaves,
    replace_payload,
)
from repro.exceptions import ByzantineBehaviorError, ConfigurationError
from repro.network.message import Message

__all__ = [
    "HonestStrategy",
    "CrashStrategy",
    "EquivocationStrategy",
    "OutsideHullStrategy",
    "RandomNoiseStrategy",
    "CoordinateAttackStrategy",
]


class HonestStrategy(MessageMutator):
    """No corruption: the faulty process follows the protocol faithfully."""

    def mutate(self, message: Message) -> Sequence[Message]:
        return [message]


class CrashStrategy(MessageMutator):
    """Stop sending messages from ``crash_round`` onwards (default: immediately).

    Messages whose ``round_index`` is ``None`` (round-free traffic) are dropped
    once the process has crashed, which happens the first time it suppresses a
    round-tagged message or immediately when ``crash_round <= 1``.
    """

    def __init__(self, crash_round: int = 1) -> None:
        self.crash_round = crash_round
        self._crashed = crash_round <= 1

    def mutate(self, message: Message) -> Sequence[Message]:
        round_index = message.round_index
        if round_index is not None and round_index >= self.crash_round:
            self._crashed = True
        if self._crashed:
            return []
        return [message]


class EquivocationStrategy(MessageMutator):
    """Tell different recipients different things.

    The strategy cycles deterministically through ``value_pool`` keyed by the
    recipient id, so recipient ``r`` consistently hears version ``r mod len(pool)``
    — the classic split-the-world attack.  Value leaves in the payload are
    replaced by the chosen pool vector (or its first coordinate for scalar
    leaves).  A vector leaf whose dimension differs from the pool vector is
    rejected with :class:`~repro.exceptions.ByzantineBehaviorError`: tiling
    the pool vector into a foreign shape would recycle coordinates and report
    a value nobody chose, silently weakening the attack.
    """

    def __init__(self, value_pool: Sequence[Sequence[float]]) -> None:
        if not value_pool:
            raise ValueError("equivocation needs a non-empty value pool")
        self._pool = [np.asarray(value, dtype=float) for value in value_pool]

    def mutate(self, message: Message) -> Sequence[Message]:
        chosen = self._pool[message.recipient % len(self._pool)]

        def corrupt_scalar(_: float) -> float:
            return float(chosen[0])

        def corrupt_vector(vector: np.ndarray) -> np.ndarray:
            if vector.shape != chosen.shape:
                raise ByzantineBehaviorError(
                    f"equivocation pool vector of shape {chosen.shape} cannot replace "
                    f"a value leaf of shape {vector.shape} in {message.describe()}"
                )
            return chosen.copy()

        payload = mutate_numeric_leaves(message.payload, corrupt_scalar, corrupt_vector)
        return [replace_payload(message, payload)]


class OutsideHullStrategy(MessageMutator):
    """Report values pushed far outside the honest hull.

    Every numeric leaf is shifted by ``offset`` and scaled by ``scale``, so the
    reported points sit well away from anything an honest process would hold.
    A correct BVC algorithm must keep such values out of its decision.
    """

    def __init__(self, offset: float = 100.0, scale: float = 10.0) -> None:
        self.offset = float(offset)
        self.scale = float(scale)

    def mutate(self, message: Message) -> Sequence[Message]:
        def corrupt_scalar(value: float) -> float:
            return value * self.scale + self.offset

        def corrupt_vector(vector: np.ndarray) -> np.ndarray:
            return vector * self.scale + self.offset

        payload = mutate_numeric_leaves(message.payload, corrupt_scalar, corrupt_vector)
        return [replace_payload(message, payload)]


class RandomNoiseStrategy(MessageMutator):
    """Report fresh uniform-random values in ``[low, high]`` on every message."""

    def __init__(self, low: float = -1.0, high: float = 1.0, seed: int = 0) -> None:
        if high < low:
            raise ValueError("high must be at least low")
        self.low = float(low)
        self.high = float(high)
        self._rng = np.random.default_rng(seed)

    def mutate(self, message: Message) -> Sequence[Message]:
        def corrupt_scalar(_: float) -> float:
            return float(self._rng.uniform(self.low, self.high))

        def corrupt_vector(vector: np.ndarray) -> np.ndarray:
            return self._rng.uniform(self.low, self.high, size=vector.shape)

        payload = mutate_numeric_leaves(message.payload, corrupt_scalar, corrupt_vector)
        return [replace_payload(message, payload)]


class CoordinateAttackStrategy(MessageMutator):
    """Drive one coordinate to a target value while leaving the rest untouched.

    This is the attack behind the paper's introductory counterexample: by
    proposing a per-coordinate plausible but globally infeasible vector, the
    adversary drags coordinate-wise scalar consensus outside the honest hull.
    Scalar leaves (coordinate-by-coordinate broadcasts) are always replaced by
    the target value.

    An out-of-range ``coordinate`` would make every vector-leaf corruption a
    silent no-op (the faulty process would pass honest values through), so the
    index is validated against ``dimension`` at construction when the caller
    knows it — the engine's factory always passes the registry dimension —
    and against the actual leaf shape at mutation time otherwise.
    """

    def __init__(self, coordinate: int, target: float, dimension: int | None = None) -> None:
        if coordinate < 0:
            raise ValueError("coordinate index must be non-negative")
        if dimension is not None and coordinate >= dimension:
            raise ConfigurationError(
                f"coordinate {coordinate} is out of range for dimension {dimension}; "
                "the attack would corrupt nothing"
            )
        self.coordinate = coordinate
        self.target = float(target)

    def mutate(self, message: Message) -> Sequence[Message]:
        def corrupt_scalar(_: float) -> float:
            return self.target

        def corrupt_vector(vector: np.ndarray) -> np.ndarray:
            if self.coordinate >= vector.shape[-1]:
                raise ByzantineBehaviorError(
                    f"coordinate {self.coordinate} is out of range for a value leaf "
                    f"of shape {vector.shape} in {message.describe()}"
                )
            corrupted = vector.copy()
            corrupted[..., self.coordinate] = self.target
            return corrupted

        payload = mutate_numeric_leaves(message.payload, corrupt_scalar, corrupt_vector)
        return [replace_payload(message, payload)]
