"""Byzantine fault injection: adversary wrappers and attack strategies."""

from repro.byzantine.adversary import (
    ByzantineAsyncProcess,
    ByzantineSyncProcess,
    MessageMutator,
    mutate_numeric_leaves,
)
from repro.byzantine.strategies import (
    CoordinateAttackStrategy,
    CrashStrategy,
    EquivocationStrategy,
    HonestStrategy,
    OutsideHullStrategy,
    RandomNoiseStrategy,
)

__all__ = [
    "ByzantineAsyncProcess",
    "ByzantineSyncProcess",
    "MessageMutator",
    "mutate_numeric_leaves",
    "CoordinateAttackStrategy",
    "CrashStrategy",
    "EquivocationStrategy",
    "HonestStrategy",
    "OutsideHullStrategy",
    "RandomNoiseStrategy",
]
