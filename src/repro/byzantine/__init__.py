"""Byzantine fault injection: adversary wrappers, attack strategies, coordination."""

from repro.byzantine.adversary import (
    ByzantineAsyncProcess,
    ByzantineSyncProcess,
    MessageMutator,
    is_float_like,
    mutate_numeric_leaves,
    replace_payload,
)
from repro.byzantine.coordinator import (
    COORDINATED_STRATEGY_NAMES,
    AdversaryCoordinator,
    CoordinatedMutator,
    collect_value_leaves,
)
from repro.byzantine.strategies import (
    CoordinateAttackStrategy,
    CrashStrategy,
    EquivocationStrategy,
    HonestStrategy,
    OutsideHullStrategy,
    RandomNoiseStrategy,
)

__all__ = [
    "ByzantineAsyncProcess",
    "ByzantineSyncProcess",
    "MessageMutator",
    "is_float_like",
    "mutate_numeric_leaves",
    "replace_payload",
    "COORDINATED_STRATEGY_NAMES",
    "AdversaryCoordinator",
    "CoordinatedMutator",
    "collect_value_leaves",
    "CoordinateAttackStrategy",
    "CrashStrategy",
    "EquivocationStrategy",
    "HonestStrategy",
    "OutsideHullStrategy",
    "RandomNoiseStrategy",
]
