"""Byzantine adversary: wrapping processes so they misbehave.

A Byzantine process "may behave arbitrarily" — but an adversary that sends
structurally random bytes is simply ignored by the honest message handlers and
is indistinguishable from a crashed process.  The interesting adversaries are
the ones that *follow the protocol's message structure while lying about the
values*: equivocating about their input, injecting vectors far outside the
honest hull, or going silent mid-protocol.

This module implements that through wrapping: a faulty process is an honest
protocol process whose *outgoing traffic* passes through a
:class:`MessageMutator` that may drop, alter, or replace each message —
per recipient, per round, with full knowledge of the system (a strong,
adaptive adversary).  Concrete mutators live in
:mod:`repro.byzantine.strategies`.
"""

from __future__ import annotations

import abc
import copy
from typing import Any, Callable, Sequence

import numpy as np

from repro.network.message import Message
from repro.processes.process import AsyncProcess, SyncProcess

__all__ = [
    "MessageMutator",
    "ByzantineSyncProcess",
    "ByzantineAsyncProcess",
    "is_float_like",
    "mutate_numeric_leaves",
    "replace_payload",
    "STRUCTURAL_KEYS",
]

# Payload dictionary keys that carry protocol structure rather than
# application values; value-corrupting mutators leave these untouched so the
# corrupted messages still parse (the most damaging kind of lie).
STRUCTURAL_KEYS = frozenset({"round", "members", "broadcaster", "tag"})


def is_float_like(value: Any) -> bool:
    """True for scalar float leaves (bools are ints in Python, so excluded)."""
    return isinstance(value, (float, np.floating)) and not isinstance(value, bool)


def replace_payload(message: Message, payload: Any) -> Message:
    """Return a copy of ``message`` carrying a different payload.

    The shared reconstruction helper for every mutator: all envelope fields
    except the payload are preserved, so a corrupted message stays
    attributable to the same (sender, recipient, protocol, round).
    """
    return Message(
        sender=message.sender,
        recipient=message.recipient,
        protocol=message.protocol,
        kind=message.kind,
        payload=payload,
        round_index=message.round_index,
    )


def mutate_numeric_leaves(
    payload: Any,
    corrupt_scalar: Callable[[float], float],
    corrupt_vector: Callable[[np.ndarray], np.ndarray],
) -> Any:
    """Return a deep copy of ``payload`` with numeric value leaves corrupted.

    * floats become ``corrupt_scalar(value)``;
    * numpy arrays, and lists/tuples consisting entirely of floats, are treated
      as vectors and become ``corrupt_vector(vector)`` (same length);
    * ints, bools, strings and anything under a structural key are preserved,
      so the message still passes the honest parsers.
    """

    def walk(value: Any) -> Any:
        if isinstance(value, dict):
            return {
                key: (copy.deepcopy(item) if key in STRUCTURAL_KEYS else walk(item))
                for key, item in value.items()
            }
        if isinstance(value, np.ndarray):
            corrupted = np.asarray(corrupt_vector(np.asarray(value, dtype=float)), dtype=float)
            return corrupted
        if isinstance(value, (list, tuple)):
            if value and all(is_float_like(item) for item in value):
                vector = np.asarray(value, dtype=float)
                corrupted = np.asarray(corrupt_vector(vector), dtype=float)
                result = [float(item) for item in corrupted]
                return tuple(result) if isinstance(value, tuple) else result
            walked = [walk(item) for item in value]
            return tuple(walked) if isinstance(value, tuple) else walked
        if is_float_like(value):
            return float(corrupt_scalar(float(value)))
        return copy.deepcopy(value)

    return walk(payload)


class MessageMutator(abc.ABC):
    """Strategy interface: rewrite the outgoing traffic of a faulty process."""

    @abc.abstractmethod
    def mutate(self, message: Message) -> Sequence[Message]:
        """Return the messages actually sent in place of ``message``.

        Return an empty sequence to drop the message (crash/omission
        behaviour), a single-element sequence to alter it, or several messages
        to inject extra traffic.  Recipients other than the original are
        allowed (the adversary may talk to whoever it wants).
        """


class ByzantineSyncProcess(SyncProcess):
    """A synchronous faulty process: an honest core with corrupted output."""

    def __init__(self, inner: SyncProcess, mutator: MessageMutator) -> None:
        super().__init__(inner.process_id)
        self.inner = inner
        self.mutator = mutator

    def outgoing(self, round_index: int) -> list[Message]:
        corrupted: list[Message] = []
        for message in self.inner.outgoing(round_index):
            corrupted.extend(self.mutator.mutate(message))
        return corrupted

    def deliver(self, round_index: int, inbox: list[Message]) -> None:
        self.inner.deliver(round_index, inbox)

    def has_decided(self) -> bool:
        # A faulty process never holds up the run; the runtimes only wait on
        # honest processes, but returning True keeps stand-alone uses safe.
        return True

    def decision(self) -> Any:
        return self.inner.decision() if self.inner.has_decided() else None


class ByzantineAsyncProcess(AsyncProcess):
    """An asynchronous faulty process: an honest core with corrupted output."""

    def __init__(self, inner: AsyncProcess, mutator: MessageMutator) -> None:
        super().__init__(inner.process_id)
        self.inner = inner
        self.mutator = mutator

    def bind_transport(self, send: Callable[[Message], None]) -> None:
        super().bind_transport(send)

        def corrupted_send(message: Message) -> None:
            for replacement in self.mutator.mutate(message):
                send(replacement)

        self.inner.bind_transport(corrupted_send)

    def on_start(self) -> None:
        self.inner.on_start()

    def on_message(self, message: Message) -> None:
        self.inner.on_message(message)

    def has_decided(self) -> bool:
        return True

    def decision(self) -> Any:
        return self.inner.decision() if self.inner.has_decided() else None
