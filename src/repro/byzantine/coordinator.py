"""Coordinated, state-aware Byzantine adversaries.

The strategies in :mod:`repro.byzantine.strategies` are *independent*: each
faulty process gets its own stateless mutator that never talks to the others.
The paper's lower bounds, however, are tight only against an adversary that
controls the whole faulty set as one entity — it knows the honest inputs, the
``(n, d, f)`` configuration and the traffic of the execution so far, and it
chooses every faulty process's lies *jointly* (e.g. all faulty processes tell
the same consistent story to each partition of the honest processes).

:class:`AdversaryCoordinator` is that entity.  It owns the faulty set of one
execution and hands each faulty process a :class:`CoordinatedMutator` view;
all views consult the same coordinator state, so the lies are consistent
across the whole faulty coalition.  When the engine wires the coordinator as
the runtime's traffic observer (see ``RuntimeCore``'s ``observer`` hook), it
additionally sees every message of the execution — the full-information
adversary the proofs reason about.  Without the tap it still knows the honest
inputs from the registry, which is what the named strategies need at minimum.

Shipped coordinated strategies (:data:`COORDINATED_STRATEGY_NAMES`):

* ``split_world`` — consistent cross-faulty equivocation: the honest
  processes are partitioned into ``d + 1`` camps and *every* faulty process
  tells camp ``k`` the same honest-looking value ``v_k`` (an honest input).
  Unlike :class:`~repro.byzantine.strategies.EquivocationStrategy`, two
  faulty processes never contradict each other, so the honest side cannot
  cross-check the coalition's story.
* ``hull_collapse`` — all faulty reports are the *same* carefully chosen
  point: a point of the safe area ``Gamma`` of the honest inputs, computed
  with the geometry kernel (falling back to the honest centroid when that
  ``Gamma`` is empty).  Such reports survive inside every ``(n - f)``-subset
  hull, dragging the decision region toward the adversary's target.
* ``adaptive_extreme`` — per-round re-aiming: each round the coordinator
  looks at the honest values sighted in the traffic so far (or the honest
  inputs before any traffic) and reports a point pushed beyond the current
  honest hull boundary, following the honest states as they contract.
* ``theorem4_scenario`` — the Theorem 4 necessity execution: the faulty
  processes crash (optionally after a chosen round) while the coordinator
  nominates one correct process to be starved by a
  :class:`~repro.network.scheduler.LaggingScheduler` — crash faults plus a
  correct-but-slow process, the coupling the asynchronous lower bound builds
  on.  The engine's scheduler factory honours the nomination.

All strategies are deterministic given the registry and the (deterministic)
traffic order, so coordinated trials remain pure functions of their spec.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from repro.byzantine.adversary import (
    STRUCTURAL_KEYS,
    MessageMutator,
    is_float_like,
    mutate_numeric_leaves,
    replace_payload,
)
from repro.byzantine.strategies import CrashStrategy
from repro.exceptions import ByzantineBehaviorError, ConfigurationError
from repro.geometry.kernel import default_kernel
from repro.network.message import Message
from repro.processes.registry import ProcessRegistry

__all__ = [
    "COORDINATED_STRATEGY_NAMES",
    "AdversaryCoordinator",
    "CoordinatedMutator",
    "collect_value_leaves",
]

COORDINATED_STRATEGY_NAMES = (
    "split_world",
    "hull_collapse",
    "adaptive_extreme",
    "theorem4_scenario",
)

# Traffic sightings kept per round; enough for the honest states of any
# configuration the simulator runs, bounded so the observer can never grow
# without limit on a pathological execution.
_MAX_SIGHTINGS_PER_ROUND = 256


def collect_value_leaves(payload: Any, dimension: int) -> list[np.ndarray]:
    """Extract every ``dimension``-sized numeric value leaf from ``payload``.

    The walk mirrors :func:`~repro.byzantine.adversary.mutate_numeric_leaves`:
    structural keys are skipped, numpy arrays and all-float lists/tuples are
    treated as vectors.  Only leaves of the registry dimension are returned —
    those are the protocol's state/input vectors, the values a state-aware
    adversary tracks.
    """

    leaves: list[np.ndarray] = []

    def walk(value: Any) -> None:
        if isinstance(value, Mapping):
            for key, item in value.items():
                if key not in STRUCTURAL_KEYS:
                    walk(item)
            return
        if isinstance(value, np.ndarray):
            if value.shape == (dimension,):
                leaves.append(np.asarray(value, dtype=float))
            return
        if isinstance(value, (list, tuple)):
            if value and all(is_float_like(item) for item in value):
                if len(value) == dimension:
                    leaves.append(np.asarray(value, dtype=float))
                return
            for item in value:
                walk(item)

    walk(payload)
    return leaves


class CoordinatedMutator(MessageMutator):
    """One faulty process's view of the coordinator.

    The view holds no strategy state of its own: every decision is delegated
    to the shared :class:`AdversaryCoordinator`, which is what makes the
    coalition's lies consistent across faulty processes.
    """

    def __init__(self, coordinator: "AdversaryCoordinator", faulty_id: int) -> None:
        self.coordinator = coordinator
        self.faulty_id = faulty_id

    def mutate(self, message: Message) -> Sequence[Message]:
        return self.coordinator.plan(self.faulty_id, message)


class AdversaryCoordinator:
    """Joint controller of the whole faulty set of one execution.

    Args:
        strategy: one of :data:`COORDINATED_STRATEGY_NAMES`.
        registry: the execution's cast — gives the coordinator the honest
            inputs and the ``(n, d, f)`` configuration (the paper's
            full-knowledge adversary model).
        seed: reserved for randomised coordinated strategies; the four shipped
            strategies are fully deterministic.
        params: strategy parameters — ``target`` (hull_collapse),
            ``push_scale`` (adaptive_extreme, default 3.0), ``crash_round``
            and ``slow_processes`` (theorem4_scenario).
    """

    def __init__(
        self,
        strategy: str,
        registry: ProcessRegistry,
        seed: int = 0,
        params: Mapping[str, Any] | None = None,
    ) -> None:
        if strategy not in COORDINATED_STRATEGY_NAMES:
            raise ConfigurationError(
                f"unknown coordinated strategy {strategy!r}; "
                f"known: {', '.join(COORDINATED_STRATEGY_NAMES)}"
            )
        if not registry.faulty_ids:
            raise ConfigurationError(
                "a coordinated adversary needs at least one faulty process"
            )
        self.strategy = strategy
        self.registry = registry
        self.seed = int(seed)
        self.params = dict(params or {})
        self._dimension = registry.configuration.dimension
        self._honest_ids = registry.honest_ids
        self._honest_cloud = np.vstack(
            [registry.input_of(pid) for pid in self._honest_ids]
        )
        # Per-round honest-value sightings from the traffic tap, and the
        # per-round aims derived from them (adaptive_extreme).
        self._sightings: dict[int, list[np.ndarray]] = {}
        self._aims: dict[int, np.ndarray] = {}
        self._camps: dict[int, np.ndarray] | None = None
        self._collapse_target: np.ndarray | None = None
        self._crash_mutators: dict[int, CrashStrategy] = {}

    # -- wiring ----------------------------------------------------------------

    def mutator_for(self, faulty_id: int) -> CoordinatedMutator:
        """Return the coordinator-backed mutator for one faulty process."""
        if faulty_id not in self.registry.faulty_ids:
            raise ConfigurationError(
                f"process {faulty_id} is not in the faulty set "
                f"{sorted(self.registry.faulty_ids)}"
            )
        return CoordinatedMutator(self, faulty_id)

    @staticmethod
    def nominate_slow_processes(
        registry: ProcessRegistry, params: Mapping[str, Any] | None
    ) -> tuple[int, ...]:
        """The slow-process nomination rule of the Theorem 4 scenario.

        By default the last honest process (the "correct but slow" process of
        the Theorem 4 argument), overridable through the ``slow_processes``
        parameter.  Static so the engine's scheduler factory can apply the
        one rule — for both the ``theorem4_scenario`` coupling and the plain
        ``lagging`` scheduler default — without building a coordinator.
        """
        slow = (params or {}).get("slow_processes")
        if slow is None:
            slow = [registry.honest_ids[-1]]
        return tuple(int(process_id) for process_id in slow)

    def scheduler_hint(self) -> tuple[int, ...] | None:
        """Processes the coordinator wants the delivery scheduler to starve.

        Only ``theorem4_scenario`` nominates anyone (see
        :meth:`nominate_slow_processes`); the engine's scheduler factory
        applies the same rule when it builds the lagging scheduler.
        """
        if self.strategy != "theorem4_scenario":
            return None
        return self.nominate_slow_processes(self.registry, self.params)

    # -- observation -----------------------------------------------------------

    def observe(self, message: Message) -> None:
        """Record one routed message (the runtime's traffic-observer hook).

        Only honest senders are tracked — faulty traffic is the coordinator's
        own output.  Sightings are keyed by the sender's round tag so the
        adaptive strategies can follow the honest states round by round.
        """
        if message.sender not in self.registry.faulty_ids:
            round_key = message.round_index if message.round_index is not None else 0
            bucket = self._sightings.setdefault(round_key, [])
            if len(bucket) < _MAX_SIGHTINGS_PER_ROUND:
                bucket.extend(collect_value_leaves(message.payload, self._dimension))

    def observe_value(self, round_key: int, value: np.ndarray) -> None:
        """Record one honest value sighting directly (no message wrapper).

        The columnar engine routes whole trial groups without materialising
        :class:`~repro.network.message.Message` objects, so it feeds the
        coordinator the honest state vectors straight from its arrays.  The
        bookkeeping is identical to :meth:`observe`: same per-round buckets,
        same sighting cap.
        """
        bucket = self._sightings.setdefault(int(round_key), [])
        if len(bucket) < _MAX_SIGHTINGS_PER_ROUND:
            bucket.append(np.array(value, dtype=float))

    # -- planning --------------------------------------------------------------

    def plan(self, faulty_id: int, message: Message) -> Sequence[Message]:
        """Decide what ``faulty_id`` actually sends in place of ``message``."""
        if self.strategy == "split_world":
            return self._plan_split_world(message)
        if self.strategy == "hull_collapse":
            return self._plan_point_report(message, self._collapse_point())
        if self.strategy == "adaptive_extreme":
            round_key = message.round_index if message.round_index is not None else 0
            return self._plan_point_report(message, self._adaptive_aim(round_key))
        # theorem4_scenario: crash faults (the value-free half of the coupling).
        crash = self._crash_mutators.get(faulty_id)
        if crash is None:
            crash = CrashStrategy(crash_round=int(self.params.get("crash_round", 1)))
            self._crash_mutators[faulty_id] = crash
        return crash.mutate(message)

    # -- batched planning ------------------------------------------------------
    #
    # The columnar engine computes the coalition's reports for a whole round
    # without routing per-message mutators.  These accessors expose the exact
    # memoised decisions the mutators consult, so a batched round and a
    # message-by-message round agree bit for bit.

    @property
    def honest_cloud(self) -> np.ndarray:
        """The honest input cloud ``(h, d)`` the coordinator reasons over."""
        return self._honest_cloud

    def camp_values(self) -> dict[int, np.ndarray]:
        """Public view of the split_world camp map (see :meth:`_camp_values`)."""
        return self._camp_values()

    def collapse_point(self) -> np.ndarray:
        """Public view of the hull_collapse report (see :meth:`_collapse_point`)."""
        return self._collapse_point()

    def seed_collapse_point(self, point: np.ndarray) -> None:
        """Install a pre-computed hull_collapse target (batched kernel solve).

        Only takes effect when no target is memoised yet and the strategy has
        no explicit ``target`` parameter — an explicit target still goes
        through :meth:`_collapse_point`'s shape validation.
        """
        if self._collapse_target is None and self.params.get("target") is None:
            self._collapse_target = np.asarray(point, dtype=float)

    def adaptive_aim(self, round_key: int) -> np.ndarray:
        """Public view of the adaptive_extreme aim (see :meth:`_adaptive_aim`)."""
        return self._adaptive_aim(round_key)

    # -- split_world -----------------------------------------------------------

    def _camp_values(self) -> dict[int, np.ndarray]:
        """Map every process id to its camp's consistent world view.

        Honest processes are split round-robin (in id order) into ``d + 1``
        camps; camp ``k``'s view is the input of its first member — a value an
        honest process could genuinely hold, so the equivocation is maximally
        plausible.  Faulty recipients are folded into camp 0 (what the
        coalition tells itself is irrelevant).
        """
        if self._camps is None:
            camp_count = min(self._dimension + 1, len(self._honest_ids))
            members: list[list[int]] = [[] for _ in range(camp_count)]
            for position, process_id in enumerate(self._honest_ids):
                members[position % camp_count].append(process_id)
            values = [self.registry.input_of(camp[0]) for camp in members]
            camps: dict[int, np.ndarray] = {}
            for camp_index, camp in enumerate(members):
                for process_id in camp:
                    camps[process_id] = values[camp_index]
            for process_id in self.registry.faulty_ids:
                camps[process_id] = values[0]
            self._camps = camps
        return self._camps

    def _plan_split_world(self, message: Message) -> Sequence[Message]:
        value = self._camp_values().get(message.recipient)
        if value is None:  # recipient outside the registry; let the core drop it
            return [message]
        return self._plan_point_report(message, value)

    # -- hull_collapse ---------------------------------------------------------

    def _collapse_point(self) -> np.ndarray:
        """The single point every faulty process reports everywhere.

        Chosen with the geometry kernel as a point of ``Gamma`` of the honest
        inputs — a point inside every ``(h - f)``-subset hull of the honest
        cloud, so the faulty reports can never be pruned away as outliers.
        When that ``Gamma`` is empty (honest cloud smaller than
        ``(d+1)f + 1``), the honest centroid plays the same role.
        """
        if self._collapse_target is None:
            target = self.params.get("target")
            if target is not None:
                point = np.asarray(target, dtype=float)
                if point.shape != (self._dimension,):
                    raise ConfigurationError(
                        f"hull_collapse target has shape {point.shape}, "
                        f"expected ({self._dimension},)"
                    )
            else:
                point = default_kernel.point(
                    self._honest_cloud, self.registry.configuration.fault_bound
                )
                if point is None:
                    point = self._honest_cloud.mean(axis=0)
            self._collapse_target = np.asarray(point, dtype=float)
        return self._collapse_target

    # -- adaptive_extreme ------------------------------------------------------

    def _adaptive_aim(self, round_key: int) -> np.ndarray:
        """The coalition's report for ``round_key``, re-aimed at the current hull.

        Uses the honest values most recently sighted in the traffic (falling
        back to the honest inputs before any traffic): the aim is the sighted
        point farthest from the sighted centroid, pushed ``push_scale`` times
        beyond it — just outside the current honest hull boundary, following
        the honest states as the protocol contracts them.
        """
        aim = self._aims.get(round_key)
        if aim is not None:
            return aim
        cloud = self._honest_cloud
        for earlier in range(round_key, -1, -1):
            sighted = self._sightings.get(earlier)
            if sighted:
                cloud = np.vstack(sighted)
                break
        centroid = cloud.mean(axis=0)
        offsets = cloud - centroid
        extreme = cloud[int(np.argmax(np.linalg.norm(offsets, axis=1)))]
        push_scale = float(self.params.get("push_scale", 3.0))
        aim = centroid + push_scale * (extreme - centroid)
        self._aims[round_key] = aim
        return aim

    # -- shared payload rewriting ----------------------------------------------

    def _plan_point_report(self, message: Message, point: np.ndarray) -> Sequence[Message]:
        """Replace every value leaf of ``message`` with ``point`` (consistently).

        Scalar leaves (per-coordinate broadcasts) become the point's first
        coordinate; vector leaves must match the registry dimension — a
        mismatch means the coordinator misunderstood the protocol's payload
        structure, which is an error, not a silent pass-through.
        """

        def corrupt_scalar(_: float) -> float:
            return float(point[0])

        def corrupt_vector(vector: np.ndarray) -> np.ndarray:
            if vector.shape != point.shape:
                raise ByzantineBehaviorError(
                    f"coordinated report of shape {point.shape} cannot replace a "
                    f"value leaf of shape {vector.shape} in {message.describe()}"
                )
            return point.copy()

        payload = mutate_numeric_leaves(message.payload, corrupt_scalar, corrupt_vector)
        return [replace_payload(message, payload)]
