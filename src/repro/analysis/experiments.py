"""Experiment runners: one function per experiment id in ``DESIGN.md``.

Each function declares its experiment against the unified simulation engine
(:mod:`repro.engine`) and reduces the results to a list of row dictionaries;
the benchmark harness in ``benchmarks/`` times and prints them, and
``EXPERIMENTS.md`` records the expected shape.

Protocol experiments (E1, E5, E8, E9, E11, E14, E16) are
:class:`~repro.engine.Campaign` declarations — lists of
:class:`~repro.engine.TrialSpec` whose results are mapped to table rows.
Analytic experiments (the impossibility constructions, safe-area geometry and
bound tables) declare their sweeps with
:func:`~repro.engine.parameter_grid` and compute each row directly.  Default
parameters are sized so that every experiment completes in seconds on a
laptop; the benchmarks pass larger sweeps, and ``python -m repro.cli
campaign`` scales the same trial shape to arbitrary grids.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.approx_bvc import contraction_factor
from repro.core.conditions import (
    minimum_processes_approx_async,
    minimum_processes_exact_sync,
    minimum_processes_restricted_async,
    minimum_processes_restricted_sync,
    resilience_table,
)
from repro.core.impossibility import analyze_async_necessity, analyze_sync_necessity
from repro.core.safe_area import safe_area_contains, safe_area_point, safe_area_subset_count
from repro.analysis.convergence import measured_contraction_factors, max_range_per_round
from repro.engine import (
    COORDINATED_STRATEGY_NAMES,
    Campaign,
    CampaignSession,
    STRATEGY_NAMES,
    TrialResult,
    TrialSpec,
    make_strategy,
    parameter_grid,
)
from repro.geometry.kernel import GammaKernel, pruned_subset_family, safe_area_points_batch
from repro.geometry.multisets import PointMultiset
from repro.geometry.tverberg import figure1_instance, find_tverberg_partition, verify_tverberg_partition
from repro.workloads.generators import intro_counterexample_registry

__all__ = [
    "make_strategy",
    "set_result_store",
    "experiment_baseline_validity",
    "experiment_sync_impossibility",
    "experiment_async_impossibility",
    "experiment_safe_area_existence",
    "experiment_safe_area_cost",
    "experiment_figure1_tverberg",
    "experiment_exact_bvc",
    "experiment_approx_bvc",
    "experiment_contraction_rate",
    "experiment_restricted_rounds",
    "experiment_resilience_landscape",
    "experiment_applications",
    "experiment_kernel_speedup",
    "experiment_adversary_coordination",
]


# Process-wide results store for campaign-backed experiments (None = run
# everything live).  Set via set_result_store / the CLI's `run --store`.
_RESULT_STORE = None


def set_result_store(store):
    """Route campaign-backed experiments through a results store; returns the previous setting.

    ``store`` is a :class:`~repro.store.backend.ResultStore`, a path (opened
    per campaign via :func:`~repro.store.backend.open_store`), or ``None`` to
    go back to live execution.  With a populated store, experiment tables are
    served from cached rows — byte-identical to a live run, courtesy of the
    engine's purity guarantee — and any trials the store is missing are run
    and recorded.
    """
    global _RESULT_STORE
    previous = _RESULT_STORE
    _RESULT_STORE = store
    return previous


def _run(campaign: Campaign) -> list[TrialResult]:
    """Execute a campaign inline and return its results in trial order.

    Experiments are small by construction (the CLI ``campaign`` command is the
    parallel path for big sweeps), so they run single-worker on the ``auto``
    engine: eligible synchronous trials execute on the columnar substrate
    (byte-identical results, less wall-clock), the rest on the object runtime.
    When a results store is configured (:func:`set_result_store`), cached
    trials are served from it instead of re-executing.  Any trial error is a
    bug in the experiment declaration and is surfaced immediately.
    """
    session = CampaignSession(campaign, workers=1, engine="auto", store=_RESULT_STORE)
    results = []
    rows = session.rows()
    try:
        for result in rows:
            if not result.ok:
                raise RuntimeError(
                    f"trial {result.spec.trial_index} failed: {result.error}"
                )
            results.append(result)
    finally:
        # Closing the row iterator releases claims and closes a
        # session-owned store even when a failing trial aborts the loop.
        rows.close()
    return results


# ---------------------------------------------------------------------------
# E1 — intro counterexample: coordinate-wise scalar consensus violates validity
# ---------------------------------------------------------------------------

def experiment_baseline_validity() -> list[dict[str, object]]:
    """Run the intro counterexample under the coordinate-wise baseline and under Exact BVC.

    The baseline row uses the paper's literal 4-process example; the Exact BVC
    rows use the extended 5-process variant (the vector algorithm needs
    ``n >= (d+1)f + 1 = 5`` for ``d = 3``), on which the baseline *still*
    violates vector validity under the same attack.
    """
    # The faulty process pushes every coordinate towards 1/6, the value that
    # makes the per-coordinate medians land outside the honest hull.
    attack = {"coordinate": 0, "target": 1.0 / 6.0}

    def intro_spec(protocol: str, extended: bool) -> TrialSpec:
        return TrialSpec(
            protocol=protocol,
            workload="intro_counterexample",
            workload_params={"extended": extended},
            adversary="coordinate_attack",
            adversary_params=attack,
            process_count=5 if extended else 4,
            dimension=3,
            fault_bound=1,
        )

    campaign = Campaign.from_specs(
        "E1-baseline-validity",
        [
            intro_spec("coordinatewise", extended=False),
            intro_spec("coordinatewise", extended=True),
            intro_spec("exact", extended=True),
        ],
    )
    labels = (
        "coordinate-wise scalar consensus (n=4, paper example)",
        "coordinate-wise scalar consensus (n=5)",
        "Exact BVC (Gamma decision, n=5)",
    )
    return [
        {
            "algorithm": label,
            "decision_sum": float(np.sum(result.decision)),
            "agreement": result.agreement,
            "vector_validity": result.validity,
            "hull_distance": result.max_hull_distance,
        }
        for label, result in zip(labels, _run(campaign))
    ]


# ---------------------------------------------------------------------------
# E2 / E7 — impossibility constructions
# ---------------------------------------------------------------------------

def experiment_sync_impossibility(dimensions: Sequence[int] = (1, 2, 3, 4, 5)) -> list[dict[str, object]]:
    """Theorem 1 necessity: Gamma emptiness at n = d + 1 versus n = d + 2 (f = 1)."""
    rows = []
    for point in parameter_grid(dimension=dimensions):
        dimension = point["dimension"]
        below = analyze_sync_necessity(dimension, process_count=dimension + 1)
        at_bound = analyze_sync_necessity(dimension, process_count=dimension + 2)
        rows.append(
            {
                "dimension": dimension,
                "n_below_bound": dimension + 1,
                "gamma_empty_below": below.gamma_empty,
                "n_at_bound": dimension + 2,
                "gamma_empty_at_bound": at_bound.gamma_empty,
                "required_n": minimum_processes_exact_sync(dimension, 1),
            }
        )
    return rows


def experiment_async_impossibility(
    dimensions: Sequence[int] = (1, 2, 3, 4, 5), epsilon: float = 0.25
) -> list[dict[str, object]]:
    """Theorem 4 necessity: forced decisions 4*epsilon apart at n = d + 2 (f = 1)."""
    rows = []
    for point in parameter_grid(dimension=dimensions):
        dimension = point["dimension"]
        witness = analyze_async_necessity(dimension, epsilon=epsilon)
        rows.append(
            {
                "dimension": dimension,
                "n_analyzed": dimension + 2,
                "epsilon": epsilon,
                "max_forced_gap": witness.max_forced_gap,
                "violates_epsilon_agreement": witness.violates_epsilon_agreement,
                "required_n": minimum_processes_approx_async(dimension, 1),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E3 / E6 / E10 — safe area existence and cost
# ---------------------------------------------------------------------------

def experiment_safe_area_existence(
    dimensions: Sequence[int] = (1, 2, 3),
    fault_bounds: Sequence[int] = (1, 2),
    samples: int = 5,
    seed: int = 7,
) -> list[dict[str, object]]:
    """Lemma 1: Gamma is non-empty on random multisets of size (d+1)f + 1."""
    rng = np.random.default_rng(seed)
    rows = []
    for point in parameter_grid(dimension=dimensions, fault_bound=fault_bounds):
        dimension, fault_bound = point["dimension"], point["fault_bound"]
        size = (dimension + 1) * fault_bound + 1
        non_empty = 0
        tverberg_agree = 0
        for _ in range(samples):
            cloud = rng.uniform(-1.0, 1.0, size=(size, dimension))
            multiset = PointMultiset(cloud)
            gamma_point = safe_area_point(multiset, fault_bound)
            if gamma_point is not None:
                non_empty += 1
            if dimension <= 2 and size <= 7:
                partition = find_tverberg_partition(multiset, parts=fault_bound + 1)
                if partition is not None:
                    tverberg_agree += 1
        rows.append(
            {
                "dimension": dimension,
                "fault_bound": fault_bound,
                "multiset_size": size,
                "samples": samples,
                "gamma_nonempty": non_empty,
                "tverberg_partition_found": tverberg_agree if dimension <= 2 and size <= 7 else None,
            }
        )
    return rows


def experiment_safe_area_cost(
    configurations: Sequence[tuple[int, int, int]] = ((4, 1, 1), (5, 2, 1), (6, 3, 1), (7, 2, 2), (9, 2, 2)),
    seed: int = 11,
) -> list[dict[str, object]]:
    """Section 2.2 LP cost: subset count, pruned block count, LP feasibility."""
    rng = np.random.default_rng(seed)
    rows = []
    for point in parameter_grid(configuration=configurations):
        process_count, dimension, fault_bound = point["configuration"]
        cloud = rng.uniform(0.0, 1.0, size=(process_count, dimension))
        gamma_point = safe_area_point(PointMultiset(cloud), fault_bound)
        pruned_blocks = len(pruned_subset_family(cloud, fault_bound))
        rows.append(
            {
                "n": process_count,
                "d": dimension,
                "f": fault_bound,
                "subsets_in_gamma": safe_area_subset_count(process_count, fault_bound),
                "kernel_blocks": pruned_blocks,
                "point_found": gamma_point is not None,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E4 — Figure 1: Tverberg partition of the heptagon
# ---------------------------------------------------------------------------

def experiment_figure1_tverberg() -> list[dict[str, object]]:
    """Reproduce Figure 1: partition the regular heptagon into 3 parts with a common point."""
    multiset, parts = figure1_instance()
    partition = find_tverberg_partition(multiset, parts)
    rows: list[dict[str, object]] = []
    if partition is None:
        rows.append({"parts": parts, "found": False})
        return rows
    witness = verify_tverberg_partition(partition.multiset, partition.blocks)
    rows.append(
        {
            "points": len(multiset),
            "dimension": multiset.dimension,
            "parts": parts,
            "found": True,
            "block_sizes": tuple(len(block) for block in partition.blocks),
            "witness_in_all_hulls": witness is not None,
            "witness_x": float(partition.witness[0]),
            "witness_y": float(partition.witness[1]),
        }
    )
    return rows


# ---------------------------------------------------------------------------
# E5 — Exact BVC under attack, at the bound
# ---------------------------------------------------------------------------

def experiment_exact_bvc(
    configurations: Sequence[tuple[int, int]] = ((2, 1), (3, 1), (2, 2)),
    strategies: Sequence[str] = STRATEGY_NAMES,
    seed: int = 3,
) -> list[dict[str, object]]:
    """Theorem 3: Exact BVC satisfies agreement + validity at n = max(3f+1,(d+1)f+1)."""
    campaign = Campaign.from_specs(
        "E5-exact-bvc",
        [
            TrialSpec(
                protocol="exact",
                workload="uniform_box",
                adversary=strategy_name,
                process_count=minimum_processes_exact_sync(dimension, fault_bound),
                dimension=dimension,
                fault_bound=fault_bound,
                workload_seed=seed + dimension * 10 + fault_bound,
                adversary_seed=seed,
            )
            for dimension, fault_bound in configurations
            for strategy_name in strategies
        ],
    )
    return [
        {
            "n": result.spec.process_count,
            "d": result.spec.dimension,
            "f": result.spec.fault_bound,
            "attack": result.spec.adversary,
            "agreement": result.agreement,
            "validity": result.validity,
            "rounds": result.rounds,
            "messages": result.messages_sent,
        }
        for result in _run(campaign)
    ]


# ---------------------------------------------------------------------------
# E8 — Approximate BVC: epsilon-agreement, validity, rounds vs the bound
# ---------------------------------------------------------------------------

def experiment_approx_bvc(
    configurations: Sequence[tuple[int, int]] = ((1, 1), (2, 1)),
    strategies: Sequence[str] = ("crash", "outside_hull"),
    epsilon: float = 0.2,
    seed: int = 5,
    lagging: bool = False,
) -> list[dict[str, object]]:
    """Theorem 5: the asynchronous algorithm achieves epsilon-agreement and validity."""
    campaign = Campaign.from_specs(
        "E8-approx-bvc",
        [
            TrialSpec(
                protocol="approx",
                workload="uniform_box",
                adversary=strategy_name,
                scheduler="lagging" if lagging else "random",
                process_count=minimum_processes_approx_async(dimension, fault_bound),
                dimension=dimension,
                fault_bound=fault_bound,
                epsilon=epsilon,
                workload_seed=seed + dimension * 10 + fault_bound,
                adversary_seed=seed,
                scheduler_seed=seed,
            )
            for dimension, fault_bound in configurations
            for strategy_name in strategies
        ],
    )
    return [
        {
            "n": result.spec.process_count,
            "d": result.spec.dimension,
            "f": result.spec.fault_bound,
            "attack": result.spec.adversary,
            "epsilon": epsilon,
            "eps_agreement": result.agreement,
            "validity": result.validity,
            "max_disagreement": result.max_disagreement,
            "rounds": result.rounds,
            "deliveries": result.deliveries,
        }
        for result in _run(campaign)
    ]


# ---------------------------------------------------------------------------
# E9 — per-round contraction versus the (1 - gamma) bound
# ---------------------------------------------------------------------------

def experiment_contraction_rate(
    dimension: int = 2,
    fault_bound: int = 1,
    rounds: int = 6,
    epsilon: float = 0.05,
    seed: int = 9,
) -> list[dict[str, object]]:
    """Equation (12): measured per-round contraction of the honest-state range."""
    process_count = minimum_processes_approx_async(dimension, fault_bound)
    campaign = Campaign.from_specs(
        "E9-contraction-rate",
        [
            TrialSpec(
                protocol="approx",
                workload="uniform_box",
                adversary="outside_hull",
                scheduler="random",
                process_count=process_count,
                dimension=dimension,
                fault_bound=fault_bound,
                epsilon=epsilon,
                max_rounds_override=rounds,
                workload_seed=seed,
                adversary_seed=seed,
                scheduler_seed=seed,
                record_history=True,
            )
        ],
    )
    (result,) = _run(campaign)
    gamma = contraction_factor(process_count, fault_bound, "witness_subsets")
    ranges = max_range_per_round(result.state_histories)
    factors = measured_contraction_factors(result.state_histories)
    rows = []
    for round_index in range(1, len(ranges)):
        rows.append(
            {
                "round": round_index,
                "range_before": float(ranges[round_index - 1]),
                "range_after": float(ranges[round_index]),
                "measured_contraction": float(factors[round_index - 1]),
                "paper_bound_contraction": 1.0 - gamma,
                "within_bound": bool(factors[round_index - 1] <= 1.0 - gamma + 1e-9),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E11 / E12 — restricted round structures at their bounds
# ---------------------------------------------------------------------------

def experiment_restricted_rounds(
    dimension: int = 2,
    fault_bound: int = 1,
    epsilon: float = 0.2,
    strategies: Sequence[str] = ("crash", "outside_hull"),
    seed: int = 13,
    sync_rounds_override: int | None = None,
    async_rounds_override: int | None = 12,
) -> list[dict[str, object]]:
    """Theorem 6: restricted-round algorithms at n = (d+2)f+1 (sync) and (d+4)f+1 (async).

    The asynchronous variant's static round threshold is extremely conservative
    (``gamma = 1/(n * C(n-f, n-3f))``); by default it is capped at 12 rounds and
    epsilon-agreement is verified on the measured decisions, which is what the
    benchmark reports.  Pass ``async_rounds_override=None`` to run the full
    static rule.
    """
    sync_n = minimum_processes_restricted_sync(dimension, fault_bound)
    async_n = minimum_processes_restricted_async(dimension, fault_bound)

    def restricted_spec(structure: str, strategy_name: str) -> TrialSpec:
        synchronous = structure == "restricted synchronous"
        return TrialSpec(
            protocol="restricted_sync" if synchronous else "restricted_async",
            workload="uniform_box",
            adversary=strategy_name,
            scheduler="random",
            process_count=sync_n if synchronous else async_n,
            dimension=dimension,
            fault_bound=fault_bound,
            epsilon=epsilon,
            max_rounds_override=sync_rounds_override if synchronous else async_rounds_override,
            workload_seed=seed if synchronous else seed + 1,
            adversary_seed=seed,
            scheduler_seed=seed,
        )

    structures = ("restricted synchronous", "restricted asynchronous")
    campaign = Campaign.from_specs(
        "E11-restricted-rounds",
        [
            restricted_spec(structure, strategy_name)
            for structure in structures
            for strategy_name in strategies
        ],
    )
    results = _run(campaign)
    return [
        {
            "structure": structure,
            "n": result.spec.process_count,
            "d": dimension,
            "f": fault_bound,
            "attack": result.spec.adversary,
            "eps_agreement": result.agreement,
            "validity": result.validity,
            "rounds": result.rounds,
        }
        for structure, result in zip(
            [structure for structure in structures for _ in strategies], results
        )
    ]


# ---------------------------------------------------------------------------
# E13 — resilience landscape
# ---------------------------------------------------------------------------

def experiment_resilience_landscape(
    dimensions: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 8),
    fault_bounds: Sequence[int] = (1, 2, 3, 4),
) -> list[dict[str, object]]:
    """Minimum n for every setting across (d, f) — the paper's bounds as a table."""
    return [dict(row) for row in resilience_table(list(dimensions), list(fault_bounds))]


# ---------------------------------------------------------------------------
# E15 — geometry kernel: pruned + cached + batched Gamma vs the literal LP
# ---------------------------------------------------------------------------

def experiment_kernel_speedup(
    configurations: Sequence[tuple[int, int, int]] = ((7, 2, 2), (9, 2, 2), (11, 2, 3)),
    seed: int = 17,
    batch_size: int = 8,
) -> list[dict[str, object]]:
    """Kernel vs oracle: block counts, wall-clock, and answer agreement.

    One row per ``(n, d, f)`` configuration: the oracle is the literal
    Section 2.2 enumeration (``safe_area_point``), the kernel the pruned /
    cached / batched path of :mod:`repro.geometry.kernel`.  ``batch_us_per_q``
    amortises one fused batch of ``batch_size`` queries.  Defaults are sized
    for the CLI (seconds); the benchmark suite passes the heavy grid where
    the oracle alone takes tens of seconds per query.
    """
    import time

    rng = np.random.default_rng(seed)
    kernel = GammaKernel()
    rows: list[dict[str, object]] = []
    for point in parameter_grid(configuration=configurations):
        process_count, dimension, fault_bound = point["configuration"]
        cloud = rng.uniform(0.0, 1.0, size=(process_count, dimension))
        objective = np.zeros(dimension)
        objective[0] = 1.0

        start = time.perf_counter()
        oracle_point = safe_area_point(cloud, fault_bound, objective=objective)
        oracle_seconds = time.perf_counter() - start

        kernel.point(cloud, fault_bound, objective=objective)  # warm the template
        start = time.perf_counter()
        kernel_point = kernel.point(cloud, fault_bound, objective=objective)
        kernel_seconds = time.perf_counter() - start

        batch_clouds = [
            rng.uniform(0.0, 1.0, size=(process_count, dimension)) for _ in range(batch_size)
        ]
        start = time.perf_counter()
        batch_points = safe_area_points_batch(batch_clouds, fault_bound, objective=objective)
        batch_seconds = time.perf_counter() - start

        full_blocks = safe_area_subset_count(process_count, fault_bound)
        pruned_blocks = len(pruned_subset_family(cloud, fault_bound))
        agree = (
            oracle_point is not None
            and kernel_point is not None
            and bool(abs(float(oracle_point[0]) - float(kernel_point[0])) < 1e-6)
            and safe_area_contains(cloud, fault_bound, kernel_point, tolerance=1e-5)
        )
        rows.append(
            {
                "n": process_count,
                "d": dimension,
                "f": fault_bound,
                "blocks_full": full_blocks,
                "blocks_pruned": pruned_blocks,
                "oracle_ms": round(oracle_seconds * 1e3, 3),
                "kernel_ms": round(kernel_seconds * 1e3, 3),
                "speedup": round(oracle_seconds / max(kernel_seconds, 1e-9), 1),
                "batch_us_per_q": round(batch_seconds / len(batch_clouds) * 1e6, 1),
                "batch_all_found": all(point is not None for point in batch_points),
                "kernel_matches_oracle": agree,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E16 — independent vs coordinated adversaries at the bound
# ---------------------------------------------------------------------------

def experiment_adversary_coordination(
    dimension: int = 2,
    fault_bound: int = 1,
    epsilon: float = 0.25,
    seed: int = 29,
) -> list[dict[str, object]]:
    """Independent vs coordinated attack success at the resilience bound.

    One row per adversary strategy: the four classic independent strategies
    plus the intro's coordinate attack, then the four coordinated strategies
    of :mod:`repro.byzantine.coordinator` (whole-coalition attacks with full
    knowledge of the honest inputs and the execution traffic).  Sync-suited
    strategies run Exact BVC at ``n = max(3f+1, (d+1)f+1)``;
    ``theorem4_scenario`` — crash faults coupled with a lagging scheduler —
    is an asynchronous execution and runs Approximate BVC at
    ``n = (d+2)f+1``.

    The paper's claim under test: *at* the bounds the algorithms withstand
    every adversary, coordinated or not — ``attack_succeeded`` must be False
    in every row, with the margins (``max_disagreement``,
    ``max_hull_distance``) showing how much harder the coordinated coalition
    pushes.
    """
    independent = STRATEGY_NAMES + ("coordinate_attack",)

    def coordination_spec(strategy_name: str) -> TrialSpec:
        asynchronous = strategy_name == "theorem4_scenario"
        protocol = "approx" if asynchronous else "exact"
        bound = (
            minimum_processes_approx_async(dimension, fault_bound)
            if asynchronous
            else minimum_processes_exact_sync(dimension, fault_bound)
        )
        params: dict[str, object] = {}
        if strategy_name == "coordinate_attack":
            params = {"coordinate": 0, "target": 5.0}
        return TrialSpec(
            protocol=protocol,
            workload="uniform_box",
            adversary=strategy_name,
            process_count=bound,
            dimension=dimension,
            fault_bound=fault_bound,
            epsilon=epsilon,
            adversary_params=params,
            workload_seed=seed,
            adversary_seed=seed,
            scheduler_seed=seed,
        )

    strategies = independent + COORDINATED_STRATEGY_NAMES
    campaign = Campaign.from_specs(
        "E16-adversary-coordination",
        [coordination_spec(strategy_name) for strategy_name in strategies],
    )
    return [
        {
            "attack": strategy_name,
            "family": "coordinated" if strategy_name in COORDINATED_STRATEGY_NAMES else "independent",
            "protocol": result.spec.protocol,
            "n": result.spec.process_count,
            "agreement": result.agreement,
            "validity": result.validity,
            "max_disagreement": round(float(result.max_disagreement), 6),
            "max_hull_distance": round(float(result.max_hull_distance), 6),
            "attack_succeeded": not (result.agreement and result.validity),
        }
        for strategy_name, result in zip(strategies, _run(campaign))
    ]


# ---------------------------------------------------------------------------
# E14 — application workloads
# ---------------------------------------------------------------------------

def experiment_applications(epsilon: float = 0.2, seed: int = 21) -> list[dict[str, object]]:
    """The intro's application workloads run end-to-end under attack."""
    campaign = Campaign.from_specs(
        "E14-applications",
        [
            # Probability vectors: exact synchronous agreement on a distribution.
            TrialSpec(
                protocol="exact",
                workload="probability_vector",
                adversary="outside_hull",
                process_count=5,
                dimension=3,
                fault_bound=1,
                workload_seed=seed,
                adversary_seed=seed,
            ),
            # Robot rendezvous: approximate asynchronous agreement on a meeting
            # point; n = (d+2)f + 1 = 6 for d = 3, f = 1.  The static round
            # threshold is very conservative for the arena-sized value range;
            # 15 rounds are ample in practice and epsilon-agreement is verified
            # on the measured decisions below.
            TrialSpec(
                protocol="approx",
                workload="robot_position",
                adversary="outside_hull",
                scheduler="random",
                process_count=6,
                dimension=3,
                fault_bound=1,
                epsilon=epsilon,
                max_rounds_override=15,
                workload_seed=seed,
                adversary_seed=seed,
                scheduler_seed=seed,
            ),
            # Gradient aggregation: restricted synchronous rounds, larger n.
            TrialSpec(
                protocol="restricted_sync",
                workload="gradient",
                adversary="random_noise",
                process_count=5,
                dimension=2,
                fault_bound=1,
                epsilon=epsilon,
                max_rounds_override=8,
                workload_seed=seed,
                adversary_seed=seed,
            ),
        ],
    )
    labels = (
        "probability vectors (exact, sync)",
        "robot rendezvous (approx, async)",
        "gradient aggregation (restricted, sync)",
    )
    rows: list[dict[str, object]] = []
    for label, result in zip(labels, _run(campaign)):
        decision = np.asarray(result.decision)
        is_distribution = (
            bool(abs(float(np.sum(decision)) - 1.0) < 1e-6 and np.all(decision >= -1e-9))
            if result.spec.workload == "probability_vector"
            else None
        )
        rows.append(
            {
                "workload": label,
                "n": result.spec.process_count,
                "d": result.spec.dimension,
                "f": result.spec.fault_bound,
                "agreement": result.agreement,
                "validity": result.validity,
                "decision_is_distribution": is_distribution,
            }
        )
    return rows
