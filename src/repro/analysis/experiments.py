"""Experiment runners: one function per experiment id in ``DESIGN.md``.

Each function runs the protocols / analyses for one experiment (E1-E14) and
returns a list of row dictionaries; the benchmark harness in ``benchmarks/``
times and prints them, and ``EXPERIMENTS.md`` records the expected shape.
Default parameters are sized so that every experiment completes in seconds on
a laptop; the benchmarks pass larger sweeps where appropriate.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.byzantine.adversary import MessageMutator
from repro.byzantine.strategies import (
    CoordinateAttackStrategy,
    CrashStrategy,
    EquivocationStrategy,
    OutsideHullStrategy,
    RandomNoiseStrategy,
)
from repro.core.approx_bvc import contraction_factor, round_threshold, run_approx_bvc
from repro.core.baselines import run_coordinatewise_consensus
from repro.core.conditions import (
    SystemConfiguration,
    minimum_processes_approx_async,
    minimum_processes_exact_sync,
    minimum_processes_restricted_async,
    minimum_processes_restricted_sync,
    resilience_table,
)
from repro.core.exact_bvc import run_exact_bvc
from repro.core.impossibility import analyze_async_necessity, analyze_sync_necessity
from repro.core.restricted_async import run_restricted_async_bvc
from repro.core.restricted_sync import run_restricted_sync_bvc
from repro.core.safe_area import safe_area_contains, safe_area_point, safe_area_subset_count
from repro.core.validity import check_approximate_outcome, check_exact_outcome
from repro.analysis.convergence import measured_contraction_factors, max_range_per_round
from repro.analysis.metrics import max_coordinate_disagreement, max_validity_violation
from repro.geometry.kernel import GammaKernel, pruned_subset_family, safe_area_points_batch
from repro.geometry.multisets import PointMultiset
from repro.geometry.tverberg import figure1_instance, find_tverberg_partition, verify_tverberg_partition
from repro.network.scheduler import LaggingScheduler, RandomScheduler
from repro.processes.registry import ProcessRegistry
from repro.workloads.generators import (
    gradient_registry,
    intro_counterexample_registry,
    probability_vector_registry,
    robot_position_registry,
    uniform_box_registry,
)

__all__ = [
    "make_strategy",
    "experiment_baseline_validity",
    "experiment_sync_impossibility",
    "experiment_async_impossibility",
    "experiment_safe_area_existence",
    "experiment_safe_area_cost",
    "experiment_figure1_tverberg",
    "experiment_exact_bvc",
    "experiment_approx_bvc",
    "experiment_contraction_rate",
    "experiment_restricted_rounds",
    "experiment_resilience_landscape",
    "experiment_applications",
    "experiment_kernel_speedup",
]

STRATEGY_NAMES = ("crash", "equivocate", "outside_hull", "random_noise")


def make_strategy(name: str, registry: ProcessRegistry, seed: int = 0) -> MessageMutator:
    """Build one of the named adversary strategies against the given registry."""
    honest_inputs = [registry.input_of(pid) for pid in registry.honest_ids]
    if name == "crash":
        return CrashStrategy(crash_round=1)
    if name == "equivocate":
        return EquivocationStrategy(value_pool=honest_inputs)
    if name == "outside_hull":
        return OutsideHullStrategy(offset=50.0, scale=5.0)
    if name == "random_noise":
        lower, upper = registry.value_bounds()
        spread = max(1.0, upper - lower)
        return RandomNoiseStrategy(low=lower - 5 * spread, high=upper + 5 * spread, seed=seed)
    raise ValueError(f"unknown strategy name: {name}")


def _mutators_for(registry: ProcessRegistry, strategy_name: str, seed: int = 0) -> dict[int, MessageMutator]:
    return {
        faulty_id: make_strategy(strategy_name, registry, seed=seed + faulty_id)
        for faulty_id in registry.faulty_ids
    }


# ---------------------------------------------------------------------------
# E1 — intro counterexample: coordinate-wise scalar consensus violates validity
# ---------------------------------------------------------------------------

def experiment_baseline_validity() -> list[dict[str, object]]:
    """Run the intro counterexample under the coordinate-wise baseline and under Exact BVC.

    The baseline row uses the paper's literal 4-process example; the Exact BVC
    rows use the extended 5-process variant (the vector algorithm needs
    ``n >= (d+1)f + 1 = 5`` for ``d = 3``), on which the baseline *still*
    violates vector validity under the same attack.
    """
    # The faulty process pushes every coordinate towards 1/6, the value that
    # makes the per-coordinate medians land outside the honest hull.
    def attack_for(registry: ProcessRegistry) -> dict[int, MessageMutator]:
        return {
            pid: CoordinateAttackStrategy(coordinate=0, target=1.0 / 6.0)
            for pid in registry.faulty_ids
        }

    rows: list[dict[str, object]] = []

    literal = intro_counterexample_registry()
    baseline = run_coordinatewise_consensus(literal, adversary_mutators=attack_for(literal))
    baseline_report = check_exact_outcome(literal, baseline.decisions)
    sample_decision = baseline.decisions[literal.honest_ids[0]]
    rows.append(
        {
            "algorithm": "coordinate-wise scalar consensus (n=4, paper example)",
            "decision_sum": float(np.sum(sample_decision)),
            "agreement": baseline_report.agreement_ok,
            "vector_validity": baseline_report.validity_ok,
            "hull_distance": baseline_report.max_hull_distance,
        }
    )

    extended = intro_counterexample_registry(extended=True)
    baseline5 = run_coordinatewise_consensus(extended, adversary_mutators=attack_for(extended))
    baseline5_report = check_exact_outcome(extended, baseline5.decisions)
    sample_decision = baseline5.decisions[extended.honest_ids[0]]
    rows.append(
        {
            "algorithm": "coordinate-wise scalar consensus (n=5)",
            "decision_sum": float(np.sum(sample_decision)),
            "agreement": baseline5_report.agreement_ok,
            "vector_validity": baseline5_report.validity_ok,
            "hull_distance": baseline5_report.max_hull_distance,
        }
    )

    exact = run_exact_bvc(extended, adversary_mutators=attack_for(extended))
    exact_report = check_exact_outcome(extended, exact.decisions)
    sample_decision = exact.decisions[extended.honest_ids[0]]
    rows.append(
        {
            "algorithm": "Exact BVC (Gamma decision, n=5)",
            "decision_sum": float(np.sum(sample_decision)),
            "agreement": exact_report.agreement_ok,
            "vector_validity": exact_report.validity_ok,
            "hull_distance": exact_report.max_hull_distance,
        }
    )
    return rows


# ---------------------------------------------------------------------------
# E2 / E7 — impossibility constructions
# ---------------------------------------------------------------------------

def experiment_sync_impossibility(dimensions: Sequence[int] = (1, 2, 3, 4, 5)) -> list[dict[str, object]]:
    """Theorem 1 necessity: Gamma emptiness at n = d + 1 versus n = d + 2 (f = 1)."""
    rows = []
    for dimension in dimensions:
        below = analyze_sync_necessity(dimension, process_count=dimension + 1)
        at_bound = analyze_sync_necessity(dimension, process_count=dimension + 2)
        rows.append(
            {
                "dimension": dimension,
                "n_below_bound": dimension + 1,
                "gamma_empty_below": below.gamma_empty,
                "n_at_bound": dimension + 2,
                "gamma_empty_at_bound": at_bound.gamma_empty,
                "required_n": minimum_processes_exact_sync(dimension, 1),
            }
        )
    return rows


def experiment_async_impossibility(
    dimensions: Sequence[int] = (1, 2, 3, 4, 5), epsilon: float = 0.25
) -> list[dict[str, object]]:
    """Theorem 4 necessity: forced decisions 4*epsilon apart at n = d + 2 (f = 1)."""
    rows = []
    for dimension in dimensions:
        witness = analyze_async_necessity(dimension, epsilon=epsilon)
        rows.append(
            {
                "dimension": dimension,
                "n_analyzed": dimension + 2,
                "epsilon": epsilon,
                "max_forced_gap": witness.max_forced_gap,
                "violates_epsilon_agreement": witness.violates_epsilon_agreement,
                "required_n": minimum_processes_approx_async(dimension, 1),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E3 / E6 / E10 — safe area existence and cost
# ---------------------------------------------------------------------------

def experiment_safe_area_existence(
    dimensions: Sequence[int] = (1, 2, 3),
    fault_bounds: Sequence[int] = (1, 2),
    samples: int = 5,
    seed: int = 7,
) -> list[dict[str, object]]:
    """Lemma 1: Gamma is non-empty on random multisets of size (d+1)f + 1."""
    rng = np.random.default_rng(seed)
    rows = []
    for dimension in dimensions:
        for fault_bound in fault_bounds:
            size = (dimension + 1) * fault_bound + 1
            non_empty = 0
            tverberg_agree = 0
            for _ in range(samples):
                cloud = rng.uniform(-1.0, 1.0, size=(size, dimension))
                multiset = PointMultiset(cloud)
                point = safe_area_point(multiset, fault_bound)
                if point is not None:
                    non_empty += 1
                if dimension <= 2 and size <= 7:
                    partition = find_tverberg_partition(multiset, parts=fault_bound + 1)
                    if partition is not None:
                        tverberg_agree += 1
            rows.append(
                {
                    "dimension": dimension,
                    "fault_bound": fault_bound,
                    "multiset_size": size,
                    "samples": samples,
                    "gamma_nonempty": non_empty,
                    "tverberg_partition_found": tverberg_agree if dimension <= 2 and size <= 7 else None,
                }
            )
    return rows


def experiment_safe_area_cost(
    configurations: Sequence[tuple[int, int, int]] = ((4, 1, 1), (5, 2, 1), (6, 3, 1), (7, 2, 2), (9, 2, 2)),
    seed: int = 11,
) -> list[dict[str, object]]:
    """Section 2.2 LP cost: subset count, pruned block count, LP feasibility."""
    rng = np.random.default_rng(seed)
    rows = []
    for process_count, dimension, fault_bound in configurations:
        cloud = rng.uniform(0.0, 1.0, size=(process_count, dimension))
        point = safe_area_point(PointMultiset(cloud), fault_bound)
        pruned_blocks = len(pruned_subset_family(cloud, fault_bound))
        rows.append(
            {
                "n": process_count,
                "d": dimension,
                "f": fault_bound,
                "subsets_in_gamma": safe_area_subset_count(process_count, fault_bound),
                "kernel_blocks": pruned_blocks,
                "point_found": point is not None,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E4 — Figure 1: Tverberg partition of the heptagon
# ---------------------------------------------------------------------------

def experiment_figure1_tverberg() -> list[dict[str, object]]:
    """Reproduce Figure 1: partition the regular heptagon into 3 parts with a common point."""
    multiset, parts = figure1_instance()
    partition = find_tverberg_partition(multiset, parts)
    rows: list[dict[str, object]] = []
    if partition is None:
        rows.append({"parts": parts, "found": False})
        return rows
    witness = verify_tverberg_partition(partition.multiset, partition.blocks)
    rows.append(
        {
            "points": len(multiset),
            "dimension": multiset.dimension,
            "parts": parts,
            "found": True,
            "block_sizes": tuple(len(block) for block in partition.blocks),
            "witness_in_all_hulls": witness is not None,
            "witness_x": float(partition.witness[0]),
            "witness_y": float(partition.witness[1]),
        }
    )
    return rows


# ---------------------------------------------------------------------------
# E5 — Exact BVC under attack, at the bound
# ---------------------------------------------------------------------------

def experiment_exact_bvc(
    configurations: Sequence[tuple[int, int]] = ((2, 1), (3, 1), (2, 2)),
    strategies: Sequence[str] = STRATEGY_NAMES,
    seed: int = 3,
) -> list[dict[str, object]]:
    """Theorem 3: Exact BVC satisfies agreement + validity at n = max(3f+1,(d+1)f+1)."""
    rows = []
    for dimension, fault_bound in configurations:
        process_count = minimum_processes_exact_sync(dimension, fault_bound)
        for strategy_name in strategies:
            registry = uniform_box_registry(
                process_count, dimension, fault_bound, seed=seed + dimension * 10 + fault_bound
            )
            mutators = _mutators_for(registry, strategy_name, seed=seed)
            outcome = run_exact_bvc(registry, adversary_mutators=mutators)
            report = check_exact_outcome(registry, outcome.decisions)
            rows.append(
                {
                    "n": process_count,
                    "d": dimension,
                    "f": fault_bound,
                    "attack": strategy_name,
                    "agreement": report.agreement_ok,
                    "validity": report.validity_ok,
                    "rounds": outcome.rounds_executed,
                    "messages": outcome.messages_sent,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# E8 — Approximate BVC: epsilon-agreement, validity, rounds vs the bound
# ---------------------------------------------------------------------------

def experiment_approx_bvc(
    configurations: Sequence[tuple[int, int]] = ((1, 1), (2, 1)),
    strategies: Sequence[str] = ("crash", "outside_hull"),
    epsilon: float = 0.2,
    seed: int = 5,
    lagging: bool = False,
) -> list[dict[str, object]]:
    """Theorem 5: the asynchronous algorithm achieves epsilon-agreement and validity."""
    rows = []
    for dimension, fault_bound in configurations:
        process_count = minimum_processes_approx_async(dimension, fault_bound)
        for strategy_name in strategies:
            registry = uniform_box_registry(
                process_count, dimension, fault_bound, seed=seed + dimension * 10 + fault_bound
            )
            mutators = _mutators_for(registry, strategy_name, seed=seed)
            scheduler = (
                LaggingScheduler(slow_processes=[registry.honest_ids[-1]], seed=seed)
                if lagging
                else RandomScheduler(seed)
            )
            outcome = run_approx_bvc(
                registry,
                epsilon=epsilon,
                adversary_mutators=mutators,
                scheduler=scheduler,
            )
            report = check_approximate_outcome(registry, outcome.decisions, epsilon=epsilon)
            rows.append(
                {
                    "n": process_count,
                    "d": dimension,
                    "f": fault_bound,
                    "attack": strategy_name,
                    "epsilon": epsilon,
                    "eps_agreement": report.agreement_ok,
                    "validity": report.validity_ok,
                    "max_disagreement": report.max_disagreement,
                    "rounds": outcome.rounds_executed,
                    "deliveries": outcome.deliveries,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# E9 — per-round contraction versus the (1 - gamma) bound
# ---------------------------------------------------------------------------

def experiment_contraction_rate(
    dimension: int = 2,
    fault_bound: int = 1,
    rounds: int = 6,
    epsilon: float = 0.05,
    seed: int = 9,
) -> list[dict[str, object]]:
    """Equation (12): measured per-round contraction of the honest-state range."""
    process_count = minimum_processes_approx_async(dimension, fault_bound)
    registry = uniform_box_registry(process_count, dimension, fault_bound, seed=seed)
    mutators = _mutators_for(registry, "outside_hull", seed=seed)
    outcome = run_approx_bvc(
        registry,
        epsilon=epsilon,
        adversary_mutators=mutators,
        max_rounds_override=rounds,
        scheduler=RandomScheduler(seed),
    )
    gamma = contraction_factor(process_count, fault_bound, "witness_subsets")
    ranges = max_range_per_round(outcome.state_histories)
    factors = measured_contraction_factors(outcome.state_histories)
    rows = []
    for round_index in range(1, len(ranges)):
        rows.append(
            {
                "round": round_index,
                "range_before": float(ranges[round_index - 1]),
                "range_after": float(ranges[round_index]),
                "measured_contraction": float(factors[round_index - 1]),
                "paper_bound_contraction": 1.0 - gamma,
                "within_bound": bool(factors[round_index - 1] <= 1.0 - gamma + 1e-9),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E11 / E12 — restricted round structures at their bounds
# ---------------------------------------------------------------------------

def experiment_restricted_rounds(
    dimension: int = 2,
    fault_bound: int = 1,
    epsilon: float = 0.2,
    strategies: Sequence[str] = ("crash", "outside_hull"),
    seed: int = 13,
    sync_rounds_override: int | None = None,
    async_rounds_override: int | None = 12,
) -> list[dict[str, object]]:
    """Theorem 6: restricted-round algorithms at n = (d+2)f+1 (sync) and (d+4)f+1 (async).

    The asynchronous variant's static round threshold is extremely conservative
    (``gamma = 1/(n * C(n-f, n-3f))``); by default it is capped at 12 rounds and
    epsilon-agreement is verified on the measured decisions, which is what the
    benchmark reports.  Pass ``async_rounds_override=None`` to run the full
    static rule.
    """
    rows = []
    sync_n = minimum_processes_restricted_sync(dimension, fault_bound)
    async_n = minimum_processes_restricted_async(dimension, fault_bound)
    for strategy_name in strategies:
        registry = uniform_box_registry(sync_n, dimension, fault_bound, seed=seed)
        mutators = _mutators_for(registry, strategy_name, seed=seed)
        outcome = run_restricted_sync_bvc(
            registry,
            epsilon=epsilon,
            adversary_mutators=mutators,
            max_rounds_override=sync_rounds_override,
        )
        report = check_approximate_outcome(registry, outcome.decisions, epsilon=epsilon)
        rows.append(
            {
                "structure": "restricted synchronous",
                "n": sync_n,
                "d": dimension,
                "f": fault_bound,
                "attack": strategy_name,
                "eps_agreement": report.agreement_ok,
                "validity": report.validity_ok,
                "rounds": outcome.rounds_executed,
            }
        )
    for strategy_name in strategies:
        registry = uniform_box_registry(async_n, dimension, fault_bound, seed=seed + 1)
        mutators = _mutators_for(registry, strategy_name, seed=seed)
        outcome = run_restricted_async_bvc(
            registry,
            epsilon=epsilon,
            adversary_mutators=mutators,
            scheduler=RandomScheduler(seed),
            max_rounds_override=async_rounds_override,
        )
        report = check_approximate_outcome(registry, outcome.decisions, epsilon=epsilon)
        rows.append(
            {
                "structure": "restricted asynchronous",
                "n": async_n,
                "d": dimension,
                "f": fault_bound,
                "attack": strategy_name,
                "eps_agreement": report.agreement_ok,
                "validity": report.validity_ok,
                "rounds": outcome.rounds_executed,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E13 — resilience landscape
# ---------------------------------------------------------------------------

def experiment_resilience_landscape(
    dimensions: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 8),
    fault_bounds: Sequence[int] = (1, 2, 3, 4),
) -> list[dict[str, object]]:
    """Minimum n for every setting across (d, f) — the paper's bounds as a table."""
    return [dict(row) for row in resilience_table(list(dimensions), list(fault_bounds))]


# ---------------------------------------------------------------------------
# E15 — geometry kernel: pruned + cached + batched Gamma vs the literal LP
# ---------------------------------------------------------------------------

def experiment_kernel_speedup(
    configurations: Sequence[tuple[int, int, int]] = ((7, 2, 2), (9, 2, 2), (11, 2, 3)),
    seed: int = 17,
    batch_size: int = 8,
) -> list[dict[str, object]]:
    """Kernel vs oracle: block counts, wall-clock, and answer agreement.

    One row per ``(n, d, f)`` configuration: the oracle is the literal
    Section 2.2 enumeration (``safe_area_point``), the kernel the pruned /
    cached / batched path of :mod:`repro.geometry.kernel`.  ``batch_us_per_q``
    amortises one fused batch of ``batch_size`` queries.  Defaults are sized
    for the CLI (seconds); the benchmark suite passes the heavy grid where
    the oracle alone takes tens of seconds per query.
    """
    import time

    rng = np.random.default_rng(seed)
    kernel = GammaKernel()
    rows: list[dict[str, object]] = []
    for process_count, dimension, fault_bound in configurations:
        cloud = rng.uniform(0.0, 1.0, size=(process_count, dimension))
        objective = np.zeros(dimension)
        objective[0] = 1.0

        start = time.perf_counter()
        oracle_point = safe_area_point(cloud, fault_bound, objective=objective)
        oracle_seconds = time.perf_counter() - start

        kernel.point(cloud, fault_bound, objective=objective)  # warm the template
        start = time.perf_counter()
        kernel_point = kernel.point(cloud, fault_bound, objective=objective)
        kernel_seconds = time.perf_counter() - start

        batch_clouds = [
            rng.uniform(0.0, 1.0, size=(process_count, dimension)) for _ in range(batch_size)
        ]
        start = time.perf_counter()
        batch_points = safe_area_points_batch(batch_clouds, fault_bound, objective=objective)
        batch_seconds = time.perf_counter() - start

        full_blocks = safe_area_subset_count(process_count, fault_bound)
        pruned_blocks = len(pruned_subset_family(cloud, fault_bound))
        agree = (
            oracle_point is not None
            and kernel_point is not None
            and bool(abs(float(oracle_point[0]) - float(kernel_point[0])) < 1e-6)
            and safe_area_contains(cloud, fault_bound, kernel_point, tolerance=1e-5)
        )
        rows.append(
            {
                "n": process_count,
                "d": dimension,
                "f": fault_bound,
                "blocks_full": full_blocks,
                "blocks_pruned": pruned_blocks,
                "oracle_ms": round(oracle_seconds * 1e3, 3),
                "kernel_ms": round(kernel_seconds * 1e3, 3),
                "speedup": round(oracle_seconds / max(kernel_seconds, 1e-9), 1),
                "batch_us_per_q": round(batch_seconds / len(batch_clouds) * 1e6, 1),
                "batch_all_found": all(point is not None for point in batch_points),
                "kernel_matches_oracle": agree,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E14 — application workloads
# ---------------------------------------------------------------------------

def experiment_applications(epsilon: float = 0.2, seed: int = 21) -> list[dict[str, object]]:
    """The intro's application workloads run end-to-end under attack."""
    rows: list[dict[str, object]] = []

    # Probability vectors: exact synchronous agreement on a distribution.
    prob_registry = probability_vector_registry(process_count=5, dimension=3, fault_bound=1, seed=seed)
    mutators = _mutators_for(prob_registry, "outside_hull", seed=seed)
    outcome = run_exact_bvc(prob_registry, adversary_mutators=mutators)
    report = check_exact_outcome(prob_registry, outcome.decisions)
    decision = outcome.decisions[prob_registry.honest_ids[0]]
    rows.append(
        {
            "workload": "probability vectors (exact, sync)",
            "n": 5,
            "d": 3,
            "f": 1,
            "agreement": report.agreement_ok,
            "validity": report.validity_ok,
            "decision_is_distribution": bool(abs(float(np.sum(decision)) - 1.0) < 1e-6 and np.all(decision >= -1e-9)),
        }
    )

    # Robot rendezvous: approximate asynchronous agreement on a meeting point.
    # n = (d+2)f + 1 = 6 for d = 3, f = 1.
    robot_registry = robot_position_registry(process_count=6, fault_bound=1, dimension=3, seed=seed)
    mutators = _mutators_for(robot_registry, "outside_hull", seed=seed)
    # The static round threshold is very conservative for the arena-sized value
    # range; 15 rounds are ample in practice and epsilon-agreement is verified
    # on the measured decisions below.
    outcome_async = run_approx_bvc(
        robot_registry,
        epsilon=epsilon,
        adversary_mutators=mutators,
        scheduler=RandomScheduler(seed),
        max_rounds_override=15,
    )
    report_async = check_approximate_outcome(robot_registry, outcome_async.decisions, epsilon=epsilon)
    rows.append(
        {
            "workload": "robot rendezvous (approx, async)",
            "n": 6,
            "d": 3,
            "f": 1,
            "agreement": report_async.agreement_ok,
            "validity": report_async.validity_ok,
            "decision_is_distribution": None,
        }
    )

    # Gradient aggregation: restricted synchronous rounds, larger n.
    gradient_reg = gradient_registry(process_count=5, dimension=2, fault_bound=1, seed=seed)
    mutators = _mutators_for(gradient_reg, "random_noise", seed=seed)
    outcome_grad = run_restricted_sync_bvc(
        gradient_reg, epsilon=epsilon, adversary_mutators=mutators, max_rounds_override=8
    )
    report_grad = check_approximate_outcome(gradient_reg, outcome_grad.decisions, epsilon=epsilon)
    rows.append(
        {
            "workload": "gradient aggregation (restricted, sync)",
            "n": 5,
            "d": 2,
            "f": 1,
            "agreement": report_grad.agreement_ok,
            "validity": report_grad.validity_ok,
            "decision_is_distribution": None,
        }
    )
    return rows
