"""Experiment support: convergence bookkeeping, metrics, runners and reporting."""

from repro.analysis.convergence import (
    ConvergenceTrace,
    contraction_factor,
    coordinate_ranges_per_round,
    max_range_per_round,
    measured_contraction_factors,
    round_threshold,
    rounds_to_reach,
    trace_from_histories,
)
from repro.analysis.metrics import (
    decision_cloud,
    decision_spread_summary,
    max_coordinate_disagreement,
    max_validity_violation,
    mean_distance_to_point,
)
from repro.analysis.report import format_value, render_series, render_table
from repro.analysis import experiments

__all__ = [
    "ConvergenceTrace",
    "contraction_factor",
    "coordinate_ranges_per_round",
    "max_range_per_round",
    "measured_contraction_factors",
    "round_threshold",
    "rounds_to_reach",
    "trace_from_histories",
    "decision_cloud",
    "decision_spread_summary",
    "max_coordinate_disagreement",
    "max_validity_violation",
    "mean_distance_to_point",
    "format_value",
    "render_series",
    "render_table",
    "experiments",
]
