"""Quantitative metrics reported by the experiments.

Thin, well-named wrappers over the geometry layer that turn raw protocol
outputs (decision dictionaries, state histories, registries) into the numbers
the benchmark tables print: disagreement, hull-violation distance, decision
quality relative to reference aggregates.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.geometry.convex_hull import distance_to_hull
from repro.geometry.points import as_point
from repro.processes.registry import ProcessRegistry

__all__ = [
    "decision_cloud",
    "max_coordinate_disagreement",
    "max_validity_violation",
    "mean_distance_to_point",
    "decision_spread_summary",
]


def decision_cloud(decisions: Mapping[int, Sequence[float]]) -> np.ndarray:
    """Stack a decision dictionary into a ``(k, d)`` array ordered by process id."""
    if not decisions:
        raise ConfigurationError("no decisions to analyse")
    rows = [as_point(vector) for _, vector in sorted(decisions.items())]
    return np.vstack(rows)


def max_coordinate_disagreement(decisions: Mapping[int, Sequence[float]]) -> float:
    """Largest per-coordinate gap between any two decisions (0 = exact agreement)."""
    cloud = decision_cloud(decisions)
    return float(np.max(cloud.max(axis=0) - cloud.min(axis=0)))


def max_validity_violation(registry: ProcessRegistry, decisions: Mapping[int, Sequence[float]]) -> float:
    """Chebyshev distance of the worst decision from the honest-input hull (0 = all valid)."""
    hull = registry.honest_input_multiset()
    cloud = decision_cloud(decisions)
    return max(distance_to_hull(hull, row) for row in cloud)


def mean_distance_to_point(decisions: Mapping[int, Sequence[float]], reference: Sequence[float]) -> float:
    """Mean Euclidean distance of the decisions from a reference point.

    Used by the robust-aggregation workload to compare the consensus decision
    against the honest centroid (the aggregate an attack-free system would
    produce).
    """
    cloud = decision_cloud(decisions)
    reference = as_point(reference, dimension=cloud.shape[1])
    return float(np.mean(np.linalg.norm(cloud - reference[None, :], axis=1)))


def decision_spread_summary(decisions: Mapping[int, Sequence[float]]) -> dict[str, float]:
    """Return a small dictionary of spread statistics of the decisions."""
    cloud = decision_cloud(decisions)
    spread = cloud.max(axis=0) - cloud.min(axis=0)
    return {
        "max_coordinate_spread": float(spread.max()),
        "mean_coordinate_spread": float(spread.mean()),
        "decision_count": float(cloud.shape[0]),
    }
