"""Convergence bookkeeping for the iterative algorithms.

The proof of Theorem 5 (Appendix E) shows that the per-coordinate range of the
honest states,

    rho_l[t] = Omega_l[t] - mu_l[t],

contracts by a factor of at least ``1 - gamma`` every asynchronous round
(Equation (12)), which yields the static round threshold
``1 + ceil(log_{1/(1-gamma)} (U - nu) / epsilon)``.  This module measures those
quantities on recorded state histories so the experiments can compare the
*measured* contraction against the paper's bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.approx_bvc import contraction_factor, round_threshold
from repro.exceptions import ConfigurationError

__all__ = [
    "contraction_factor",
    "round_threshold",
    "coordinate_ranges_per_round",
    "max_range_per_round",
    "measured_contraction_factors",
    "rounds_to_reach",
    "ConvergenceTrace",
    "trace_from_histories",
]


def _align_histories(state_histories: Mapping[int, Sequence[np.ndarray]]) -> list[np.ndarray]:
    """Return, per round index, the stack of honest states (truncated to the shortest history)."""
    if not state_histories:
        raise ConfigurationError("need at least one state history")
    histories = {pid: [np.asarray(state, dtype=float) for state in states] for pid, states in state_histories.items()}
    rounds = min(len(states) for states in histories.values())
    if rounds == 0:
        raise ConfigurationError("state histories are empty")
    return [
        np.vstack([histories[pid][round_index] for pid in sorted(histories)])
        for round_index in range(rounds)
    ]


def coordinate_ranges_per_round(state_histories: Mapping[int, Sequence[np.ndarray]]) -> np.ndarray:
    """Return a ``(rounds, d)`` array of ``rho_l[t]`` values.

    Row ``t`` holds, for every coordinate ``l``, the spread of the honest
    states after round ``t`` (row 0 is the spread of the inputs).
    """
    per_round = _align_histories(state_histories)
    return np.vstack([cloud.max(axis=0) - cloud.min(axis=0) for cloud in per_round])


def max_range_per_round(state_histories: Mapping[int, Sequence[np.ndarray]]) -> np.ndarray:
    """Return ``max_l rho_l[t]`` per round — the scalar the epsilon condition bounds."""
    return coordinate_ranges_per_round(state_histories).max(axis=1)


def measured_contraction_factors(state_histories: Mapping[int, Sequence[np.ndarray]]) -> np.ndarray:
    """Return the measured per-round contraction ``max_l rho_l[t] / max_l rho_l[t-1]``.

    Rounds where the previous range is (numerically) zero are reported as 0.0
    — the states have already collapsed to a point and stay there.
    """
    ranges = max_range_per_round(state_histories)
    factors = []
    for round_index in range(1, ranges.shape[0]):
        previous = ranges[round_index - 1]
        factors.append(0.0 if previous <= 1e-15 else float(ranges[round_index] / previous))
    return np.asarray(factors)


def rounds_to_reach(state_histories: Mapping[int, Sequence[np.ndarray]], epsilon: float) -> int | None:
    """Return the first round index at which every coordinate range is below ``epsilon``.

    Returns ``None`` when the recorded history never gets there (e.g. it was
    truncated by ``max_rounds_override``).
    """
    if epsilon <= 0:
        raise ConfigurationError("epsilon must be positive")
    ranges = max_range_per_round(state_histories)
    below = np.nonzero(ranges < epsilon)[0]
    return int(below[0]) if below.size else None


@dataclass(frozen=True)
class ConvergenceTrace:
    """Summary of a convergence experiment on one protocol run.

    Attributes:
        gamma: the theoretical contraction weight used by the algorithm.
        theoretical_rounds: the static round threshold the algorithm ran.
        measured_rounds_to_epsilon: first round with all ranges below epsilon
            (``None`` when not reached within the recorded history).
        initial_range: ``max_l rho_l[0]``.
        final_range: ``max_l rho_l`` after the last recorded round.
        worst_measured_contraction: the largest per-round contraction factor
            observed (must be at most ``1 - gamma`` up to numerical noise for
            the paper's bound to hold).
    """

    gamma: float
    theoretical_rounds: int
    measured_rounds_to_epsilon: int | None
    initial_range: float
    final_range: float
    worst_measured_contraction: float


def trace_from_histories(
    state_histories: Mapping[int, Sequence[np.ndarray]],
    epsilon: float,
    gamma: float,
    value_range: float | None = None,
) -> ConvergenceTrace:
    """Build a :class:`ConvergenceTrace` from recorded per-round states."""
    ranges = max_range_per_round(state_histories)
    factors = measured_contraction_factors(state_histories)
    initial_range = float(ranges[0])
    effective_range = value_range if value_range is not None else initial_range
    return ConvergenceTrace(
        gamma=gamma,
        theoretical_rounds=round_threshold(effective_range, epsilon, gamma),
        measured_rounds_to_epsilon=rounds_to_reach(state_histories, epsilon),
        initial_range=initial_range,
        final_range=float(ranges[-1]),
        worst_measured_contraction=float(factors.max()) if factors.size else 0.0,
    )
