"""Plain-text rendering of experiment results.

The paper being a theory paper, its "tables" are the bounds and constructions
themselves; the benchmark harness regenerates them as rows of measurements.
This module renders lists of row dictionaries as aligned fixed-width text so
that benchmark output and ``EXPERIMENTS.md`` show the same tables.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["format_value", "render_table", "render_series"]


def format_value(value: object, precision: int = 4) -> str:
    """Render one cell: floats with fixed precision, booleans as yes/no, rest via ``str``."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        return f"{value:.{precision}g}"
    if value is None:
        return "-"
    return str(value)


def render_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
    precision: int = 4,
) -> str:
    """Render rows (dictionaries) as an aligned text table.

    Column order follows ``columns`` when given, otherwise the key order of the
    first row.  Missing cells render as ``-``.
    """
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered_rows = [
        [format_value(row.get(column), precision) for column in columns] for row in rows
    ]
    widths = [
        max(len(str(column)), *(len(rendered[index]) for rendered in rendered_rows))
        for index, column in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for rendered in rendered_rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(rendered, widths)))
    return "\n".join(lines)


def render_series(values: Iterable[float], label: str, precision: int = 4) -> str:
    """Render a numeric series on one line: ``label: v0, v1, ...``."""
    rendered = ", ".join(format_value(float(value), precision) for value in values)
    return f"{label}: {rendered}"
