"""The complete-graph network: one FIFO channel per ordered process pair.

:class:`CompleteGraphNetwork` owns the channels and offers the two access
patterns the runtimes need:

* the synchronous runtime drains all channels between rounds;
* the asynchronous runtime asks which channels have messages in flight and
  delivers from one of them at a time, as chosen by a scheduler.

The network also keeps simple traffic counters (messages sent / delivered per
channel) that the benchmarks report as the message-complexity measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.exceptions import ConfigurationError, SchedulerError
from repro.network.channel import FifoChannel
from repro.network.message import Message

__all__ = ["CompleteGraphNetwork", "TrafficStats"]


@dataclass(frozen=True)
class TrafficStats:
    """Aggregate traffic counters for a finished run.

    ``messages_dropped`` counts messages a runtime refused to put on the
    network (self-addressed or to an unknown recipient — typically Byzantine
    output); the network itself never drops a message once sent.
    """

    messages_sent: int
    messages_delivered: int
    messages_in_flight: int
    messages_dropped: int = 0


@dataclass
class CompleteGraphNetwork:
    """All-to-all network of reliable FIFO channels over ``process_ids``."""

    process_ids: tuple[int, ...]
    _channels: dict[tuple[int, int], FifoChannel] = field(default_factory=dict)
    messages_sent: int = 0
    messages_delivered: int = 0

    def __init__(self, process_ids: Iterable[int]) -> None:
        ids = tuple(process_ids)
        if len(ids) < 2:
            raise ConfigurationError("a network needs at least two processes")
        if len(set(ids)) != len(ids):
            raise ConfigurationError(f"duplicate process ids: {ids}")
        self.process_ids = ids
        self._channels = {}
        self.messages_sent = 0
        self.messages_delivered = 0
        for sender in ids:
            for recipient in ids:
                if sender != recipient:
                    self._channels[(sender, recipient)] = FifoChannel(sender, recipient)

    # -- sending --------------------------------------------------------------

    def channel(self, sender: int, recipient: int) -> FifoChannel:
        """Return the directed channel ``sender -> recipient``."""
        try:
            return self._channels[(sender, recipient)]
        except KeyError as error:
            raise SchedulerError(f"no channel {sender} -> {recipient} in this network") from error

    def send(self, message: Message) -> None:
        """Put a message in flight on its channel."""
        if message.recipient == message.sender:
            raise SchedulerError(f"self-addressed message: {message.describe()}")
        self.channel(message.sender, message.recipient).send(message)
        self.messages_sent += 1

    def broadcast(self, messages: Iterable[Message]) -> None:
        """Send every message in ``messages``."""
        for message in messages:
            self.send(message)

    # -- delivery -------------------------------------------------------------

    def busy_channels(self) -> list[tuple[int, int]]:
        """Return the (sender, recipient) pairs that currently have messages in flight."""
        return [key for key, channel in self._channels.items() if not channel.is_empty()]

    def deliver_from(self, sender: int, recipient: int) -> Message:
        """Deliver (pop) the oldest message on the given channel."""
        message = self.channel(sender, recipient).deliver_next()
        self.messages_delivered += 1
        return message

    def drain_to(self, recipient: int) -> list[Message]:
        """Deliver every in-flight message addressed to ``recipient`` (per-channel FIFO order)."""
        delivered: list[Message] = []
        for sender in self.process_ids:
            if sender == recipient:
                continue
            delivered.extend(self.channel(sender, recipient).drain())
        self.messages_delivered += len(delivered)
        return delivered

    def drain_all(self) -> dict[int, list[Message]]:
        """Deliver every in-flight message, grouped by recipient (the synchronous round step)."""
        return {recipient: self.drain_to(recipient) for recipient in self.process_ids}

    def in_flight_count(self) -> int:
        """Return how many messages are currently queued anywhere in the network."""
        return sum(channel.in_flight() for channel in self._channels.values())

    def has_messages_in_flight(self) -> bool:
        """Return True when any channel still has an undelivered message."""
        return any(not channel.is_empty() for channel in self._channels.values())

    def stats(self) -> TrafficStats:
        """Return aggregate traffic counters."""
        return TrafficStats(
            messages_sent=self.messages_sent,
            messages_delivered=self.messages_delivered,
            messages_in_flight=self.in_flight_count(),
        )
