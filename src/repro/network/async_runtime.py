"""Event-driven asynchronous runtime.

The asynchronous model of the paper's Section 3: processes take steps at
arbitrary relative speeds and messages suffer arbitrary finite delays, subject
to reliable FIFO channels.  The runtime models this as a delivery loop: as
long as some honest process has not decided and some channel has a message in
flight, a :class:`~repro.network.scheduler.DeliveryScheduler` picks a channel
and its oldest message is handed to the recipient, which may react by sending
further messages.

The runtime is a thin scheduler-driven delivery strategy over
:class:`~repro.network.runtime_core.RuntimeCore`, which owns the process
table, the network and all decision/traffic bookkeeping.

Because the scheduler may only reorder (never drop) messages, every execution
the runtime can produce is an admissible asynchronous execution; conversely,
adversarial schedulers (e.g. :class:`~repro.network.scheduler.LaggingScheduler`)
produce exactly the "slow process" executions the lower-bound arguments use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro.exceptions import TerminationError
from repro.network.message import Message
from repro.network.network import TrafficStats
from repro.network.runtime_core import RuntimeCore
from repro.network.scheduler import DeliveryScheduler, RandomScheduler
from repro.processes.process import AsyncProcess

__all__ = ["AsyncRunResult", "AsynchronousRuntime"]


@dataclass(frozen=True)
class AsyncRunResult:
    """Outcome of an asynchronous execution.

    Attributes:
        deliveries: how many messages were delivered in total.
        decisions: decision value per honest process id.
        traffic: network traffic counters, including the count of
            undeliverable (dropped) messages.
        undelivered: messages still in flight when the run stopped (honest
            processes had all decided; the remaining traffic is irrelevant to
            correctness but reported for completeness).
    """

    deliveries: int
    decisions: dict[int, object]
    traffic: TrafficStats
    undelivered: int


class AsynchronousRuntime:
    """Drive a set of :class:`AsyncProcess` objects with scheduler-chosen delays."""

    def __init__(
        self,
        processes: Mapping[int, AsyncProcess],
        honest_ids: tuple[int, ...] | None = None,
        scheduler: DeliveryScheduler | None = None,
        max_deliveries: int = 2_000_000,
        traffic_observer: Callable[[Message], None] | None = None,
    ) -> None:
        self._core = RuntimeCore(
            processes, honest_ids=honest_ids, kind="asynchronous", observer=traffic_observer
        )
        self._scheduler = scheduler if scheduler is not None else RandomScheduler(0)
        self._max_deliveries = max_deliveries
        self._started = False

    @property
    def network(self):
        """The underlying complete-graph network (exposed for inspection)."""
        return self._core.network

    # -- execution -----------------------------------------------------------------

    def run(self) -> AsyncRunResult:
        """Deliver messages until every honest process has decided.

        Raises :class:`TerminationError` if the delivery budget is exhausted or
        if the system goes quiescent (no message in flight) while some honest
        process is still undecided — both are liveness failures of the protocol
        under test.
        """
        core = self._core
        self._start_processes()
        deliveries = 0
        while not core.all_honest_decided():
            busy = core.network.busy_channels()
            if not busy:
                raise TerminationError(
                    "asynchronous run went quiescent with undecided honest processes "
                    f"{core.undecided_honest()}"
                )
            if deliveries >= self._max_deliveries:
                raise TerminationError(
                    f"asynchronous run exceeded the {self._max_deliveries}-delivery budget"
                )
            sender, recipient = self._scheduler.choose(busy)
            message = core.network.deliver_from(sender, recipient)
            deliveries += 1
            core.processes[recipient].on_message(message)
        return AsyncRunResult(
            deliveries=deliveries,
            decisions=core.collect_decisions(),
            traffic=core.traffic(),
            undelivered=core.network.in_flight_count(),
        )

    def _start_processes(self) -> None:
        if self._started:
            return
        self._started = True
        for process in self._core.processes.values():
            process.bind_transport(self._core.route)
        for process in self._core.processes.values():
            process.on_start()
