"""Event-driven asynchronous runtime.

The asynchronous model of the paper's Section 3: processes take steps at
arbitrary relative speeds and messages suffer arbitrary finite delays, subject
to reliable FIFO channels.  The runtime models this as a delivery loop: as
long as some honest process has not decided and some channel has a message in
flight, a :class:`~repro.network.scheduler.DeliveryScheduler` picks a channel
and its oldest message is handed to the recipient, which may react by sending
further messages.

Because the scheduler may only reorder (never drop) messages, every execution
the runtime can produce is an admissible asynchronous execution; conversely,
adversarial schedulers (e.g. :class:`~repro.network.scheduler.LaggingScheduler`)
produce exactly the "slow process" executions the lower-bound arguments use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.exceptions import ConfigurationError, TerminationError
from repro.network.network import CompleteGraphNetwork, TrafficStats
from repro.network.scheduler import DeliveryScheduler, RandomScheduler
from repro.processes.process import AsyncProcess

__all__ = ["AsyncRunResult", "AsynchronousRuntime"]


@dataclass(frozen=True)
class AsyncRunResult:
    """Outcome of an asynchronous execution.

    Attributes:
        deliveries: how many messages were delivered in total.
        decisions: decision value per honest process id.
        traffic: network traffic counters.
        undelivered: messages still in flight when the run stopped (honest
            processes had all decided; the remaining traffic is irrelevant to
            correctness but reported for completeness).
    """

    deliveries: int
    decisions: dict[int, object]
    traffic: TrafficStats
    undelivered: int


class AsynchronousRuntime:
    """Drive a set of :class:`AsyncProcess` objects with scheduler-chosen delays."""

    def __init__(
        self,
        processes: Mapping[int, AsyncProcess],
        honest_ids: tuple[int, ...] | None = None,
        scheduler: DeliveryScheduler | None = None,
        max_deliveries: int = 2_000_000,
    ) -> None:
        if len(processes) < 2:
            raise ConfigurationError("an asynchronous run needs at least two processes")
        for process_id, process in processes.items():
            if process.process_id != process_id:
                raise ConfigurationError(
                    f"process registered under id {process_id} reports id {process.process_id}"
                )
        self._processes = dict(processes)
        self._honest_ids = tuple(honest_ids) if honest_ids is not None else tuple(sorted(processes))
        unknown = set(self._honest_ids) - set(self._processes)
        if unknown:
            raise ConfigurationError(f"honest ids {sorted(unknown)} have no registered process")
        self._scheduler = scheduler if scheduler is not None else RandomScheduler(0)
        self._max_deliveries = max_deliveries
        self.network = CompleteGraphNetwork(sorted(self._processes))
        self._started = False

    # -- execution -----------------------------------------------------------------

    def run(self) -> AsyncRunResult:
        """Deliver messages until every honest process has decided.

        Raises :class:`TerminationError` if the delivery budget is exhausted or
        if the system goes quiescent (no message in flight) while some honest
        process is still undecided — both are liveness failures of the protocol
        under test.
        """
        self._start_processes()
        deliveries = 0
        while not self._all_honest_decided():
            busy = self.network.busy_channels()
            if not busy:
                undecided = [pid for pid in self._honest_ids if not self._processes[pid].has_decided()]
                raise TerminationError(
                    f"asynchronous run went quiescent with undecided honest processes {undecided}"
                )
            if deliveries >= self._max_deliveries:
                raise TerminationError(
                    f"asynchronous run exceeded the {self._max_deliveries}-delivery budget"
                )
            sender, recipient = self._scheduler.choose(busy)
            message = self.network.deliver_from(sender, recipient)
            deliveries += 1
            self._processes[recipient].on_message(message)
        return AsyncRunResult(
            deliveries=deliveries,
            decisions={pid: self._processes[pid].decision() for pid in self._honest_ids},
            traffic=self.network.stats(),
            undelivered=self.network.in_flight_count(),
        )

    def _start_processes(self) -> None:
        if self._started:
            return
        self._started = True
        for process in self._processes.values():
            process.bind_transport(self._accept_outgoing)
        for process in self._processes.values():
            process.on_start()

    def _accept_outgoing(self, message) -> None:
        if message.recipient == message.sender:
            return
        if message.recipient not in self._processes:
            return
        self.network.send(message)

    def _all_honest_decided(self) -> bool:
        return all(self._processes[pid].has_decided() for pid in self._honest_ids)
