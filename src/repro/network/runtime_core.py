"""Shared core of the synchronous and asynchronous runtimes.

Both runtimes drive a set of processes over a complete-graph FIFO network and
differ only in their *delivery strategy* (lock-step rounds versus
scheduler-chosen single deliveries).  Everything else — process validation,
honest-id bookkeeping, outgoing-message routing, decision collection and
traffic/termination accounting — lives here, so the two runtimes stay thin
and cannot drift apart.

The core also owns the drop accounting: a message whose recipient is the
sender itself, or is not a registered process, is never put on the network.
Honest protocol code does not emit such messages, but Byzantine mutators may;
rather than silently vanishing, every such message is counted and reported as
``TrafficStats.messages_dropped`` in the run result.

An optional ``observer`` callback sees every message handed to :meth:`route`
(before the drop check).  This is the tap the coordinated adversary layer
(:mod:`repro.byzantine.coordinator`) uses to watch the whole execution's
traffic — the paper's full-information adversary — without the runtimes or
the protocols knowing anything about it.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.exceptions import ConfigurationError
from repro.network.message import Message
from repro.network.network import CompleteGraphNetwork, TrafficStats

__all__ = ["RuntimeCore"]


class RuntimeCore:
    """Process table, network and bookkeeping shared by both runtimes.

    Args:
        processes: process object per id; each must report the id it is
            registered under.
        honest_ids: ids whose decisions terminate the run (defaults to all).
        kind: human-readable model name used in error messages
            (``"synchronous"`` / ``"asynchronous"``).
        observer: optional callback invoked with every message handed to
            :meth:`route`, including messages the core refuses to deliver.
    """

    def __init__(
        self,
        processes: Mapping[int, object],
        honest_ids: tuple[int, ...] | None = None,
        kind: str = "simulation",
        observer: Callable[[Message], None] | None = None,
    ) -> None:
        if len(processes) < 2:
            raise ConfigurationError(f"a {kind} run needs at least two processes")
        for process_id, process in processes.items():
            if process.process_id != process_id:
                raise ConfigurationError(
                    f"process registered under id {process_id} reports id {process.process_id}"
                )
        self.processes = dict(processes)
        self.honest_ids = (
            tuple(honest_ids) if honest_ids is not None else tuple(sorted(self.processes))
        )
        unknown = set(self.honest_ids) - set(self.processes)
        if unknown:
            raise ConfigurationError(f"honest ids {sorted(unknown)} have no registered process")
        self.network = CompleteGraphNetwork(sorted(self.processes))
        self.messages_dropped = 0
        self._observer = observer

    # -- routing --------------------------------------------------------------

    def route(self, message: Message) -> bool:
        """Put ``message`` in flight, or count it as dropped if undeliverable.

        Returns True when the message was accepted onto the network.
        """
        if self._observer is not None:
            self._observer(message)
        if message.recipient == message.sender or message.recipient not in self.processes:
            self.messages_dropped += 1
            return False
        self.network.send(message)
        return True

    # -- decision bookkeeping -------------------------------------------------

    def all_honest_decided(self) -> bool:
        """True once every honest process has fixed a decision."""
        return all(self.processes[pid].has_decided() for pid in self.honest_ids)

    def undecided_honest(self) -> list[int]:
        """The honest ids still lacking a decision (for liveness diagnostics)."""
        return [pid for pid in self.honest_ids if not self.processes[pid].has_decided()]

    def collect_decisions(self) -> dict[int, object]:
        """Decision value per honest process id."""
        return {pid: self.processes[pid].decision() for pid in self.honest_ids}

    # -- accounting -----------------------------------------------------------

    def traffic(self) -> TrafficStats:
        """Network counters plus the runtime-level drop count."""
        stats = self.network.stats()
        return TrafficStats(
            messages_sent=stats.messages_sent,
            messages_delivered=stats.messages_delivered,
            messages_in_flight=stats.messages_in_flight,
            messages_dropped=self.messages_dropped,
        )
