"""Lock-step synchronous runtime.

The synchronous model of the paper's Section 2: computation proceeds in
numbered rounds; in each round every process sends messages, and every message
sent in round ``t`` is received by its destination before round ``t + 1``
begins.  Byzantine processes may send arbitrary messages (or none) — they are
ordinary :class:`~repro.processes.process.SyncProcess` objects, typically
produced by an adversary strategy.

The runtime is a thin round-delivery strategy over
:class:`~repro.network.runtime_core.RuntimeCore`, which owns the process
table, the network and all decision/traffic bookkeeping.  It stops when every
*honest* process reports a decision, or when the round budget is exhausted
(which the verification layer reports as a termination failure).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro.exceptions import TerminationError
from repro.network.message import Message
from repro.network.network import TrafficStats
from repro.network.runtime_core import RuntimeCore
from repro.processes.process import SyncProcess

__all__ = ["SyncRunResult", "SynchronousRuntime"]


@dataclass(frozen=True)
class SyncRunResult:
    """Outcome of a synchronous execution.

    Attributes:
        rounds_executed: how many rounds ran before every honest process decided.
        decisions: decision value per process id (honest processes only).
        traffic: network traffic counters for the whole run, including the
            count of undeliverable (dropped) messages.
    """

    rounds_executed: int
    decisions: dict[int, object]
    traffic: TrafficStats


class SynchronousRuntime:
    """Drive a set of :class:`SyncProcess` objects in lock-step rounds."""

    def __init__(
        self,
        processes: Mapping[int, SyncProcess],
        honest_ids: tuple[int, ...] | None = None,
        max_rounds: int = 10_000,
        traffic_observer: Callable[[Message], None] | None = None,
    ) -> None:
        self._core = RuntimeCore(
            processes, honest_ids=honest_ids, kind="synchronous", observer=traffic_observer
        )
        self._max_rounds = max_rounds

    @property
    def network(self):
        """The underlying complete-graph network (exposed for inspection)."""
        return self._core.network

    # -- execution -----------------------------------------------------------------

    def run(self) -> SyncRunResult:
        """Execute rounds until every honest process has decided.

        Raises :class:`TerminationError` when the round budget runs out, which
        signals a liveness failure of the protocol under test (or an
        impossibility scenario doing its job).
        """
        core = self._core
        round_index = 0
        while not core.all_honest_decided():
            round_index += 1
            if round_index > self._max_rounds:
                raise TerminationError(
                    f"synchronous run exceeded the {self._max_rounds}-round budget"
                )
            self._execute_round(round_index)
        return SyncRunResult(
            rounds_executed=round_index,
            decisions=core.collect_decisions(),
            traffic=core.traffic(),
        )

    def _execute_round(self, round_index: int) -> None:
        core = self._core
        # Collect phase: every process hands over the messages it sends this
        # round; undeliverable ones are counted as dropped by the core.
        for process in core.processes.values():
            for message in process.outgoing(round_index):
                core.route(message)
        # Delivery phase: each process receives everything addressed to it.
        delivered = core.network.drain_all()
        for process_id, inbox in delivered.items():
            # Deterministic delivery order within the round: by sender, then sequence.
            inbox.sort(key=lambda message: (message.sender, message.sequence))
            core.processes[process_id].deliver(round_index, inbox)
