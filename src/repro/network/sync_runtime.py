"""Lock-step synchronous runtime.

The synchronous model of the paper's Section 2: computation proceeds in
numbered rounds; in each round every process sends messages, and every message
sent in round ``t`` is received by its destination before round ``t + 1``
begins.  Byzantine processes may send arbitrary messages (or none) — they are
ordinary :class:`~repro.processes.process.SyncProcess` objects, typically
produced by an adversary strategy.

The runtime stops when every *honest* process reports a decision, or when the
round budget is exhausted (which the verification layer reports as a
termination failure).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.exceptions import ConfigurationError, TerminationError
from repro.network.network import CompleteGraphNetwork, TrafficStats
from repro.processes.process import SyncProcess

__all__ = ["SyncRunResult", "SynchronousRuntime"]


@dataclass(frozen=True)
class SyncRunResult:
    """Outcome of a synchronous execution.

    Attributes:
        rounds_executed: how many rounds ran before every honest process decided.
        decisions: decision value per process id (honest processes only).
        traffic: network traffic counters for the whole run.
    """

    rounds_executed: int
    decisions: dict[int, object]
    traffic: TrafficStats


class SynchronousRuntime:
    """Drive a set of :class:`SyncProcess` objects in lock-step rounds."""

    def __init__(
        self,
        processes: Mapping[int, SyncProcess],
        honest_ids: tuple[int, ...] | None = None,
        max_rounds: int = 10_000,
    ) -> None:
        if len(processes) < 2:
            raise ConfigurationError("a synchronous run needs at least two processes")
        for process_id, process in processes.items():
            if process.process_id != process_id:
                raise ConfigurationError(
                    f"process registered under id {process_id} reports id {process.process_id}"
                )
        self._processes = dict(processes)
        self._honest_ids = tuple(honest_ids) if honest_ids is not None else tuple(sorted(processes))
        unknown = set(self._honest_ids) - set(self._processes)
        if unknown:
            raise ConfigurationError(f"honest ids {sorted(unknown)} have no registered process")
        self._max_rounds = max_rounds
        self.network = CompleteGraphNetwork(sorted(self._processes))

    # -- execution -----------------------------------------------------------------

    def run(self) -> SyncRunResult:
        """Execute rounds until every honest process has decided.

        Raises :class:`TerminationError` when the round budget runs out, which
        signals a liveness failure of the protocol under test (or an
        impossibility scenario doing its job).
        """
        round_index = 0
        while not self._all_honest_decided():
            round_index += 1
            if round_index > self._max_rounds:
                raise TerminationError(
                    f"synchronous run exceeded the {self._max_rounds}-round budget"
                )
            self._execute_round(round_index)
        return SyncRunResult(
            rounds_executed=round_index,
            decisions={pid: self._processes[pid].decision() for pid in self._honest_ids},
            traffic=self.network.stats(),
        )

    def _execute_round(self, round_index: int) -> None:
        # Collect phase: every process hands over the messages it sends this round.
        for process in self._processes.values():
            for message in process.outgoing(round_index):
                if message.recipient == message.sender:
                    continue
                if message.recipient not in self._processes:
                    continue
                self.network.send(message)
        # Delivery phase: each process receives everything addressed to it.
        delivered = self.network.drain_all()
        for process_id, inbox in delivered.items():
            # Deterministic delivery order within the round: by sender, then sequence.
            inbox.sort(key=lambda message: (message.sender, message.sequence))
            self._processes[process_id].deliver(round_index, inbox)

    def _all_honest_decided(self) -> bool:
        return all(self._processes[pid].has_decided() for pid in self._honest_ids)
