"""Reliable FIFO channels.

The paper's model assumes every pair of processes is connected by a reliable
FIFO (first-in-first-out) channel: messages are never lost, never duplicated,
never corrupted in transit, and are delivered in the order they were sent.
:class:`FifoChannel` models one *directed* channel; the complete-graph network
keeps one per ordered pair of processes.

Delivery *timing* is not the channel's business: the synchronous runtime
drains every channel once per round, while the asynchronous runtime lets a
scheduler decide which channel to pop next (always from the front, preserving
FIFO order).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.exceptions import SchedulerError
from repro.network.message import Message

__all__ = ["FifoChannel"]


@dataclass
class FifoChannel:
    """A reliable, directed, FIFO message channel between two processes."""

    sender: int
    recipient: int
    _queue: deque[Message] = field(default_factory=deque)
    delivered_count: int = 0

    def send(self, message: Message) -> None:
        """Enqueue a message; it will be delivered eventually, in order."""
        if message.sender != self.sender or message.recipient != self.recipient:
            raise SchedulerError(
                f"message {message.describe()} does not belong on channel "
                f"{self.sender} -> {self.recipient}"
            )
        self._queue.append(message)

    def peek(self) -> Message | None:
        """Return the next message to be delivered without removing it."""
        return self._queue[0] if self._queue else None

    def deliver_next(self) -> Message:
        """Remove and return the oldest in-flight message (FIFO order)."""
        if not self._queue:
            raise SchedulerError(f"channel {self.sender} -> {self.recipient} has no message in flight")
        self.delivered_count += 1
        return self._queue.popleft()

    def drain(self) -> list[Message]:
        """Remove and return every in-flight message, oldest first."""
        messages = list(self._queue)
        self._queue.clear()
        self.delivered_count += len(messages)
        return messages

    def in_flight(self) -> int:
        """Return how many messages are currently queued on the channel."""
        return len(self._queue)

    def is_empty(self) -> bool:
        """Return True when no message is in flight."""
        return not self._queue
