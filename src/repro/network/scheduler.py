"""Delivery schedulers for the asynchronous runtime.

In the asynchronous model the adversary (together with the environment)
controls message delays, subject only to every message being delivered
eventually and per-channel FIFO order.  The runtime therefore delegates the
choice of *which channel delivers next* to a scheduler object.  Three
schedulers are provided:

* :class:`RandomScheduler` — picks a busy channel uniformly at random from a
  seeded generator.  This is the "benign but unpredictable" environment used
  by most experiments.
* :class:`LaggingScheduler` — starves a chosen set of processes: their
  incoming and outgoing messages are delivered only when no other channel has
  traffic.  This is the classical "slow process" adversary used in the
  Theorem 4 lower-bound scenario (a correct process that looks crashed).
* :class:`RoundRobinScheduler` — deterministic rotation over channels, useful
  for exactly reproducible unit tests.

All schedulers satisfy eventual delivery: they only ever *reorder* deliveries,
never drop them, and they always pick from the set of non-empty channels.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.exceptions import SchedulerError

__all__ = ["DeliveryScheduler", "RandomScheduler", "LaggingScheduler", "RoundRobinScheduler"]


class DeliveryScheduler(abc.ABC):
    """Strategy interface: choose which busy channel delivers its next message."""

    @abc.abstractmethod
    def choose(self, busy_channels: Sequence[tuple[int, int]]) -> tuple[int, int]:
        """Return the (sender, recipient) channel to deliver from next.

        ``busy_channels`` is non-empty and lists every channel with at least
        one in-flight message.
        """


class RandomScheduler(DeliveryScheduler):
    """Uniformly random choice among busy channels, from a seeded generator."""

    def __init__(self, seed: int | np.random.Generator = 0) -> None:
        self._rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)

    def choose(self, busy_channels: Sequence[tuple[int, int]]) -> tuple[int, int]:
        if not busy_channels:
            raise SchedulerError("no busy channel to choose from")
        index = int(self._rng.integers(0, len(busy_channels)))
        return busy_channels[index]


class LaggingScheduler(DeliveryScheduler):
    """Starve the channels touching ``slow_processes`` for as long as possible.

    Messages to or from a slow process are delivered only when every other
    channel is empty, which models a correct-but-arbitrarily-slow process: the
    rest of the system must make progress without it (this is exactly the
    situation the Theorem 4 necessity argument builds on).
    """

    def __init__(self, slow_processes: Sequence[int], seed: int | np.random.Generator = 0) -> None:
        self._slow = frozenset(int(process_id) for process_id in slow_processes)
        self._rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)

    @property
    def slow_processes(self) -> frozenset[int]:
        """The ids being starved."""
        return self._slow

    def choose(self, busy_channels: Sequence[tuple[int, int]]) -> tuple[int, int]:
        if not busy_channels:
            raise SchedulerError("no busy channel to choose from")
        fast = [
            channel
            for channel in busy_channels
            if channel[0] not in self._slow and channel[1] not in self._slow
        ]
        candidates = fast if fast else list(busy_channels)
        index = int(self._rng.integers(0, len(candidates)))
        return candidates[index]


class RoundRobinScheduler(DeliveryScheduler):
    """Deterministic rotation across channels (stable across runs)."""

    def __init__(self) -> None:
        self._cursor = 0

    def choose(self, busy_channels: Sequence[tuple[int, int]]) -> tuple[int, int]:
        if not busy_channels:
            raise SchedulerError("no busy channel to choose from")
        ordered = sorted(busy_channels)
        choice = ordered[self._cursor % len(ordered)]
        self._cursor += 1
        return choice
