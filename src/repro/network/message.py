"""Message types exchanged over the simulated network.

A message is an immutable envelope: ``sender -> recipient`` carrying an
arbitrary ``payload`` plus two routing tags the algorithms rely on:

* ``protocol`` — which protocol instance the message belongs to (e.g. the EIG
  broadcast with a given originator, the reliable-broadcast instance for a
  given (sender, round), or the top-level BVC round exchange);
* ``round_index`` — the paper tags every message of the asynchronous
  algorithms by the sender's round number so that a process can associate a
  message with the right asynchronous round despite arbitrary delays.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Message", "next_message_sequence"]

_sequence_counter = itertools.count()


def next_message_sequence() -> int:
    """Return a process-wide monotonically increasing message sequence number.

    Used only to give every message a unique identity for logging and for
    deterministic tie-breaking inside schedulers; it carries no protocol
    meaning.
    """
    return next(_sequence_counter)


@dataclass(frozen=True)
class Message:
    """A single point-to-point message.

    Attributes:
        sender: process id of the sender.
        recipient: process id of the recipient.
        protocol: name of the (sub-)protocol this message belongs to.
        kind: message type within the protocol (e.g. ``"ECHO"``, ``"READY"``).
        payload: arbitrary, treat-as-immutable content.
        round_index: the sender's round number, or ``None`` for round-free
            protocols (such as the one-shot EIG broadcast).
        sequence: unique id for logging / deterministic ordering.
    """

    sender: int
    recipient: int
    protocol: str
    kind: str
    payload: Any
    round_index: int | None = None
    sequence: int = field(default_factory=next_message_sequence)

    def describe(self) -> str:
        """Return a compact human-readable description (for logs and errors)."""
        tag = f"@r{self.round_index}" if self.round_index is not None else ""
        return f"[{self.protocol}:{self.kind}{tag}] {self.sender} -> {self.recipient}"
