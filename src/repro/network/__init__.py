"""Message-passing substrate: FIFO channels, complete-graph network, runtimes."""

from repro.network.message import Message
from repro.network.channel import FifoChannel
from repro.network.network import CompleteGraphNetwork, TrafficStats
from repro.network.scheduler import (
    DeliveryScheduler,
    LaggingScheduler,
    RandomScheduler,
    RoundRobinScheduler,
)
from repro.network.runtime_core import RuntimeCore
from repro.network.sync_runtime import SynchronousRuntime, SyncRunResult
from repro.network.async_runtime import AsynchronousRuntime, AsyncRunResult

__all__ = [
    "RuntimeCore",
    "Message",
    "FifoChannel",
    "CompleteGraphNetwork",
    "TrafficStats",
    "DeliveryScheduler",
    "LaggingScheduler",
    "RandomScheduler",
    "RoundRobinScheduler",
    "SynchronousRuntime",
    "SyncRunResult",
    "AsynchronousRuntime",
    "AsyncRunResult",
]
