"""Approximate Byzantine vector consensus in asynchronous systems (Section 3.2).

Each process maintains a vector state ``v_i[t]`` (initially its input).  In
round ``t`` it obtains, through the AAD-style witness exchange
(:mod:`repro.broadcast.witness`), a set ``B_i[t]`` of at least ``n - f`` state
tuples satisfying Properties 1-3, and then updates its state:

* for each subset ``C`` of ``B_i[t]`` with ``|C| = n - f`` (or, with the
  Appendix F optimisation, for each witness's first ``n - f`` tuples), add to
  ``Z_i`` one deterministically chosen point of ``Gamma(Phi(C))``;
* ``v_i[t] =`` the average of the points in ``Z_i``  (Equation (9)).

After ``1 + ceil( log_{1/(1-gamma)} (U - nu) / epsilon )`` rounds (the paper's
static termination rule, with ``gamma = 1 / (n * C(n, n-f))`` or ``1 / n^2``
for the optimised variant), the process decides its current state.  Validity
holds because every ``Gamma(Phi(C))`` point is a convex combination of honest
round-``t-1`` states; epsilon-agreement holds because every coordinate's range
across honest processes contracts by at least ``1 - gamma`` per round
(Equation (12)).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, comb, log
from typing import Any, Callable, Literal

import numpy as np

from repro.broadcast.witness import RoundExchangeResult, WitnessExchange
from repro.byzantine.adversary import ByzantineAsyncProcess, MessageMutator
from repro.core.conditions import SystemConfiguration, check_approx_async
from repro.core.round_ops import approx_round_step, approx_subset_families
from repro.core.safe_area import SafeAreaCalculator, SafeAreaEngine
from repro.exceptions import ConfigurationError, ProtocolError
from repro.network.async_runtime import AsynchronousRuntime, AsyncRunResult
from repro.network.message import Message
from repro.network.scheduler import DeliveryScheduler
from repro.processes.process import AsyncProcess
from repro.processes.registry import ProcessRegistry

__all__ = [
    "SubsetMode",
    "contraction_factor",
    "round_threshold",
    "ApproxBVCProcess",
    "ApproxBVCOutcome",
    "run_approx_bvc",
]

SubsetMode = Literal["all_subsets", "witness_subsets"]


def contraction_factor(process_count: int, fault_bound: int, subset_mode: SubsetMode = "all_subsets") -> float:
    """Return the paper's per-round contraction weight ``gamma``.

    Equation (11) gives ``gamma = 1 / (n * C(n, n - f))`` for the algorithm
    that enumerates all subsets; Appendix F shows that with the witness-based
    subset selection ``gamma = 1 / n^2`` suffices.
    """
    if process_count < 2:
        raise ConfigurationError("consensus is trivial for fewer than 2 processes")
    if fault_bound < 0 or fault_bound >= process_count:
        raise ConfigurationError("fault bound must satisfy 0 <= f < n")
    if subset_mode == "witness_subsets":
        return 1.0 / (process_count * process_count)
    return 1.0 / (process_count * comb(process_count, process_count - fault_bound))


def round_threshold(value_range: float, epsilon: float, gamma: float) -> int:
    """Return the number of rounds of the static termination rule.

    ``1 + ceil( log_{1/(1-gamma)} (value_range / epsilon) )`` — Step 3 of the
    algorithm, with ``value_range = U - nu``.  At least one round is always
    executed so that the decision is well defined.
    """
    if epsilon <= 0:
        raise ConfigurationError("epsilon must be positive")
    if not (0.0 < gamma < 1.0):
        raise ConfigurationError("gamma must be in (0, 1)")
    if value_range <= epsilon:
        return 1
    return 1 + ceil(log(value_range / epsilon) / log(1.0 / (1.0 - gamma)))


class ApproxBVCProcess(AsyncProcess):
    """One process of the asynchronous Approximate BVC algorithm."""

    PROTOCOL = "approx_bvc"

    def __init__(
        self,
        process_id: int,
        configuration: SystemConfiguration,
        input_vector: np.ndarray,
        epsilon: float,
        value_lower: float,
        value_upper: float,
        subset_mode: SubsetMode = "witness_subsets",
        max_rounds_override: int | None = None,
        allow_insufficient: bool = False,
        safe_area_engine: SafeAreaEngine = "kernel",
    ) -> None:
        super().__init__(process_id)
        check_approx_async(configuration, allow_insufficient=allow_insufficient)
        self.configuration = configuration
        self.input_vector = np.asarray(input_vector, dtype=float)
        if self.input_vector.shape != (configuration.dimension,):
            raise ProtocolError(
                f"input vector has shape {self.input_vector.shape}, expected ({configuration.dimension},)"
            )
        if value_upper < value_lower:
            raise ConfigurationError("value_upper must be at least value_lower")
        self.epsilon = float(epsilon)
        self.subset_mode: SubsetMode = subset_mode
        self.gamma = contraction_factor(
            configuration.process_count, configuration.fault_bound, subset_mode
        )
        computed_rounds = round_threshold(value_upper - value_lower, self.epsilon, self.gamma)
        self.total_rounds = (
            max_rounds_override if max_rounds_override is not None else computed_rounds
        )
        if self.total_rounds < 1:
            raise ConfigurationError("the algorithm must run at least one round")
        self._chooser = SafeAreaCalculator(
            fault_bound=configuration.fault_bound, engine=safe_area_engine
        )
        self._state = self.input_vector.copy()
        self.state_history: list[np.ndarray] = [self._state.copy()]
        self._current_round = 0
        self._decided = False
        self._decision: np.ndarray | None = None
        self._exchange = WitnessExchange(
            owner_id=process_id,
            process_ids=tuple(range(configuration.process_count)),
            fault_bound=configuration.fault_bound,
            send=self._send_exchange_message,
            on_round_complete=self._on_round_complete,
        )

    # -- transport plumbing ----------------------------------------------------------

    def _send_exchange_message(self, recipient: int, kind: str, payload: dict[str, Any]) -> None:
        self.send(
            Message(
                sender=self.process_id,
                recipient=recipient,
                protocol=self.PROTOCOL,
                kind=kind,
                payload=payload,
                round_index=self._current_round,
            )
        )

    # -- asynchronous process interface -------------------------------------------------

    def on_start(self) -> None:
        self._advance_to_next_round()

    def on_message(self, message: Message) -> None:
        if message.protocol != self.PROTOCOL:
            return
        if not isinstance(message.payload, dict):
            return
        self._exchange.handle(message.sender, message.kind, message.payload)

    def has_decided(self) -> bool:
        return self._decided

    def decision(self) -> np.ndarray:
        if self._decision is None:
            raise ProtocolError(f"process {self.process_id} has not decided")
        return self._decision

    # -- the algorithm ------------------------------------------------------------------

    def _advance_to_next_round(self) -> None:
        self._current_round += 1
        self._exchange.start_round(self._current_round, self._state)

    def _on_round_complete(self, result: RoundExchangeResult) -> None:
        if self._decided or result.round_index != self._current_round:
            return
        self._state = self._compute_new_state(result)
        self.state_history.append(self._state.copy())
        if self._current_round >= self.total_rounds:
            self._decision = self._state.copy()
            self._decided = True
            return
        self._advance_to_next_round()

    def _compute_new_state(self, result: RoundExchangeResult) -> np.ndarray:
        quorum = self.configuration.process_count - self.configuration.fault_bound
        subset_families = self._subset_families(result, quorum)
        if not subset_families:
            # Cannot happen when the exchange met its quorum, but stay total.
            return self._state.copy()
        # The Step-2 update is the pure function in core.round_ops: all queries
        # share the (quorum, d) shape, so they are assembled in one numpy pass
        # and solved as a single block-diagonal LP by the kernel.
        return approx_round_step(result.tuples, subset_families, self._chooser)

    def _subset_families(self, result: RoundExchangeResult, quorum: int) -> list[tuple[int, ...]]:
        """Return the subsets ``C`` of ``B_i[t]`` used in Step 2 of the algorithm."""
        return approx_subset_families(
            list(result.tuples), result.witness_reports, quorum, self.subset_mode
        )


@dataclass(frozen=True)
class ApproxBVCOutcome:
    """Result of a complete Approximate BVC execution.

    Attributes:
        registry: the experiment cast.
        decisions: decision vector per honest process id.
        epsilon: the agreement parameter used.
        rounds_executed: asynchronous rounds each honest process ran (identical
            across processes under the static termination rule).
        deliveries: total message deliveries performed by the runtime.
        messages_sent: total messages put on the network.
        state_histories: per honest process, its state after every round
            (index 0 is the input) — the raw series behind the convergence
            figures.
        messages_dropped: undeliverable messages refused by the runtime.
    """

    registry: ProcessRegistry
    decisions: dict[int, np.ndarray]
    epsilon: float
    rounds_executed: int
    deliveries: int
    messages_sent: int
    state_histories: dict[int, list[np.ndarray]]
    messages_dropped: int = 0


def run_approx_bvc(
    registry: ProcessRegistry,
    epsilon: float,
    adversary_mutators: dict[int, MessageMutator] | None = None,
    subset_mode: SubsetMode = "witness_subsets",
    scheduler: DeliveryScheduler | None = None,
    value_bounds: tuple[float, float] | None = None,
    max_rounds_override: int | None = None,
    allow_insufficient: bool = False,
    max_deliveries: int = 2_000_000,
    safe_area_engine: SafeAreaEngine = "kernel",
    traffic_observer: Callable[[Message], None] | None = None,
) -> ApproxBVCOutcome:
    """Run the Approximate BVC algorithm end-to-end on a simulated asynchronous system.

    Args:
        registry: process cast, inputs and fault set.
        epsilon: the epsilon-agreement parameter.
        adversary_mutators: mutator per faulty process id (missing ids behave honestly).
        subset_mode: Step 2 subset selection — ``"witness_subsets"`` (Appendix F)
            or ``"all_subsets"`` (the literal algorithm).
        scheduler: message-delivery scheduler (defaults to a seeded random one).
        value_bounds: the a-priori bounds ``(nu, U)``; defaults to the bounds of
            the honest inputs, matching the paper's assumption that they are
            known in advance.
        max_rounds_override: run exactly this many rounds instead of the static
            threshold (used by convergence-rate experiments).
        allow_insufficient: run even when ``n`` is below the resilience bound.
        max_deliveries: safety budget for the asynchronous runtime.
        safe_area_engine: ``Gamma`` solver backend — the batched kernel
            (default) or the literal oracle enumeration (cross-checks only;
            dramatically slower at scale).
        traffic_observer: optional callback that sees every routed message
            (the coordinated adversary's full-information tap).
    """
    adversary_mutators = adversary_mutators or {}
    configuration = registry.configuration
    if value_bounds is None:
        value_bounds = registry.value_bounds()
    value_lower, value_upper = value_bounds

    processes: dict[int, AsyncProcess] = {}
    cores: dict[int, ApproxBVCProcess] = {}
    for process_id in registry.process_ids:
        core = ApproxBVCProcess(
            process_id=process_id,
            configuration=configuration,
            input_vector=registry.input_of(process_id),
            epsilon=epsilon,
            value_lower=value_lower,
            value_upper=value_upper,
            subset_mode=subset_mode,
            max_rounds_override=max_rounds_override,
            allow_insufficient=allow_insufficient,
            safe_area_engine=safe_area_engine,
        )
        cores[process_id] = core
        if registry.is_faulty(process_id) and process_id in adversary_mutators:
            processes[process_id] = ByzantineAsyncProcess(core, adversary_mutators[process_id])
        else:
            processes[process_id] = core

    runtime = AsynchronousRuntime(
        processes,
        honest_ids=registry.honest_ids,
        scheduler=scheduler,
        max_deliveries=max_deliveries,
        traffic_observer=traffic_observer,
    )
    result: AsyncRunResult = runtime.run()
    decisions = {pid: np.asarray(result.decisions[pid], dtype=float) for pid in registry.honest_ids}
    rounds_executed = max(cores[pid].total_rounds for pid in registry.honest_ids)
    return ApproxBVCOutcome(
        registry=registry,
        decisions=decisions,
        epsilon=epsilon,
        rounds_executed=rounds_executed,
        deliveries=result.deliveries,
        messages_sent=result.traffic.messages_sent,
        state_histories={pid: cores[pid].state_history for pid in registry.honest_ids},
        messages_dropped=result.traffic.messages_dropped,
    )
