"""Resilience bounds from the paper, as executable predicates.

Every algorithm in this package checks its bound at construction time through
these functions, and the benchmark for experiment E13 sweeps them to produce
the resilience-landscape table.  The bounds are:

=====================  =================================  ======================
Setting                Problem                            Bound on ``n``
=====================  =================================  ======================
Synchronous            Exact BVC (Thms 1, 3)              ``max(3f+1, (d+1)f+1)``
Asynchronous           Approximate BVC (Thms 4, 5)        ``(d+2)f + 1``
Sync, restricted round Approximate BVC (Thm 6)            ``(d+2)f + 1``
Async, restricted rnd  Approximate BVC (Thm 6)            ``(d+4)f + 1``
Scalar, synchronous    Exact consensus ([12, 13])         ``3f + 1``
Scalar, asynchronous   Approximate consensus ([1])        ``3f + 1``
=====================  =================================  ======================
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.exceptions import ConfigurationError, ResilienceError

__all__ = [
    "Setting",
    "SystemConfiguration",
    "minimum_processes_exact_sync",
    "minimum_processes_approx_async",
    "minimum_processes_restricted_sync",
    "minimum_processes_restricted_async",
    "minimum_processes_scalar",
    "check_exact_sync",
    "check_approx_async",
    "check_restricted_sync",
    "check_restricted_async",
    "max_tolerable_faults",
    "resilience_table",
]


class Setting(str, Enum):
    """The four algorithmic settings studied by the paper, plus the scalar base case."""

    EXACT_SYNC = "exact_sync"
    APPROX_ASYNC = "approx_async"
    RESTRICTED_SYNC = "restricted_sync"
    RESTRICTED_ASYNC = "restricted_async"
    SCALAR = "scalar"


@dataclass(frozen=True)
class SystemConfiguration:
    """A system size: ``n`` processes, dimension ``d``, fault bound ``f``.

    Validates only structural sanity (positive counts, ``f < n``); whether the
    configuration meets a particular algorithm's resilience bound is checked by
    the ``check_*`` functions.
    """

    process_count: int
    dimension: int
    fault_bound: int

    def __post_init__(self) -> None:
        if self.process_count < 2:
            raise ConfigurationError(
                f"need at least 2 processes (consensus is trivial for n=1), got {self.process_count}"
            )
        if self.dimension < 1:
            raise ConfigurationError(f"dimension must be positive, got {self.dimension}")
        if self.fault_bound < 0:
            raise ConfigurationError(f"fault bound must be non-negative, got {self.fault_bound}")
        if self.fault_bound >= self.process_count:
            raise ConfigurationError(
                f"fault bound {self.fault_bound} must be smaller than process count {self.process_count}"
            )

    @property
    def n(self) -> int:
        """Alias matching the paper's notation."""
        return self.process_count

    @property
    def d(self) -> int:
        """Alias matching the paper's notation."""
        return self.dimension

    @property
    def f(self) -> int:
        """Alias matching the paper's notation."""
        return self.fault_bound

    def satisfies(self, setting: Setting) -> bool:
        """Return True when this configuration meets the bound for ``setting``."""
        return self.process_count >= minimum_processes(setting, self.dimension, self.fault_bound)

    def deficit(self, setting: Setting) -> int:
        """Return how many processes short of the bound this configuration is (0 if met)."""
        return max(0, minimum_processes(setting, self.dimension, self.fault_bound) - self.process_count)


def _validate(dimension: int, fault_bound: int) -> None:
    if dimension < 1:
        raise ConfigurationError(f"dimension must be positive, got {dimension}")
    if fault_bound < 0:
        raise ConfigurationError(f"fault bound must be non-negative, got {fault_bound}")


def minimum_processes_exact_sync(dimension: int, fault_bound: int) -> int:
    """Minimum ``n`` for Exact BVC in a synchronous system (Theorems 1 and 3)."""
    _validate(dimension, fault_bound)
    if fault_bound == 0:
        return 2
    return max(3 * fault_bound + 1, (dimension + 1) * fault_bound + 1)


def minimum_processes_approx_async(dimension: int, fault_bound: int) -> int:
    """Minimum ``n`` for Approximate BVC in an asynchronous system (Theorems 4 and 5)."""
    _validate(dimension, fault_bound)
    if fault_bound == 0:
        return 2
    return (dimension + 2) * fault_bound + 1


def minimum_processes_restricted_sync(dimension: int, fault_bound: int) -> int:
    """Minimum ``n`` for the restricted-round synchronous algorithm (Theorem 6)."""
    _validate(dimension, fault_bound)
    if fault_bound == 0:
        return 2
    return (dimension + 2) * fault_bound + 1


def minimum_processes_restricted_async(dimension: int, fault_bound: int) -> int:
    """Minimum ``n`` for the restricted-round asynchronous algorithm (Theorem 6)."""
    _validate(dimension, fault_bound)
    if fault_bound == 0:
        return 2
    return (dimension + 4) * fault_bound + 1


def minimum_processes_scalar(fault_bound: int) -> int:
    """Minimum ``n`` for scalar Byzantine consensus (classical ``3f + 1``)."""
    if fault_bound < 0:
        raise ConfigurationError(f"fault bound must be non-negative, got {fault_bound}")
    if fault_bound == 0:
        return 2
    return 3 * fault_bound + 1


_MINIMUMS = {
    Setting.EXACT_SYNC: minimum_processes_exact_sync,
    Setting.APPROX_ASYNC: minimum_processes_approx_async,
    Setting.RESTRICTED_SYNC: minimum_processes_restricted_sync,
    Setting.RESTRICTED_ASYNC: minimum_processes_restricted_async,
}


def minimum_processes(setting: Setting, dimension: int, fault_bound: int) -> int:
    """Dispatch to the minimum-``n`` function for ``setting``."""
    if setting == Setting.SCALAR:
        return minimum_processes_scalar(fault_bound)
    return _MINIMUMS[setting](dimension, fault_bound)


def _check(setting: Setting, configuration: SystemConfiguration, allow_insufficient: bool) -> None:
    required = minimum_processes(setting, configuration.dimension, configuration.fault_bound)
    if configuration.process_count < required and not allow_insufficient:
        raise ResilienceError(
            f"{setting.value}: n={configuration.process_count} is below the required "
            f"minimum {required} for d={configuration.dimension}, f={configuration.fault_bound}"
        )


def check_exact_sync(configuration: SystemConfiguration, allow_insufficient: bool = False) -> None:
    """Raise :class:`ResilienceError` unless ``n >= max(3f+1, (d+1)f+1)``."""
    _check(Setting.EXACT_SYNC, configuration, allow_insufficient)


def check_approx_async(configuration: SystemConfiguration, allow_insufficient: bool = False) -> None:
    """Raise :class:`ResilienceError` unless ``n >= (d+2)f + 1``."""
    _check(Setting.APPROX_ASYNC, configuration, allow_insufficient)


def check_restricted_sync(configuration: SystemConfiguration, allow_insufficient: bool = False) -> None:
    """Raise :class:`ResilienceError` unless ``n >= (d+2)f + 1``."""
    _check(Setting.RESTRICTED_SYNC, configuration, allow_insufficient)


def check_restricted_async(configuration: SystemConfiguration, allow_insufficient: bool = False) -> None:
    """Raise :class:`ResilienceError` unless ``n >= (d+4)f + 1``."""
    _check(Setting.RESTRICTED_ASYNC, configuration, allow_insufficient)


def max_tolerable_faults(setting: Setting, process_count: int, dimension: int) -> int:
    """Return the largest ``f`` the given ``(n, d)`` can tolerate in ``setting``."""
    if process_count < 2:
        raise ConfigurationError("need at least 2 processes")
    best = 0
    fault_bound = 1
    while minimum_processes(setting, dimension, fault_bound) <= process_count:
        best = fault_bound
        fault_bound += 1
    return best


def resilience_table(dimensions: list[int], fault_bounds: list[int]) -> list[dict[str, int]]:
    """Return the minimum-``n`` landscape for experiment E13.

    One row per (d, f) pair with the minimum process count for each of the
    four vector settings and the scalar base case.
    """
    rows: list[dict[str, int]] = []
    for dimension in dimensions:
        for fault_bound in fault_bounds:
            rows.append(
                {
                    "dimension": dimension,
                    "fault_bound": fault_bound,
                    "exact_sync": minimum_processes_exact_sync(dimension, fault_bound),
                    "approx_async": minimum_processes_approx_async(dimension, fault_bound),
                    "restricted_sync": minimum_processes_restricted_sync(dimension, fault_bound),
                    "restricted_async": minimum_processes_restricted_async(dimension, fault_bound),
                    "scalar": minimum_processes_scalar(fault_bound),
                }
            )
    return rows
