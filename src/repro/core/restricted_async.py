"""Asynchronous approximate BVC with the restricted round structure (Section 4).

The asynchronous restricted structure mirrors Dolev et al.'s classic
approximate-agreement skeleton: in its round ``t`` a process sends its state
(tagged with ``t``) to everyone, then waits for round-``t`` states from
``n - f - 1`` other processes, and updates its state from the ``n - f``
collected vectors.  Theorem 6 shows this structure requires
``n >= (d + 4) f + 1`` — two extra ``f`` compared to the witness-based
algorithm, the price of the simpler communication pattern.

Because two non-faulty processes may wait on *different* ``n - f - 1`` senders,
their collected sets are only guaranteed to share ``n - 3f`` identical vectors
(at least ``n - 2f`` common senders, of which at most ``f`` may have
equivocated).  The Step-2 analogue therefore enumerates subsets of size
``n - 3f`` — large enough that ``Gamma`` is non-empty
(``n - 3f >= (d + 1) f + 1``) and small enough that both processes are
guaranteed to enumerate one common subset, which drives the same contraction
argument with ``gamma = 1 / (n * C(n - f, n - 3f))``.
"""

from __future__ import annotations

from math import comb
from typing import Callable

import numpy as np

from repro.byzantine.adversary import ByzantineAsyncProcess, MessageMutator
from repro.core.aggregation import SafeAverageAggregator
from repro.core.approx_bvc import round_threshold
from repro.core.conditions import SystemConfiguration, check_restricted_async
from repro.core.restricted_sync import RestrictedRoundOutcome
from repro.exceptions import ConfigurationError, ProtocolError
from repro.network.async_runtime import AsynchronousRuntime, AsyncRunResult
from repro.network.message import Message
from repro.network.scheduler import DeliveryScheduler
from repro.processes.process import AsyncProcess
from repro.processes.registry import ProcessRegistry

__all__ = ["restricted_async_contraction_factor", "RestrictedAsyncProcess", "run_restricted_async_bvc"]


def restricted_async_contraction_factor(process_count: int, fault_bound: int) -> float:
    """Return the per-round contraction weight for the restricted asynchronous algorithm.

    ``gamma = 1 / (n * C(n - f, n - 3f))``: each process averages over the
    ``C(n - f, n - 3f)`` subsets of its collected vectors, and the common
    subset's ``Gamma`` point carries weight at least ``1 / n`` of itself.
    """
    if process_count < 2:
        raise ConfigurationError("consensus is trivial for fewer than 2 processes")
    if fault_bound < 0 or fault_bound >= process_count:
        raise ConfigurationError("fault bound must satisfy 0 <= f < n")
    collected = process_count - fault_bound
    quorum = process_count - 3 * fault_bound
    if quorum < 1:
        raise ConfigurationError("n - 3f must be positive for the restricted asynchronous structure")
    return 1.0 / (process_count * comb(collected, quorum))


class RestrictedAsyncProcess(AsyncProcess):
    """One process of the restricted-round asynchronous approximate BVC algorithm."""

    PROTOCOL = "restricted_async_bvc"

    def __init__(
        self,
        process_id: int,
        configuration: SystemConfiguration,
        input_vector: np.ndarray,
        epsilon: float,
        value_lower: float,
        value_upper: float,
        max_rounds_override: int | None = None,
        allow_insufficient: bool = False,
    ) -> None:
        super().__init__(process_id)
        check_restricted_async(configuration, allow_insufficient=allow_insufficient)
        self.configuration = configuration
        self.input_vector = np.asarray(input_vector, dtype=float)
        if self.input_vector.shape != (configuration.dimension,):
            raise ProtocolError(
                f"input vector has shape {self.input_vector.shape}, expected ({configuration.dimension},)"
            )
        if value_upper < value_lower:
            raise ConfigurationError("value_upper must be at least value_lower")
        self.epsilon = float(epsilon)
        fault_bound = configuration.fault_bound
        process_count = configuration.process_count
        quorum = max(1, process_count - 3 * fault_bound)
        self.gamma = (
            restricted_async_contraction_factor(process_count, fault_bound)
            if process_count - 3 * fault_bound >= 1
            else 1.0 / (process_count * process_count)
        )
        computed_rounds = round_threshold(value_upper - value_lower, self.epsilon, self.gamma)
        self.total_rounds = (
            max_rounds_override if max_rounds_override is not None else computed_rounds
        )
        self._aggregator = SafeAverageAggregator(fault_bound, quorum)
        self._wait_for = process_count - fault_bound - 1
        self._state = self.input_vector.copy()
        self.state_history: list[np.ndarray] = [self._state.copy()]
        self._current_round = 0
        self._received_by_round: dict[int, dict[int, np.ndarray]] = {}
        self._decided = False
        self._decision: np.ndarray | None = None

    # -- asynchronous process interface -------------------------------------------------

    def on_start(self) -> None:
        self._begin_round(1)

    def on_message(self, message: Message) -> None:
        if self._decided:
            return
        if message.protocol != self.PROTOCOL or message.kind != "STATE":
            return
        if not isinstance(message.payload, dict):
            return
        round_index = message.payload.get("round")
        vector = self._coerce_state(message.payload.get("state"))
        if not isinstance(round_index, int) or vector is None:
            return
        if round_index < self._current_round:
            return
        bucket = self._received_by_round.setdefault(round_index, {})
        if message.sender in bucket:
            return
        bucket[message.sender] = vector
        self._maybe_finish_round()

    def has_decided(self) -> bool:
        return self._decided

    def decision(self) -> np.ndarray:
        if self._decision is None:
            raise ProtocolError(f"process {self.process_id} has not decided")
        return self._decision

    # -- the algorithm ------------------------------------------------------------------

    def _begin_round(self, round_index: int) -> None:
        self._current_round = round_index
        payload = {"round": round_index, "state": tuple(float(x) for x in self._state)}
        self.send_to_all(
            list(range(self.configuration.process_count)),
            lambda recipient: Message(
                sender=self.process_id,
                recipient=recipient,
                protocol=self.PROTOCOL,
                kind="STATE",
                payload=payload,
                round_index=round_index,
            ),
        )
        # Messages for this round may already have been buffered.
        self._maybe_finish_round()

    def _maybe_finish_round(self) -> None:
        if self._decided or self._current_round == 0:
            return
        bucket = self._received_by_round.get(self._current_round, {})
        others = {sender: vector for sender, vector in bucket.items() if sender != self.process_id}
        if len(others) < self._wait_for:
            return
        collected = dict(others)
        collected[self.process_id] = self._state.copy()
        step = self._aggregator.aggregate(collected)
        self._state = step.new_state
        self.state_history.append(self._state.copy())
        finished_round = self._current_round
        self._received_by_round.pop(finished_round, None)
        if finished_round >= self.total_rounds:
            self._decision = self._state.copy()
            self._decided = True
            return
        self._begin_round(finished_round + 1)

    def _coerce_state(self, value: object) -> np.ndarray | None:
        try:
            vector = np.asarray(value, dtype=float).reshape(-1)
        except (TypeError, ValueError):
            return None
        if vector.shape != (self.configuration.dimension,) or not np.all(np.isfinite(vector)):
            return None
        return vector


def run_restricted_async_bvc(
    registry: ProcessRegistry,
    epsilon: float,
    adversary_mutators: dict[int, MessageMutator] | None = None,
    scheduler: DeliveryScheduler | None = None,
    value_bounds: tuple[float, float] | None = None,
    max_rounds_override: int | None = None,
    allow_insufficient: bool = False,
    max_deliveries: int = 2_000_000,
    traffic_observer: Callable[[Message], None] | None = None,
) -> RestrictedRoundOutcome:
    """Run the restricted-round asynchronous approximate BVC algorithm end-to-end."""
    adversary_mutators = adversary_mutators or {}
    configuration = registry.configuration
    if value_bounds is None:
        value_bounds = registry.value_bounds()
    value_lower, value_upper = value_bounds

    processes: dict[int, AsyncProcess] = {}
    cores: dict[int, RestrictedAsyncProcess] = {}
    for process_id in registry.process_ids:
        core = RestrictedAsyncProcess(
            process_id=process_id,
            configuration=configuration,
            input_vector=registry.input_of(process_id),
            epsilon=epsilon,
            value_lower=value_lower,
            value_upper=value_upper,
            max_rounds_override=max_rounds_override,
            allow_insufficient=allow_insufficient,
        )
        cores[process_id] = core
        if registry.is_faulty(process_id) and process_id in adversary_mutators:
            processes[process_id] = ByzantineAsyncProcess(core, adversary_mutators[process_id])
        else:
            processes[process_id] = core

    runtime = AsynchronousRuntime(
        processes,
        honest_ids=registry.honest_ids,
        scheduler=scheduler,
        max_deliveries=max_deliveries,
        traffic_observer=traffic_observer,
    )
    result: AsyncRunResult = runtime.run()
    decisions = {pid: np.asarray(result.decisions[pid], dtype=float) for pid in registry.honest_ids}
    rounds_executed = max(cores[pid].total_rounds for pid in registry.honest_ids)
    return RestrictedRoundOutcome(
        registry=registry,
        decisions=decisions,
        epsilon=epsilon,
        rounds_executed=rounds_executed,
        messages_sent=result.traffic.messages_sent,
        state_histories={pid: cores[pid].state_history for pid in registry.honest_ids},
        messages_dropped=result.traffic.messages_dropped,
    )
