"""The paper's contribution: Byzantine vector consensus algorithms and bounds."""

from repro.core.conditions import (
    Setting,
    SystemConfiguration,
    check_approx_async,
    check_exact_sync,
    check_restricted_async,
    check_restricted_sync,
    max_tolerable_faults,
    minimum_processes,
    minimum_processes_approx_async,
    minimum_processes_exact_sync,
    minimum_processes_restricted_async,
    minimum_processes_restricted_sync,
    minimum_processes_scalar,
    resilience_table,
)
from repro.core.safe_area import (
    SafeAreaCalculator,
    safe_area_contains,
    safe_area_is_empty,
    safe_area_point,
    safe_area_point_via_tverberg,
    safe_area_subset_count,
)
from repro.core.aggregation import AggregationStep, SafeAverageAggregator
from repro.core.exact_bvc import ExactBVCOutcome, ExactBVCProcess, run_exact_bvc
from repro.core.approx_bvc import (
    ApproxBVCOutcome,
    ApproxBVCProcess,
    contraction_factor,
    round_threshold,
    run_approx_bvc,
)
from repro.core.restricted_sync import (
    RestrictedRoundOutcome,
    RestrictedSyncProcess,
    run_restricted_sync_bvc,
)
from repro.core.restricted_async import (
    RestrictedAsyncProcess,
    restricted_async_contraction_factor,
    run_restricted_async_bvc,
)
from repro.core.validity import ValidityReport, check_approximate_outcome, check_exact_outcome
from repro.core.baselines import (
    CoordinateWiseConsensusProcess,
    coordinatewise_median,
    coordinatewise_trimmed_mean,
    run_coordinatewise_consensus,
)
from repro.core.impossibility import (
    AsyncImpossibilityWitness,
    SyncImpossibilityWitness,
    analyze_async_necessity,
    analyze_sync_necessity,
    theorem1_construction,
    theorem4_construction,
)

__all__ = [
    "Setting",
    "SystemConfiguration",
    "check_approx_async",
    "check_exact_sync",
    "check_restricted_async",
    "check_restricted_sync",
    "max_tolerable_faults",
    "minimum_processes",
    "minimum_processes_approx_async",
    "minimum_processes_exact_sync",
    "minimum_processes_restricted_async",
    "minimum_processes_restricted_sync",
    "minimum_processes_scalar",
    "resilience_table",
    "SafeAreaCalculator",
    "safe_area_contains",
    "safe_area_is_empty",
    "safe_area_point",
    "safe_area_point_via_tverberg",
    "safe_area_subset_count",
    "AggregationStep",
    "SafeAverageAggregator",
    "ExactBVCOutcome",
    "ExactBVCProcess",
    "run_exact_bvc",
    "ApproxBVCOutcome",
    "ApproxBVCProcess",
    "contraction_factor",
    "round_threshold",
    "run_approx_bvc",
    "RestrictedRoundOutcome",
    "RestrictedSyncProcess",
    "run_restricted_sync_bvc",
    "RestrictedAsyncProcess",
    "restricted_async_contraction_factor",
    "run_restricted_async_bvc",
    "ValidityReport",
    "check_approximate_outcome",
    "check_exact_outcome",
    "CoordinateWiseConsensusProcess",
    "coordinatewise_median",
    "coordinatewise_trimmed_mean",
    "run_coordinatewise_consensus",
    "AsyncImpossibilityWitness",
    "SyncImpossibilityWitness",
    "analyze_async_necessity",
    "analyze_sync_necessity",
    "theorem1_construction",
    "theorem4_construction",
]
