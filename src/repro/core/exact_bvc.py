"""Exact Byzantine vector consensus in synchronous systems (paper Section 2.2).

The algorithm is two steps:

1. every process Byzantine-broadcasts its input vector (the paper broadcasts
   each of the ``d`` coordinates with a scalar Byzantine broadcast; this
   implementation supports both that literal per-coordinate mode and a
   whole-vector mode, which is equivalent because the broadcast guarantees are
   value-agnostic).  After the broadcasts every non-faulty process holds the
   *same* multiset ``S`` of ``n`` vectors, in which the entry of every
   non-faulty process is its true input.
2. every process picks, with the same deterministic rule, a point of the safe
   area ``Gamma(S)`` as its decision.  ``Gamma(S)`` is non-empty because
   ``n >= (d + 1) f + 1`` (Lemma 1), and it is contained in the hull of the
   honest inputs because some ``(n - f)``-subset of ``S`` is all-honest.

:class:`ExactBVCProcess` is a :class:`~repro.processes.process.SyncProcess`
that embeds ``n`` (or ``n * d``) concurrent EIG broadcast instances and runs
them over ``f + 1`` synchronous rounds; :func:`run_exact_bvc` is the
one-call driver used by examples, tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Literal

import numpy as np

from repro.byzantine.adversary import ByzantineSyncProcess, MessageMutator
from repro.consensus.eig import EigBroadcastInstance, eig_round_count
from repro.core.conditions import SystemConfiguration, check_exact_sync
from repro.core.round_ops import exact_decision
from repro.core.safe_area import SafeAreaCalculator, SafeAreaEngine
from repro.exceptions import ProtocolError
from repro.geometry.multisets import PointMultiset
from repro.network.message import Message
from repro.network.sync_runtime import SynchronousRuntime, SyncRunResult
from repro.processes.process import SyncProcess
from repro.processes.registry import ProcessRegistry

__all__ = ["BroadcastMode", "ExactBVCProcess", "ExactBVCOutcome", "run_exact_bvc"]

BroadcastMode = Literal["per_coordinate", "whole_vector"]


class ExactBVCProcess(SyncProcess):
    """One process of the Exact BVC algorithm.

    Args:
        process_id: this process's id.
        configuration: the (n, d, f) system configuration.
        input_vector: this process's input (a point in ``R^d``).
        broadcast_mode: ``"per_coordinate"`` runs one scalar EIG broadcast per
            (originator, coordinate) pair — the literal algorithm in the paper;
            ``"whole_vector"`` runs one EIG broadcast per originator carrying
            the full vector, which exchanges fewer, larger messages.
        allow_insufficient: skip the resilience check (used only by the
            impossibility experiments).
        safe_area_engine: ``Gamma`` solver backend for the decision step —
            the batched kernel (default) or the literal oracle enumeration.
    """

    PROTOCOL = "exact_bvc"

    def __init__(
        self,
        process_id: int,
        configuration: SystemConfiguration,
        input_vector: np.ndarray,
        broadcast_mode: BroadcastMode = "whole_vector",
        allow_insufficient: bool = False,
        safe_area_engine: SafeAreaEngine = "kernel",
    ) -> None:
        super().__init__(process_id)
        check_exact_sync(configuration, allow_insufficient=allow_insufficient)
        self.configuration = configuration
        self.input_vector = np.asarray(input_vector, dtype=float)
        if self.input_vector.shape != (configuration.dimension,):
            raise ProtocolError(
                f"input vector has shape {self.input_vector.shape}, expected ({configuration.dimension},)"
            )
        self.broadcast_mode: BroadcastMode = broadcast_mode
        self._chooser = SafeAreaCalculator(
            fault_bound=configuration.fault_bound, engine=safe_area_engine
        )
        self._decided = False
        self._decision: np.ndarray | None = None
        self._received_multiset: PointMultiset | None = None
        process_ids = tuple(range(configuration.process_count))
        self._instances: dict[object, EigBroadcastInstance] = {}
        for originator in process_ids:
            if broadcast_mode == "per_coordinate":
                for coordinate in range(configuration.dimension):
                    value = (
                        float(self.input_vector[coordinate])
                        if originator == process_id
                        else None
                    )
                    self._instances[(originator, coordinate)] = EigBroadcastInstance(
                        owner_id=process_id,
                        sender_id=originator,
                        process_ids=process_ids,
                        fault_bound=configuration.fault_bound,
                        value=value,
                        default=0.0,
                    )
            else:
                value = (
                    tuple(float(x) for x in self.input_vector)
                    if originator == process_id
                    else None
                )
                self._instances[originator] = EigBroadcastInstance(
                    owner_id=process_id,
                    sender_id=originator,
                    process_ids=process_ids,
                    fault_bound=configuration.fault_bound,
                    value=value,
                    default=tuple(0.0 for _ in range(configuration.dimension)),
                )

    # -- synchronous process interface ------------------------------------------------

    @property
    def total_rounds(self) -> int:
        """Number of synchronous rounds the algorithm needs (``f + 1``)."""
        return eig_round_count(self.configuration.fault_bound)

    def outgoing(self, round_index: int) -> list[Message]:
        if round_index > self.total_rounds:
            return []
        bundle = {}
        for key, instance in self._instances.items():
            payload = instance.payload_for_round(round_index)
            if payload is not None:
                bundle[key] = dict(payload)
        if not bundle:
            return []
        return [
            Message(
                sender=self.process_id,
                recipient=recipient,
                protocol=self.PROTOCOL,
                kind="EIG",
                payload=bundle,
                round_index=round_index,
            )
            for recipient in range(self.configuration.process_count)
            if recipient != self.process_id
        ]

    def deliver(self, round_index: int, inbox: list[Message]) -> None:
        if round_index > self.total_rounds:
            return
        for message in inbox:
            if message.protocol != self.PROTOCOL or not isinstance(message.payload, dict):
                continue
            for key, instance_payload in message.payload.items():
                instance = self._instances.get(key)
                if instance is not None:
                    instance.receive_payload(round_index, message.sender, instance_payload)
        for instance in self._instances.values():
            instance.finish_round(round_index)
        if round_index == self.total_rounds:
            self._decide()

    def _decide(self) -> None:
        vectors = []
        for originator in range(self.configuration.process_count):
            if self.broadcast_mode == "per_coordinate":
                coordinates = [
                    self._coerce_scalar(self._instances[(originator, coordinate)].resolve())
                    for coordinate in range(self.configuration.dimension)
                ]
                vectors.append(np.asarray(coordinates, dtype=float))
            else:
                vectors.append(
                    self._coerce_vector(self._instances[originator].resolve())
                )
        self._received_multiset = PointMultiset(np.vstack(vectors))
        self._decision = exact_decision(self._received_multiset, self._chooser)
        self._decided = True

    def _coerce_scalar(self, value: object) -> float:
        try:
            scalar = float(value)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return 0.0
        if not np.isfinite(scalar):
            return 0.0
        return scalar

    def _coerce_vector(self, value: object) -> np.ndarray:
        try:
            vector = np.asarray(value, dtype=float).reshape(-1)
        except (TypeError, ValueError):
            return np.zeros(self.configuration.dimension)
        if vector.shape != (self.configuration.dimension,) or not np.all(np.isfinite(vector)):
            return np.zeros(self.configuration.dimension)
        return vector

    def has_decided(self) -> bool:
        return self._decided

    def decision(self) -> np.ndarray:
        if self._decision is None:
            raise ProtocolError(f"process {self.process_id} has not decided")
        return self._decision

    @property
    def agreed_multiset(self) -> PointMultiset | None:
        """The multiset ``S`` this process reconstructed in Step 1 (after deciding)."""
        return self._received_multiset


@dataclass(frozen=True)
class ExactBVCOutcome:
    """Result of a complete Exact BVC execution.

    Attributes:
        registry: the experiment cast (who was honest, with which inputs).
        decisions: decision vector per honest process id.
        rounds_executed: synchronous rounds used.
        messages_sent: total messages put on the network.
        messages_dropped: undeliverable messages (self-addressed or unknown
            recipient, typically Byzantine output) refused by the runtime.
    """

    registry: ProcessRegistry
    decisions: dict[int, np.ndarray]
    rounds_executed: int
    messages_sent: int
    messages_dropped: int = 0

    def honest_decisions(self) -> dict[int, np.ndarray]:
        """Alias kept for symmetry with the asynchronous outcome object."""
        return self.decisions


def run_exact_bvc(
    registry: ProcessRegistry,
    adversary_mutators: dict[int, MessageMutator] | None = None,
    broadcast_mode: BroadcastMode = "whole_vector",
    allow_insufficient: bool = False,
    max_rounds: int | None = None,
    safe_area_engine: SafeAreaEngine = "kernel",
    traffic_observer: "Callable[[Message], None] | None" = None,
) -> ExactBVCOutcome:
    """Run the Exact BVC algorithm end-to-end on a simulated synchronous system.

    Args:
        registry: process cast, inputs and fault set.
        adversary_mutators: mutator per faulty process id; faulty ids without a
            mutator behave honestly (the adversary may choose not to attack).
        broadcast_mode: per-coordinate (paper-literal) or whole-vector broadcasts.
        allow_insufficient: run even when ``n`` is below the resilience bound
            (for impossibility experiments).
        max_rounds: optional override of the runtime's round budget.
        safe_area_engine: ``Gamma`` solver backend — the batched kernel
            (default) or the literal oracle enumeration (cross-checks only).
        traffic_observer: optional callback that sees every routed message
            (the coordinated adversary's full-information tap).
    """
    adversary_mutators = adversary_mutators or {}
    configuration = registry.configuration
    processes: dict[int, SyncProcess] = {}
    for process_id in registry.process_ids:
        core = ExactBVCProcess(
            process_id=process_id,
            configuration=configuration,
            input_vector=registry.input_of(process_id),
            broadcast_mode=broadcast_mode,
            allow_insufficient=allow_insufficient,
            safe_area_engine=safe_area_engine,
        )
        if registry.is_faulty(process_id) and process_id in adversary_mutators:
            processes[process_id] = ByzantineSyncProcess(core, adversary_mutators[process_id])
        else:
            processes[process_id] = core
    runtime = SynchronousRuntime(
        processes,
        honest_ids=registry.honest_ids,
        max_rounds=max_rounds if max_rounds is not None else configuration.fault_bound + 2,
        traffic_observer=traffic_observer,
    )
    result: SyncRunResult = runtime.run()
    decisions = {pid: np.asarray(result.decisions[pid], dtype=float) for pid in registry.honest_ids}
    return ExactBVCOutcome(
        registry=registry,
        decisions=decisions,
        rounds_executed=result.rounds_executed,
        messages_sent=result.traffic.messages_sent,
        messages_dropped=result.traffic.messages_dropped,
    )
