"""Executable versions of the paper's impossibility (necessity) constructions.

The necessity halves of Theorems 1 and 4 are proved by exhibiting specific
input configurations for which no decision can satisfy validity and
(epsilon-)agreement simultaneously.  This module turns those constructions
into functions that *compute* the obstruction with the LP machinery, so the
experiments can show the bound is tight: one process below the bound the
obstruction appears, at the bound it disappears.

* Theorem 1 (synchronous, exact, ``f = 1``): with ``n = d + 1`` processes whose
  inputs are the ``d`` standard basis vectors plus the origin, the intersection
  of the hulls of all ``n`` leave-one-out input multisets is empty — so no
  valid common decision exists.  With ``n = d + 2`` (the bound) the
  intersection is non-empty for *every* input configuration (Lemma 1 with
  ``f = 1``).

* Theorem 4 (asynchronous, approximate, ``f = 1``): with ``n = d + 2``
  processes, inputs ``4 * epsilon * e_i`` for ``i = 1..d`` plus two copies of
  the origin, and process ``p_{d+2}`` arbitrarily slow, the validity
  constraints force each process ``p_i`` (``i <= d + 1``) to decide exactly its
  own input — and those forced decisions are ``4 * epsilon`` apart, violating
  epsilon-agreement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.safe_area import safe_area_is_empty, safe_area_point
from repro.exceptions import ConfigurationError
from repro.geometry.convex_hull import hulls_intersection_point
from repro.geometry.multisets import PointMultiset

__all__ = [
    "SyncImpossibilityWitness",
    "AsyncImpossibilityWitness",
    "theorem1_construction",
    "analyze_sync_necessity",
    "theorem4_construction",
    "analyze_async_necessity",
]


def theorem1_construction(dimension: int) -> PointMultiset:
    """Return the Theorem 1 input multiset: the ``d`` standard basis vectors plus the origin."""
    if dimension < 1:
        raise ConfigurationError("dimension must be at least 1")
    cloud = np.vstack([np.eye(dimension), np.zeros((1, dimension))])
    return PointMultiset(cloud)


@dataclass(frozen=True)
class SyncImpossibilityWitness:
    """Outcome of the Theorem 1 analysis for one (n, d) configuration.

    Attributes:
        dimension: the ``d`` analysed.
        process_count: the ``n`` analysed.
        gamma_empty: True when the intersection of all leave-one-out hulls
            (equivalently ``Gamma`` with ``f = 1``) is empty — i.e. Exact BVC
            with one fault is impossible for these inputs.
        witness_point: a point of the intersection when it is non-empty.
    """

    dimension: int
    process_count: int
    gamma_empty: bool
    witness_point: np.ndarray | None


def analyze_sync_necessity(dimension: int, process_count: int | None = None) -> SyncImpossibilityWitness:
    """Analyse the Theorem 1 construction for ``f = 1`` and the given ``n``.

    By default ``n = d + 1`` (one below the bound), where the construction
    shows the leave-one-out hull intersection is empty.  Passing
    ``process_count = d + 2`` (or larger) pads the construction with extra
    copies of the origin and demonstrates the obstruction disappears at the
    bound.
    """
    base = theorem1_construction(dimension)
    if process_count is None:
        process_count = dimension + 1
    if process_count < dimension + 1:
        raise ConfigurationError("the construction needs at least d + 1 processes")
    cloud = base.points
    while cloud.shape[0] < process_count:
        cloud = np.vstack([cloud, np.zeros((1, dimension))])
    multiset = PointMultiset(cloud)
    empty = safe_area_is_empty(multiset, fault_bound=1)
    witness = None if empty else safe_area_point(multiset, fault_bound=1)
    return SyncImpossibilityWitness(
        dimension=dimension,
        process_count=process_count,
        gamma_empty=empty,
        witness_point=witness,
    )


def theorem4_construction(dimension: int, epsilon: float) -> PointMultiset:
    """Return the Theorem 4 input multiset: ``4 eps * e_i`` for ``i <= d`` plus two origins."""
    if dimension < 1:
        raise ConfigurationError("dimension must be at least 1")
    if epsilon <= 0:
        raise ConfigurationError("epsilon must be positive")
    cloud = np.vstack([4.0 * epsilon * np.eye(dimension), np.zeros((2, dimension))])
    return PointMultiset(cloud)


@dataclass(frozen=True)
class AsyncImpossibilityWitness:
    """Outcome of the Theorem 4 analysis for one dimension and epsilon.

    Attributes:
        dimension: the ``d`` analysed.
        epsilon: the epsilon-agreement parameter of the construction.
        forced_decisions: for each process ``p_i`` (``i = 0..d``), the unique
            point its validity constraints allow when ``p_{d+2}`` never takes a
            step (the paper shows this is exactly ``x_i``).
        max_forced_gap: the largest coordinate-wise gap between two forced
            decisions; the construction makes it ``4 * epsilon``, violating
            epsilon-agreement.
        violates_epsilon_agreement: True when that gap exceeds ``epsilon``.
    """

    dimension: int
    epsilon: float
    forced_decisions: tuple[np.ndarray, ...]
    max_forced_gap: float
    violates_epsilon_agreement: bool


def analyze_async_necessity(dimension: int, epsilon: float = 0.25) -> AsyncImpossibilityWitness:
    """Analyse the Theorem 4 construction for ``f = 1`` and ``n = d + 2``.

    For each process ``p_i`` (``1 <= i <= d + 1`` in the paper's numbering,
    ``0``-based here) the decision must lie in the intersection of the hulls of
    ``X_i^j`` for every ``j != i`` among the first ``d + 1`` processes — the
    scenarios in which ``p_j`` may be the faulty one and ``p_{d+2}`` is merely
    slow.  The function computes one point of that intersection (which the
    construction makes unique, namely ``x_i``) and reports the resulting
    pairwise gaps.
    """
    multiset = theorem4_construction(dimension, epsilon)
    cloud = multiset.points
    participant_count = dimension + 1  # p_1 .. p_{d+1}; p_{d+2} never takes a step.
    forced: list[np.ndarray] = []
    for i in range(participant_count):
        hulls = []
        for j in range(participant_count):
            if j == i:
                continue
            keep = [k for k in range(participant_count) if k != j]
            hulls.append(cloud[keep])
        point = hulls_intersection_point(hulls)
        if point is None:
            raise ConfigurationError(
                "the Theorem 4 intersection is unexpectedly empty; the construction is malformed"
            )
        forced.append(point)
    stacked = np.vstack(forced)
    max_gap = float(np.max(stacked.max(axis=0) - stacked.min(axis=0))) if dimension >= 1 else 0.0
    return AsyncImpossibilityWitness(
        dimension=dimension,
        epsilon=epsilon,
        forced_decisions=tuple(forced),
        max_forced_gap=max_gap,
        violates_epsilon_agreement=max_gap > epsilon,
    )
