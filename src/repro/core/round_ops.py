"""Pure round/decision functions shared by the object and columnar runtimes.

The three synchronous-model protocols (Exact BVC, the coordinate-wise
baseline, restricted-round approximate BVC) and the asynchronous Approximate
BVC all bottom out in small *pure* state transitions: "given what a process
received this round, what is its next state / decision?".  Historically those
transitions lived inside the per-process classes, interleaved with message
parsing — which meant an alternative execution substrate (the columnar
engine in :mod:`repro.engine.vectorized`) would have had to re-implement the
numerics and keep them bit-for-bit in sync by hand.

This module is the single home of those transitions.  The process classes
call them on parsed inputs; the columnar engine calls them on array slices.
Because both substrates execute the *same* function objects on bitwise-equal
inputs, engine equivalence ("``--engine vectorized`` emits byte-identical
rows to ``--engine object``") is a property of the code structure, not a
hand-maintained invariant.

Everything here is deterministic and side-effect free.  The ``choose``
callables passed in must themselves be deterministic (the protocol already
requires this: all non-faulty processes must pick the same ``Gamma`` point
for the same multiset); the columnar engine exploits exactly that guarantee
by memoising ``choose`` across processes and trials.
"""

from __future__ import annotations

from itertools import combinations
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.consensus.scalar_exact import lower_median
from repro.core.safe_area import SafeAreaCalculator
from repro.geometry.multisets import PointMultiset

__all__ = [
    "quorum_families",
    "restricted_round_clouds",
    "restricted_round_reduce",
    "restricted_round_step",
    "exact_decision",
    "coordinatewise_decision",
    "approx_subset_families",
    "approx_round_step",
]

ChooseFn = Callable[[np.ndarray], np.ndarray]


# ---------------------------------------------------------------------------
# Restricted-round synchronous update (Section 4, Step 2 of Section 3.2)
# ---------------------------------------------------------------------------

def quorum_families(member_count: int, quorum: int) -> list[tuple[int, ...]]:
    """All index subsets of ``{0..member_count-1}`` of size ``quorum``, in order.

    Lexicographic enumeration — the order is part of the protocol's
    determinism contract (every process must enumerate identically).
    """
    return list(combinations(range(member_count), quorum))


def restricted_round_clouds(received: np.ndarray, quorum: int) -> list[np.ndarray]:
    """The ``Gamma`` query clouds of one restricted-round update, in family order.

    ``received`` is the ``(n, d)`` matrix of states collected this round
    (row ``i`` is what process ``i`` reported, the all-zero default for
    silent processes).  One ``(quorum, d)`` cloud per subset family.
    """
    received = np.asarray(received, dtype=float)
    return [received[list(family)] for family in quorum_families(received.shape[0], quorum)]


def restricted_round_reduce(points: Iterable[np.ndarray]) -> np.ndarray:
    """Average the chosen ``Gamma`` points into the new state (Equation (9))."""
    return np.vstack(list(points)).mean(axis=0)


def restricted_round_step(
    received: np.ndarray,
    fault_bound: int,
    quorum: int,
    choose: ChooseFn | None = None,
) -> np.ndarray:
    """One restricted-round state update: subset ``Gamma`` points, averaged.

    Args:
        received: the ``(n, d)`` matrix of states collected this round.
        fault_bound: the ``f`` used inside every ``Gamma`` computation.
        quorum: the subset size (``n - f`` for the synchronous algorithm).
        choose: deterministic ``Gamma``-point chooser; defaults to the
            standard :class:`~repro.core.safe_area.SafeAreaCalculator`.
            The columnar engine passes a memoised wrapper around the same
            chooser, which is numerically transparent because the chooser is
            a pure function of the cloud.
    """
    if choose is None:
        choose = SafeAreaCalculator(fault_bound=fault_bound).choose
    return restricted_round_reduce(
        choose(cloud) for cloud in restricted_round_clouds(received, quorum)
    )


# ---------------------------------------------------------------------------
# Exact BVC / coordinate-wise baseline decisions (Section 2.2 Step 2)
# ---------------------------------------------------------------------------

def exact_decision(points: PointMultiset | np.ndarray, chooser: SafeAreaCalculator) -> np.ndarray:
    """The Exact BVC decision: the deterministic ``Gamma`` point of ``S``."""
    return chooser.choose(points)


def coordinatewise_decision(cloud: np.ndarray) -> np.ndarray:
    """The strawman baseline decision: the coordinate-wise lower median of ``S``."""
    cloud = np.asarray(cloud, dtype=float)
    return np.asarray(
        [lower_median(cloud[:, coordinate]) for coordinate in range(cloud.shape[1])]
    )


# ---------------------------------------------------------------------------
# Approximate BVC round update (Section 3.2, Appendix F subset selection)
# ---------------------------------------------------------------------------

def approx_subset_families(
    members: Sequence[int],
    witness_reports: Mapping[int, Sequence[int]],
    quorum: int,
    subset_mode: str,
) -> list[tuple[int, ...]]:
    """Return the subsets ``C`` of ``B_i[t]`` used in Step 2 of the algorithm.

    ``"all_subsets"`` enumerates every ``quorum``-subset of ``members`` (the
    literal algorithm); ``"witness_subsets"`` uses each witness's reported
    member set (the Appendix F optimisation), deduplicated, falling back to
    the full enumeration if no witness family qualifies.
    """
    members = list(members)
    if subset_mode == "all_subsets":
        return [tuple(sorted(family)) for family in combinations(members, quorum)]
    member_set = set(members)
    families: list[tuple[int, ...]] = []
    seen: set[tuple[int, ...]] = set()
    for reported_members in witness_reports.values():
        family = tuple(sorted(reported_members))
        if len(family) != quorum:
            continue
        if any(member not in member_set for member in family):
            continue
        if family in seen:
            continue
        seen.add(family)
        families.append(family)
    if not families:
        # Fall back to the unoptimised enumeration; Appendix F's argument
        # guarantees witnesses exist, so this is a defensive path only.
        return [tuple(sorted(family)) for family in combinations(members, quorum)]
    return families


def approx_round_step(
    tuples: Mapping[int, np.ndarray],
    families: Sequence[tuple[int, ...]],
    chooser: SafeAreaCalculator,
) -> np.ndarray:
    """One Approximate BVC state update: batched ``Gamma`` points, averaged.

    All families share the quorum size, so the queries are assembled in one
    numpy pass and solved as a single block-diagonal LP by the kernel.
    """
    clouds = [
        PointMultiset(np.vstack([tuples[member] for member in family]))
        for family in families
    ]
    points = chooser.choose_batch(clouds)
    return np.mean(np.vstack(points), axis=0)
