"""Run-time verification of the BVC correctness conditions.

Every experiment in this repository checks its protocol run against the
paper's definitions *independently of the algorithm under test*, using the LP
machinery from :mod:`repro.geometry`:

* Agreement (exact) — all honest decisions identical;
* epsilon-Agreement (approximate) — per coordinate, any two honest decisions
  within ``epsilon``;
* Validity — every honest decision inside the convex hull of the honest
  *inputs*;
* Termination — reported by the runtimes (a raised
  :class:`~repro.exceptions.TerminationError` means a liveness failure).

:func:`check_exact_outcome` and :func:`check_approximate_outcome` return a
:class:`ValidityReport` summarising the verdicts together with quantitative
margins (hull distance of the worst decision, largest coordinate disagreement)
that the benchmarks report as measured series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.exceptions import AgreementViolation, ValidityViolation
from repro.geometry.convex_hull import distance_to_hull
from repro.geometry.multisets import PointMultiset
from repro.geometry.points import as_point
from repro.processes.registry import ProcessRegistry

__all__ = ["ValidityReport", "check_exact_outcome", "check_approximate_outcome"]

_AGREEMENT_TOLERANCE = 1e-7
_VALIDITY_TOLERANCE = 1e-6


@dataclass(frozen=True)
class ValidityReport:
    """Quantitative verdict on a finished run.

    Attributes:
        agreement_ok: exact agreement (or epsilon-agreement) satisfied.
        validity_ok: every honest decision lies in the honest-input hull.
        max_disagreement: largest coordinate-wise gap between two honest
            decisions (0 for perfect agreement).
        max_hull_distance: Chebyshev distance of the farthest honest decision
            from the honest-input hull (0 when validity holds exactly).
        epsilon: the epsilon-agreement threshold used (``None`` for exact runs).
    """

    agreement_ok: bool
    validity_ok: bool
    max_disagreement: float
    max_hull_distance: float
    epsilon: float | None = None

    @property
    def all_ok(self) -> bool:
        """True when both agreement and validity hold."""
        return self.agreement_ok and self.validity_ok

    def raise_on_failure(self) -> None:
        """Raise a descriptive exception when a condition is violated."""
        if not self.agreement_ok:
            raise AgreementViolation(
                f"honest decisions disagree by {self.max_disagreement:.3e}"
                + (f" (epsilon={self.epsilon})" if self.epsilon is not None else "")
            )
        if not self.validity_ok:
            raise ValidityViolation(
                f"a decision lies {self.max_hull_distance:.3e} outside the honest-input hull"
            )


def _decisions_as_cloud(decisions: Mapping[int, Sequence[float]], dimension: int) -> np.ndarray:
    if not decisions:
        raise AgreementViolation("no honest decisions to check")
    rows = [as_point(vector, dimension=dimension) for _, vector in sorted(decisions.items())]
    return np.vstack(rows)


def _max_disagreement(cloud: np.ndarray) -> float:
    return float(np.max(cloud.max(axis=0) - cloud.min(axis=0))) if cloud.shape[0] else 0.0


def _max_hull_distance(honest_inputs: PointMultiset, cloud: np.ndarray) -> float:
    return max(distance_to_hull(honest_inputs, row) for row in cloud)


def check_exact_outcome(
    registry: ProcessRegistry,
    decisions: Mapping[int, Sequence[float]],
    agreement_tolerance: float = _AGREEMENT_TOLERANCE,
    validity_tolerance: float = _VALIDITY_TOLERANCE,
) -> ValidityReport:
    """Verify the Exact BVC conditions for a finished synchronous run."""
    cloud = _decisions_as_cloud(decisions, registry.configuration.dimension)
    disagreement = _max_disagreement(cloud)
    hull_distance = _max_hull_distance(registry.honest_input_multiset(), cloud)
    return ValidityReport(
        agreement_ok=disagreement <= agreement_tolerance,
        validity_ok=hull_distance <= validity_tolerance,
        max_disagreement=disagreement,
        max_hull_distance=hull_distance,
        epsilon=None,
    )


def check_approximate_outcome(
    registry: ProcessRegistry,
    decisions: Mapping[int, Sequence[float]],
    epsilon: float,
    validity_tolerance: float = _VALIDITY_TOLERANCE,
) -> ValidityReport:
    """Verify the Approximate BVC conditions (epsilon-agreement + validity)."""
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    cloud = _decisions_as_cloud(decisions, registry.configuration.dimension)
    disagreement = _max_disagreement(cloud)
    hull_distance = _max_hull_distance(registry.honest_input_multiset(), cloud)
    return ValidityReport(
        agreement_ok=disagreement <= epsilon,
        validity_ok=hull_distance <= validity_tolerance,
        max_disagreement=disagreement,
        max_hull_distance=hull_distance,
        epsilon=epsilon,
    )
