"""The safe area ``Gamma(Y)`` and how to pick a point inside it.

The paper defines, for a multiset ``Y`` of points in ``R^d`` and a fault bound
``f``::

    Gamma(Y) = intersection over all T subset of Y with |T| = |Y| - f of H(T)

(Equation (1)).  Lemma 1 shows ``Gamma(Y)`` is non-empty whenever
``|Y| >= (d+1)f + 1``.  Both the exact synchronous algorithm (Section 2.2) and
the asynchronous approximate algorithm (Section 3.2) decide / update state by
picking a point of ``Gamma`` of some multiset; Section 2.2 spells out the
linear program that finds such a point, and Appendix F describes an
optimisation that restricts the subsets considered.

This module implements:

* :func:`safe_area_point` — the paper's LP over all ``C(|Y|, |Y|-f)`` subsets,
  finding a single point that is simultaneously a convex combination of every
  subset of size ``|Y| - f``;
* :func:`safe_area_point_via_tverberg` — the alternative route through a
  Tverberg partition, used for cross-validation in tests;
* :func:`safe_area_contains` / :func:`safe_area_is_empty` — membership and
  emptiness predicates, used directly by the impossibility experiments;
* :class:`SafeAreaCalculator` — a deterministic, configurable chooser used by
  the protocol code (all non-faulty processes must pick the *same* point, so
  determinism is part of the algorithm's correctness argument).

Production queries route through the batched, cached
:class:`~repro.geometry.kernel.GammaKernel` (``engine="kernel"``, the
default), which prunes the subset family and reuses cached sparse constraint
templates across rounds; :func:`safe_area_point` here remains the literal,
unoptimised Section 2.2 program and serves as the cross-check oracle for the
kernel's equivalence tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from math import comb
from typing import Iterable, Literal, Sequence

import numpy as np

from repro.exceptions import EmptyIntersectionError, GeometryError, LinearProgramError
from repro.geometry.convex_hull import distance_to_hull
from repro.geometry.kernel import default_kernel
from repro.geometry.linprog import solve_linear_program
from repro.geometry.multisets import PointMultiset
from repro.geometry.points import as_cloud
from repro.geometry.tverberg import find_tverberg_partition

__all__ = [
    "SafeAreaEngine",
    "safe_area_subset_count",
    "safe_area_point",
    "safe_area_point_via_tverberg",
    "safe_area_contains",
    "safe_area_is_empty",
    "SafeAreaCalculator",
]

#: ``"kernel"`` is the pruned/cached/batched production path
#: (:mod:`repro.geometry.kernel`); ``"oracle"`` is the literal Section 2.2
#: program below, kept as the cross-validation reference.
SafeAreaEngine = Literal["kernel", "oracle"]


def _as_multiset(points: PointMultiset | np.ndarray | Iterable[Sequence[float]]) -> PointMultiset:
    if isinstance(points, PointMultiset):
        return points
    return PointMultiset(as_cloud(points))


def safe_area_subset_count(point_count: int, fault_bound: int) -> int:
    """Return the number of subsets ``Gamma`` intersects over: ``C(|Y|, |Y|-f)``."""
    if fault_bound < 0:
        raise GeometryError("fault bound must be non-negative")
    if fault_bound > point_count:
        raise GeometryError("fault bound cannot exceed the number of points")
    return comb(point_count, point_count - fault_bound)


def _subset_index_families(
    point_count: int,
    fault_bound: int,
    subset_indices: Sequence[Sequence[int]] | None,
) -> list[tuple[int, ...]]:
    """Return the index families to intersect over.

    By default this is every subset of size ``point_count - fault_bound`` (the
    paper's definition); callers implementing the Appendix F optimisation pass
    an explicit, smaller family.
    """
    if subset_indices is not None:
        families = [tuple(sorted(indices)) for indices in subset_indices]
        for family in families:
            if len(family) != point_count - fault_bound:
                raise GeometryError(
                    f"explicit subset {family} does not have size |Y| - f = {point_count - fault_bound}"
                )
            if any(index < 0 or index >= point_count for index in family):
                raise GeometryError(f"explicit subset {family} has out-of-range indices")
        return families
    return list(combinations(range(point_count), point_count - fault_bound))


def safe_area_point(
    points: PointMultiset | np.ndarray | Iterable[Sequence[float]],
    fault_bound: int,
    *,
    subset_indices: Sequence[Sequence[int]] | None = None,
    objective: np.ndarray | Sequence[float] | None = None,
) -> np.ndarray | None:
    """Return a point of ``Gamma(points)``, or ``None`` when the safe area is empty.

    Implements the linear program of Section 2.2 of the paper: variables are
    the coordinates of the sought point ``z`` plus one block of convex
    combination weights per subset ``T``; constraints force ``z`` to be a
    convex combination of every subset simultaneously.

    Args:
        points: the multiset ``Y``.
        fault_bound: the paper's ``f``.
        subset_indices: optional explicit subset family (Appendix F
            optimisation); defaults to all subsets of size ``|Y| - f``.
        objective: optional linear objective over ``z`` (length ``d``).  The
            default (all zeros) returns an arbitrary feasible point; passing an
            objective makes the choice deterministic in a caller-controlled way
            (e.g. lexicographic minimisation).
    """
    multiset = _as_multiset(points)
    cloud = multiset.points
    point_count, dimension = cloud.shape
    if fault_bound < 0:
        raise GeometryError("fault bound must be non-negative")
    if point_count == 0:
        return None
    if fault_bound == 0:
        # Gamma(Y) = H(Y); the centroid is a canonical interior choice.
        return multiset.centroid()
    if point_count - fault_bound <= 0:
        return None

    families = _subset_index_families(point_count, fault_bound, subset_indices)

    # Variable layout: z (d, free) ++ alpha blocks, one per subset family.
    block_size = point_count - fault_bound
    variable_count = dimension + len(families) * block_size

    full_objective = np.zeros(variable_count)
    if objective is not None:
        objective = np.asarray(objective, dtype=float)
        if objective.shape != (dimension,):
            raise GeometryError(f"objective must have length d={dimension}")
        full_objective[:dimension] = objective

    equality_rows: list[np.ndarray] = []
    equality_rhs: list[float] = []
    offset = dimension
    for family in families:
        block_cloud = cloud[list(family)]
        # z - block_cloud.T @ alpha == 0  (d rows)
        for coordinate in range(dimension):
            row = np.zeros(variable_count)
            row[coordinate] = 1.0
            row[offset : offset + block_size] = -block_cloud[:, coordinate]
            equality_rows.append(row)
            equality_rhs.append(0.0)
        # sum(alpha) == 1
        row = np.zeros(variable_count)
        row[offset : offset + block_size] = 1.0
        equality_rows.append(row)
        equality_rhs.append(1.0)
        offset += block_size

    bounds: list[tuple[float | None, float | None]] = [(None, None)] * dimension
    bounds.extend([(0, None)] * (len(families) * block_size))

    try:
        result = solve_linear_program(
            full_objective,
            equality_matrix=np.vstack(equality_rows),
            equality_rhs=np.asarray(equality_rhs),
            bounds=bounds,
        )
    except LinearProgramError as error:
        # HiGHS can fail to classify the strict program at all on clusters of
        # near-coincident points; the relaxed program below is feasible by
        # construction and resolves exactly those instances.  Only
        # solver-status failures qualify; input-validation errors (status
        # None) stay loud.
        if error.status is None:
            raise
        result = None
    if result is not None and result.feasible and result.solution is not None:
        return result.solution[:dimension]
    # The exact program can be reported infeasible for purely numerical
    # reasons when Gamma has an empty interior (e.g. after the iterative
    # algorithms have collapsed all states onto nearly identical points).
    # Lemma 1 guarantees Gamma is non-empty whenever |Y| >= (d+1)f + 1, so
    # before declaring emptiness we re-solve with a minimised slack and accept
    # the answer when the violation is at floating-point scale.
    return _relaxed_safe_area_point(cloud, families, block_size)


def _relaxed_safe_area_point(
    cloud: np.ndarray,
    families: Sequence[tuple[int, ...]],
    block_size: int,
) -> np.ndarray | None:
    """Solve the Gamma LP with a minimised infeasibility slack.

    Returns the candidate point when the optimal slack is within numerical
    tolerance of zero (scaled by the coordinate magnitude), otherwise ``None``
    — which then genuinely means the safe area is empty.
    """
    point_count, dimension = cloud.shape
    # Variables: z (d, free) ++ alpha blocks ++ slack t (>= 0, last).
    variable_count = dimension + len(families) * block_size + 1
    objective = np.zeros(variable_count)
    objective[-1] = 1.0

    inequality_rows: list[np.ndarray] = []
    inequality_rhs: list[float] = []
    equality_rows: list[np.ndarray] = []
    equality_rhs: list[float] = []

    offset = dimension
    for family in families:
        block_cloud = cloud[list(family)]
        for coordinate in range(dimension):
            #  z - block.T alpha - t <= 0   and   -(z - block.T alpha) - t <= 0
            row = np.zeros(variable_count)
            row[coordinate] = 1.0
            row[offset : offset + block_size] = -block_cloud[:, coordinate]
            row[-1] = -1.0
            inequality_rows.append(row)
            inequality_rhs.append(0.0)
            row = np.zeros(variable_count)
            row[coordinate] = -1.0
            row[offset : offset + block_size] = block_cloud[:, coordinate]
            row[-1] = -1.0
            inequality_rows.append(row)
            inequality_rhs.append(0.0)
        row = np.zeros(variable_count)
        row[offset : offset + block_size] = 1.0
        equality_rows.append(row)
        equality_rhs.append(1.0)
        offset += block_size

    bounds: list[tuple[float | None, float | None]] = [(None, None)] * dimension
    bounds.extend([(0, None)] * (len(families) * block_size))
    bounds.append((0, None))

    result = solve_linear_program(
        objective,
        inequality_matrix=np.vstack(inequality_rows),
        inequality_rhs=np.asarray(inequality_rhs),
        equality_matrix=np.vstack(equality_rows),
        equality_rhs=np.asarray(equality_rhs),
        bounds=bounds,
    )
    if not result.feasible or result.solution is None or result.objective is None:
        return None
    scale = max(1.0, float(np.max(np.abs(cloud))))
    if result.objective > 1e-6 * scale:
        return None
    return result.solution[:dimension]


def safe_area_point_via_tverberg(
    points: PointMultiset | np.ndarray | Iterable[Sequence[float]],
    fault_bound: int,
) -> np.ndarray | None:
    """Return a point of ``Gamma(points)`` obtained as a Tverberg point.

    Lemma 1 of the paper shows every Tverberg point (for a partition into
    ``f + 1`` parts) lies in ``Gamma``.  The partition search is exponential,
    so this is a validation tool for small instances, not the production path.
    """
    multiset = _as_multiset(points)
    if fault_bound == 0:
        return multiset.centroid() if len(multiset) else None
    partition = find_tverberg_partition(multiset, parts=fault_bound + 1)
    if partition is None:
        return None
    return partition.witness


def safe_area_contains(
    points: PointMultiset | np.ndarray | Iterable[Sequence[float]],
    fault_bound: int,
    candidate: Sequence[float],
    tolerance: float = 1e-6,
) -> bool:
    """Return True when ``candidate`` lies in ``Gamma(points)`` (up to ``tolerance``).

    Checks membership of the candidate in the hull of *every* subset of size
    ``|Y| - f`` — the literal definition — so it is exponential in ``f`` and
    meant for verification, not for the protocol hot path.  Membership is
    tested via the distance-to-hull LP, which degrades gracefully for boundary
    points (the common case, since ``Gamma`` often has an empty interior).
    """
    multiset = _as_multiset(points)
    cloud = multiset.points
    point_count = cloud.shape[0]
    if point_count == 0 or point_count - fault_bound <= 0:
        return False
    for family in combinations(range(point_count), point_count - fault_bound):
        if distance_to_hull(cloud[list(family)], candidate) > tolerance:
            return False
    return True


def safe_area_is_empty(
    points: PointMultiset | np.ndarray | Iterable[Sequence[float]],
    fault_bound: int,
    engine: SafeAreaEngine = "kernel",
) -> bool:
    """Return True when ``Gamma(points)`` is empty.

    Emptiness is decided by the kernel by default (the pruned family has the
    same intersection, so the answer is identical to the oracle's); pass
    ``engine="oracle"`` to force the literal enumeration.
    """
    if engine == "kernel":
        return default_kernel.point(_as_multiset(points).points, fault_bound) is None
    return safe_area_point(points, fault_bound) is None


@dataclass(frozen=True)
class SafeAreaCalculator:
    """Deterministic chooser of a point in ``Gamma``.

    Both BVC algorithms require all non-faulty processes to pick the *same*
    point from ``Gamma`` of an identical multiset; this object encapsulates
    that deterministic choice.  The default strategy minimises the first
    coordinate, then reuses the LP witness (HiGHS is deterministic for a fixed
    input, and all processes present the multiset in the same order, so the
    choice is identical across processes).

    Attributes:
        fault_bound: the ``f`` used in the ``Gamma`` definition.
        tie_break_objective: optional explicit objective over ``z``.
        engine: ``"kernel"`` (default) routes through the pruned, cached
            :class:`~repro.geometry.kernel.GammaKernel`; ``"oracle"`` runs
            the literal Section 2.2 enumeration.  Determinism holds either
            way — but all processes of one execution must use the same
            engine, since the two may pick different (equally valid) points
            of a non-degenerate ``Gamma``.
        prune: apply the Appendix F-style subset pruning (kernel engine only).
    """

    fault_bound: int
    tie_break_objective: tuple[float, ...] | None = None
    engine: SafeAreaEngine = "kernel"
    prune: bool = True

    def _objective_for(self, dimension: int) -> np.ndarray | None:
        if self.tie_break_objective is not None:
            return np.asarray(self.tie_break_objective, dtype=float)
        if dimension >= 1:
            objective = np.zeros(dimension)
            objective[0] = 1.0
            return objective
        return None

    def choose(
        self,
        points: PointMultiset | np.ndarray | Iterable[Sequence[float]],
        *,
        subset_indices: Sequence[Sequence[int]] | None = None,
    ) -> np.ndarray:
        """Return the deterministic point of ``Gamma(points)``.

        Raises :class:`EmptyIntersectionError` when the safe area is empty,
        which Lemma 1 guarantees cannot happen for ``|points| >= (d+1)f + 1``.
        """
        multiset = _as_multiset(points)
        objective = self._objective_for(multiset.dimension)
        if self.engine == "kernel":
            point = default_kernel.point(
                multiset.points,
                self.fault_bound,
                objective=objective,
                subset_indices=subset_indices,
                prune=self.prune,
            )
        else:
            point = safe_area_point(
                multiset,
                self.fault_bound,
                subset_indices=subset_indices,
                objective=objective,
            )
        if point is None:
            raise EmptyIntersectionError(
                f"Gamma is empty for |Y|={len(multiset)}, f={self.fault_bound}, d={multiset.dimension}"
            )
        return point

    def choose_batch(
        self,
        point_sets: Sequence[PointMultiset | np.ndarray | Iterable[Sequence[float]]],
        *,
        subset_indices: Sequence[Sequence[Sequence[int]]] | None = None,
    ) -> list[np.ndarray]:
        """Deterministically choose one ``Gamma`` point per query multiset.

        All queries must share one ``(m, d)`` shape (the Approximate BVC round
        update satisfies this: every witness family has quorum size).  With the
        kernel engine the queries are assembled in one pass and solved as a
        single block-diagonal LP; the oracle engine loops :meth:`choose`.

        Raises :class:`EmptyIntersectionError` naming the first empty query.
        """
        multisets = [_as_multiset(points) for points in point_sets]
        if subset_indices is not None and len(subset_indices) != len(multisets):
            raise GeometryError(
                f"subset_indices covers {len(subset_indices)} queries, "
                f"but {len(multisets)} were given"
            )
        if not multisets:
            return []
        if self.engine != "kernel":
            if subset_indices is None:
                return [self.choose(multiset) for multiset in multisets]
            return [
                self.choose(multiset, subset_indices=family)
                for multiset, family in zip(multisets, subset_indices)
            ]
        objective = self._objective_for(multisets[0].dimension)
        chosen = default_kernel.points_batch(
            [multiset.points for multiset in multisets],
            self.fault_bound,
            objective=objective,
            subset_indices=subset_indices,
            prune=self.prune,
        )
        for index, point in enumerate(chosen):
            if point is None:
                multiset = multisets[index]
                raise EmptyIntersectionError(
                    f"Gamma is empty for batch query {index}: |Y|={len(multiset)}, "
                    f"f={self.fault_bound}, d={multiset.dimension}"
                )
        return chosen  # type: ignore[return-value]

    def resolve_multi(
        self,
        point_sets: Sequence[PointMultiset | np.ndarray | Iterable[Sequence[float]]],
        *,
        fused: bool = False,
    ) -> list[np.ndarray | None]:
        """Answer many independent ``Gamma`` queries, ``None`` for empty ones.

        The multi-execution companion of :meth:`choose`: queries may come
        from *different* protocol executions (the columnar engine batches a
        whole simulation round across trials), so emptiness is reported per
        query instead of raising, letting the caller attribute it to the
        right execution.  Shapes may differ between queries, but all must
        share one dimension (the deterministic tie-break objective is built
        once).  With the kernel engine and ``fused=False`` (default) every
        result is bitwise identical to what :meth:`choose` would return for
        that query — bitwise-equal clouds are deduplicated and solved once;
        ``fused=True`` trades that single-solve parity for one
        block-diagonal solve per shape class.
        """
        multisets = [_as_multiset(points) for points in point_sets]
        if not multisets:
            return []
        dimension = multisets[0].dimension
        if any(multiset.dimension != dimension for multiset in multisets):
            raise GeometryError("all queries of a resolve_multi call must share one dimension")
        objective = self._objective_for(dimension)
        if self.engine != "kernel":
            return [
                safe_area_point(multiset, self.fault_bound, objective=objective)
                for multiset in multisets
            ]
        return default_kernel.points_multi(
            [multiset.points for multiset in multisets],
            self.fault_bound,
            objective=objective,
            prune=self.prune,
            fused=fused,
        )
