"""Baselines the paper compares against (explicitly or implicitly).

* :class:`CoordinateWiseConsensusProcess` / :func:`run_coordinatewise_consensus`
  — run Byzantine *scalar* consensus independently on every coordinate, the
  strawman the paper's introduction shows violates vector validity (its
  decision can land outside the convex hull of the honest inputs even though
  every coordinate individually looks fine).  It reuses the same EIG broadcast
  step as the Exact BVC algorithm and differs only in Step 2: the decision is
  the coordinate-wise lower median of the agreed multiset rather than a point
  of ``Gamma``.

* :func:`coordinatewise_median` and :func:`coordinatewise_trimmed_mean` —
  non-protocol aggregation rules used by the robust-aggregation example and
  benchmarks as comparison points for the ``Gamma``-based aggregation.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.byzantine.adversary import ByzantineSyncProcess, MessageMutator
from repro.network.message import Message
from repro.core.exact_bvc import BroadcastMode, ExactBVCOutcome, ExactBVCProcess
from repro.core.round_ops import coordinatewise_decision
from repro.exceptions import ConfigurationError
from repro.geometry.multisets import PointMultiset
from repro.network.sync_runtime import SynchronousRuntime
from repro.processes.process import SyncProcess
from repro.processes.registry import ProcessRegistry

__all__ = [
    "coordinatewise_median",
    "coordinatewise_trimmed_mean",
    "CoordinateWiseConsensusProcess",
    "run_coordinatewise_consensus",
]


def coordinatewise_median(vectors: np.ndarray) -> np.ndarray:
    """Return the coordinate-wise lower median of a ``(k, d)`` stack of vectors."""
    cloud = np.asarray(vectors, dtype=float)
    if cloud.ndim != 2 or cloud.shape[0] == 0:
        raise ConfigurationError("need a non-empty (k, d) array of vectors")
    return coordinatewise_decision(cloud)


def coordinatewise_trimmed_mean(vectors: np.ndarray, trim: int) -> np.ndarray:
    """Return the coordinate-wise mean after dropping the ``trim`` smallest and largest entries."""
    cloud = np.asarray(vectors, dtype=float)
    if cloud.ndim != 2 or cloud.shape[0] == 0:
        raise ConfigurationError("need a non-empty (k, d) array of vectors")
    if trim < 0 or 2 * trim >= cloud.shape[0]:
        raise ConfigurationError(f"cannot trim {trim} from each side of {cloud.shape[0]} values")
    trimmed_columns = []
    for coordinate in range(cloud.shape[1]):
        ordered = np.sort(cloud[:, coordinate])
        kept = ordered[trim : cloud.shape[0] - trim] if trim else ordered
        trimmed_columns.append(float(kept.mean()))
    return np.asarray(trimmed_columns)


class CoordinateWiseConsensusProcess(ExactBVCProcess):
    """Exact-BVC Step 1 followed by per-coordinate scalar decisions (the strawman).

    Step 1 is identical to :class:`~repro.core.exact_bvc.ExactBVCProcess`
    (Byzantine broadcast of every input), so all non-faulty processes agree on
    the same multiset ``S``; Step 2 takes the lower median of each coordinate
    of ``S`` independently.  Agreement and per-coordinate scalar validity hold,
    but vector validity does not in general — which is the point.
    """

    def _decide(self) -> None:
        vectors = []
        for originator in range(self.configuration.process_count):
            if self.broadcast_mode == "per_coordinate":
                coordinates = [
                    self._coerce_scalar(self._instances[(originator, coordinate)].resolve())
                    for coordinate in range(self.configuration.dimension)
                ]
                vectors.append(np.asarray(coordinates, dtype=float))
            else:
                vectors.append(self._coerce_vector(self._instances[originator].resolve()))
        cloud = np.vstack(vectors)
        self._received_multiset = PointMultiset(cloud)
        self._decision = coordinatewise_median(cloud)
        self._decided = True


def run_coordinatewise_consensus(
    registry: ProcessRegistry,
    adversary_mutators: dict[int, MessageMutator] | None = None,
    broadcast_mode: BroadcastMode = "per_coordinate",
    max_rounds: int | None = None,
    traffic_observer: "Callable[[Message], None] | None" = None,
) -> ExactBVCOutcome:
    """Run the coordinate-wise scalar-consensus baseline end-to-end.

    The baseline only needs ``n >= 3f + 1`` (scalar resilience), so the
    resilience check of the vector algorithm is bypassed; what the experiments
    demonstrate is that even when it runs, its decision may violate vector
    validity.
    """
    adversary_mutators = adversary_mutators or {}
    configuration = registry.configuration
    processes: dict[int, SyncProcess] = {}
    for process_id in registry.process_ids:
        core = CoordinateWiseConsensusProcess(
            process_id=process_id,
            configuration=configuration,
            input_vector=registry.input_of(process_id),
            broadcast_mode=broadcast_mode,
            allow_insufficient=True,
        )
        if registry.is_faulty(process_id) and process_id in adversary_mutators:
            processes[process_id] = ByzantineSyncProcess(core, adversary_mutators[process_id])
        else:
            processes[process_id] = core
    runtime = SynchronousRuntime(
        processes,
        honest_ids=registry.honest_ids,
        max_rounds=max_rounds if max_rounds is not None else configuration.fault_bound + 2,
        traffic_observer=traffic_observer,
    )
    result = runtime.run()
    decisions = {pid: np.asarray(result.decisions[pid], dtype=float) for pid in registry.honest_ids}
    return ExactBVCOutcome(
        registry=registry,
        decisions=decisions,
        rounds_executed=result.rounds_executed,
        messages_sent=result.traffic.messages_sent,
        messages_dropped=result.traffic.messages_dropped,
    )
