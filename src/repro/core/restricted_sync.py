"""Synchronous approximate BVC with the restricted round structure (Section 4).

The restricted structure trades processes for simplicity: in every synchronous
round each process simply sends its current state to everyone and updates its
state from whatever it received (one message delay per round, no embedded
broadcast protocol).  Theorem 6 shows ``n >= (d + 2) f + 1`` is necessary and
sufficient for this structure.

Round ``t`` at process ``p_i``:

1. send ``v_i[t-1]`` to all processes; collect the states sent by the others
   this round, substituting the default all-zero vector for processes that
   sent nothing (only Byzantine processes ever stay silent in a synchronous
   complete graph with reliable channels);
2. update ``v_i[t]`` as in Step 2 of the Section 3.2 algorithm, with
   ``B_i[t]`` the collected states: average the deterministic ``Gamma`` points
   of all ``(n - f)``-subsets.

Because any two non-faulty processes receive identical vectors from the
``n - f >= (d + 1) f + 1`` non-faulty processes, their subset enumerations
share at least one common subset, which is what drives the contraction
argument (with the same ``gamma = 1 / (n * C(n, n - f))`` as the unrestricted
algorithm).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.byzantine.adversary import ByzantineSyncProcess, MessageMutator
from repro.core.approx_bvc import contraction_factor, round_threshold
from repro.core.conditions import SystemConfiguration, check_restricted_sync
from repro.core.round_ops import restricted_round_step
from repro.core.safe_area import SafeAreaCalculator
from repro.exceptions import ConfigurationError, ProtocolError
from repro.network.message import Message
from repro.network.sync_runtime import SynchronousRuntime, SyncRunResult
from repro.processes.process import SyncProcess
from repro.processes.registry import ProcessRegistry

__all__ = ["RestrictedSyncProcess", "RestrictedRoundOutcome", "run_restricted_sync_bvc"]


class RestrictedSyncProcess(SyncProcess):
    """One process of the restricted-round synchronous approximate BVC algorithm."""

    PROTOCOL = "restricted_sync_bvc"

    def __init__(
        self,
        process_id: int,
        configuration: SystemConfiguration,
        input_vector: np.ndarray,
        epsilon: float,
        value_lower: float,
        value_upper: float,
        max_rounds_override: int | None = None,
        allow_insufficient: bool = False,
    ) -> None:
        super().__init__(process_id)
        check_restricted_sync(configuration, allow_insufficient=allow_insufficient)
        self.configuration = configuration
        self.input_vector = np.asarray(input_vector, dtype=float)
        if self.input_vector.shape != (configuration.dimension,):
            raise ProtocolError(
                f"input vector has shape {self.input_vector.shape}, expected ({configuration.dimension},)"
            )
        if value_upper < value_lower:
            raise ConfigurationError("value_upper must be at least value_lower")
        self.epsilon = float(epsilon)
        self.gamma = contraction_factor(
            configuration.process_count, configuration.fault_bound, "all_subsets"
        )
        computed_rounds = round_threshold(value_upper - value_lower, self.epsilon, self.gamma)
        self.total_rounds = (
            max_rounds_override if max_rounds_override is not None else computed_rounds
        )
        self._quorum = configuration.process_count - configuration.fault_bound
        self._choose = SafeAreaCalculator(fault_bound=configuration.fault_bound).choose
        self._state = self.input_vector.copy()
        self.state_history: list[np.ndarray] = [self._state.copy()]
        self._decided = False
        self._decision: np.ndarray | None = None

    def outgoing(self, round_index: int) -> list[Message]:
        if round_index > self.total_rounds:
            return []
        payload = {"state": tuple(float(x) for x in self._state)}
        return [
            Message(
                sender=self.process_id,
                recipient=recipient,
                protocol=self.PROTOCOL,
                kind="STATE",
                payload=payload,
                round_index=round_index,
            )
            for recipient in range(self.configuration.process_count)
            if recipient != self.process_id
        ]

    def deliver(self, round_index: int, inbox: list[Message]) -> None:
        if round_index > self.total_rounds or self._decided:
            return
        default = np.zeros(self.configuration.dimension)
        received: dict[int, np.ndarray] = {self.process_id: self._state.copy()}
        for message in inbox:
            if message.protocol != self.PROTOCOL or message.kind != "STATE":
                continue
            if not isinstance(message.payload, dict):
                continue
            vector = self._coerce_state(message.payload.get("state"))
            if vector is not None:
                received[message.sender] = vector
        for process_id in range(self.configuration.process_count):
            received.setdefault(process_id, default.copy())
        # The Step-2 update itself is the pure function in core.round_ops,
        # shared with the columnar engine (repro.engine.vectorized).
        matrix = np.vstack(
            [received[process_id] for process_id in range(self.configuration.process_count)]
        )
        self._state = restricted_round_step(
            matrix, self.configuration.fault_bound, self._quorum, choose=self._choose
        )
        self.state_history.append(self._state.copy())
        if round_index >= self.total_rounds:
            self._decision = self._state.copy()
            self._decided = True

    def _coerce_state(self, value: object) -> np.ndarray | None:
        try:
            vector = np.asarray(value, dtype=float).reshape(-1)
        except (TypeError, ValueError):
            return None
        if vector.shape != (self.configuration.dimension,) or not np.all(np.isfinite(vector)):
            return None
        return vector

    def has_decided(self) -> bool:
        return self._decided

    def decision(self) -> np.ndarray:
        if self._decision is None:
            raise ProtocolError(f"process {self.process_id} has not decided")
        return self._decision


@dataclass(frozen=True)
class RestrictedRoundOutcome:
    """Result of a restricted-round execution (synchronous or asynchronous).

    Attributes:
        registry: the experiment cast.
        decisions: decision vector per honest process id.
        epsilon: the agreement parameter used.
        rounds_executed: rounds each honest process ran.
        messages_sent: total messages put on the network.
        state_histories: per honest process, its state after every round.
        messages_dropped: undeliverable messages refused by the runtime.
    """

    registry: ProcessRegistry
    decisions: dict[int, np.ndarray]
    epsilon: float
    rounds_executed: int
    messages_sent: int
    state_histories: dict[int, list[np.ndarray]]
    messages_dropped: int = 0


def run_restricted_sync_bvc(
    registry: ProcessRegistry,
    epsilon: float,
    adversary_mutators: dict[int, MessageMutator] | None = None,
    value_bounds: tuple[float, float] | None = None,
    max_rounds_override: int | None = None,
    allow_insufficient: bool = False,
    traffic_observer: Callable[[Message], None] | None = None,
) -> RestrictedRoundOutcome:
    """Run the restricted-round synchronous approximate BVC algorithm end-to-end."""
    adversary_mutators = adversary_mutators or {}
    configuration = registry.configuration
    if value_bounds is None:
        value_bounds = registry.value_bounds()
    value_lower, value_upper = value_bounds

    processes: dict[int, SyncProcess] = {}
    cores: dict[int, RestrictedSyncProcess] = {}
    for process_id in registry.process_ids:
        core = RestrictedSyncProcess(
            process_id=process_id,
            configuration=configuration,
            input_vector=registry.input_of(process_id),
            epsilon=epsilon,
            value_lower=value_lower,
            value_upper=value_upper,
            max_rounds_override=max_rounds_override,
            allow_insufficient=allow_insufficient,
        )
        cores[process_id] = core
        if registry.is_faulty(process_id) and process_id in adversary_mutators:
            processes[process_id] = ByzantineSyncProcess(core, adversary_mutators[process_id])
        else:
            processes[process_id] = core

    max_rounds = max(cores[pid].total_rounds for pid in registry.honest_ids) + 1
    runtime = SynchronousRuntime(
        processes,
        honest_ids=registry.honest_ids,
        max_rounds=max_rounds,
        traffic_observer=traffic_observer,
    )
    result: SyncRunResult = runtime.run()
    decisions = {pid: np.asarray(result.decisions[pid], dtype=float) for pid in registry.honest_ids}
    return RestrictedRoundOutcome(
        registry=registry,
        decisions=decisions,
        epsilon=epsilon,
        rounds_executed=result.rounds_executed,
        messages_sent=result.traffic.messages_sent,
        state_histories={pid: cores[pid].state_history for pid in registry.honest_ids},
        messages_dropped=result.traffic.messages_dropped,
    )
