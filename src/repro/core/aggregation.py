"""The Step-2 state update shared by the iterative BVC algorithms.

Both the Section 3.2 algorithm and the two restricted-round algorithms of
Section 4 update a process's state the same way: given a collection ``B`` of
received state vectors, enumerate subsets ``C`` of a prescribed size
(the *quorum*), pick one deterministic point of ``Gamma(Phi(C))`` per subset,
and average the chosen points (Equation (9)).  This module packages that
update so that the three algorithm classes share one implementation and the
ablation benchmarks can call it directly on synthetic inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from math import comb
from typing import Mapping, Sequence

import numpy as np

from repro.core.safe_area import SafeAreaCalculator
from repro.exceptions import ConfigurationError
from repro.geometry.multisets import PointMultiset

__all__ = ["AggregationStep", "SafeAverageAggregator"]


@dataclass(frozen=True)
class AggregationStep:
    """The outcome of one state update.

    Attributes:
        new_state: the averaged state vector.
        subset_count: how many subsets contributed a ``Gamma`` point.
        chosen_points: the ``Gamma`` points themselves (the multiset ``Z_i``).
    """

    new_state: np.ndarray
    subset_count: int
    chosen_points: tuple[np.ndarray, ...]


class SafeAverageAggregator:
    """Average of deterministically chosen ``Gamma`` points over subset families.

    Args:
        fault_bound: the ``f`` used inside every ``Gamma`` computation.
        quorum: the subset size ``|C|``.  The Section 3.2 algorithm and the
            synchronous restricted algorithm use ``n - f``; the asynchronous
            restricted algorithm uses ``n - 3f`` (the guaranteed size of the
            intersection of two processes' receive sets — see Theorem 6's
            discussion).
    """

    def __init__(self, fault_bound: int, quorum: int) -> None:
        if quorum < 1:
            raise ConfigurationError("the aggregation quorum must be at least 1")
        if fault_bound < 0:
            raise ConfigurationError("fault bound must be non-negative")
        self.fault_bound = fault_bound
        self.quorum = quorum
        self._chooser = SafeAreaCalculator(fault_bound=fault_bound)

    def subset_budget(self, collection_size: int) -> int:
        """Return how many subsets a collection of the given size yields."""
        if collection_size < self.quorum:
            return 0
        return comb(collection_size, self.quorum)

    def aggregate(
        self,
        vectors: Mapping[int, np.ndarray],
        subset_families: Sequence[Sequence[int]] | None = None,
    ) -> AggregationStep:
        """Run the state update on ``vectors`` (keyed by sender id).

        ``subset_families`` restricts the enumeration to an explicit family of
        sender-id subsets (the Appendix F optimisation); by default every
        subset of size ``quorum`` is used.  Senders listed in a family but
        missing from ``vectors`` disqualify that family.
        """
        members = sorted(vectors)
        if len(members) < self.quorum:
            raise ConfigurationError(
                f"need at least {self.quorum} vectors to aggregate, got {len(members)}"
            )
        if subset_families is None:
            families = [tuple(family) for family in combinations(members, self.quorum)]
        else:
            families = []
            seen: set[tuple[int, ...]] = set()
            for family in subset_families:
                ordered = tuple(sorted(int(member) for member in family))
                if len(ordered) != self.quorum or len(set(ordered)) != self.quorum:
                    continue
                if any(member not in vectors for member in ordered):
                    continue
                if ordered in seen:
                    continue
                seen.add(ordered)
                families.append(ordered)
            if not families:
                families = [tuple(family) for family in combinations(members, self.quorum)]

        chosen: list[np.ndarray] = []
        for family in families:
            cloud = np.vstack([np.asarray(vectors[member], dtype=float) for member in family])
            chosen.append(self._chooser.choose(PointMultiset(cloud)))
        stacked = np.vstack(chosen)
        return AggregationStep(
            new_state=stacked.mean(axis=0),
            subset_count=len(chosen),
            chosen_points=tuple(chosen),
        )
