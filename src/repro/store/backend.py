"""Result-store backends: one ``ResultStore`` interface, two on-disk layouts.

A :class:`ResultStore` is an append-mostly warehouse of trial rows keyed by
:func:`~repro.store.keys.trial_key` content addresses.  Both backends share
the same durability contract the executor's resume path relies on:

* :meth:`ResultStore.put_results` is **transactional on the SQLite backend**
  (one SQL transaction per call) and per-shard-append on the JSONL backend —
  the executor calls it once per completed execution unit, so an interrupted
  campaign leaves the store at a clean unit boundary on SQLite, and at worst
  a partially-appended unit (whole rows, at most one torn trailing line) on
  JSONL;
* writes are **idempotent** — re-putting a key overwrites with the same
  bytes, so replaying a partial or whole unit after a crash is harmless;
  this is what keeps the JSONL backend's weaker atomicity safe: resume
  simply re-runs whatever the store is missing;
* rows are stamped with the :data:`~repro.store.keys.ENGINE_VERSION` they
  were produced under.  Because keys are salted with that version, stale
  rows are unreachable by lookup; :meth:`ResultStore.gc` deletes them;
* every mutating commit bumps a **generation counter**
  (:meth:`ResultStore.generation`) in the same transaction, so read-side
  caches (ETag digests, response bodies) can validate in O(1): equal
  generations bracket an unchanged result set, across processes.

Backends:

* :class:`SqliteResultStore` — a single SQLite file with the spec's shape
  columns mirrored into indexed columns, so the query layer can push
  ``WHERE`` clauses into the database.  This is the scale backend (atomic
  transactions, cheap point lookups at millions of rows).
* :class:`JsonlDirectoryStore` — a directory of append-only JSON-lines
  shards (fanned out by the first key byte), fully greppable and
  merge-friendly.  The whole index is held in memory, which is fine at
  campaign scale; a torn trailing line from an interrupted append is
  detected and skipped on load (and reported via ``corrupt_lines``).

:func:`open_store` picks a backend from the path (existing directory or
suffix-less path → JSONL directory, anything else → SQLite) unless told
explicitly.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.engine.executor import iter_jsonl
from repro.engine.spec import TrialResult
from repro.exceptions import ConfigurationError
from repro.obs.registry import get_registry
from repro.store.keys import ENGINE_VERSION, trial_key

__all__ = [
    "BACKEND_CHOICES",
    "INDEXED_COLUMNS",
    "StoreEntry",
    "ResultStore",
    "SqliteResultStore",
    "JsonlDirectoryStore",
    "open_store",
]

#: Backend names accepted by :func:`open_store` (and the CLI's ``--store-backend``).
BACKEND_CHOICES = ("auto", "sqlite", "jsonl")

#: Spec/outcome columns every backend can filter on without parsing rows.
#: The SQLite backend mirrors them into indexed columns; the JSONL backend
#: filters its in-memory index.  Keys of the ``where`` mapping accepted by
#: :meth:`ResultStore.iter_entries` must come from this set.
INDEXED_COLUMNS = (
    "protocol",
    "workload",
    "adversary",
    "scheduler",
    "process_count",
    "dimension",
    "fault_bound",
    "status",
    "engine_version",
)

# Row-dict field backing each indexed column ("engine_version" is stamp
# metadata, not a row field, and is handled separately).
_ROW_FIELD = {
    "protocol": "spec_protocol",
    "workload": "spec_workload",
    "adversary": "spec_adversary",
    "scheduler": "spec_scheduler",
    "process_count": "spec_process_count",
    "dimension": "spec_dimension",
    "fault_bound": "spec_fault_bound",
    "status": "status",
}


@dataclass(frozen=True)
class StoreEntry:
    """One stored trial: content address, provenance stamps, and the row."""

    key: str
    engine_version: str
    created_at: float
    row: dict[str, Any]

    @property
    def stale(self) -> bool:
        """True when the row was written under a different engine revision."""
        return self.engine_version != ENGINE_VERSION

    def result(self) -> TrialResult:
        """Materialise the row back into a :class:`TrialResult`."""
        return TrialResult.from_row(self.row)


def _check_where(where: Mapping[str, Any] | None) -> dict[str, Any]:
    if not where:
        return {}
    unknown = set(where) - set(INDEXED_COLUMNS)
    if unknown:
        raise ConfigurationError(
            f"unfilterable store columns: {sorted(unknown)}; "
            f"indexed columns are {', '.join(INDEXED_COLUMNS)}"
        )
    return dict(where)


# Store-layer telemetry (see docs/OBSERVABILITY.md).  Families are created at
# import; every instrumented site is a no-op when the registry is disabled.
_STORE_ROWS_WRITTEN = get_registry().counter(
    "repro_store_rows_written_total",
    "Trial rows committed to a result store, by backend.",
    labelnames=("backend",),
)
_STORE_GENERATION_BUMPS = get_registry().counter(
    "repro_store_generation_bumps_total",
    "Mutating commits that advanced a store's generation counter.",
    labelnames=("backend",),
)
_STORE_CLAIMS = get_registry().counter(
    "repro_store_claims_total",
    "Cross-process claim requests, by outcome (granted = this owner computes "
    "the key; denied = another live owner already holds it).",
    labelnames=("outcome",),
)


def _count_claims(granted: int, requested: int) -> None:
    if granted:
        _STORE_CLAIMS.labels(outcome="granted").inc(granted)
    if requested > granted:
        _STORE_CLAIMS.labels(outcome="denied").inc(requested - granted)


class ResultStore(ABC):
    """Content-addressed warehouse of trial rows (see module docstring)."""

    #: Human-readable backend name ("sqlite" | "jsonl").
    backend_name: str

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    # -- required backend primitives -------------------------------------------

    @abstractmethod
    def get_rows(self, keys: Sequence[str]) -> dict[str, dict[str, Any]]:
        """Return ``{key: row}`` for every requested key present in the store."""

    @abstractmethod
    def put_rows(
        self,
        entries: Sequence[tuple[str, dict[str, Any]]],
        engine_version: str = ENGINE_VERSION,
    ) -> int:
        """Write ``(key, row)`` pairs in **one transaction**; last write wins.

        Returns the number of rows written.  ``engine_version`` is the stamp
        recorded on each row (tests and importers may backdate it; the
        executor always writes the current revision).
        """

    @abstractmethod
    def iter_entries(
        self,
        where: Mapping[str, Any] | None = None,
        after_key: str | None = None,
        limit: int | None = None,
    ) -> Iterator[StoreEntry]:
        """Yield stored entries in key order, optionally filtered and paginated.

        ``where`` filters on :data:`INDEXED_COLUMNS`; ``after_key`` resumes a
        key-ordered scan strictly after that key and ``limit`` caps the yield
        count — together they let a consumer page through a large store in
        bounded slices (the HTTP export stream) without holding a cursor, and
        without the backend materialising anything beyond the requested page.
        """

    @abstractmethod
    def delete_keys(self, keys: Sequence[str]) -> int:
        """Delete the given keys (missing ones ignored); returns rows removed."""

    @abstractmethod
    def generation(self) -> int:
        """Monotonic content generation: bumped by every mutating commit.

        ``put_rows``, ``delete_keys``, ``gc`` and ``import_jsonl`` advance it
        transactionally whenever they actually change rows, so two reads of an
        equal generation bracket an unchanged result set.  This is what turns
        ETag revalidation into an O(1) lookup — a cached ``(generation,
        filter) → digest`` entry stays valid exactly until the store mutates —
        and it is shared across processes (SQLite ``meta`` table / JSONL
        meta file), so concurrent writers invalidate each other's caches.
        Claims do not bump it: they coordinate work, not content.
        """

    @abstractmethod
    def __len__(self) -> int: ...

    def iter_keys(self, where: Mapping[str, Any] | None = None) -> Iterator[str]:
        """Yield matching content keys in sorted order, rows never deserialised.

        Backends override this with an index-only scan; the ETag digest is
        computed from it, so revalidation cost is bounded by key count, not
        row payload size.
        """
        for entry in self.iter_entries(where=where):
            yield entry.key

    def refresh(self) -> None:
        """Make externally-committed writes visible to this handle.

        SQLite handles see committed state on every statement, so this is a
        no-op there; the JSONL backend reloads its in-memory index when the
        on-disk generation has moved.  Long-lived pooled read handles call
        this before serving.
        """

    def close(self) -> None:
        """Release backend resources (idempotent)."""

    # -- shared convenience layer ----------------------------------------------

    def contains_keys(self, keys: Sequence[str]) -> set[str]:
        """Return the subset of ``keys`` present in the store.

        The executor uses this for its cache-hit census so that a warm run
        never has to materialise every cached row at once; backends override
        it with an index-only implementation.
        """
        return set(self.get_rows(keys))

    def __contains__(self, key: str) -> bool:
        return bool(self.contains_keys([key]))

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def put_results(self, pairs: Iterable[tuple[str, TrialResult]]) -> int:
        """Store ``(key, result)`` pairs as one transactional batch."""
        return self.put_rows([(key, result.to_row()) for key, result in pairs])

    # -- cross-process claim coordination --------------------------------------

    #: Seconds after which an unreleased claim expires (a crashed claimant
    #: must not block other processes forever).
    CLAIM_TTL_SECONDS = 300.0

    def claim_keys(self, keys: Sequence[str], owner: str) -> set[str]:
        """Try to claim ``keys`` for ``owner``; return the granted subset.

        The executor claims its cache misses before running them so that
        several processes sharing one store split the work instead of
        duplicating it: a denied key means another live owner is computing
        that trial, and the caller should poll for its committed row.
        Claims are advisory — they coordinate work, they do not gate writes
        (commits stay last-write-wins, which keeps crash recovery trivial).

        The base implementation grants everything: single-writer backends
        (JSONL directories) have no cross-process story, and granting all
        claims reduces the executor to its ordinary single-process path.
        """
        _count_claims(granted=len(keys), requested=len(keys))
        return set(keys)

    def release_claims(self, keys: Sequence[str], owner: str) -> int:
        """Drop ``owner``'s claims on ``keys`` (committed rows already drop
        theirs); returns the number released.  No-op on the base class."""
        return 0

    def list_claims(self) -> list[dict[str, Any]]:
        """Outstanding claims as ``{key, owner, claimed_at, age_seconds, expired}``.

        Diagnostic surface for stuck concurrent campaigns (``repro store
        claims``): a long-lived *live* claim is a session still computing;
        an *expired* one is a crashed claimant whose keys the next session
        will re-claim.  Backends without claim coordination have none.
        """
        return []

    def claim_stats(self) -> dict[str, int]:
        """Live/expired claim counts (``{"live": n, "expired": n}``)."""
        live = expired = 0
        for claim in self.list_claims():
            if claim["expired"]:
                expired += 1
            else:
                live += 1
        return {"live": live, "expired": expired}

    def gc(self, engine_version: str = ENGINE_VERSION, dry_run: bool = False) -> int:
        """Delete (or with ``dry_run`` just count) rows under any other engine salt.

        Those rows are unreachable by lookup — their keys were derived under
        a salt no current :func:`~repro.store.keys.trial_key` call uses — so
        removing them only reclaims space, never cache hits.
        """
        stale = [entry.key for entry in self.iter_entries() if entry.engine_version != engine_version]
        if dry_run:
            return len(stale)
        return self.delete_keys(stale)

    def import_jsonl(
        self,
        path: str | Path,
        batch_size: int = 256,
        engine_version: str = ENGINE_VERSION,
    ) -> int:
        """Ingest a campaign/fuzz JSONL export, re-deriving each row's key.

        Rows stream through :func:`~repro.engine.executor.iter_jsonl` (the
        file is never materialised whole) and commit in transactional
        batches.  Returns the number of rows ingested; malformed rows raise
        :class:`~repro.exceptions.ConfigurationError` rather than importing a
        corrupt warehouse.

        ``engine_version`` is the provenance claim for the file: JSONL rows
        carry no version stamp, so the caller must say which engine revision
        produced them (default: the current one, i.e. a fresh export).  Keys
        are salted with that version *and* the rows are stamped with it —
        importing an old export under its true version keeps its rows
        unreachable by current lookups instead of laundering them into
        cache hits.
        """
        # Validation pass first: nothing is committed until the whole file
        # parses, so a malformed row cannot leave a half-imported warehouse.
        for row_number, row in enumerate(iter_jsonl(path), start=1):
            # Row ordinal, not file line: iter_jsonl skips blank lines.
            try:
                TrialResult.from_row(row)
            except ConfigurationError as error:
                raise ConfigurationError(f"{path}: row {row_number}: {error}") from error
        ingested = 0
        batch: list[tuple[str, dict[str, Any]]] = []
        for row in iter_jsonl(path):
            result = TrialResult.from_row(row)
            batch.append((trial_key(result.spec, engine_version=engine_version), result.to_row()))
            if len(batch) >= batch_size:
                ingested += self.put_rows(batch, engine_version=engine_version)
                batch.clear()
        if batch:
            ingested += self.put_rows(batch, engine_version=engine_version)
        return ingested

    def stats(self) -> dict[str, Any]:
        """Aggregate view for the CLI: counts by engine version and status."""
        by_version: dict[str, int] = {}
        by_status: dict[str, int] = {}
        total = 0
        for entry in self.iter_entries():
            total += 1
            by_version[entry.engine_version] = by_version.get(entry.engine_version, 0) + 1
            status = str(entry.row.get("status"))
            by_status[status] = by_status.get(status, 0) + 1
        claims = self.claim_stats()
        return {
            "backend": self.backend_name,
            "path": str(self.path),
            "trials": total,
            "current_engine_version": ENGINE_VERSION,
            "stale_trials": total - by_version.get(ENGINE_VERSION, 0),
            "engine_versions": dict(sorted(by_version.items())),
            "statuses": dict(sorted(by_status.items())),
            "claims_live": claims["live"],
            "claims_expired": claims["expired"],
        }


def _indexed_values(row: Mapping[str, Any]) -> tuple[Any, ...]:
    return tuple(row.get(_ROW_FIELD[column]) for column in _ROW_FIELD)


_SQLITE_SCHEMA = f"""
CREATE TABLE IF NOT EXISTS trials (
    key TEXT PRIMARY KEY,
    engine_version TEXT NOT NULL,
    {", ".join(f"{column} {'INTEGER' if column in ('process_count', 'dimension', 'fault_bound') else 'TEXT'}" for column in _ROW_FIELD)},
    created_at REAL NOT NULL,
    row TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_trials_shape
    ON trials (protocol, dimension, fault_bound, adversary);
CREATE INDEX IF NOT EXISTS idx_trials_version ON trials (engine_version);
CREATE TABLE IF NOT EXISTS claims (
    key TEXT PRIMARY KEY,
    owner TEXT NOT NULL,
    claimed_at REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS meta (
    name TEXT PRIMARY KEY,
    value INTEGER NOT NULL
);
INSERT OR IGNORE INTO meta (name, value) VALUES ('generation', 0);
"""

_BUMP_GENERATION = "UPDATE meta SET value = value + 1 WHERE name = 'generation'"

# SQLite caps bound parameters per statement; stay well under the historic
# 999 default.
_SQLITE_KEY_CHUNK = 500


class SqliteResultStore(ResultStore):
    """Single-file SQLite warehouse with indexed shape columns."""

    backend_name = "sqlite"

    def __init__(self, path: str | Path, check_same_thread: bool = True) -> None:
        # ``check_same_thread=False`` is for pooled handles whose owner
        # guarantees one-thread-at-a-time use but closes them from a
        # different thread at shutdown (the serving layer's per-thread pool).
        super().__init__(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            self._connection = sqlite3.connect(
                str(self.path), check_same_thread=check_same_thread
            )
        except sqlite3.Error as error:  # e.g. the path is a directory
            raise ConfigurationError(
                f"{self.path} is not a usable SQLite result store: {error}"
            ) from error
        try:
            # Concurrent campaigns over one store serialise their claim and
            # commit transactions; wait for the lock instead of failing.
            self._connection.execute("PRAGMA busy_timeout = 30000")
            self._connection.executescript(_SQLITE_SCHEMA)
            self._connection.commit()
        except sqlite3.DatabaseError as error:
            self._connection.close()
            raise ConfigurationError(
                f"{self.path} is not a usable SQLite result store: {error}"
            ) from error

    def get_rows(self, keys: Sequence[str]) -> dict[str, dict[str, Any]]:
        found: dict[str, dict[str, Any]] = {}
        for start in range(0, len(keys), _SQLITE_KEY_CHUNK):
            chunk = list(keys[start : start + _SQLITE_KEY_CHUNK])
            placeholders = ",".join("?" for _ in chunk)
            cursor = self._connection.execute(
                f"SELECT key, row FROM trials WHERE key IN ({placeholders})", chunk
            )
            for key, row_text in cursor:
                found[key] = json.loads(row_text)
        return found

    def contains_keys(self, keys: Sequence[str]) -> set[str]:
        present: set[str] = set()
        for start in range(0, len(keys), _SQLITE_KEY_CHUNK):
            chunk = list(keys[start : start + _SQLITE_KEY_CHUNK])
            placeholders = ",".join("?" for _ in chunk)
            cursor = self._connection.execute(
                f"SELECT key FROM trials WHERE key IN ({placeholders})", chunk
            )
            present.update(key for (key,) in cursor)
        return present

    def put_rows(
        self,
        entries: Sequence[tuple[str, dict[str, Any]]],
        engine_version: str = ENGINE_VERSION,
    ) -> int:
        now = time.time()
        records = [
            (key, engine_version, *_indexed_values(row), now, json.dumps(row, sort_keys=True))
            for key, row in entries
        ]
        columns = ", ".join(_ROW_FIELD)
        placeholders = ",".join("?" for _ in range(len(_ROW_FIELD) + 4))
        with self._connection:  # one transaction per call — the unit-commit contract
            self._connection.executemany(
                f"INSERT OR REPLACE INTO trials (key, engine_version, {columns}, created_at, row) "
                f"VALUES ({placeholders})",
                records,
            )
            # A committed row settles its claim in the same transaction, so
            # concurrent claimants polling for it see claim-gone and
            # row-present atomically.
            self._connection.executemany(
                "DELETE FROM claims WHERE key = ?", [(key,) for key, _ in entries]
            )
            if records:
                self._connection.execute(_BUMP_GENERATION)
        if records:
            _STORE_ROWS_WRITTEN.labels(backend=self.backend_name).inc(len(records))
            _STORE_GENERATION_BUMPS.labels(backend=self.backend_name).inc()
        return len(records)

    def claim_keys(self, keys: Sequence[str], owner: str) -> set[str]:
        now = time.time()
        granted: set[str] = set()
        # BEGIN IMMEDIATE takes the write lock up front: two processes
        # claiming the same keys serialise here instead of deadlocking on a
        # shared-to-exclusive lock upgrade mid-transaction.
        self._connection.execute("BEGIN IMMEDIATE")
        try:
            self._connection.execute(
                "DELETE FROM claims WHERE claimed_at < ?", (now - self.CLAIM_TTL_SECONDS,)
            )
            for start in range(0, len(keys), _SQLITE_KEY_CHUNK):
                chunk = list(keys[start : start + _SQLITE_KEY_CHUNK])
                markers = ",".join("?" for _ in chunk)
                committed = {
                    key
                    for (key,) in self._connection.execute(
                        f"SELECT key FROM trials WHERE key IN ({markers})", chunk
                    )
                }
                # Keys already committed are cache hits, not work — deny
                # them so the caller re-checks the store.
                candidates = [key for key in chunk if key not in committed]
                self._connection.executemany(
                    "INSERT OR IGNORE INTO claims (key, owner, claimed_at) VALUES (?, ?, ?)",
                    [(key, owner, now) for key in candidates],
                )
                granted.update(
                    key
                    for (key,) in self._connection.execute(
                        f"SELECT key FROM claims WHERE owner = ? AND key IN ({markers})",
                        [owner, *chunk],
                    )
                )
            self._connection.commit()
        except BaseException:
            self._connection.rollback()
            raise
        _count_claims(granted=len(granted), requested=len(keys))
        return granted

    def release_claims(self, keys: Sequence[str], owner: str) -> int:
        released = 0
        with self._connection:
            for start in range(0, len(keys), _SQLITE_KEY_CHUNK):
                chunk = list(keys[start : start + _SQLITE_KEY_CHUNK])
                markers = ",".join("?" for _ in chunk)
                cursor = self._connection.execute(
                    f"DELETE FROM claims WHERE owner = ? AND key IN ({markers})",
                    [owner, *chunk],
                )
                released += cursor.rowcount
        return released

    @staticmethod
    def _scan_clauses(
        filters: Mapping[str, Any], after_key: str | None, limit: int | None
    ) -> tuple[str, str, list[Any]]:
        conditions = [f"{column} = ?" for column in filters]
        values: list[Any] = list(filters.values())
        if after_key is not None:
            conditions.append("key > ?")
            values.append(after_key)
        clause = f" WHERE {' AND '.join(conditions)}" if conditions else ""
        tail = " ORDER BY key"
        if limit is not None:
            tail += " LIMIT ?"
            values.append(limit)
        return clause, tail, values

    def iter_entries(
        self,
        where: Mapping[str, Any] | None = None,
        after_key: str | None = None,
        limit: int | None = None,
    ) -> Iterator[StoreEntry]:
        clause, tail, values = self._scan_clauses(_check_where(where), after_key, limit)
        cursor = self._connection.execute(
            f"SELECT key, engine_version, created_at, row FROM trials{clause}{tail}",
            values,
        )
        for key, engine_version, created_at, row_text in cursor:
            yield StoreEntry(key, engine_version, created_at, json.loads(row_text))

    def iter_keys(self, where: Mapping[str, Any] | None = None) -> Iterator[str]:
        # Index-only scan: the ETag digest never touches the row TEXT column.
        clause, tail, values = self._scan_clauses(_check_where(where), None, None)
        for (key,) in self._connection.execute(
            f"SELECT key FROM trials{clause}{tail}", values
        ):
            yield key

    def generation(self) -> int:
        (value,) = self._connection.execute(
            "SELECT value FROM meta WHERE name = 'generation'"
        ).fetchone()
        return int(value)

    def delete_keys(self, keys: Sequence[str]) -> int:
        deleted = 0
        with self._connection:
            for start in range(0, len(keys), _SQLITE_KEY_CHUNK):
                chunk = list(keys[start : start + _SQLITE_KEY_CHUNK])
                placeholders = ",".join("?" for _ in chunk)
                cursor = self._connection.execute(
                    f"DELETE FROM trials WHERE key IN ({placeholders})", chunk
                )
                deleted += cursor.rowcount
            if deleted:
                self._connection.execute(_BUMP_GENERATION)
        if deleted:
            _STORE_GENERATION_BUMPS.labels(backend=self.backend_name).inc()
        return deleted

    def __len__(self) -> int:
        (count,) = self._connection.execute("SELECT COUNT(*) FROM trials").fetchone()
        return int(count)

    def gc(self, engine_version: str = ENGINE_VERSION, dry_run: bool = False) -> int:
        # SQL fast path: engine_version is an indexed column, so neither the
        # count nor the delete needs to parse a single row.
        if dry_run:
            (stale,) = self._connection.execute(
                "SELECT COUNT(*) FROM trials WHERE engine_version != ?", (engine_version,)
            ).fetchone()
            return int(stale)
        with self._connection:
            cursor = self._connection.execute(
                "DELETE FROM trials WHERE engine_version != ?", (engine_version,)
            )
            if cursor.rowcount:
                self._connection.execute(_BUMP_GENERATION)
        if cursor.rowcount:
            _STORE_GENERATION_BUMPS.labels(backend=self.backend_name).inc()
        return cursor.rowcount

    def stats(self) -> dict[str, Any]:
        # SQL fast path over the indexed columns (same shape as the base
        # implementation, without deserialising any row).
        by_version = {
            version: int(count)
            for version, count in self._connection.execute(
                "SELECT engine_version, COUNT(*) FROM trials "
                "GROUP BY engine_version ORDER BY engine_version"
            )
        }
        by_status = {
            status: int(count)
            for status, count in self._connection.execute(
                "SELECT status, COUNT(*) FROM trials GROUP BY status ORDER BY status"
            )
        }
        total = sum(by_version.values())
        claims = self.claim_stats()
        return {
            "backend": self.backend_name,
            "path": str(self.path),
            "trials": total,
            "current_engine_version": ENGINE_VERSION,
            "stale_trials": total - by_version.get(ENGINE_VERSION, 0),
            "engine_versions": by_version,
            "statuses": by_status,
            "claims_live": claims["live"],
            "claims_expired": claims["expired"],
        }

    def list_claims(self) -> list[dict[str, Any]]:
        now = time.time()
        return [
            {
                "key": key,
                "owner": owner,
                "claimed_at": claimed_at,
                "age_seconds": max(0.0, now - claimed_at),
                "expired": claimed_at < now - self.CLAIM_TTL_SECONDS,
            }
            for key, owner, claimed_at in self._connection.execute(
                "SELECT key, owner, claimed_at FROM claims ORDER BY claimed_at, key"
            )
        ]

    def claim_stats(self) -> dict[str, int]:
        cutoff = time.time() - self.CLAIM_TTL_SECONDS
        (live,) = self._connection.execute(
            "SELECT COUNT(*) FROM claims WHERE claimed_at >= ?", (cutoff,)
        ).fetchone()
        (expired,) = self._connection.execute(
            "SELECT COUNT(*) FROM claims WHERE claimed_at < ?", (cutoff,)
        ).fetchone()
        return {"live": int(live), "expired": int(expired)}

    def close(self) -> None:
        self._connection.close()


class JsonlDirectoryStore(ResultStore):
    """Directory of append-only JSONL shards, indexed in memory.

    Layout: ``<dir>/<key[:2]>.jsonl``, one JSON object per line carrying the
    key, the stamps and the row.  Appends flush per ``put_rows`` call;
    duplicate keys resolve last-write-wins at load time.  Durability is
    weaker than SQLite's: a ``put_rows`` spanning several shards is not
    atomic across them, and an interrupted append can tear the final line
    of one shard (skipped and counted on load) — safe only because trials
    are individually keyed and idempotently re-put on resume, never because
    a unit is assumed whole-or-absent.
    """

    backend_name = "jsonl"

    #: Generation counter file (``.json`` suffix keeps it out of the
    #: ``*.jsonl`` shard glob).
    _META_NAME = "_meta.json"

    def __init__(self, path: str | Path) -> None:
        super().__init__(path)
        if self.path.exists() and not self.path.is_dir():
            raise ConfigurationError(
                f"{self.path} exists and is not a directory; "
                "the jsonl backend stores shards under a directory"
            )
        self.path.mkdir(parents=True, exist_ok=True)
        #: Lines that failed to parse during load (torn trailing appends).
        self.corrupt_lines = 0
        self._entries: dict[str, StoreEntry] = {}
        self._generation = self._disk_generation()
        self._load()

    def _load(self) -> None:
        self._entries.clear()
        for shard in sorted(self.path.glob("*.jsonl")):
            with shard.open("r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                        entry = StoreEntry(
                            key=record["key"],
                            engine_version=record["engine_version"],
                            created_at=float(record["created_at"]),
                            row=record["row"],
                        )
                    except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                        self.corrupt_lines += 1
                        continue
                    self._entries[entry.key] = entry

    def _disk_generation(self) -> int:
        meta = self.path / self._META_NAME
        try:
            return int(json.loads(meta.read_text(encoding="utf-8"))["generation"])
        except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
            return 0

    def _bump_generation(self) -> None:
        _STORE_GENERATION_BUMPS.labels(backend=self.backend_name).inc()
        self._generation = self._disk_generation() + 1
        meta = self.path / self._META_NAME
        replacement = meta.with_suffix(".json.tmp")
        replacement.write_text(
            json.dumps({"generation": self._generation}), encoding="utf-8"
        )
        os.replace(replacement, meta)

    def generation(self) -> int:
        return self._generation

    def refresh(self) -> None:
        # Another handle (same or different process) committed: reload the
        # in-memory index.  Handles that only ever write through themselves
        # never reload — their index is already current.
        disk = self._disk_generation()
        if disk != self._generation:
            self._generation = disk
            self._load()

    def _shard(self, key: str) -> Path:
        return self.path / f"{key[:2]}.jsonl"

    @staticmethod
    def _shard_line(entry: StoreEntry) -> str:
        """The single on-disk record shape (shared by append and rewrite)."""
        return json.dumps(
            {
                "key": entry.key,
                "engine_version": entry.engine_version,
                "created_at": entry.created_at,
                "row": entry.row,
            },
            sort_keys=True,
        )

    def get_rows(self, keys: Sequence[str]) -> dict[str, dict[str, Any]]:
        return {key: self._entries[key].row for key in keys if key in self._entries}

    def contains_keys(self, keys: Sequence[str]) -> set[str]:
        return {key for key in keys if key in self._entries}

    def put_rows(
        self,
        entries: Sequence[tuple[str, dict[str, Any]]],
        engine_version: str = ENGINE_VERSION,
    ) -> int:
        now = time.time()
        by_shard: dict[Path, list[StoreEntry]] = {}
        for key, row in entries:
            entry = StoreEntry(key=key, engine_version=engine_version, created_at=now, row=row)
            by_shard.setdefault(self._shard(key), []).append(entry)
        for shard, shard_entries in sorted(by_shard.items()):
            with shard.open("a", encoding="utf-8") as handle:
                for entry in shard_entries:
                    handle.write(self._shard_line(entry) + "\n")
                handle.flush()
        for _, shard_entries in sorted(by_shard.items()):
            for entry in shard_entries:
                self._entries[entry.key] = entry
        if entries:
            _STORE_ROWS_WRITTEN.labels(backend=self.backend_name).inc(len(entries))
            self._bump_generation()
        return len(entries)

    def iter_entries(
        self,
        where: Mapping[str, Any] | None = None,
        after_key: str | None = None,
        limit: int | None = None,
    ) -> Iterator[StoreEntry]:
        filters = _check_where(where)
        yielded = 0
        for key in sorted(self._entries):
            if after_key is not None and key <= after_key:
                continue
            if limit is not None and yielded >= limit:
                return
            entry = self._entries[key]
            matches = True
            for column, wanted in filters.items():
                actual = (
                    entry.engine_version
                    if column == "engine_version"
                    else entry.row.get(_ROW_FIELD[column])
                )
                if actual != wanted:
                    matches = False
                    break
            if matches:
                yielded += 1
                yield entry

    def delete_keys(self, keys: Sequence[str]) -> int:
        doomed = [key for key in keys if key in self._entries]
        for key in doomed:
            del self._entries[key]
        # Rewrite each affected shard atomically (write-new + rename) from the
        # surviving in-memory entries, bucketed in one pass over the index.
        affected = {key[:2] for key in doomed}
        survivors_by_prefix: dict[str, list[StoreEntry]] = {prefix: [] for prefix in affected}
        for key in sorted(self._entries):
            if key[:2] in affected:
                survivors_by_prefix[key[:2]].append(self._entries[key])
        for prefix in sorted(affected):
            shard = self.path / f"{prefix}.jsonl"
            survivors = survivors_by_prefix[prefix]
            replacement = shard.with_suffix(".jsonl.tmp")
            with replacement.open("w", encoding="utf-8") as handle:
                for entry in survivors:
                    handle.write(self._shard_line(entry) + "\n")
            if survivors:
                os.replace(replacement, shard)
            else:
                replacement.unlink()
                shard.unlink(missing_ok=True)
        if doomed:
            self._bump_generation()
        return len(doomed)

    def __len__(self) -> int:
        return len(self._entries)


def open_store(
    path: str | Path, backend: str = "auto", check_same_thread: bool = True
) -> ResultStore:
    """Open (creating if needed) a result store at ``path``.

    ``backend="auto"`` resolves from the path: an existing directory — or a
    fresh path with no suffix — becomes a JSONL directory store; anything
    else (``.db``, ``.sqlite``, any file) opens as SQLite.
    ``check_same_thread=False`` relaxes SQLite's thread pinning for pooled
    handles (see :class:`SqliteResultStore`); the JSONL backend ignores it.
    """
    if backend not in BACKEND_CHOICES:
        raise ConfigurationError(
            f"unknown store backend {backend!r}; known: {', '.join(BACKEND_CHOICES)}"
        )
    path = Path(path)
    if backend == "auto":
        if path.is_dir() or (not path.exists() and path.suffix == ""):
            backend = "jsonl"
        else:
            backend = "sqlite"
    if backend == "jsonl":
        return JsonlDirectoryStore(path)
    return SqliteResultStore(path, check_same_thread=check_same_thread)
