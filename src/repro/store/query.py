"""Query layer: typed filters and aggregates over a result store.

The store answers "what happened at (n, f, d, adversary)?" without rerunning
anything: :func:`query_store` returns :class:`StoredTrial` rows (the full
:class:`~repro.engine.spec.TrialResult` plus provenance stamps) matching a
:class:`TrialFilter`, and :func:`aggregate_store` reduces matching rows to
per-group outcome counters — the same counters a live
:class:`~repro.engine.executor.CampaignSummary` reports.

Filters on shape columns (:data:`~repro.store.backend.INDEXED_COLUMNS`) are
pushed down to the backend — SQL ``WHERE`` clauses on the SQLite store, an
index scan on the JSONL store — so only matching rows are ever parsed.
Results are ordered by content key, which makes every query deterministic
for a given store state regardless of insertion order or backend.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Iterator, Sequence

from repro.engine.spec import TrialResult
from repro.exceptions import ConfigurationError
from repro.store.backend import ResultStore, StoreEntry
from repro.store.keys import ENGINE_VERSION

__all__ = ["AGGREGATE_COLUMNS", "StoredTrial", "TrialFilter", "query_store", "aggregate_store"]

#: Spec columns :func:`aggregate_store` may group by.
AGGREGATE_COLUMNS = (
    "protocol",
    "workload",
    "adversary",
    "scheduler",
    "process_count",
    "dimension",
    "fault_bound",
    "status",
)


@dataclass(frozen=True)
class TrialFilter:
    """Shape filter over stored trials; ``None`` fields match everything."""

    protocol: str | None = None
    workload: str | None = None
    adversary: str | None = None
    scheduler: str | None = None
    process_count: int | None = None
    dimension: int | None = None
    fault_bound: int | None = None
    status: str | None = None

    def to_where(self) -> dict[str, Any]:
        """The backend-pushable ``where`` mapping (set fields only)."""
        return {
            filter_field.name: getattr(self, filter_field.name)
            for filter_field in fields(self)
            if getattr(self, filter_field.name) is not None
        }


@dataclass(frozen=True)
class StoredTrial:
    """One query hit: content address, provenance, and the materialised result."""

    key: str
    engine_version: str
    created_at: float
    result: TrialResult

    @property
    def stale(self) -> bool:
        """True when the row predates the current engine revision."""
        return self.engine_version != ENGINE_VERSION

    def to_row(self) -> dict[str, Any]:
        """One summary table row for the CLI (key abbreviated, outcome inline)."""
        spec = self.result.spec
        return {
            "key": self.key[:12],
            "protocol": spec.protocol,
            "workload": spec.workload,
            "adversary": spec.adversary,
            "n": spec.process_count,
            "d": spec.dimension,
            "f": spec.fault_bound,
            "seed": spec.seed,
            "status": self.result.status,
            "agreement": self.result.agreement,
            "validity": self.result.validity,
            "rounds": self.result.rounds,
        }


def _matching_entries(
    store: ResultStore, trial_filter: TrialFilter | None, limit: int | None = None
) -> Iterator[StoreEntry]:
    where = trial_filter.to_where() if trial_filter is not None else {}
    return store.iter_entries(where=where or None, limit=limit)


def query_store(
    store: ResultStore,
    trial_filter: TrialFilter | None = None,
    limit: int | None = None,
) -> list[StoredTrial]:
    """Return matching trials as typed rows, ordered by content key.

    ``limit`` is pushed down to the backend (SQL ``LIMIT`` on SQLite), so a
    limited query over a large store never scans past its answer.
    """
    if limit is not None and limit < 0:
        raise ConfigurationError("query limit must be non-negative")
    hits: list[StoredTrial] = []
    for entry in _matching_entries(store, trial_filter, limit=limit):
        if limit is not None and len(hits) >= limit:
            break
        hits.append(
            StoredTrial(
                key=entry.key,
                engine_version=entry.engine_version,
                created_at=entry.created_at,
                result=entry.result(),
            )
        )
    return hits


def aggregate_store(
    store: ResultStore,
    group_by: Sequence[str] = ("protocol", "adversary"),
    trial_filter: TrialFilter | None = None,
) -> list[dict[str, Any]]:
    """Reduce matching trials to per-group outcome counters.

    One row per distinct ``group_by`` value combination, carrying the group
    columns plus ``trials`` / ``ok`` / ``errors`` / ``agreement_failures`` /
    ``validity_failures`` — the campaign-summary counters, recomputed from
    the warehouse instead of a live run.  Rows are ordered by group value.
    """
    unknown = set(group_by) - set(AGGREGATE_COLUMNS)
    if unknown:
        raise ConfigurationError(
            f"cannot group by {sorted(unknown)}; known columns: {', '.join(AGGREGATE_COLUMNS)}"
        )
    if not group_by:
        raise ConfigurationError("aggregate needs at least one group_by column")
    groups: dict[tuple, dict[str, int]] = {}
    for entry in _matching_entries(store, trial_filter):
        # Work on the raw row dict: the group columns and outcome flags are
        # plain fields, so no per-row TrialResult/TrialSpec construction.
        row = entry.row
        group = tuple(
            row.get("status") if column == "status" else row.get(f"spec_{column}")
            for column in group_by
        )
        counters = groups.setdefault(
            group,
            {"trials": 0, "ok": 0, "errors": 0, "agreement_failures": 0, "validity_failures": 0},
        )
        counters["trials"] += 1
        if row.get("status") == "ok":
            counters["ok"] += 1
            if row.get("agreement") is False:
                counters["agreement_failures"] += 1
            if row.get("validity") is False:
                counters["validity_failures"] += 1
        else:
            counters["errors"] += 1
    rows = []
    for group in sorted(groups, key=lambda values: tuple(map(str, values))):
        row: dict[str, Any] = dict(zip(group_by, group))
        row.update(groups[group])
        rows.append(row)
    return rows
