"""Content-addressed results store: resumable campaigns and cross-run caching.

The deterministic engine (PRs 2–4) makes every trial a pure function of its
:class:`~repro.engine.spec.TrialSpec`.  This package turns that guarantee
into a serving substrate: trial rows are warehoused under a content address
derived from the spec itself (:mod:`repro.store.keys`), behind one
:class:`~repro.store.backend.ResultStore` interface with SQLite and
JSONL-directory backends (:mod:`repro.store.backend`), and queried without
re-execution through :mod:`repro.store.query`.

The executor (:mod:`repro.engine.executor`) consults a store before planning
— cached trials are served without spawning workers, only misses run — which
is what makes interrupted campaigns resumable and repeated grids cheap.  The
``python -m repro.cli store`` command group (``stats`` / ``query`` /
``export`` / ``gc`` / ``import``) manages stores from the shell.
"""

from repro.store.backend import (
    BACKEND_CHOICES,
    INDEXED_COLUMNS,
    JsonlDirectoryStore,
    ResultStore,
    SqliteResultStore,
    StoreEntry,
    open_store,
)
from repro.store.keys import (
    ENGINE_VERSION,
    VOLATILE_SPEC_FIELDS,
    canonical_spec_payload,
    trial_key,
)
from repro.store.query import (
    AGGREGATE_COLUMNS,
    StoredTrial,
    TrialFilter,
    aggregate_store,
    query_store,
)

__all__ = [
    "AGGREGATE_COLUMNS",
    "BACKEND_CHOICES",
    "ENGINE_VERSION",
    "INDEXED_COLUMNS",
    "VOLATILE_SPEC_FIELDS",
    "JsonlDirectoryStore",
    "ResultStore",
    "SqliteResultStore",
    "StoreEntry",
    "StoredTrial",
    "TrialFilter",
    "aggregate_store",
    "canonical_spec_payload",
    "open_store",
    "query_store",
    "trial_key",
]
