"""Content addresses for trial results: canonical spec hashing.

A trial is a pure function of its :class:`~repro.engine.spec.TrialSpec`
(engine guarantee since PR 2), so the spec itself — not a run id, not a
timestamp — is the natural address of its result.  :func:`trial_key` derives
that address as a SHA-256 over the *canonical* spec payload:

* the payload is ``TrialSpec.to_dict()`` minus the fields that provably do
  not influence the outcome (:data:`VOLATILE_SPEC_FIELDS`): ``trial_index``
  is bookkeeping (the campaign position; seeds are carried explicitly on the
  spec, never derived from the index) and ``record_history`` only controls
  whether in-memory per-round states are retained — the serialised row is
  byte-identical either way.  Excluding them is what makes the cache work
  *across* runs: the same physical trial at a different grid position, or
  re-run without histories, resolves to the same address;
* values are normalised through the spec module's JSON coercion (tuples
  become lists, numpy scalars become Python scalars) and serialised with
  sorted keys, so logically equal specs hash equally regardless of how their
  parameter mappings were spelled;
* the payload is salted with :data:`ENGINE_VERSION`.  Rows written by an
  older engine revision are thereby *unreachable* (a lookup under the new
  salt can never return them) rather than silently wrong —
  ``ResultStore.gc`` reclaims the dead space.

**Bump discipline:** any change that alters what a spec executes to — a
protocol fix, a seed-derivation change, an adversary behaviour change, a new
field on the serialised row — must bump :data:`ENGINE_VERSION`.  Leaving it
alone asserts "every row ever stored under this salt is still exactly what
the current engine would produce".
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.engine.spec import TrialSpec, _jsonify
from repro.exceptions import ConfigurationError

__all__ = ["ENGINE_VERSION", "VOLATILE_SPEC_FIELDS", "canonical_spec_payload", "trial_key"]

#: Salt folded into every trial key.  Format: ``<package version>/<row schema
#: revision>``; bump the revision whenever trial semantics or the serialised
#: row change (see the module docstring for the discipline).
ENGINE_VERSION = "1.1.0/rows1"

#: Spec fields excluded from the key because they cannot influence the
#: serialised outcome row (see module docstring).
VOLATILE_SPEC_FIELDS = ("trial_index", "record_history")


def canonical_spec_payload(spec: TrialSpec) -> dict[str, Any]:
    """Return the spec fields that determine the trial outcome, JSON-normalised."""
    payload = spec.to_dict()
    for field_name in VOLATILE_SPEC_FIELDS:
        payload.pop(field_name, None)
    return _jsonify(payload)


def trial_key(spec: TrialSpec, engine_version: str = ENGINE_VERSION) -> str:
    """Return the content address (hex SHA-256) of ``spec``'s result.

    Two specs get the same key iff they execute to byte-identical rows under
    the engine revision named by ``engine_version`` — equal outcome-relevant
    fields, same salt.
    """
    try:
        payload = json.dumps(
            canonical_spec_payload(spec), sort_keys=True, separators=(",", ":")
        )
    except (TypeError, ValueError) as error:
        raise ConfigurationError(
            f"spec is not content-addressable (non-JSON parameter value): {error}"
        ) from error
    digest = hashlib.sha256(f"{engine_version}\n{payload}".encode("utf-8"))
    return digest.hexdigest()
