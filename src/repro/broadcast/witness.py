"""The AAD exchange mechanism (Component #1) built on reliable broadcast.

In every asynchronous round ``t`` of the approximate BVC algorithm, each
non-faulty process ``p_i`` must obtain a set ``B_i[t]`` of at least ``n - f``
``(process, value, t)`` tuples satisfying the three properties the paper lists
in Section 3.2:

* Property 1 — any two non-faulty processes share at least ``n - f`` tuples;
* Property 2 — at most one tuple per process;
* Property 3 — a tuple attributed to a non-faulty process carries that
  process's true round-``(t-1)`` state.

The mechanism here follows the witness technique of Abraham, Amit and Dolev
(and the paper's Appendix F description):

1. each process reliably broadcasts its round-``t`` state (Bracha RB gives
   Properties 2 and 3 directly);
2. once a process has RB-delivered ``n - f`` tuples for round ``t`` it sends
   everyone a *report* listing the first ``n - f`` broadcaster ids it
   delivered, in delivery order;
3. a process accepts ``p_k`` as a *witness* for round ``t`` once it holds
   ``p_k``'s report **and** has itself delivered every tuple the report lists;
4. the round's exchange completes once ``n - f`` witnesses are accepted.

Any two non-faulty processes then share at least ``n - 2f >= f + 1`` witnesses,
hence at least one non-faulty witness, whose ``n - f`` reported tuples are in
both ``B`` sets — Property 1.  The ordered witness reports are also exactly
what the Appendix F optimisation needs: instead of enumerating all
``C(|B|, n-f)`` subsets in Step 2, the process may use one subset per witness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.exceptions import ConfigurationError
from repro.broadcast.reliable_broadcast import BroadcastId, ReliableBroadcastEngine

__all__ = ["RoundExchangeResult", "WitnessExchange"]

_STATE_TAG = "state"


@dataclass(frozen=True)
class RoundExchangeResult:
    """What the exchange hands back to the algorithm when a round completes.

    Attributes:
        round_index: the asynchronous round this exchange belongs to.
        tuples: mapping ``process id -> state vector`` — the frozen ``B_i[t]``.
        arrival_order: broadcaster ids in the order their tuples were delivered.
        witness_reports: for each accepted witness, the ordered list of the
            first ``n - f`` broadcaster ids it reported (Appendix F subsets).
    """

    round_index: int
    tuples: dict[int, np.ndarray]
    arrival_order: tuple[int, ...]
    witness_reports: dict[int, tuple[int, ...]]


@dataclass
class _RoundState:
    """Per-round bookkeeping."""

    delivered: dict[int, Any] = field(default_factory=dict)
    arrival_order: list[int] = field(default_factory=list)
    reports: dict[int, tuple[int, ...]] = field(default_factory=dict)
    witnesses: set[int] = field(default_factory=set)
    report_sent: bool = False
    completed: bool = False


class WitnessExchange:
    """Run the per-round AAD exchange for one owning process.

    The owner wires ``send`` (recipient, kind, payload) and
    ``on_round_complete`` (called exactly once per completed round with a
    :class:`RoundExchangeResult`), starts each round with :meth:`start_round`,
    and forwards every exchange message to :meth:`handle`.
    """

    KIND_REPORT = "WITNESS_REPORT"
    KINDS = ReliableBroadcastEngine.KINDS + (KIND_REPORT,)

    def __init__(
        self,
        owner_id: int,
        process_ids: tuple[int, ...],
        fault_bound: int,
        send: Callable[[int, str, dict[str, Any]], None],
        on_round_complete: Callable[[RoundExchangeResult], None],
    ) -> None:
        if owner_id not in process_ids:
            raise ConfigurationError(f"owner {owner_id} is not among the processes")
        self.owner_id = owner_id
        self.process_ids = tuple(process_ids)
        self.fault_bound = fault_bound
        self._send = send
        self._on_round_complete = on_round_complete
        self._rounds: dict[int, _RoundState] = {}
        self._awaited_round: int | None = None
        self._reliable_broadcast = ReliableBroadcastEngine(
            owner_id=owner_id,
            process_ids=self.process_ids,
            fault_bound=fault_bound,
            send=send,
            deliver=self._on_rb_delivery,
        )

    # -- derived sizes -------------------------------------------------------------

    @property
    def quorum(self) -> int:
        """``n - f``: tuples needed before reporting, and witnesses needed to finish."""
        return len(self.process_ids) - self.fault_bound

    # -- owner-facing API ------------------------------------------------------------

    def start_round(self, round_index: int, state_vector: np.ndarray) -> None:
        """Begin the exchange for ``round_index`` by reliably broadcasting our state."""
        self._awaited_round = round_index
        value = tuple(float(coordinate) for coordinate in np.asarray(state_vector, dtype=float))
        self._reliable_broadcast.broadcast((_STATE_TAG, round_index), value)
        # Early messages for this round may already satisfy the completion
        # condition (the broadcast above also self-delivers after enough local
        # bookkeeping, but re-check explicitly for robustness).
        self._maybe_report(round_index)
        self._reevaluate_witnesses(round_index)
        self._maybe_complete(round_index)

    def handle(self, sender: int, kind: str, payload: dict[str, Any]) -> None:
        """Process one incoming exchange message (RB traffic or a witness report)."""
        if kind in ReliableBroadcastEngine.KINDS:
            self._reliable_broadcast.handle(sender, kind, payload)
            return
        if kind == self.KIND_REPORT:
            self._on_report(sender, payload)

    # -- reliable broadcast plumbing ----------------------------------------------------

    def _on_rb_delivery(self, broadcast_id: BroadcastId, value: Any) -> None:
        broadcaster, tag = broadcast_id
        if not isinstance(tag, tuple) or len(tag) != 2 or tag[0] != _STATE_TAG:
            return
        round_index = tag[1]
        if not isinstance(round_index, int):
            return
        state = self._round(round_index)
        if broadcaster in state.delivered:
            return
        vector = self._coerce_vector(value)
        if vector is None:
            # A Byzantine broadcaster managed to get a malformed value
            # RB-delivered; record nothing (its tuple simply never appears,
            # which the algorithm tolerates for up to f processes).
            return
        state.delivered[broadcaster] = vector
        state.arrival_order.append(broadcaster)
        self._maybe_report(round_index)
        self._reevaluate_witnesses(round_index)
        self._maybe_complete(round_index)

    @staticmethod
    def _coerce_vector(value: Any) -> np.ndarray | None:
        try:
            vector = np.asarray(value, dtype=float)
        except (TypeError, ValueError):
            return None
        if vector.ndim != 1 or vector.size == 0 or not np.all(np.isfinite(vector)):
            return None
        return vector

    # -- reports and witnesses ------------------------------------------------------------

    def _round(self, round_index: int) -> _RoundState:
        return self._rounds.setdefault(round_index, _RoundState())

    def _maybe_report(self, round_index: int) -> None:
        state = self._round(round_index)
        if state.report_sent or len(state.delivered) < self.quorum:
            return
        state.report_sent = True
        members = tuple(state.arrival_order[: self.quorum])
        payload = {"round": round_index, "members": list(members)}
        for recipient in self.process_ids:
            if recipient != self.owner_id:
                self._send(recipient, self.KIND_REPORT, payload)
        # Record our own report: a process is trivially its own witness.
        state.reports[self.owner_id] = members
        self._reevaluate_witnesses(round_index)
        self._maybe_complete(round_index)

    def _on_report(self, sender: int, payload: dict[str, Any]) -> None:
        if not isinstance(payload, dict):
            return
        round_index = payload.get("round")
        members = payload.get("members")
        if not isinstance(round_index, int) or not isinstance(members, (list, tuple)):
            return
        member_ids: list[int] = []
        for member in members:
            if not isinstance(member, (int, np.integer)) or int(member) not in self.process_ids:
                return
            member_ids.append(int(member))
        if len(member_ids) != self.quorum or len(set(member_ids)) != len(member_ids):
            return
        state = self._round(round_index)
        if sender in state.reports:
            return
        state.reports[sender] = tuple(member_ids)
        self._reevaluate_witnesses(round_index)
        self._maybe_complete(round_index)

    def _reevaluate_witnesses(self, round_index: int) -> None:
        state = self._round(round_index)
        for reporter, members in state.reports.items():
            if reporter in state.witnesses:
                continue
            if all(member in state.delivered for member in members):
                state.witnesses.add(reporter)

    def _maybe_complete(self, round_index: int) -> None:
        if self._awaited_round != round_index:
            return
        state = self._round(round_index)
        if state.completed:
            return
        if len(state.witnesses) < self.quorum or len(state.delivered) < self.quorum:
            return
        state.completed = True
        self._awaited_round = None
        result = RoundExchangeResult(
            round_index=round_index,
            tuples={pid: vector.copy() for pid, vector in state.delivered.items()},
            arrival_order=tuple(state.arrival_order),
            witness_reports={
                reporter: members
                for reporter, members in state.reports.items()
                if reporter in state.witnesses
            },
        )
        self._on_round_complete(result)
