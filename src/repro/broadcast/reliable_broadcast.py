"""Bracha-style asynchronous reliable broadcast.

The asynchronous Approximate BVC algorithm relies on AAD Component #1, whose
first ingredient is a way for a process to disseminate a value such that

* (consistency) no two non-faulty processes deliver different values for the
  same broadcast, and
* (validity) if the broadcaster is non-faulty every non-faulty process
  eventually delivers its value, and
* (totality) if any non-faulty process delivers a value, all non-faulty
  processes eventually do.

Bracha's classic echo/ready protocol provides exactly these properties for
``n >= 3f + 1``, which always holds in the regimes the paper needs
(``n >= (d + 2) f + 1`` with ``d >= 1``).  Like the EIG module, the protocol is
packaged as an embeddable state machine keyed by a *broadcast id* (the pair
``(broadcaster, tag)``), because the BVC process runs one instance per process
per asynchronous round.

Message flow for a single instance:

1. broadcaster sends ``INIT(value)`` to everyone;
2. on the first ``INIT`` from the broadcaster, a process sends ``ECHO(value)``
   to everyone;
3. on receiving more than ``(n + f) / 2`` ``ECHO`` messages for the same value,
   a process sends ``READY(value)`` (if it has not already);
4. on receiving ``f + 1`` ``READY`` messages for the same value, a process also
   sends ``READY(value)`` (amplification);
5. on receiving ``2f + 1`` ``READY`` messages for the same value, the process
   *delivers* the value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable

from repro.exceptions import ConfigurationError

__all__ = ["BroadcastId", "ReliableBroadcastEngine"]

BroadcastId = tuple[int, Hashable]


def _value_key(value: Any) -> Hashable:
    """Return a hashable identity for a broadcast value (vectors become tuples)."""
    if isinstance(value, (list, tuple)):
        return tuple(_value_key(item) for item in value)
    try:
        hash(value)
        return value
    except TypeError:
        return repr(value)


@dataclass
class _InstanceState:
    """Per-broadcast bookkeeping at one process."""

    echoed: bool = False
    readied: bool = False
    delivered: bool = False
    echo_senders: dict[Hashable, set[int]] = field(default_factory=dict)
    ready_senders: dict[Hashable, set[int]] = field(default_factory=dict)
    value_by_key: dict[Hashable, Any] = field(default_factory=dict)


class ReliableBroadcastEngine:
    """All reliable-broadcast instances of a single owning process.

    The owning process wires ``send`` (a callable that sends a protocol message
    to one recipient) and ``deliver`` (a callback invoked exactly once per
    broadcast id with the delivered value) at construction time, then feeds
    every incoming reliable-broadcast message to :meth:`handle`.
    """

    KIND_INIT = "RB_INIT"
    KIND_ECHO = "RB_ECHO"
    KIND_READY = "RB_READY"
    KINDS = (KIND_INIT, KIND_ECHO, KIND_READY)

    def __init__(
        self,
        owner_id: int,
        process_ids: tuple[int, ...],
        fault_bound: int,
        send: Callable[[int, str, dict[str, Any]], None],
        deliver: Callable[[BroadcastId, Any], None],
    ) -> None:
        if owner_id not in process_ids:
            raise ConfigurationError(f"owner {owner_id} is not among the processes")
        if fault_bound < 0:
            raise ConfigurationError("fault bound must be non-negative")
        if len(process_ids) <= 3 * fault_bound:
            raise ConfigurationError(
                f"reliable broadcast requires n > 3f; got n={len(process_ids)}, f={fault_bound}"
            )
        self.owner_id = owner_id
        self.process_ids = tuple(process_ids)
        self.fault_bound = fault_bound
        self._send = send
        self._deliver = deliver
        self._instances: dict[BroadcastId, _InstanceState] = {}

    # -- thresholds -------------------------------------------------------------

    @property
    def _echo_threshold(self) -> int:
        """Echoes needed before sending READY: strictly more than (n + f) / 2."""
        return (len(self.process_ids) + self.fault_bound) // 2 + 1

    @property
    def _ready_amplify_threshold(self) -> int:
        return self.fault_bound + 1

    @property
    def _deliver_threshold(self) -> int:
        return 2 * self.fault_bound + 1

    # -- API ---------------------------------------------------------------------

    def broadcast(self, tag: Hashable, value: Any) -> None:
        """Start a reliable broadcast of ``value`` under ``(owner, tag)``."""
        broadcast_id: BroadcastId = (self.owner_id, tag)
        payload = {"broadcaster": self.owner_id, "tag": tag, "value": value}
        for recipient in self.process_ids:
            if recipient != self.owner_id:
                self._send(recipient, self.KIND_INIT, payload)
        # The broadcaster processes its own INIT locally (a process always
        # "hears" itself immediately).
        self._on_init(broadcast_id, self.owner_id, value)

    def handle(self, sender: int, kind: str, payload: dict[str, Any]) -> None:
        """Process one incoming reliable-broadcast message."""
        if kind not in self.KINDS:
            return
        if not isinstance(payload, dict):
            return
        broadcaster = payload.get("broadcaster")
        tag = payload.get("tag")
        if broadcaster not in self.process_ids:
            return
        try:
            hash(tag)
        except TypeError:
            return
        broadcast_id: BroadcastId = (broadcaster, tag)
        value = payload.get("value")
        if kind == self.KIND_INIT:
            self._on_init(broadcast_id, sender, value)
        elif kind == self.KIND_ECHO:
            self._on_echo(broadcast_id, sender, value)
        else:
            self._on_ready(broadcast_id, sender, value)

    # -- state transitions ----------------------------------------------------------

    def _state(self, broadcast_id: BroadcastId) -> _InstanceState:
        return self._instances.setdefault(broadcast_id, _InstanceState())

    def _relay(self, broadcast_id: BroadcastId, kind: str, value: Any) -> None:
        broadcaster, tag = broadcast_id
        payload = {"broadcaster": broadcaster, "tag": tag, "value": value}
        for recipient in self.process_ids:
            if recipient != self.owner_id:
                self._send(recipient, kind, payload)

    def _on_init(self, broadcast_id: BroadcastId, sender: int, value: Any) -> None:
        broadcaster, _ = broadcast_id
        if sender != broadcaster:
            # Only the broadcaster may initiate its own broadcast.
            return
        state = self._state(broadcast_id)
        if state.echoed:
            return
        state.echoed = True
        self._relay(broadcast_id, self.KIND_ECHO, value)
        self._on_echo(broadcast_id, self.owner_id, value)

    def _on_echo(self, broadcast_id: BroadcastId, sender: int, value: Any) -> None:
        state = self._state(broadcast_id)
        key = _value_key(value)
        senders = state.echo_senders.setdefault(key, set())
        if sender in senders:
            return
        senders.add(sender)
        state.value_by_key.setdefault(key, value)
        if not state.readied and len(senders) >= self._echo_threshold:
            state.readied = True
            self._relay(broadcast_id, self.KIND_READY, value)
            self._on_ready(broadcast_id, self.owner_id, value)

    def _on_ready(self, broadcast_id: BroadcastId, sender: int, value: Any) -> None:
        state = self._state(broadcast_id)
        key = _value_key(value)
        senders = state.ready_senders.setdefault(key, set())
        if sender in senders:
            return
        senders.add(sender)
        state.value_by_key.setdefault(key, value)
        if not state.readied and len(senders) >= self._ready_amplify_threshold:
            state.readied = True
            self._relay(broadcast_id, self.KIND_READY, value)
            self._on_ready(broadcast_id, self.owner_id, value)
            # Re-fetch: our own READY may have pushed the count over the bar.
            senders = state.ready_senders.setdefault(key, set())
        if not state.delivered and len(senders) >= self._deliver_threshold:
            state.delivered = True
            self._deliver(broadcast_id, state.value_by_key.get(key, value))
