"""Asynchronous dissemination substrate: reliable broadcast and the witness exchange."""

from repro.broadcast.reliable_broadcast import BroadcastId, ReliableBroadcastEngine
from repro.broadcast.witness import RoundExchangeResult, WitnessExchange

__all__ = ["BroadcastId", "ReliableBroadcastEngine", "RoundExchangeResult", "WitnessExchange"]
