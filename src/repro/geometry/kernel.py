"""Batched, cached geometry kernel for the safe area ``Gamma(Y)``.

Every protocol in this repository bottoms out in the same computation: pick a
point of the safe area ``Gamma(Y)`` of Equation (1), the intersection of the
convex hulls of all ``(|Y| - f)``-subsets of a multiset ``Y``.  The literal
Section 2.2 linear program enumerates all ``C(|Y|, |Y| - f)`` subsets and
assembles one dense constraint block per subset, which is both exponential in
``f`` and rebuilt from scratch on every call.  This module is the production
path around that bottleneck; :func:`repro.core.safe_area.safe_area_point`
remains the unoptimised oracle it is validated against.

Three independent optimisations, composed by :class:`GammaKernel`:

* **Subset pruning** (the Appendix F idea applied to the LP itself).
  ``Gamma`` is an intersection of hulls, and most hulls are redundant:

  - ``d = 1``: ``Gamma`` is exactly the order-statistic interval
    ``[y_(f+1), y_(|Y|-f)]``, so two subsets suffice — drop the ``f``
    largest members, and drop the ``f`` smallest.
  - ``d = 2``: a subset's hull constraint can only bind when the ``f``
    dropped members are *linearly separable* from the kept ones (if a point
    ``z`` falls outside some kept hull, a separating line exists, and the
    members on ``z``'s side — at most ``f`` of them — extend to the ``f``
    extreme members of some direction).  The distinct "``f`` most extreme in
    direction ``u``" sets are enumerated exactly by a rotating sweep whose
    event angles are perpendicular to member differences: ``O(|Y|^2)``
    subsets instead of ``C(|Y|, |Y|-f)``.
  - ``d >= 3``: subsets whose member *values* contain another subset's
    values have a larger hull and are dropped (duplicate members make this
    common once the iterative algorithms start collapsing states).

  All three prunings preserve ``Gamma`` exactly — they remove constraint
  blocks whose hull provably contains a remaining block's hull.

* **Constraint-template caching**.  The sparsity pattern of the Section 2.2
  LP depends only on the shape ``(block count, block size, dimension)`` — not
  on the coordinates.  The kernel assembles the CSC index structure once per
  shape, caches it, and on subsequent calls only scatters the fresh
  coordinates into the cached template's data vector.

* **Batched solving**.  :meth:`GammaKernel.points_batch` answers many
  safe-area queries (one per witness family, in the Approximate BVC round
  update) in a single numpy-assembled pass: the per-query programs are
  stitched into one block-diagonal sparse LP and solved together, falling
  back to per-query solves only if the fused program is infeasible (i.e.
  some individual ``Gamma`` is empty).

The kernel mirrors the oracle's semantics bit-for-bit where the oracle is
well-behaved, including the relaxed minimum-slack re-solve used to
distinguish genuinely empty safe areas from floating-point infeasibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from math import comb
from typing import ClassVar, Sequence

import numpy as np
from scipy.sparse import csc_matrix

from repro.exceptions import GeometryError, LinearProgramError

__all__ = [
    "DENSE_POINT_CROSSOVER",
    "KernelStats",
    "GammaKernel",
    "default_kernel",
    "full_subset_family",
    "pruned_subset_family",
    "safe_area_point_kernel",
    "safe_area_points_batch",
    "safe_area_points_multi",
    "safe_area_interval_1d",
]

#: Relative tolerance accepted by the minimum-slack fallback before declaring
#: the safe area genuinely empty (matches the oracle in ``core.safe_area``).
_SLACK_TOLERANCE = 1e-6

#: Largest cloud (point count) solved through the direct dense path instead of
#: the cached sparse templates.  At this scale (the E15 ``n <= 9`` regime) a
#: query is solver-latency bound: the HiGHS call dominates and the template
#: scatter/permute machinery is pure overhead, so a plain dense ``A_eq``
#: assembly is faster.  Both assemblies describe the identical equality
#: system in the identical row/column layout, and HiGHS resolves them to the
#: same vertex, so the crossover never changes a returned point.
DENSE_POINT_CROSSOVER = 9


# ---------------------------------------------------------------------------
# Cloud coercion
# ---------------------------------------------------------------------------

def _as_cloud_array(points: object) -> np.ndarray:
    """Coerce a PointMultiset / array / nested sequence to a ``(k, d)`` array."""
    cloud = getattr(points, "points", points)
    cloud = np.asarray(cloud, dtype=float)
    if cloud.ndim == 1:
        cloud = cloud.reshape(-1, 1) if cloud.size else cloud.reshape(0, 1)
    if cloud.ndim != 2:
        raise GeometryError(f"point cloud must be 2-dimensional, got shape {cloud.shape}")
    return cloud


# ---------------------------------------------------------------------------
# Subset families (full enumeration + Appendix F-style pruning)
# ---------------------------------------------------------------------------

def full_subset_family(point_count: int, fault_bound: int) -> tuple[tuple[int, ...], ...]:
    """All index subsets of size ``point_count - fault_bound`` — the Eq. (1) family."""
    if fault_bound < 0:
        raise GeometryError("fault bound must be non-negative")
    subset_size = point_count - fault_bound
    if subset_size <= 0:
        return ()
    return tuple(combinations(range(point_count), subset_size))


def safe_area_interval_1d(
    values: np.ndarray | Sequence[float], fault_bound: int
) -> tuple[float, float] | None:
    """Closed form for ``Gamma`` in one dimension: the f-trimmed interval.

    For scalars the hull of a subset is ``[min, max]``, so the intersection
    over all ``(m - f)``-subsets is ``[v_(f+1), v_(m-f)]`` in sorted order
    (1-indexed): the lower end is achieved by dropping the ``f`` smallest
    members, the upper end by dropping the ``f`` largest.  Returns ``None``
    when the interval is empty (``m < 2f + 1``) or no members remain.
    """
    sorted_values = np.sort(np.asarray(values, dtype=float).ravel())
    member_count = sorted_values.shape[0]
    if fault_bound < 0:
        raise GeometryError("fault bound must be non-negative")
    if member_count == 0 or member_count - fault_bound <= 0:
        return None
    if fault_bound == 0:
        return float(sorted_values[0]), float(sorted_values[-1])
    if member_count - 2 * fault_bound < 1:
        return None
    return (
        float(sorted_values[fault_bound]),
        float(sorted_values[member_count - fault_bound - 1]),
    )


def _family_1d(cloud: np.ndarray, fault_bound: int) -> tuple[tuple[int, ...], ...]:
    """The two binding subsets on the line: drop-f-smallest and drop-f-largest."""
    point_count = cloud.shape[0]
    order = np.lexsort((np.arange(point_count), cloud[:, 0]))
    keep_low = tuple(sorted(order[: point_count - fault_bound].tolist()))
    keep_high = tuple(sorted(order[fault_bound:].tolist()))
    return (keep_low,) if keep_low == keep_high else (keep_low, keep_high)


def _family_2d(cloud: np.ndarray, fault_bound: int) -> tuple[tuple[int, ...], ...]:
    """Rotating-sweep enumeration of the binding subsets in the plane.

    The candidate drop sets are exactly the "``f`` most extreme members in
    direction ``u``" sets.  As ``u`` rotates, the projection order of two
    members ``i, j`` changes only at angles perpendicular to ``p_j - p_i``;
    between consecutive event angles the order — and hence the drop set — is
    constant, so one interior direction per arc enumerates every distinct set.
    Ties inside an arc can only come from coincident members, and dropping
    either copy yields the same hull, so a fixed index tie-break is exact.
    """
    point_count = cloud.shape[0]
    upper_i, upper_j = np.triu_indices(point_count, k=1)
    differences = cloud[upper_j] - cloud[upper_i]
    nonzero = np.any(differences != 0.0, axis=1)
    differences = differences[nonzero]
    if differences.shape[0] == 0:
        directions = np.asarray([[1.0, 0.0]])
    else:
        events = np.mod(np.arctan2(differences[:, 1], differences[:, 0]) + 0.5 * np.pi, np.pi)
        events = np.unique(np.concatenate([events, events + np.pi]))
        midpoints = (events + np.roll(events, -1)) / 2.0
        midpoints[-1] = (events[-1] + events[0] + 2.0 * np.pi) / 2.0
        directions = np.column_stack([np.cos(midpoints), np.sin(midpoints)])
    projections = cloud @ directions.T
    tie_break = np.arange(point_count)
    families: set[tuple[int, ...]] = set()
    for column in projections.T:
        order = np.lexsort((tie_break, -column))
        families.add(tuple(sorted(order[fault_bound:].tolist())))
    return tuple(sorted(families))


def _family_dedupe_dominated(
    cloud: np.ndarray, families: Sequence[tuple[int, ...]]
) -> tuple[tuple[int, ...], ...]:
    """Drop subsets whose member values contain another subset's values.

    ``conv(A) ⊆ conv(B)`` whenever the distinct values of ``A`` are a subset
    of the distinct values of ``B``, making ``B``'s constraint redundant in
    the intersection.  Only effective when the multiset has duplicate members
    (the general-position case is returned unchanged).
    """
    point_count = cloud.shape[0]
    _, value_ids = np.unique(cloud, axis=0, return_inverse=True)
    if np.unique(value_ids).shape[0] == point_count:
        return tuple(families)
    value_sets = [frozenset(int(value_ids[index]) for index in family) for family in families]
    # Smaller value sets first: a set can only be dominated by a strictly
    # smaller (or equal, earlier-kept) one.
    order = sorted(range(len(families)), key=lambda k: (len(value_sets[k]), families[k]))
    kept: list[int] = []
    kept_sets: list[frozenset[int]] = []
    for index in order:
        candidate = value_sets[index]
        if any(kept_set <= candidate for kept_set in kept_sets):
            continue
        kept.append(index)
        kept_sets.append(candidate)
    return tuple(families[index] for index in sorted(kept))


def pruned_subset_family(
    points: object, fault_bound: int
) -> tuple[tuple[int, ...], ...]:
    """Return an exact reduced subset family for ``Gamma(points)``.

    The intersection of the returned subsets' hulls equals ``Gamma`` — the
    pruning only removes provably redundant constraint blocks.  Dimension 1
    uses the order-statistic closed form (2 subsets), dimension 2 the
    rotating sweep (``O(|Y|^2)`` subsets), higher dimensions the duplicate /
    domination collapse of the full enumeration.
    """
    cloud = _as_cloud_array(points)
    point_count, dimension = cloud.shape
    if fault_bound < 0:
        raise GeometryError("fault bound must be non-negative")
    if fault_bound == 0 or point_count - fault_bound <= 0:
        return full_subset_family(point_count, fault_bound)
    if dimension == 1:
        return _family_1d(cloud, fault_bound)
    if dimension == 2:
        return _family_dedupe_dominated(cloud, _family_2d(cloud, fault_bound))
    return _family_dedupe_dominated(cloud, full_subset_family(point_count, fault_bound))


def _validate_explicit_families(
    families: Sequence[Sequence[int]], point_count: int, subset_size: int
) -> tuple[tuple[int, ...], ...]:
    if not families:
        raise GeometryError("explicit subset family must not be empty")
    validated: list[tuple[int, ...]] = []
    seen: set[tuple[int, ...]] = set()
    for indices in families:
        family = tuple(sorted(int(index) for index in indices))
        if len(family) != subset_size:
            raise GeometryError(
                f"explicit subset {family} does not have size |Y| - f = {subset_size}"
            )
        if any(index < 0 or index >= point_count for index in family):
            raise GeometryError(f"explicit subset {family} has out-of-range indices")
        if family not in seen:
            seen.add(family)
            validated.append(family)
    return tuple(validated)


# ---------------------------------------------------------------------------
# Constraint templates (cached per LP shape)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _ConstraintTemplate:
    """Pre-assembled CSC structure of the Section 2.2 LP for one shape.

    The LP's variables are ``z`` (``dimension`` free coordinates) followed by
    one non-negative convex-weight block of ``block_size`` entries per subset.
    Per subset the equality rows are ``z - Y_T^T alpha = 0`` (``dimension``
    rows) and ``sum(alpha) = 1`` (one row).  Everything below is coordinate
    independent; only the ``-Y_T`` entries change between calls, and their
    positions in COO order are recorded in ``cloud_slots``.
    """

    block_count: int
    block_size: int
    dimension: int
    shape: tuple[int, int]
    indices: np.ndarray  # CSC row indices
    indptr: np.ndarray  # CSC column pointers
    permutation: np.ndarray  # COO-order -> CSC-order data permutation
    static_data: np.ndarray  # COO-order data with zeros at cloud slots
    cloud_slots: np.ndarray  # COO-order positions of the -Y_T entries
    coo_rows: np.ndarray  # COO row coordinates (block-diagonal batch stitching)
    coo_cols: np.ndarray  # COO column coordinates
    rhs: np.ndarray
    bounds: tuple[tuple[float | None, float | None], ...]

    @property
    def variable_count(self) -> int:
        return self.shape[1]

    def matrix_for(self, cloud: np.ndarray, families_flat: np.ndarray) -> csc_matrix:
        """Scatter ``cloud`` into the cached structure and return ``A_eq``.

        ``families_flat`` is the ``(block_count, block_size)`` integer array of
        member indices; the COO data order per block is ``d`` coordinate rows
        of ``(1.0, -Y_T[:, c])`` followed by the ``sum(alpha) = 1`` row.
        """
        data = self.static_data.copy()
        # (B, s, d) gather -> (B, d, s) to match the per-coordinate row order.
        data[self.cloud_slots] = -cloud[families_flat].transpose(0, 2, 1).ravel()
        return csc_matrix(
            (data[self.permutation], self.indices, self.indptr), shape=self.shape
        )


def _build_template(block_count: int, block_size: int, dimension: int) -> _ConstraintTemplate:
    """Assemble the COO/CSC index structure for one ``(B, s, d)`` LP shape."""
    entries_per_block = dimension * (1 + block_size) + block_size
    total_entries = block_count * entries_per_block
    rows = np.empty(total_entries, dtype=np.int64)
    cols = np.empty(total_entries, dtype=np.int64)
    static = np.zeros(total_entries, dtype=float)
    cloud_slot_mask = np.zeros(total_entries, dtype=bool)

    block_slot = np.arange(block_size)
    cursor = 0
    # One COO segment layout per block, vectorised over blocks below.
    segment_rows = np.empty(entries_per_block, dtype=np.int64)
    segment_cols = np.empty(entries_per_block, dtype=np.int64)
    segment_static = np.zeros(entries_per_block, dtype=float)
    segment_cloud = np.zeros(entries_per_block, dtype=bool)
    position = 0
    for coordinate in range(dimension):
        segment_rows[position] = coordinate
        segment_cols[position] = coordinate  # z coefficient (column set per block: constant)
        segment_static[position] = 1.0
        position += 1
        segment_rows[position : position + block_size] = coordinate
        segment_cols[position : position + block_size] = block_slot  # offset added per block
        segment_cloud[position : position + block_size] = True
        position += block_size
    segment_rows[position : position + block_size] = dimension
    segment_cols[position : position + block_size] = block_slot
    segment_static[position : position + block_size] = 1.0
    position += block_size

    alpha_entry = segment_cloud | (segment_rows == dimension)
    for block in range(block_count):
        row_base = block * (dimension + 1)
        col_base = dimension + block * block_size
        view = slice(cursor, cursor + entries_per_block)
        rows[view] = segment_rows + row_base
        cols[view] = np.where(alpha_entry, segment_cols + col_base, segment_cols)
        static[view] = segment_static
        cloud_slot_mask[view] = segment_cloud
        cursor += entries_per_block

    row_count = block_count * (dimension + 1)
    variable_count = dimension + block_count * block_size
    shape = (row_count, variable_count)

    # Derive the COO -> CSC permutation once: convert index-valued data.
    tracker = csc_matrix((np.arange(total_entries, dtype=float), (rows, cols)), shape=shape)
    permutation = tracker.data.astype(np.int64)

    rhs = np.tile(np.concatenate([np.zeros(dimension), [1.0]]), block_count)
    bounds = tuple([(None, None)] * dimension + [(0.0, None)] * (block_count * block_size))
    return _ConstraintTemplate(
        block_count=block_count,
        block_size=block_size,
        dimension=dimension,
        shape=shape,
        indices=tracker.indices.copy(),
        indptr=tracker.indptr.copy(),
        permutation=permutation,
        static_data=static,
        cloud_slots=np.flatnonzero(cloud_slot_mask),
        coo_rows=rows,
        coo_cols=cols,
        rhs=rhs,
        bounds=bounds,
    )


# ---------------------------------------------------------------------------
# The kernel
# ---------------------------------------------------------------------------

@dataclass
class KernelStats:
    """Observability counters for one :class:`GammaKernel` instance."""

    single_queries: int = 0
    batch_queries: int = 0
    batch_calls: int = 0
    multi_queries: int = 0
    multi_calls: int = 0
    multi_dedup_hits: int = 0
    lp_solves: int = 0
    dense_solves: int = 0
    relaxed_solves: int = 0
    template_hits: int = 0
    template_misses: int = 0
    blocks_assembled: int = 0
    blocks_pruned_away: int = 0

    #: Every counter field, in exposition order.  ``as_dict``/``snapshot``
    #: and the observability bridge iterate this instead of hard-coding names.
    FIELDS: ClassVar[tuple[str, ...]] = (
        "single_queries", "batch_queries", "batch_calls",
        "multi_queries", "multi_calls", "multi_dedup_hits", "lp_solves",
        "dense_solves", "relaxed_solves", "template_hits",
        "template_misses", "blocks_assembled", "blocks_pruned_away",
    )

    def as_dict(self) -> dict[str, int]:
        return {name: int(getattr(self, name)) for name in self.FIELDS}

    def snapshot(self) -> dict[str, int]:
        """Point-in-time copy of every counter (the documented read API).

        This is what the metrics registry consumes: cumulative totals, safe
        to diff across calls.  Alias of :meth:`as_dict`, kept separate so the
        observability contract survives future ``as_dict`` format changes.
        """
        return self.as_dict()


class GammaKernel:
    """Batched, cached solver for safe-area queries.

    A kernel instance owns a bounded template cache and its own statistics;
    the module-level :data:`default_kernel` is shared by the protocol code.
    All methods are deterministic: the same inputs produce the same outputs
    on every process, which the consensus algorithms require for agreement.

    Args:
        max_cached_templates: bound on distinct LP shapes kept alive (the
            protocols only ever touch a handful; the bound guards pathological
            sweeps over many configurations).
        dense_crossover: clouds of at most this many points are solved through
            the direct dense assembly instead of the sparse templates (see
            :data:`DENSE_POINT_CROSSOVER`); set to 0 to force the template
            path everywhere.
    """

    def __init__(
        self,
        max_cached_templates: int = 64,
        dense_crossover: int = DENSE_POINT_CROSSOVER,
    ) -> None:
        if max_cached_templates < 1:
            raise GeometryError("the template cache must hold at least one shape")
        if dense_crossover < 0:
            raise GeometryError("the dense crossover must be non-negative")
        self._max_cached_templates = max_cached_templates
        self._dense_crossover = dense_crossover
        self._templates: dict[tuple[int, int, int], _ConstraintTemplate] = {}
        self.stats = KernelStats()

    def uses_dense_path(self, point_count: int) -> bool:
        """True when a ``point_count``-point cloud dispatches to the dense path."""
        return 0 < point_count <= self._dense_crossover

    # -- cache -------------------------------------------------------------------

    def stats_snapshot(self) -> dict[str, int]:
        """Cumulative counter totals for this kernel (see :meth:`KernelStats.snapshot`)."""
        return self.stats.snapshot()

    def reset_stats(self) -> KernelStats:
        """Zero the counters, returning the pre-reset :class:`KernelStats`.

        Snapshot-and-reset in one step: benchmarks and the metrics registry
        use the returned object (or :meth:`stats_snapshot` beforehand) instead
        of reaching into kernel internals.
        """
        previous = self.stats
        self.stats = KernelStats()
        return previous

    @property
    def template_cache_size(self) -> int:
        """Number of LP constraint templates currently cached."""
        return len(self._templates)

    def clear_cache(self) -> None:
        self._templates.clear()

    def _template(self, block_count: int, block_size: int, dimension: int) -> _ConstraintTemplate:
        key = (block_count, block_size, dimension)
        template = self._templates.get(key)
        if template is not None:
            self.stats.template_hits += 1
            # Move-to-end so eviction below is least-recently-used.
            self._templates[key] = self._templates.pop(key)
            return template
        self.stats.template_misses += 1
        template = _build_template(block_count, block_size, dimension)
        if len(self._templates) >= self._max_cached_templates:
            self._templates.pop(next(iter(self._templates)))
        self._templates[key] = template
        return template

    # -- family selection --------------------------------------------------------

    def _families_for(
        self,
        cloud: np.ndarray,
        fault_bound: int,
        subset_indices: Sequence[Sequence[int]] | None,
        prune: bool,
    ) -> tuple[tuple[int, ...], ...]:
        point_count = cloud.shape[0]
        subset_size = point_count - fault_bound
        if subset_indices is not None:
            return _validate_explicit_families(subset_indices, point_count, subset_size)
        if prune:
            families = pruned_subset_family(cloud, fault_bound)
            self.stats.blocks_pruned_away += comb(point_count, subset_size) - len(families)
            return families
        return full_subset_family(point_count, fault_bound)

    # -- single query ------------------------------------------------------------

    def point(
        self,
        points: object,
        fault_bound: int,
        *,
        objective: np.ndarray | Sequence[float] | None = None,
        subset_indices: Sequence[Sequence[int]] | None = None,
        prune: bool = True,
    ) -> np.ndarray | None:
        """Return a point of ``Gamma(points)`` or ``None`` when it is empty.

        Drop-in equivalent of the oracle
        :func:`repro.core.safe_area.safe_area_point`: same edge-case handling
        (``f = 0`` returns the centroid, infeasible-at-float-scale resolves
        through the minimum-slack program) but with pruned subset families,
        cached sparse constraint templates and an optional explicit family.
        """
        cloud = _as_cloud_array(points)
        point_count, dimension = cloud.shape
        if fault_bound < 0:
            raise GeometryError("fault bound must be non-negative")
        self.stats.single_queries += 1
        if point_count == 0:
            return None
        if fault_bound == 0:
            return cloud.mean(axis=0)
        if point_count - fault_bound <= 0:
            return None

        objective_head = self._objective_head(objective, dimension)
        families = self._families_for(cloud, fault_bound, subset_indices, prune)
        return self._solve_single(cloud, families, objective_head)

    def _objective_head(
        self, objective: np.ndarray | Sequence[float] | None, dimension: int
    ) -> np.ndarray:
        if objective is None:
            return np.zeros(dimension)
        head = np.asarray(objective, dtype=float)
        if head.shape != (dimension,):
            raise GeometryError(f"objective must have length d={dimension}")
        return head

    def _solve_single(
        self,
        cloud: np.ndarray,
        families: tuple[tuple[int, ...], ...],
        objective_head: np.ndarray,
    ) -> np.ndarray | None:
        from repro.geometry.linprog import solve_linear_program

        dimension = cloud.shape[1]
        block_size = len(families[0])
        families_flat = np.asarray(families, dtype=np.int64)
        if self.uses_dense_path(cloud.shape[0]):
            matrix, rhs, bounds = self._dense_equality_system(cloud, families_flat)
            self.stats.dense_solves += 1
        else:
            template = self._template(len(families), block_size, dimension)
            matrix = template.matrix_for(cloud, families_flat)
            rhs = template.rhs
            bounds = list(template.bounds)
        objective = np.zeros(matrix.shape[1])
        objective[:dimension] = objective_head

        self.stats.lp_solves += 1
        self.stats.blocks_assembled += len(families)
        try:
            result = solve_linear_program(
                objective,
                equality_matrix=matrix,
                equality_rhs=rhs,
                bounds=bounds,
            )
        except LinearProgramError as error:
            # Clusters of near-coincident points (honest states late in a
            # contraction) can leave HiGHS unable to classify the strict
            # equality program at all.  The relaxed minimum-slack program is
            # feasible by construction, so it resolves exactly those
            # degenerate instances — and still reports genuine emptiness.
            # Only solver-status failures qualify (they carry a status code);
            # input-validation errors stay loud.
            if error.status is None:
                raise
            result = None
        if result is not None and result.feasible and result.solution is not None:
            return result.solution[:dimension]
        return self._relaxed_point(cloud, families_flat)

    def _dense_equality_system(
        self, cloud: np.ndarray, families_flat: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, list[tuple[float | None, float | None]]]:
        """Assemble the Section 2.2 equality system as one dense array.

        Identical rows, columns and coefficients to
        :meth:`_ConstraintTemplate.matrix_for` — per block ``d`` rows of
        ``z - Y_T^T alpha = 0`` followed by ``sum(alpha) = 1`` — just without
        the scatter/permute machinery, which dominates the per-query cost at
        small point counts.
        """
        block_count, block_size = families_flat.shape
        dimension = cloud.shape[1]
        row_count = block_count * (dimension + 1)
        variable_count = dimension + block_count * block_size
        matrix = np.zeros((row_count, variable_count))
        gathered = cloud[families_flat].transpose(0, 2, 1)  # (B, d, s)
        identity = np.eye(dimension)
        for block in range(block_count):
            row_base = block * (dimension + 1)
            col_base = dimension + block * block_size
            matrix[row_base : row_base + dimension, :dimension] = identity
            matrix[row_base : row_base + dimension, col_base : col_base + block_size] = (
                -gathered[block]
            )
            matrix[row_base + dimension, col_base : col_base + block_size] = 1.0
        rhs = np.tile(np.concatenate([np.zeros(dimension), [1.0]]), block_count)
        bounds: list[tuple[float | None, float | None]] = (
            [(None, None)] * dimension + [(0.0, None)] * (block_count * block_size)
        )
        return matrix, rhs, bounds

    # -- batched queries ---------------------------------------------------------

    def points_batch(
        self,
        clouds: Sequence[object],
        fault_bound: int,
        *,
        objective: np.ndarray | Sequence[float] | None = None,
        subset_indices: Sequence[Sequence[Sequence[int]]] | None = None,
        prune: bool = True,
        fused: bool = True,
    ) -> list[np.ndarray | None]:
        """Answer many safe-area queries in one numpy-assembled pass.

        Args:
            clouds: the query multisets; all must share one ``(m, d)`` shape
                (the protocol use case: one query per witness family of equal
                quorum size).
            fault_bound: the shared ``f``.
            objective: optional shared objective over each query's ``z``.
            subset_indices: optional explicit subset family per query.
            prune: apply :func:`pruned_subset_family` per query.
            fused: stitch all queries into one block-diagonal LP (the fast
                path); per-query solving is used as the fallback whenever the
                fused program is infeasible, so emptiness is always attributed
                to the right query.

        Returns one entry per query: the chosen point, or ``None`` for an
        empty safe area.
        """
        if not clouds:
            return []
        arrays = [_as_cloud_array(cloud) for cloud in clouds]
        first_shape = arrays[0].shape
        if any(array.shape != first_shape for array in arrays):
            raise GeometryError("all clouds in a batch must share one (m, d) shape")
        if subset_indices is not None and len(subset_indices) != len(arrays):
            raise GeometryError(
                f"subset_indices covers {len(subset_indices)} queries, "
                f"but {len(arrays)} were given"
            )
        if fault_bound < 0:
            raise GeometryError("fault bound must be non-negative")
        point_count, dimension = first_shape
        self.stats.batch_calls += 1
        self.stats.batch_queries += len(arrays)
        if point_count == 0:
            return [None] * len(arrays)
        if fault_bound == 0:
            return [array.mean(axis=0) for array in arrays]
        if point_count - fault_bound <= 0:
            return [None] * len(arrays)

        objective_head = self._objective_head(objective, dimension)
        per_query_families = [
            self._families_for(
                array,
                fault_bound,
                None if subset_indices is None else subset_indices[index],
                prune,
            )
            for index, array in enumerate(arrays)
        ]
        if not fused:
            return [
                self._solve_single(array, families, objective_head)
                for array, families in zip(arrays, per_query_families)
            ]
        fused_result = self._solve_fused(arrays, per_query_families, objective_head)
        if fused_result is not None:
            return fused_result
        # At least one query is (numerically) infeasible; resolve them
        # individually so each gets the relaxed-slack treatment.
        return [
            self._solve_single(array, families, objective_head)
            for array, families in zip(arrays, per_query_families)
        ]

    def points_multi(
        self,
        clouds: Sequence[object],
        fault_bound: int,
        *,
        objective: np.ndarray | Sequence[float] | None = None,
        prune: bool = True,
        fused: bool = False,
    ) -> list[np.ndarray | None]:
        """Answer a whole round's safe-area queries in one assembled pass.

        The multi-instance entry point of the columnar execution substrate:
        the caller hands over *every* ``Gamma`` query of a simulation round —
        across all processes of all trials in the batch — and the kernel
        dedupes bitwise-identical clouds (the common case once trials share
        receive views or states collapse), solving each distinct cloud once.

        Unlike :meth:`points_batch`, clouds may have heterogeneous shapes
        (they are grouped internally), and the default ``fused=False`` mode
        solves each distinct cloud through the exact same cached-template
        program as :meth:`point` — so results are bitwise identical to
        per-query single solves, which is what lets the columnar engine share
        one solve across many object-runtime-equivalent processes.  With
        ``fused=True`` the distinct same-shape clouds are additionally
        stitched into block-diagonal LPs (one HiGHS call per shape class);
        that is the fastest mode but the solver may then return a *different
        (equally valid)* vertex of a non-degenerate ``Gamma`` than a single
        solve would, so it must not be mixed with single-solve callers inside
        one protocol execution.

        Returns one entry per query, aligned with ``clouds``: the chosen
        point, or ``None`` for an empty safe area.
        """
        if fault_bound < 0:
            raise GeometryError("fault bound must be non-negative")
        arrays = [_as_cloud_array(cloud) for cloud in clouds]
        self.stats.multi_calls += 1
        self.stats.multi_queries += len(arrays)
        results: list[np.ndarray | None] = [None] * len(arrays)

        # Dedupe bitwise-identical queries; remember one representative each.
        order: list[tuple[tuple[int, int], bytes]] = []
        representatives: dict[tuple[tuple[int, int], bytes], int] = {}
        for index, array in enumerate(arrays):
            key = (array.shape, array.tobytes())
            if key in representatives:
                self.stats.multi_dedup_hits += 1
            else:
                representatives[key] = index
            order.append(key)

        solved: dict[tuple[tuple[int, int], bytes], np.ndarray | None] = {}
        if fused:
            # Group distinct clouds by shape and solve each group as one
            # block-diagonal program (per-query fallback on infeasibility).
            by_shape: dict[tuple[int, int], list[tuple[tuple[tuple[int, int], bytes], int]]] = {}
            for key, index in representatives.items():
                by_shape.setdefault(key[0], []).append((key, index))
            for shape, entries in by_shape.items():
                group = [arrays[index] for _, index in entries]
                answers = self.points_batch(
                    group, fault_bound, objective=objective, prune=prune, fused=True
                )
                for (key, _), answer in zip(entries, answers):
                    solved[key] = answer
        else:
            for key, index in representatives.items():
                solved[key] = self.point(
                    arrays[index], fault_bound, objective=objective, prune=prune
                )
        for index, key in enumerate(order):
            results[index] = solved[key]
        return results

    def _solve_fused(
        self,
        arrays: Sequence[np.ndarray],
        per_query_families: Sequence[tuple[tuple[int, ...], ...]],
        objective_head: np.ndarray,
    ) -> list[np.ndarray] | None:
        """Solve all queries as one block-diagonal sparse LP.

        Returns ``None`` when the fused program is infeasible (some query's
        ``Gamma`` is empty or numerically borderline), letting the caller fall
        back to per-query solves.  The per-query programs share no variables
        or rows, so the fused optimum restricted to one query's variables is
        an optimum of that query's program.
        """
        from repro.geometry.linprog import solve_linear_program

        dimension = arrays[0].shape[1]
        block_size = len(per_query_families[0][0])

        rows_parts: list[np.ndarray] = []
        cols_parts: list[np.ndarray] = []
        data_parts: list[np.ndarray] = []
        rhs_parts: list[np.ndarray] = []
        objective_parts: list[np.ndarray] = []
        bounds: list[tuple[float | None, float | None]] = []
        query_offsets: list[int] = []
        row_base = 0
        col_base = 0
        for array, families in zip(arrays, per_query_families):
            template = self._template(len(families), block_size, dimension)
            families_flat = np.asarray(families, dtype=np.int64)
            data = template.static_data.copy()
            data[template.cloud_slots] = -array[families_flat].transpose(0, 2, 1).ravel()
            rows_parts.append(template.coo_rows + row_base)
            cols_parts.append(template.coo_cols + col_base)
            data_parts.append(data)
            rhs_parts.append(template.rhs)
            query_objective = np.zeros(template.variable_count)
            query_objective[:dimension] = objective_head
            objective_parts.append(query_objective)
            bounds.extend(template.bounds)
            query_offsets.append(col_base)
            row_base += template.shape[0]
            col_base += template.variable_count
            self.stats.blocks_assembled += len(families)

        matrix = csc_matrix(
            (
                np.concatenate(data_parts),
                (np.concatenate(rows_parts), np.concatenate(cols_parts)),
            ),
            shape=(row_base, col_base),
        )
        self.stats.lp_solves += 1
        try:
            result = solve_linear_program(
                np.concatenate(objective_parts),
                equality_matrix=matrix,
                equality_rhs=np.concatenate(rhs_parts),
                bounds=bounds,
            )
        except LinearProgramError as error:
            # A numerically unclassifiable fused program gets the same
            # treatment as an infeasible one: per-query re-solves attribute
            # the degeneracy (or genuine emptiness) to the right query.
            # Input-validation errors (status None) stay loud.
            if error.status is None:
                raise
            return None
        if not result.feasible or result.solution is None:
            return None
        return [
            result.solution[offset : offset + dimension].copy()
            for offset in query_offsets
        ]

    # -- relaxed fallback --------------------------------------------------------

    def _relaxed_point(
        self, cloud: np.ndarray, families_flat: np.ndarray
    ) -> np.ndarray | None:
        """Minimum-slack re-solve distinguishing empty ``Gamma`` from round-off.

        Mirrors the oracle's ``_relaxed_safe_area_point``: minimise a shared
        non-negative slack ``t`` bounding ``|z - Y_T^T alpha|`` per coordinate
        and block, and accept the candidate when the optimal slack is at
        floating-point scale relative to the coordinates.
        """
        from repro.geometry.linprog import solve_linear_program

        block_count, block_size = families_flat.shape
        dimension = cloud.shape[1]
        variable_count = dimension + block_count * block_size + 1
        slack_column = variable_count - 1

        rows_parts: list[np.ndarray] = []
        cols_parts: list[np.ndarray] = []
        data_parts: list[np.ndarray] = []

        # Inequality rows: for block b, coordinate c, sign s in {+1, -1}:
        #   s * (z_c - Y_T[:, c] @ alpha_b) - t <= 0
        gathered = cloud[families_flat].transpose(0, 2, 1)  # (B, d, s)
        row_index = 0
        for block in range(block_count):
            alpha_base = dimension + block * block_size
            for coordinate in range(dimension):
                for sign in (1.0, -1.0):
                    count = 2 + block_size
                    rows_parts.append(np.full(count, row_index, dtype=np.int64))
                    cols_parts.append(
                        np.concatenate(
                            [
                                [coordinate],
                                np.arange(alpha_base, alpha_base + block_size),
                                [slack_column],
                            ]
                        ).astype(np.int64)
                    )
                    data_parts.append(
                        np.concatenate(
                            [[sign], -sign * gathered[block, coordinate], [-1.0]]
                        )
                    )
                    row_index += 1
        inequality_matrix = csc_matrix(
            (
                np.concatenate(data_parts),
                (np.concatenate(rows_parts), np.concatenate(cols_parts)),
            ),
            shape=(row_index, variable_count),
        )
        inequality_rhs = np.zeros(row_index)

        equality_rows = np.repeat(np.arange(block_count, dtype=np.int64), block_size)
        equality_cols = (
            dimension
            + (np.arange(block_count, dtype=np.int64)[:, None] * block_size
               + np.arange(block_size, dtype=np.int64)[None, :]).ravel()
        )
        equality_matrix = csc_matrix(
            (np.ones(block_count * block_size), (equality_rows, equality_cols)),
            shape=(block_count, variable_count),
        )
        equality_rhs = np.ones(block_count)

        objective = np.zeros(variable_count)
        objective[slack_column] = 1.0
        bounds: list[tuple[float | None, float | None]] = (
            [(None, None)] * dimension
            + [(0.0, None)] * (block_count * block_size)
            + [(0.0, None)]
        )
        self.stats.relaxed_solves += 1
        result = solve_linear_program(
            objective,
            inequality_matrix=inequality_matrix,
            inequality_rhs=inequality_rhs,
            equality_matrix=equality_matrix,
            equality_rhs=equality_rhs,
            bounds=bounds,
        )
        if not result.feasible or result.solution is None or result.objective is None:
            return None
        scale = max(1.0, float(np.max(np.abs(cloud))))
        if result.objective > _SLACK_TOLERANCE * scale:
            return None
        return result.solution[: cloud.shape[1]]


#: Shared kernel used by the protocol layer (``SafeAreaCalculator`` et al.).
default_kernel = GammaKernel()


def _register_kernel_metrics() -> None:
    """Bridge the shared kernel's stats into the process metrics registry.

    All protocol code solves through :data:`default_kernel`, so publishing its
    cumulative counters (by delta, at collection time) covers the kernel layer
    in both the parent process and every pool worker — worker registries ship
    the resulting counters back over the result pipes.
    """
    from repro.obs.registry import CounterSync, get_registry

    registry = get_registry()
    events = registry.counter(
        "repro_kernel_events_total",
        "Gamma kernel events (queries, solves, cache hits) by kind.",
        labelnames=("kind",),
    )
    registry.register_collector(CounterSync(events, default_kernel.stats_snapshot))
    registry.gauge(
        "repro_kernel_template_cache_size",
        "LP constraint templates currently cached by the shared kernel.",
    )
    registry.register_collector(
        lambda: registry.gauge("repro_kernel_template_cache_size").set(
            default_kernel.template_cache_size
        )
    )


_register_kernel_metrics()


def safe_area_point_kernel(
    points: object,
    fault_bound: int,
    *,
    objective: np.ndarray | Sequence[float] | None = None,
    subset_indices: Sequence[Sequence[int]] | None = None,
    prune: bool = True,
) -> np.ndarray | None:
    """Module-level convenience over :data:`default_kernel` (single query)."""
    return default_kernel.point(
        points,
        fault_bound,
        objective=objective,
        subset_indices=subset_indices,
        prune=prune,
    )


def safe_area_points_multi(
    clouds: Sequence[object],
    fault_bound: int,
    *,
    objective: np.ndarray | Sequence[float] | None = None,
    prune: bool = True,
    fused: bool = False,
) -> list[np.ndarray | None]:
    """Module-level convenience over :data:`default_kernel` (multi-instance round pass)."""
    return default_kernel.points_multi(
        clouds,
        fault_bound,
        objective=objective,
        prune=prune,
        fused=fused,
    )


def safe_area_points_batch(
    clouds: Sequence[object],
    fault_bound: int,
    *,
    objective: np.ndarray | Sequence[float] | None = None,
    subset_indices: Sequence[Sequence[Sequence[int]]] | None = None,
    prune: bool = True,
    fused: bool = True,
) -> list[np.ndarray | None]:
    """Module-level convenience over :data:`default_kernel` (batched queries)."""
    return default_kernel.points_batch(
        clouds,
        fault_bound,
        objective=objective,
        subset_indices=subset_indices,
        prune=prune,
        fused=fused,
    )
