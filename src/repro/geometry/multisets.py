"""Multisets of points, their subsets and partitions.

The paper (Appendix B) is careful to work with *multisets* rather than sets:
two processes may legitimately hold identical input vectors, and the
combinatorics of ``Gamma(Y)`` and of Tverberg partitions are defined over
indices, not over distinct values.  :class:`PointMultiset` keeps that index
structure explicit: every member has a position ``0..len-1`` and subsets /
partitions are defined by index selections, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.exceptions import GeometryError
from repro.geometry.points import as_cloud, as_point

__all__ = ["PointMultiset", "iter_index_subsets", "iter_index_partitions"]


def iter_index_subsets(size: int, subset_size: int) -> Iterator[tuple[int, ...]]:
    """Yield all index subsets of ``{0..size-1}`` with exactly ``subset_size`` members."""
    if subset_size < 0 or subset_size > size:
        return iter(())
    return combinations(range(size), subset_size)


def iter_index_partitions(size: int, parts: int) -> Iterator[tuple[tuple[int, ...], ...]]:
    """Yield all partitions of ``{0..size-1}`` into exactly ``parts`` non-empty blocks.

    Partitions are yielded as tuples of index-tuples.  Blocks are unordered
    (each set partition appears once), and indices within a block are sorted.
    This is the restricted-growth-string enumeration of set partitions,
    filtered to the requested number of blocks.
    """
    if parts <= 0 or parts > size:
        return

    def generate(index: int, blocks: list[list[int]]) -> Iterator[tuple[tuple[int, ...], ...]]:
        if index == size:
            if len(blocks) == parts:
                yield tuple(tuple(block) for block in blocks)
            return
        remaining = size - index
        # Prune: we can never reach `parts` blocks if even putting every
        # remaining element in its own new block falls short.
        if len(blocks) + remaining < parts:
            return
        for block in blocks:
            block.append(index)
            yield from generate(index + 1, blocks)
            block.pop()
        if len(blocks) < parts:
            blocks.append([index])
            yield from generate(index + 1, blocks)
            blocks.pop()

    yield from generate(0, [])


@dataclass(frozen=True)
class PointMultiset:
    """An ordered multiset of points in ``R^d``.

    The underlying storage is a ``(k, d)`` array; element ``i`` of the multiset
    is row ``i``.  Instances are immutable: all operations return new
    multisets.
    """

    cloud: np.ndarray

    def __init__(self, points: Iterable[Sequence[float]] | np.ndarray, dimension: int | None = None) -> None:
        object.__setattr__(self, "cloud", as_cloud(points, dimension=dimension))
        self.cloud.setflags(write=False)

    # -- basic container protocol -------------------------------------------------

    def __len__(self) -> int:
        return int(self.cloud.shape[0])

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self.cloud)

    def __getitem__(self, index: int) -> np.ndarray:
        return self.cloud[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PointMultiset):
            return NotImplemented
        return self.cloud.shape == other.cloud.shape and bool(np.allclose(self.cloud, other.cloud))

    def __hash__(self) -> int:
        return hash((self.cloud.shape, self.cloud.tobytes()))

    def __repr__(self) -> str:
        return f"PointMultiset(size={len(self)}, dimension={self.dimension})"

    # -- properties ----------------------------------------------------------------

    @property
    def dimension(self) -> int:
        """The coordinate dimension ``d``."""
        return int(self.cloud.shape[1])

    @property
    def points(self) -> np.ndarray:
        """A read-only view of the underlying ``(k, d)`` array."""
        return self.cloud

    def is_empty(self) -> bool:
        """Return True when the multiset has no members."""
        return len(self) == 0

    # -- construction helpers -------------------------------------------------------

    @classmethod
    def from_mapping(cls, values: dict[object, Sequence[float]]) -> "PointMultiset":
        """Build a multiset from a mapping, discarding the keys.

        Iteration order of the mapping defines member order; this is what the
        protocol code uses to turn per-process state dictionaries into a
        multiset (the paper's function ``Phi``).
        """
        return cls(list(values.values()))

    def with_point(self, point: Sequence[float]) -> "PointMultiset":
        """Return a new multiset with ``point`` appended."""
        point = as_point(point, dimension=self.dimension if len(self) else None)
        if len(self) == 0:
            return PointMultiset([point])
        return PointMultiset(np.vstack([self.cloud, point[None, :]]))

    # -- subsets and partitions ------------------------------------------------------

    def select(self, indices: Sequence[int]) -> "PointMultiset":
        """Return the sub-multiset made of the members at ``indices``."""
        indices = list(indices)
        if any(index < 0 or index >= len(self) for index in indices):
            raise GeometryError(f"subset indices {indices} out of range for size {len(self)}")
        if not indices:
            return PointMultiset(np.empty((0, self.dimension)), dimension=self.dimension)
        return PointMultiset(self.cloud[indices])

    def subsets_of_size(self, subset_size: int) -> Iterator["PointMultiset"]:
        """Yield every sub-multiset with exactly ``subset_size`` members."""
        for indices in iter_index_subsets(len(self), subset_size):
            yield self.select(indices)

    def drop_count(self, count: int) -> Iterator["PointMultiset"]:
        """Yield every sub-multiset obtained by removing exactly ``count`` members.

        This is the subset family the paper's ``Gamma`` intersects over when
        ``count = f``.
        """
        if count < 0:
            raise GeometryError("cannot drop a negative number of members")
        yield from self.subsets_of_size(len(self) - count)

    def partitions(self, parts: int) -> Iterator[tuple["PointMultiset", ...]]:
        """Yield every partition of the multiset into ``parts`` non-empty blocks."""
        for blocks in iter_index_partitions(len(self), parts):
            yield tuple(self.select(block) for block in blocks)

    # -- numeric summaries ------------------------------------------------------------

    def centroid(self) -> np.ndarray:
        """Return the arithmetic mean of all members."""
        if self.is_empty():
            raise GeometryError("centroid of an empty multiset is undefined")
        return self.cloud.mean(axis=0)

    def count_of(self, point: Sequence[float], tolerance: float = 1e-9) -> int:
        """Return how many members coincide with ``point`` up to ``tolerance``."""
        point = as_point(point, dimension=self.dimension)
        if self.is_empty():
            return 0
        return int(np.sum(np.max(np.abs(self.cloud - point[None, :]), axis=1) <= tolerance))
