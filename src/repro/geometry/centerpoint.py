"""Centerpoints of finite point clouds.

A *centerpoint* of a cloud of ``k`` points in ``R^d`` is a point ``c`` such
that every closed halfspace containing ``c`` contains at least ``k/(d+1)`` of
the cloud's points.  Centerpoints are the classical relaxation of Tverberg
points: every Tverberg point of a partition into ``ceil(k/(d+1))`` parts is a
centerpoint, and the references the paper cites ([11] Jadhav-Mukhopadhyay,
[14] Miller-Sheehy) are centerpoint algorithms.

This module offers two computations:

* :func:`centerpoint_depth` — the Tukey (halfspace) depth of a candidate point
  with respect to a cloud, by LP over separating directions (exact in the
  sense of a minimisation over the cloud's own direction candidates plus an LP
  refinement);
* :func:`find_centerpoint` — a practical centerpoint via iterated Radon points
  (Clarkson et al. style) with a depth verification fallback to the cloud's
  coordinate-wise median, which in the small dimensions exercised here meets
  the ``k/(d+1)`` guarantee.
"""

from __future__ import annotations

from itertools import combinations
from typing import Sequence

import numpy as np

from repro.exceptions import GeometryError
from repro.geometry.points import as_cloud, as_point
from repro.geometry.tverberg import radon_partition
from repro.geometry.multisets import PointMultiset

__all__ = ["halfspace_depth", "required_center_depth", "is_centerpoint", "find_centerpoint"]


def required_center_depth(point_count: int, dimension: int) -> int:
    """Return the depth a centerpoint must have: ``ceil(k / (d + 1))``."""
    if point_count < 1:
        raise GeometryError("need at least one point")
    if dimension < 1:
        raise GeometryError("dimension must be at least 1")
    return -(-point_count // (dimension + 1))


def halfspace_depth(cloud: np.ndarray | Sequence[Sequence[float]], candidate: Sequence[float]) -> int:
    """Return the Tukey depth of ``candidate`` with respect to ``cloud``.

    The depth is the minimum, over all closed halfspaces containing the
    candidate, of the number of cloud points in the halfspace.  The depth is
    evaluated by enumerating candidate normal directions: the coordinate axes,
    the directions determined by hyperplanes through the candidate and
    ``d - 1`` cloud points, and small perturbations of those directions (the
    perturbations matter because the minimising halfspace generically has *no*
    cloud point on its boundary other than possibly the candidate).  For the
    small, low-dimensional clouds this package uses, the enumeration is exact.
    """
    cloud = as_cloud(cloud)
    candidate = as_point(candidate, dimension=cloud.shape[1])
    point_count, dimension = cloud.shape
    if point_count == 0:
        return 0

    def depth_along(normal: np.ndarray) -> int:
        norm = float(np.linalg.norm(normal))
        if norm <= 1e-12:
            return point_count
        normal = normal / norm
        offsets = cloud @ normal
        candidate_offset = float(candidate @ normal)
        # Halfspace { x : normal.x >= candidate_offset } contains the candidate on
        # its boundary; count the cloud points it contains.
        return int(np.sum(offsets >= candidate_offset - 1e-9))

    perturbation = 1e-6
    axes = [np.eye(dimension)[coordinate] for coordinate in range(dimension)]

    def with_perturbations(normal: np.ndarray) -> list[np.ndarray]:
        variants = [normal]
        for axis in axes:
            variants.append(normal + perturbation * axis)
            variants.append(normal - perturbation * axis)
        return variants

    best = point_count
    directions: list[np.ndarray] = []
    for axis in axes:
        directions.extend(with_perturbations(axis))
    # Directions of candidate-to-point vectors (useful in every dimension).
    for row in cloud:
        difference = row - candidate
        if np.linalg.norm(difference) > 1e-12:
            directions.extend(with_perturbations(difference))
    # Directions normal to hyperplanes through the candidate and d-1 cloud points.
    if dimension >= 2:
        for subset in combinations(range(point_count), dimension - 1):
            matrix = cloud[list(subset)] - candidate
            _, _, vh = np.linalg.svd(np.vstack([matrix, np.zeros((1, dimension))]))
            directions.extend(with_perturbations(vh[-1]))

    for direction in directions:
        best = min(best, depth_along(direction), depth_along(-direction))
        if best == 0:
            break
    return best


def is_centerpoint(cloud: np.ndarray | Sequence[Sequence[float]], candidate: Sequence[float]) -> bool:
    """Return True when ``candidate`` is a centerpoint of ``cloud``."""
    cloud = as_cloud(cloud)
    depth = halfspace_depth(cloud, candidate)
    return depth >= required_center_depth(cloud.shape[0], cloud.shape[1])


def find_centerpoint(
    cloud: np.ndarray | Sequence[Sequence[float]],
    rng: np.random.Generator | None = None,
    iterations: int = 64,
) -> np.ndarray:
    """Return a centerpoint of ``cloud``.

    Strategy: start from the coordinate-wise median (already a centerpoint in
    dimension 1 and very often in low dimensions), and if its depth falls
    short, run an iterated-Radon-point refinement: repeatedly replace random
    ``d + 2``-subsets by their Radon point, which provably drifts towards high
    depth.  The best candidate seen (by depth) is returned; its depth always
    satisfies the centerpoint bound for the configurations exercised in this
    package, and callers can re-check with :func:`is_centerpoint`.
    """
    cloud = as_cloud(cloud)
    point_count, dimension = cloud.shape
    if point_count == 0:
        raise GeometryError("cannot compute a centerpoint of an empty cloud")
    if rng is None:
        rng = np.random.default_rng(0)

    target_depth = required_center_depth(point_count, dimension)

    best_candidate = np.median(cloud, axis=0)
    best_depth = halfspace_depth(cloud, best_candidate)
    if best_depth >= target_depth:
        return best_candidate

    working = cloud.copy()
    for _ in range(iterations):
        if working.shape[0] < dimension + 2:
            working = np.vstack([working, cloud])
        indices = rng.choice(working.shape[0], size=dimension + 2, replace=False)
        try:
            partition = radon_partition(PointMultiset(working[indices]))
        except GeometryError:
            continue
        candidate = partition.witness
        depth = halfspace_depth(cloud, candidate)
        if depth > best_depth:
            best_candidate, best_depth = candidate, depth
            if best_depth >= target_depth:
                break
        # Replace the consumed points by the Radon point, as in the
        # iterated-Radon centerpoint approximation.
        keep = np.ones(working.shape[0], dtype=bool)
        keep[indices] = False
        working = np.vstack([working[keep], candidate[None, :]])
    return best_candidate
