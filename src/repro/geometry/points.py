"""Point and point-cloud utilities.

Throughout the package a *point* is a 1-D :class:`numpy.ndarray` of floats of
length ``d`` (the paper uses "point" and "vector" interchangeably, and so do
we).  A *point cloud* is a 2-D array of shape ``(k, d)`` whose rows are
points.  These helpers normalise user input into those canonical shapes and
provide small affine/metric utilities used by the convex-hull and Tverberg
machinery.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import GeometryError

__all__ = [
    "as_point",
    "as_cloud",
    "dimension_of",
    "bounding_box",
    "pairwise_max_coordinate_gap",
    "coordinate_range",
    "centroid",
    "affine_rank",
    "points_equal",
    "deduplicate",
    "max_norm_distance",
    "euclidean_distance",
]


def as_point(value: Sequence[float] | np.ndarray, dimension: int | None = None) -> np.ndarray:
    """Return ``value`` as a 1-D float array, optionally checking its length.

    Raises :class:`GeometryError` if the value is not one-dimensional or does
    not match the expected dimension.
    """
    point = np.asarray(value, dtype=float)
    if point.ndim != 1:
        raise GeometryError(f"a point must be one-dimensional, got shape {point.shape}")
    if point.size == 0:
        raise GeometryError("a point must have at least one coordinate")
    if dimension is not None and point.shape[0] != dimension:
        raise GeometryError(
            f"point has dimension {point.shape[0]}, expected {dimension}"
        )
    if not np.all(np.isfinite(point)):
        raise GeometryError(f"point contains non-finite coordinates: {point}")
    return point


def as_cloud(values: Iterable[Sequence[float]] | np.ndarray, dimension: int | None = None) -> np.ndarray:
    """Return ``values`` as a 2-D ``(k, d)`` float array of points.

    Accepts any iterable of point-like rows.  An empty iterable is an error
    unless ``dimension`` is given, in which case an empty ``(0, dimension)``
    array is returned.
    """
    if isinstance(values, np.ndarray) and values.ndim == 2:
        cloud = values.astype(float, copy=True)
    else:
        rows = [as_point(row) for row in values]
        if not rows:
            if dimension is None:
                raise GeometryError("cannot infer dimension of an empty point cloud")
            return np.empty((0, dimension), dtype=float)
        lengths = {row.shape[0] for row in rows}
        if len(lengths) != 1:
            raise GeometryError(f"points have inconsistent dimensions: {sorted(lengths)}")
        cloud = np.vstack(rows)
    if cloud.shape[0] == 0 and dimension is None:
        raise GeometryError("cannot infer dimension of an empty point cloud")
    if dimension is not None and cloud.shape[1] != dimension:
        raise GeometryError(
            f"point cloud has dimension {cloud.shape[1]}, expected {dimension}"
        )
    if not np.all(np.isfinite(cloud)):
        raise GeometryError("point cloud contains non-finite coordinates")
    return cloud


def dimension_of(cloud: np.ndarray) -> int:
    """Return the coordinate dimension ``d`` of a point cloud."""
    cloud = as_cloud(cloud)
    return int(cloud.shape[1])


def bounding_box(cloud: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(lower, upper)`` coordinate-wise bounds of the cloud."""
    cloud = as_cloud(cloud)
    if cloud.shape[0] == 0:
        raise GeometryError("bounding box of an empty cloud is undefined")
    return cloud.min(axis=0), cloud.max(axis=0)


def coordinate_range(cloud: np.ndarray) -> np.ndarray:
    """Return, per coordinate, ``max - min`` over the cloud.

    This is the quantity the paper writes as ``rho_l = Omega_l - mu_l`` when the
    cloud is the multiset of honest process states.
    """
    lower, upper = bounding_box(cloud)
    return upper - lower


def pairwise_max_coordinate_gap(cloud: np.ndarray) -> float:
    """Return the largest coordinate-wise gap between any two points.

    Equals ``max_l rho_l``; this is the scalar the epsilon-agreement condition
    bounds by ``epsilon``.
    """
    return float(np.max(coordinate_range(cloud))) if as_cloud(cloud).shape[0] else 0.0


def centroid(cloud: np.ndarray) -> np.ndarray:
    """Return the arithmetic mean of the points."""
    cloud = as_cloud(cloud)
    if cloud.shape[0] == 0:
        raise GeometryError("centroid of an empty cloud is undefined")
    return cloud.mean(axis=0)


def affine_rank(cloud: np.ndarray, tolerance: float = 1e-9) -> int:
    """Return the affine rank of the cloud (dimension of its affine hull)."""
    cloud = as_cloud(cloud)
    if cloud.shape[0] <= 1:
        return 0
    shifted = cloud[1:] - cloud[0]
    if shifted.size == 0:
        return 0
    singular_values = np.linalg.svd(shifted, compute_uv=False)
    scale = max(1.0, float(singular_values[0])) if singular_values.size else 1.0
    return int(np.sum(singular_values > tolerance * scale))


def points_equal(a: np.ndarray, b: np.ndarray, tolerance: float = 1e-9) -> bool:
    """Return True when two points coincide up to ``tolerance`` (max-norm)."""
    a = as_point(a)
    b = as_point(b, dimension=a.shape[0])
    return bool(np.max(np.abs(a - b)) <= tolerance)


def deduplicate(cloud: np.ndarray, tolerance: float = 1e-9) -> np.ndarray:
    """Return the cloud with (near-)duplicate points removed, preserving order."""
    cloud = as_cloud(cloud)
    kept: list[np.ndarray] = []
    for row in cloud:
        if not any(points_equal(row, existing, tolerance) for existing in kept):
            kept.append(row)
    if not kept:
        return np.empty((0, cloud.shape[1]), dtype=float)
    return np.vstack(kept)


def max_norm_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Return the Chebyshev (max-norm) distance between two points."""
    a = as_point(a)
    b = as_point(b, dimension=a.shape[0])
    return float(np.max(np.abs(a - b)))


def euclidean_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Return the Euclidean distance between two points."""
    a = as_point(a)
    b = as_point(b, dimension=a.shape[0])
    return float(np.linalg.norm(a - b))
