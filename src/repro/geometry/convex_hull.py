"""Convex hull predicates phrased as linear programs.

The constructions in the paper routinely involve convex hulls of *fewer* than
``d + 1`` points (segments, triangles and lower-dimensional faces embedded in
``R^d``), which vertex-enumeration libraries handle poorly.  Membership and
intersection questions are therefore answered with linear programs over convex
combination weights, which are exact up to solver tolerance regardless of
degeneracy.

The central objects are:

* :func:`contains_point` — is a point inside ``H(Y)``?
* :func:`hulls_intersection_point` — a common point of several hulls, if any.
* :func:`distance_to_hull` — Chebyshev distance from a point to a hull, used by
  the validity checker to report how badly a decision misses the honest hull.
* :class:`ConvexHullRegion` — a small convenience wrapper bundling a point
  cloud with these predicates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import GeometryError
from repro.geometry.linprog import feasibility_program, solve_linear_program
from repro.geometry.multisets import PointMultiset
from repro.geometry.points import as_cloud, as_point

__all__ = [
    "contains_point",
    "convex_combination_weights",
    "hulls_intersection_point",
    "hulls_intersect",
    "distance_to_hull",
    "hull_vertices",
    "ConvexHullRegion",
]

_DEFAULT_TOLERANCE = 1e-7


def _cloud_of(points: PointMultiset | np.ndarray | Iterable[Sequence[float]]) -> np.ndarray:
    if isinstance(points, PointMultiset):
        return points.points
    return as_cloud(points)


def convex_combination_weights(
    points: PointMultiset | np.ndarray | Iterable[Sequence[float]],
    target: Sequence[float],
    tolerance: float = _DEFAULT_TOLERANCE,
) -> np.ndarray | None:
    """Return weights expressing ``target`` as a convex combination of ``points``.

    Returns ``None`` when ``target`` is not in the convex hull.  The weights
    sum to one, are non-negative, and ``weights @ points == target`` up to the
    solver tolerance.
    """
    cloud = _cloud_of(points)
    if cloud.shape[0] == 0:
        return None
    target = as_point(target, dimension=cloud.shape[1])
    point_count, dimension = cloud.shape

    # Variables: the convex-combination weights alpha_1..alpha_k.
    # Equalities: sum(alpha) == 1 and cloud.T @ alpha == target.
    equality_matrix = np.vstack([np.ones((1, point_count)), cloud.T])
    equality_rhs = np.concatenate([[1.0], target])

    result = feasibility_program(
        variable_count=point_count,
        equality_matrix=equality_matrix,
        equality_rhs=equality_rhs,
        bounds=(0, None),
    )
    if not result.feasible or result.solution is None:
        return None
    weights = np.clip(result.solution, 0.0, None)
    total = float(weights.sum())
    if total <= 0:
        return None
    weights = weights / total
    reconstructed = weights @ cloud
    if np.max(np.abs(reconstructed - target)) > max(tolerance, 1e-6):
        return None
    return weights


def contains_point(
    points: PointMultiset | np.ndarray | Iterable[Sequence[float]],
    target: Sequence[float],
    tolerance: float = _DEFAULT_TOLERANCE,
) -> bool:
    """Return True when ``target`` lies in the convex hull of ``points``."""
    return convex_combination_weights(points, target, tolerance) is not None


def hulls_intersection_point(
    point_sets: Sequence[PointMultiset | np.ndarray | Iterable[Sequence[float]]],
    tolerance: float = _DEFAULT_TOLERANCE,
) -> np.ndarray | None:
    """Return a point common to the convex hulls of every set, or ``None``.

    This is a single feasibility LP: one block of convex-combination weights
    per hull, all constrained to reproduce the same point ``z``.  It is the
    work-horse behind ``Gamma`` emptiness testing and the impossibility
    constructions (Theorem 1 / Theorem 4 in the paper).
    """
    clouds = [_cloud_of(point_set) for point_set in point_sets]
    if not clouds:
        raise GeometryError("need at least one hull to intersect")
    dimensions = {cloud.shape[1] for cloud in clouds}
    if len(dimensions) != 1:
        raise GeometryError(f"hulls live in different dimensions: {sorted(dimensions)}")
    if any(cloud.shape[0] == 0 for cloud in clouds):
        return None
    dimension = dimensions.pop()

    # Variable layout: [z (free, length d)] ++ [alpha block per hull].
    weight_counts = [cloud.shape[0] for cloud in clouds]
    total_weights = sum(weight_counts)
    variable_count = dimension + total_weights

    equality_rows: list[np.ndarray] = []
    equality_rhs: list[float] = []

    offset = dimension
    for cloud, count in zip(clouds, weight_counts):
        # z - cloud.T @ alpha_block == 0   (d rows)
        for coordinate in range(dimension):
            row = np.zeros(variable_count)
            row[coordinate] = 1.0
            row[offset : offset + count] = -cloud[:, coordinate]
            equality_rows.append(row)
            equality_rhs.append(0.0)
        # sum(alpha_block) == 1
        row = np.zeros(variable_count)
        row[offset : offset + count] = 1.0
        equality_rows.append(row)
        equality_rhs.append(1.0)
        offset += count

    bounds: list[tuple[float | None, float | None]] = [(None, None)] * dimension
    bounds.extend([(0, None)] * total_weights)

    result = feasibility_program(
        variable_count=variable_count,
        equality_matrix=np.vstack(equality_rows),
        equality_rhs=np.asarray(equality_rhs),
        bounds=bounds,
    )
    if not result.feasible or result.solution is None:
        return None
    candidate = result.solution[:dimension]
    # Sanity re-check: the candidate must be in every hull individually.
    for cloud in clouds:
        if not contains_point(cloud, candidate, tolerance=max(tolerance, 1e-6)):
            return None
    return candidate


def hulls_intersect(
    point_sets: Sequence[PointMultiset | np.ndarray | Iterable[Sequence[float]]],
    tolerance: float = _DEFAULT_TOLERANCE,
) -> bool:
    """Return True when the convex hulls of all the sets share a point."""
    return hulls_intersection_point(point_sets, tolerance) is not None


def distance_to_hull(
    points: PointMultiset | np.ndarray | Iterable[Sequence[float]],
    target: Sequence[float],
) -> float:
    """Return the Chebyshev distance from ``target`` to the convex hull of ``points``.

    Zero when the target is inside the hull.  Computed as the LP

        minimise t
        subject to  -t <= (cloud.T @ alpha - target)_l <= t   for every l
                    sum(alpha) = 1,  alpha >= 0,  t >= 0
    """
    cloud = _cloud_of(points)
    if cloud.shape[0] == 0:
        raise GeometryError("distance to the hull of an empty set is undefined")
    target = as_point(target, dimension=cloud.shape[1])
    point_count, dimension = cloud.shape

    # Variables: alpha_1..alpha_k, t.
    variable_count = point_count + 1
    objective = np.zeros(variable_count)
    objective[-1] = 1.0

    inequality_rows: list[np.ndarray] = []
    inequality_rhs: list[float] = []
    for coordinate in range(dimension):
        # cloud.T @ alpha - t <= target_l
        row = np.zeros(variable_count)
        row[:point_count] = cloud[:, coordinate]
        row[-1] = -1.0
        inequality_rows.append(row)
        inequality_rhs.append(float(target[coordinate]))
        # -cloud.T @ alpha - t <= -target_l
        row = np.zeros(variable_count)
        row[:point_count] = -cloud[:, coordinate]
        row[-1] = -1.0
        inequality_rows.append(row)
        inequality_rhs.append(-float(target[coordinate]))

    equality_matrix = np.zeros((1, variable_count))
    equality_matrix[0, :point_count] = 1.0

    result = solve_linear_program(
        objective,
        inequality_matrix=np.vstack(inequality_rows),
        inequality_rhs=np.asarray(inequality_rhs),
        equality_matrix=equality_matrix,
        equality_rhs=np.asarray([1.0]),
        bounds=(0, None),
    )
    if not result.feasible or result.objective is None:
        raise GeometryError("distance-to-hull program unexpectedly infeasible")
    return max(0.0, float(result.objective))


def hull_vertices(
    points: PointMultiset | np.ndarray | Iterable[Sequence[float]],
    tolerance: float = _DEFAULT_TOLERANCE,
) -> np.ndarray:
    """Return the points of the cloud that are vertices (extreme points) of its hull.

    A point is extreme iff it is *not* in the convex hull of the other points.
    Works in any dimension and for degenerate (lower-dimensional) hulls, unlike
    ``scipy.spatial.ConvexHull``.
    """
    cloud = _cloud_of(points)
    if cloud.shape[0] <= 1:
        return cloud.copy()
    keep: list[int] = []
    for index in range(cloud.shape[0]):
        others = np.delete(cloud, index, axis=0)
        if not contains_point(others, cloud[index], tolerance=tolerance):
            keep.append(index)
    if not keep:
        # All points coincide; the single common point is the hull's vertex.
        return cloud[:1].copy()
    return cloud[keep].copy()


@dataclass(frozen=True)
class ConvexHullRegion:
    """The convex hull of a finite point cloud, with membership predicates."""

    generators: np.ndarray

    def __init__(self, points: PointMultiset | np.ndarray | Iterable[Sequence[float]]) -> None:
        cloud = _cloud_of(points)
        if cloud.shape[0] == 0:
            raise GeometryError("a hull region needs at least one generator point")
        object.__setattr__(self, "generators", cloud.copy())
        self.generators.setflags(write=False)

    @property
    def dimension(self) -> int:
        """Coordinate dimension of the ambient space."""
        return int(self.generators.shape[1])

    def contains(self, target: Sequence[float], tolerance: float = _DEFAULT_TOLERANCE) -> bool:
        """Return True when ``target`` lies in the region."""
        return contains_point(self.generators, target, tolerance)

    def distance_to(self, target: Sequence[float]) -> float:
        """Chebyshev distance from ``target`` to the region (zero if inside)."""
        return distance_to_hull(self.generators, target)

    def vertices(self) -> np.ndarray:
        """Extreme points of the region."""
        return hull_vertices(self.generators)

    def intersection_point_with(self, *others: "ConvexHullRegion") -> np.ndarray | None:
        """A point common to this region and every region in ``others``, or None."""
        clouds = [self.generators] + [other.generators for other in others]
        return hulls_intersection_point(clouds)
