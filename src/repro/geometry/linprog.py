"""Thin, diagnosable wrappers around :func:`scipy.optimize.linprog`.

All of the geometry in this package (hull membership, hull-intersection
emptiness, the safe area ``Gamma``) reduces to small linear programs.  Rather
than scattering raw ``linprog`` calls and status-code checks everywhere, the
rest of the package goes through :func:`solve_linear_program`, which

* normalises empty constraint blocks to the shapes HiGHS expects,
* distinguishes *infeasible* (a meaningful geometric answer) from genuine
  solver failure, and
* returns a small result object with the optimum and the argument vector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import issparse

from repro.exceptions import LinearProgramError

__all__ = ["LinearProgramResult", "solve_linear_program", "feasibility_program"]

_STATUS_OPTIMAL = 0
_STATUS_ITERATION_LIMIT = 1
_STATUS_INFEASIBLE = 2
_STATUS_UNBOUNDED = 3
_STATUS_NUMERICAL = 4


@dataclass(frozen=True)
class LinearProgramResult:
    """Outcome of a linear program.

    Attributes:
        feasible: True when the program has a feasible (and bounded) solution.
        objective: optimal objective value; ``None`` when infeasible.
        solution: optimal variable assignment; ``None`` when infeasible.
        status: raw scipy status code (0 optimal, 2 infeasible, ...).
        message: raw scipy status message, useful for diagnostics.
    """

    feasible: bool
    objective: float | None
    solution: np.ndarray | None
    status: int
    message: str


def _normalise_block(
    matrix: np.ndarray | Sequence[Sequence[float]] | None,
    vector: np.ndarray | Sequence[float] | None,
    variable_count: int,
    label: str,
) -> tuple[np.ndarray | None, np.ndarray | None]:
    """Validate one (matrix, rhs) constraint block, allowing it to be absent.

    Accepts dense array-likes and scipy sparse matrices alike; the batched
    safe-area kernel passes CSC matrices, which HiGHS consumes natively and
    which must not be densified here.
    """
    if matrix is None and vector is None:
        return None, None
    if matrix is None or vector is None:
        raise LinearProgramError(f"{label}: matrix and vector must be given together")
    if issparse(matrix):
        vector = np.atleast_1d(np.asarray(vector, dtype=float))
        if matrix.shape[0] == 0:
            return None, None
        if matrix.shape[1] != variable_count:
            raise LinearProgramError(
                f"{label}: matrix has {matrix.shape[1]} columns, expected {variable_count}"
            )
        if matrix.shape[0] != vector.shape[0]:
            raise LinearProgramError(
                f"{label}: {matrix.shape[0]} rows but {vector.shape[0]} right-hand sides"
            )
        return matrix, vector
    matrix = np.atleast_2d(np.asarray(matrix, dtype=float))
    vector = np.atleast_1d(np.asarray(vector, dtype=float))
    if matrix.shape[0] == 0:
        return None, None
    if matrix.shape[1] != variable_count:
        raise LinearProgramError(
            f"{label}: matrix has {matrix.shape[1]} columns, expected {variable_count}"
        )
    if matrix.shape[0] != vector.shape[0]:
        raise LinearProgramError(
            f"{label}: {matrix.shape[0]} rows but {vector.shape[0]} right-hand sides"
        )
    return matrix, vector


def solve_linear_program(
    objective: np.ndarray | Sequence[float],
    *,
    inequality_matrix: np.ndarray | Sequence[Sequence[float]] | None = None,
    inequality_rhs: np.ndarray | Sequence[float] | None = None,
    equality_matrix: np.ndarray | Sequence[Sequence[float]] | None = None,
    equality_rhs: np.ndarray | Sequence[float] | None = None,
    bounds: Sequence[tuple[float | None, float | None]] | tuple[float | None, float | None] | None = (0, None),
) -> LinearProgramResult:
    """Minimise ``objective @ x`` subject to the given constraints.

    ``bounds`` follows the scipy convention; the default of ``(0, None)``
    (non-negative variables) matches the convex-combination programs that
    dominate this package.  Infeasibility is reported through the result
    object; other abnormal terminations raise :class:`LinearProgramError`.
    """
    objective = np.asarray(objective, dtype=float)
    if objective.ndim != 1:
        raise LinearProgramError(f"objective must be a vector, got shape {objective.shape}")
    variable_count = objective.shape[0]

    a_ub, b_ub = _normalise_block(inequality_matrix, inequality_rhs, variable_count, "inequality block")
    a_eq, b_eq = _normalise_block(equality_matrix, equality_rhs, variable_count, "equality block")

    outcome = linprog(
        c=objective,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=bounds,
        method="highs",
    )
    presolve_free_verdict = False
    if outcome.status == _STATUS_NUMERICAL:
        # Degenerate inputs (duplicated points, adversarial values orders of
        # magnitude larger than honest ones) occasionally trip the default
        # HiGHS presolve into an "Unknown" model status; retry without
        # presolve, then with the interior-point solver, then — last resort —
        # with feasibility tolerances loosened to 1e-6 (clusters of
        # near-coincident points, e.g. honest states late in a contraction,
        # can make the feasible region smaller than the default tolerances,
        # and 1e-6 still sits at the package's geometric tolerance).
        for retry_kwargs in (
            {"method": "highs", "options": {"presolve": False}},
            {"method": "highs-ipm"},
            {
                "method": "highs",
                "options": {
                    "primal_feasibility_tolerance": 1e-6,
                    "dual_feasibility_tolerance": 1e-6,
                },
            },
        ):
            outcome = linprog(
                c=objective,
                A_ub=a_ub,
                b_ub=b_ub,
                A_eq=a_eq,
                b_eq=b_eq,
                bounds=bounds,
                **retry_kwargs,
            )
            if outcome.status != _STATUS_NUMERICAL:
                presolve_free_verdict = (
                    retry_kwargs.get("options", {}).get("presolve") is False
                )
                break

    if outcome.status == _STATUS_INFEASIBLE and not presolve_free_verdict:
        # HiGHS presolve can misclassify degenerate-but-feasible programs as
        # infeasible (duplicated points with coordinates spanning orders of
        # magnitude).  Infeasibility is a meaningful geometric answer here
        # (hull membership, Gamma emptiness), so confirm it with a
        # presolve-free re-solve before reporting it; genuinely infeasible
        # programs stay infeasible either way (skipped when the verdict
        # already came from a presolve-free solve).
        confirm = linprog(
            c=objective,
            A_ub=a_ub,
            b_ub=b_ub,
            A_eq=a_eq,
            b_eq=b_eq,
            bounds=bounds,
            method="highs",
            options={"presolve": False},
        )
        if confirm.status == _STATUS_OPTIMAL:
            outcome = confirm

    if outcome.status == _STATUS_OPTIMAL:
        return LinearProgramResult(
            feasible=True,
            objective=float(outcome.fun),
            solution=np.asarray(outcome.x, dtype=float),
            status=int(outcome.status),
            message=str(outcome.message),
        )
    if outcome.status == _STATUS_INFEASIBLE:
        return LinearProgramResult(
            feasible=False,
            objective=None,
            solution=None,
            status=int(outcome.status),
            message=str(outcome.message),
        )
    raise LinearProgramError(
        f"linear program terminated abnormally (status {outcome.status}): {outcome.message}",
        status=int(outcome.status),
    )


def feasibility_program(
    *,
    variable_count: int,
    inequality_matrix: np.ndarray | Sequence[Sequence[float]] | None = None,
    inequality_rhs: np.ndarray | Sequence[float] | None = None,
    equality_matrix: np.ndarray | Sequence[Sequence[float]] | None = None,
    equality_rhs: np.ndarray | Sequence[float] | None = None,
    bounds: Sequence[tuple[float | None, float | None]] | tuple[float | None, float | None] | None = (0, None),
) -> LinearProgramResult:
    """Solve a pure feasibility problem (zero objective) over the constraints."""
    return solve_linear_program(
        np.zeros(variable_count),
        inequality_matrix=inequality_matrix,
        inequality_rhs=inequality_rhs,
        equality_matrix=equality_matrix,
        equality_rhs=equality_rhs,
        bounds=bounds,
    )
