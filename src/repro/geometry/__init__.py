"""Geometric substrate: points, multisets, convex hulls, Tverberg partitions.

Everything the BVC algorithms need from computational geometry lives here and
is phrased, wherever possible, as small linear programs so that degenerate
(lower-dimensional) hulls — which the paper's constructions rely on — are
handled exactly.
"""

from repro.geometry.points import (
    as_point,
    as_cloud,
    bounding_box,
    centroid,
    coordinate_range,
    pairwise_max_coordinate_gap,
    affine_rank,
    euclidean_distance,
    max_norm_distance,
)
from repro.geometry.multisets import PointMultiset, iter_index_partitions, iter_index_subsets
from repro.geometry.linprog import LinearProgramResult, solve_linear_program, feasibility_program
from repro.geometry.kernel import (
    GammaKernel,
    KernelStats,
    default_kernel,
    full_subset_family,
    pruned_subset_family,
    safe_area_interval_1d,
    safe_area_point_kernel,
    safe_area_points_batch,
    safe_area_points_multi,
)
from repro.geometry.convex_hull import (
    ConvexHullRegion,
    contains_point,
    convex_combination_weights,
    distance_to_hull,
    hull_vertices,
    hulls_intersect,
    hulls_intersection_point,
)
from repro.geometry.halfspaces import Halfspace, HalfspaceRegion, separating_hyperplane
from repro.geometry.tverberg import (
    TverbergPartition,
    figure1_instance,
    find_tverberg_partition,
    radon_partition,
    tverberg_points_required,
    verify_tverberg_partition,
)
from repro.geometry.centerpoint import (
    find_centerpoint,
    halfspace_depth,
    is_centerpoint,
    required_center_depth,
)

__all__ = [
    "as_point",
    "as_cloud",
    "bounding_box",
    "centroid",
    "coordinate_range",
    "pairwise_max_coordinate_gap",
    "affine_rank",
    "euclidean_distance",
    "max_norm_distance",
    "PointMultiset",
    "iter_index_partitions",
    "iter_index_subsets",
    "LinearProgramResult",
    "solve_linear_program",
    "feasibility_program",
    "GammaKernel",
    "KernelStats",
    "default_kernel",
    "full_subset_family",
    "pruned_subset_family",
    "safe_area_interval_1d",
    "safe_area_point_kernel",
    "safe_area_points_batch",
    "safe_area_points_multi",
    "ConvexHullRegion",
    "contains_point",
    "convex_combination_weights",
    "distance_to_hull",
    "hull_vertices",
    "hulls_intersect",
    "hulls_intersection_point",
    "Halfspace",
    "HalfspaceRegion",
    "separating_hyperplane",
    "TverbergPartition",
    "figure1_instance",
    "find_tverberg_partition",
    "radon_partition",
    "tverberg_points_required",
    "verify_tverberg_partition",
    "find_centerpoint",
    "halfspace_depth",
    "is_centerpoint",
    "required_center_depth",
]
